// Command sweep runs the raw granularity micro-benchmark for a single
// scheduler: for each loop size in a geometric sweep it reports the
// sequential time, the parallel time, the measured speedup and the speedup
// predicted by the fitted burden model. It is the measurement underlying
// Table 1, exposed directly so new schedulers or parameter choices can be
// explored without editing the harness.
//
// Usage:
//
//	go run ./cmd/sweep -scheduler fine-grain-tree [-workers N] [-points N]
//	                   [-iterations N] [-min-total D] [-max-total D] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"loopsched/internal/bench"
)

func main() {
	var (
		scheduler  = flag.String("scheduler", "fine-grain-tree", "scheduler to measure (see -list)")
		list       = flag.Bool("list", false, "list available schedulers and exit")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
		points     = flag.Int("points", 14, "number of sweep points")
		reps       = flag.Int("reps", 5, "timed repetitions per point")
		iterations = flag.Int("iterations", 4096, "fixed iteration count of the swept loops")
		minTotal   = flag.Duration("min-total", 20*time.Microsecond, "smallest sequential loop duration")
		maxTotal   = flag.Duration("max-total", 20*time.Millisecond, "largest sequential loop duration")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Names() {
			fmt.Println(name)
		}
		return
	}

	res, err := bench.MeasureBurden(*scheduler, bench.BurdenOptions{
		Workers:    *workers,
		Iterations: *iterations,
		MinTotal:   *minTotal,
		MaxTotal:   *maxTotal,
		Points:     *points,
		Reps:       *reps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if err := bench.WriteSweep(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("\nfitted burden d = %.2f us (effective parallelism %.1f, R2 %.3f, break-even %.1f us)\n",
		res.BurdenUs(), res.Fit.EffectiveP, res.Fit.R2, res.Fit.BreakEven()*1e6)
}
