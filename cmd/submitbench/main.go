// Command submitbench runs the submit-path micro-benchmark (per-submit
// latency, allocations per submit cycle and dispatch-latency percentiles
// through the full Sharded -> fair queue -> dispatcher -> worker spine) and
// emits both a human-readable table and the machine-readable
// BENCH_submitpath.json artifact used to track the perf trajectory across
// PRs. The -cpuprofile/-memprofile flags make the before/after profiles that
// justify submit-path changes reproducible.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "team size (0 = GOMAXPROCS capped at 8)")
	shards := flag.Int("shards", 0, "shard count (0 = 1; the router is on the measured path either way)")
	jobsN := flag.Int("jobs", 0, "measured submissions (0 = 20000)")
	warmup := flag.Int("warmup", 0, "unmeasured priming submissions (0 = 2000)")
	batch := flag.Int("batch", 0, "SubmitBatch size of the batched phase (0 = 64)")
	n := flag.Int("n", 0, "iterations per job (0 = 1, the pure-handoff regime)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_submitpath.json", "write the machine-readable report here ('' = skip)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured run here")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the measured run here")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.SubmitPathOptions{
		Workers: *workers,
		Shards:  *shards,
		Jobs:    *jobsN,
		Warmup:  *warmup,
		Batch:   *batch,
		N:       *n,
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	res, err := bench.RunSubmitPath(opt)
	if err != nil {
		log.Fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // surface only live objects: the retained footprint
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if err := bench.WriteSubmitPath(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteSubmitPathJSON(*jsonPath, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
