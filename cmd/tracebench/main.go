// Command tracebench measures the cost of lifecycle tracing: the fairshare
// (admission-bound) and shardburst (dispatcher-bound) scenarios each run with
// tracing off and with tracing on behind a live draining subscriber, and the
// throughput ratio is reported as a table plus the machine-readable
// BENCH_traceoverhead.json artifact used to track the tracing cost across
// PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	reps := flag.Int("reps", 0, "runs per configuration, best-of compared (0 = 5)")
	workers := flag.Int("workers", 0, "worker count for both scenarios (0 = scenario defaults)")
	duration := flag.Duration("duration", 0, "fairshare measurement window (0 = 600ms)")
	tenants := flag.Int("tenants", 0, "shardburst concurrent submitters (0 = default)")
	jobsPerTenant := flag.Int("jobs-per-tenant", 0, "shardburst jobs per submitter (0 = 30)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_traceoverhead.json", "write the machine-readable report here ('' = skip)")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.TraceOverheadOptions{
		Reps:       *reps,
		FairShare:  bench.FairShareOptions{Workers: *workers, Duration: *duration},
		ShardBurst: bench.ShardBurstOptions{Workers: *workers, Tenants: *tenants, JobsPerTenant: *jobsPerTenant},
	}
	start := time.Now()
	rep, err := bench.RunTraceOverhead(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteTraceOverhead(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteTraceOverheadJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
