// Command burden regenerates Table 1 of the paper: it sweeps the granularity
// of a synthetic parallel loop under each scheduler, fits the Amdahl burden
// model S = T/(d + T/P) by least squares, and prints the estimated burden d
// per scheduler next to the paper's own measurements.
//
// Usage:
//
//	go run ./cmd/burden [-workers N] [-points N] [-reps N]
//	                    [-iterations N] [-min-total D] [-max-total D] [-schedulers a,b,c]
//	                    [-sweeps] [-ablation]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"loopsched/internal/bench"
)

func main() {
	var (
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count P used in the burden model")
		points     = flag.Int("points", 14, "number of sweep points")
		reps       = flag.Int("reps", 5, "timed repetitions per point (minimum kept)")
		iterations = flag.Int("iterations", 4096, "fixed iteration count of the swept loops")
		minTotal   = flag.Duration("min-total", 20*time.Microsecond, "smallest sequential loop duration in the sweep")
		maxTotal   = flag.Duration("max-total", 20*time.Millisecond, "largest sequential loop duration in the sweep")
		schedulers = flag.String("schedulers", "", "comma-separated scheduler names (default: the paper's Table 1 rows)")
		sweeps     = flag.Bool("sweeps", false, "also print the raw granularity sweep behind each row")
		ablation   = flag.Bool("ablation", false, "also run the design-choice ablation (half vs full barrier, tree vs centralized, fan-outs)")
	)
	flag.Parse()

	opt := bench.BurdenOptions{
		Workers:    *workers,
		Iterations: *iterations,
		MinTotal:   *minTotal,
		MaxTotal:   *maxTotal,
		Points:     *points,
		Reps:       *reps,
	}

	names := bench.Table1Schedulers()
	if *schedulers != "" {
		names = strings.Split(*schedulers, ",")
	}

	fmt.Printf("Reproducing Table 1 on %d workers (GOMAXPROCS=%d, NumCPU=%d)\n",
		*workers, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("sweep: %d points, %v .. %v of sequential work over %d-iteration loops, %d reps\n\n",
		*points, *minTotal, *maxTotal, *iterations, *reps)

	start := time.Now()
	var rows []bench.BurdenResult
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "measuring %-30s ... ", name)
		row, err := bench.MeasureBurden(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "failed\n")
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "d = %6.2f us (elapsed %s)\n", row.BurdenUs(), bench.Elapsed(start))
		rows = append(rows, row)
	}

	fmt.Println()
	if err := bench.WriteTable1(os.Stdout, rows); err != nil {
		fatal(err)
	}

	if *sweeps {
		for _, row := range rows {
			fmt.Println()
			if err := bench.WriteSweep(os.Stdout, row); err != nil {
				fatal(err)
			}
		}
	}

	if *ablation {
		fmt.Println()
		abOpt := bench.AblationOptions{Workers: *workers}
		abRows, err := bench.RunAblation(abOpt)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteAblation(os.Stdout, abRows, abOpt); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burden:", err)
	os.Exit(1)
}
