// Command checkpointbench runs the checkpoint/resume overhead scenario (the
// same job fleet on a plain scheduler, on one writing durable checkpoints to
// a file-backed WAL, and on the durable one with every job suspended and
// resumed once mid-flight, plus a raw WAL-append timing) and emits both a
// human-readable table and the machine-readable BENCH_checkpoint.json
// artifact used to track the durability overhead across PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS-2, clamped to [2,16])")
	jobsN := flag.Int("jobs", 0, "fleet size per phase (0 = 64)")
	n := flag.Int("n", 0, "iterations per job (0 = 4096)")
	iterNs := flag.Float64("iterns", 0, "target ns per iteration (0 = 150)")
	grain := flag.Int("grain", 0, "self-scheduling chunk size (0 = heuristic)")
	reps := flag.Int("reps", 0, "repetitions per phase, medians reported (0 = 3)")
	puts := flag.Int("puts", 0, "raw WAL appends timed for the write-cost figure (0 = 4096)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_checkpoint.json", "write the machine-readable report here ('' = skip)")
	strictEnv := "CHECKPOINT_STRICT"
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.CheckpointOptions{
		Workers:    *workers,
		Jobs:       *jobsN,
		N:          *n,
		IterNs:     *iterNs,
		Grain:      *grain,
		Reps:       *reps,
		PutRecords: *puts,
	}
	start := time.Now()
	rep, err := bench.RunCheckpoint(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteCheckpointBench(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteCheckpointBenchJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))

	// CHECKPOINT_STRICT=1 (set on quiet, capable CI runners) asserts the
	// acceptance criterion: durability costs at most 5% of makespan when
	// nobody suspends.
	if os.Getenv(strictEnv) == "1" && rep.StoreOverheadRatio > 1.05 {
		log.Fatalf("FAIL (strict): store overhead %.3fx baseline > 1.05x", rep.StoreOverheadRatio)
	}
}
