// Command overloadbench runs the overload-protection scenario (closed-loop
// deadline streams at capacity and at twice capacity with bounded-wait
// admission and feasibility shedding armed, then a well-behaved tenant
// sharing the scheduler with an abusive deadline spammer under per-tenant
// circuit breakers) and emits both a human-readable table and the
// machine-readable BENCH_overload.json artifact used to track the overload
// trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS-2, clamped to [2,16])")
	streams := flag.Int("streams", 0, "closed-loop submitters at single capacity; overload doubles it (0 = workers)")
	window := flag.Int("window", 0, "in-flight jobs per submitter (0 = 4)")
	n := flag.Int("n", 0, "iterations per job (0 = 2048)")
	iterNs := flag.Float64("iterns", 0, "target ns per iteration (0 = 150)")
	duration := flag.Duration("duration", 0, "measurement window per phase (0 = 500ms)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	maxWait := flag.Duration("max-wait", 0, "admission slot wait bound (0 = 10ms)")
	deadline := flag.Duration("deadline", 0, "well-behaved streams' per-job deadline budget (0 = 50ms)")
	breakerBurn := flag.Float64("breaker-burn", 0, "breaker SLO burn-rate limit for the isolation phase (0 = 2.0)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown (0 = 100ms)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_overload.json", "write the machine-readable report here ('' = skip)")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.OverloadOptions{
		Workers:         *workers,
		Streams:         *streams,
		Window:          *window,
		N:               *n,
		IterNs:          *iterNs,
		Duration:        *duration,
		QueueDepth:      *queue,
		MaxWait:         *maxWait,
		Deadline:        *deadline,
		BreakerBurnRate: *breakerBurn,
		BreakerCooldown: *breakerCooldown,
	}
	start := time.Now()
	rep, err := bench.RunOverload(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteOverload(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteOverloadJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
