// Command pipebench runs the pipeline scenario (concurrent fan-out/fan-in
// stage graphs submitted as one dependency DAG versus the client awaiting
// each stage) and emits both a human-readable table and the machine-readable
// BENCH_pipeline.json artifact used to track the perf trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "total worker count (0 = GOMAXPROCS capped at 16)")
	shards := flag.Int("shards", 0, "shard count (0 = topology-derived)")
	chains := flag.Int("chains", 0, "concurrent pipelines (0 = 2x workers)")
	stages := flag.Int("stages", 0, "fan-out stages per pipeline (0 = 3)")
	fanOut := flag.Int("fanout", 0, "parallel jobs per fan-out stage (0 = 3)")
	n := flag.Int("n", 0, "iterations per stage job (0 = 2048)")
	iterNs := flag.Float64("iterns", 0, "target ns per iteration of the spin stages (0 = 150)")
	rounds := flag.Int("rounds", 0, "pipeline repetitions per chain (0 = 4)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_pipeline.json", "write the machine-readable report here ('' = skip)")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.PipelineOptions{
		Workers: *workers,
		Shards:  *shards,
		Chains:  *chains,
		Stages:  *stages,
		FanOut:  *fanOut,
		N:       *n,
		IterNs:  *iterNs,
		Rounds:  *rounds,
	}
	start := time.Now()
	rep, err := bench.RunPipelineComparison(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WritePipeline(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WritePipelineJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
