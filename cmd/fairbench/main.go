// Command fairbench runs the weighted-fair scheduling comparison (two
// tenants at unequal weights saturating one scheduler, with a sparse
// high-priority deadline stream, under the WFQ+preemption policy and under
// the FIFO baseline) and emits both a human-readable table and the
// machine-readable BENCH_fairshare.json artifact used to track the fairness
// trajectory across PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS capped at 16)")
	weightA := flag.Int("weight-a", 0, "heavy tenant's weight (0 = 3)")
	weightB := flag.Int("weight-b", 0, "light tenant's weight (0 = 1)")
	streams := flag.Int("streams", 0, "closed-loop submitters per tenant (0 = 2x workers)")
	n := flag.Int("n", 0, "iterations per job (0 = 2048)")
	iterNs := flag.Float64("iterns", 0, "target ns per iteration (0 = 150)")
	duration := flag.Duration("duration", 0, "measurement window (0 = 600ms)")
	hpEvery := flag.Duration("hp-every", 0, "high-priority job injection period (0 = duration/25)")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_fairshare.json", "write the machine-readable report here ('' = skip)")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.FairShareOptions{
		Workers:       *workers,
		WeightA:       *weightA,
		WeightB:       *weightB,
		Streams:       *streams,
		N:             *n,
		IterNs:        *iterNs,
		Duration:      *duration,
		HighPrioEvery: *hpEvery,
	}
	start := time.Now()
	rep, err := bench.RunFairShareComparison(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteFairShare(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteFairShareJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
