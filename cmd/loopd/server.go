package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"loopsched/internal/bench"
	"loopsched/internal/jobs"
)

// serverConfig configures the daemon's shared jobs runtime.
type serverConfig struct {
	// Workers is the shared team size; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxWorkersPerJob caps every job's sub-team; <= 0 means no cap.
	MaxWorkersPerJob int
	// QueueDepth bounds the admission queue (Submit blocks when full).
	QueueDepth int
	// DefaultGrain is the self-scheduling chunk size for jobs that don't set
	// grain; <= 0 selects the per-job heuristic.
	DefaultGrain int
	// DisableElastic freezes sub-teams at admission (rigid static blocks).
	DisableElastic bool
	// LockOSThread pins workers to OS threads (benchmark fidelity; off by
	// default for a serving daemon).
	LockOSThread bool
}

// server is the HTTP front-end over one shared multi-tenant jobs scheduler.
// Every /run request is a tenant: its jobs are molded onto sub-teams of the
// one persistent worker pool, so concurrent requests share the machine
// without full-barrier synchronisation between their loops.
type server struct {
	rt      *jobs.Scheduler
	started time.Time
	mux     *http.ServeMux
}

func newServer(cfg serverConfig) *server {
	s := &server{
		rt: jobs.New(jobs.Config{
			Workers:          cfg.Workers,
			MaxWorkersPerJob: cfg.MaxWorkersPerJob,
			QueueDepth:       cfg.QueueDepth,
			DefaultGrain:     cfg.DefaultGrain,
			DisableElastic:   cfg.DisableElastic,
			LockOSThread:     cfg.LockOSThread,
			Name:             "loopd",
		}),
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains and releases the shared team.
func (s *server) Close() { s.rt.Close() }

// Limits keeping one request from monopolising the daemon.
const (
	maxJobsPerRequest   = 1024
	maxIterationsPerJob = 1 << 28
)

// runJobResult is the outcome of one job of a /run request.
type runJobResult struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Result  float64 `json:"result"`
	Error   string  `json:"error,omitempty"`
}

// runResponse is the JSON body of a /run response.
type runResponse struct {
	Workload    string         `json:"workload"`
	Jobs        int            `json:"jobs"`
	Iterations  int            `json:"iterations_per_job"`
	WallSeconds float64        `json:"wall_seconds"`
	Results     []runJobResult `json:"results"`
}

// handleRun submits one or more jobs of a named workload (see
// bench.JobWorkloads) and waits for them. Query parameters: workload, n
// (iterations per job), jobs (concurrent jobs in this request), iterns
// (target ns/iteration for calibrated workloads), maxworkers, grain.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	workload := r.FormValue("workload")
	if workload == "" {
		workload = "spin"
	}
	n, err := intParam(r, "n", 4096, 1, maxIterationsPerJob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	nJobs, err := intParam(r, "jobs", 1, 1, maxJobsPerRequest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	iterNs, err := intParam(r, "iterns", 0, 0, 1<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxWorkers, err := intParam(r, "maxworkers", 0, 0, 1<<16)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grain, err := intParam(r, "grain", 0, 0, maxIterationsPerJob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.runJobs(w, workload, n, nJobs, float64(iterNs), maxWorkers, grain)
}

// runJobs performs the fan-out/fan-in of one /run request. The workload is
// built (and, for calibrated workloads, calibrated) exactly once and the
// request value reused for every job: request bodies are stateless, and the
// calibration cache in bench keeps repeat requests off the measurement path.
func (s *server) runJobs(w http.ResponseWriter, workload string, n, nJobs int, iterNs float64, maxWorkers, grain int) {
	params := bench.JobParams{N: n, IterNs: iterNs, MaxWorkers: maxWorkers, Grain: grain}
	req, err := bench.NewJobRequest(workload, params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := runResponse{Workload: workload, Jobs: nJobs, Iterations: n, Results: make([]runJobResult, nJobs)}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nJobs; i++ {
		j, err := s.rt.Submit(req)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		wg.Add(1)
		go func(i int, j *jobs.Job) {
			defer wg.Done()
			jobStart := time.Now()
			v, err := j.Wait()
			resp.Results[i].Seconds = time.Since(jobStart).Seconds()
			resp.Results[i].Workers = j.Workers()
			resp.Results[i].Result = v
			if err != nil {
				resp.Results[i].Error = err.Error()
			}
		}(i, j)
	}
	wg.Wait()
	resp.WallSeconds = time.Since(start).Seconds()
	writeJSON(w, resp)
}

// statsResponse is the JSON body of /stats.
type statsResponse struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	Workloads     []string   `json:"workloads"`
	Queue         jobs.Stats `json:"queue"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workloads:     bench.JobWorkloads(),
		Queue:         s.rt.Stats(),
	})
}

// handleMetrics renders the scheduler's aggregate state in the Prometheus
// text exposition format (hand-rolled: the daemon has no dependencies
// outside the standard library).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.rt.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// summary emits a conforming Prometheus summary: the quantile series
	// plus the <name>_sum and <name>_count series the exposition format
	// requires of the summary type. The quantiles are over the recent
	// window; sum and count are cumulative.
	summary := func(name, help string, p50, p95, p99 time.Duration, sum float64, count int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", p50}, {"0.95", p95}, {"0.99", p99}} {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, q.q, q.v.Seconds())
		}
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	}
	gauge("loopd_workers", "size of the shared worker team", float64(st.Workers))
	gauge("loopd_busy_workers", "workers currently executing a job share", float64(st.BusyWorkers))
	gauge("loopd_queue_depth", "jobs waiting for admission", float64(st.QueueDepth))
	gauge("loopd_jobs_running", "jobs currently admitted and running", float64(st.Running))
	counter("loopd_jobs_submitted_total", "jobs ever submitted", float64(st.Submitted))
	counter("loopd_jobs_completed_total", "jobs ever completed", float64(st.Completed))
	counter("loopd_jobs_canceled_total", "jobs canceled before start", float64(st.Canceled))
	counter("loopd_iterations_total", "loop iterations ever executed", float64(st.IterationsDone))
	counter("loopd_workers_grown_total", "workers that joined an already-running job (elastic growth)", float64(st.Grown))
	counter("loopd_workers_peeled_total", "workers that left a running job to serve waiting tenants (elastic shrink)", float64(st.Peeled))
	gauge("loopd_uptime_seconds", "seconds since the daemon started", time.Since(s.started).Seconds())
	summary("loopd_job_latency_seconds", "job latency from submission to completion",
		st.LatencyP50, st.LatencyP95, st.LatencyP99, st.LatencySumSeconds, st.Completed)
	summary("loopd_job_run_seconds", "job run time from admission to completion",
		st.RunP50, st.RunP95, st.RunP99, st.RunSumSeconds, st.Completed)
}

// intParam parses an integer query parameter with a default and inclusive
// bounds.
func intParam(r *http.Request, name string, def, min, max int) (int, error) {
	raw := r.FormValue(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("parameter %q = %d out of range [%d, %d]", name, v, min, max)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
