// Command loopd is a long-lived daemon serving parallel-loop jobs over HTTP:
// the multi-tenant front-end of the half-barrier loop scheduler. The worker
// set is partitioned into per-topology-domain shards, each with its own
// dispatcher; requests are admitted to the least-loaded shard, idle shards
// steal queued jobs and lend workers across shards, and every job completes
// through a per-job half-barrier join wave — the daemon never pays a full
// barrier, and no lock or queue is shared by all shards on the serving path.
//
// Endpoints:
//
//	POST /run?workload=spin&n=4096&jobs=8   submit and await jobs of a named
//	                                        workload (see GET /stats for names;
//	                                        &shard=i pins to one shard;
//	                                        &tenant=name charges a weighted
//	                                        fair-share account, &prio=p sets
//	                                        the strict admission priority and
//	                                        &deadline_ms=d the completion
//	                                        deadline used for EDF ordering
//	                                        and deadline-risk preemption)
//	POST /run?pipeline=spin:4096,sum:1024:4,sum:512
//	                                        submit a pipeline of named
//	                                        workload stages (workload[:n[:width]]
//	                                        each): the whole stage graph is
//	                                        submitted up front and every job of
//	                                        a stage starts only after every job
//	                                        of the previous stage completes
//	                                        (fan-out/fan-in dependencies inside
//	                                        the runtime, no client-side waits)
//	GET  /stats                             queue depth, blocked depth,
//	                                        occupancy and job latency
//	                                        percentiles as JSON, totals plus
//	                                        per-shard
//	GET  /metrics                           the same in Prometheus text format
//	                                        (loopd_* totals, loopd_shard_*
//	                                        shard-labelled; pipelines add
//	                                        loopd_blocked_depth and the
//	                                        released/depcanceled counters)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
)

// parseTenantWeights parses the -tenants flag: a comma-separated list of
// tenant weights, either named ("gold=3,bronze=1") or bare ("3,1", which
// registers tenants t1, t2, ... in order). Weights must be positive
// integers. An empty spec yields no registrations.
func parseTenantWeights(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, wstr, named := strings.Cut(part, "=")
		if !named {
			name, wstr = fmt.Sprintf("t%d", i+1), part
		} else if name == "" {
			return nil, fmt.Errorf("tenants: entry %q has an empty name", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(wstr))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenants: entry %q: weight must be a positive integer", part)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "total worker count across all shards (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "topology shards, each with its own dispatcher (0 = one per cache/socket group)")
	stealEvery := flag.Duration("steal-interval", 0, "idle shards' sibling re-scan period (0 = default 200µs)")
	noSteal := flag.Bool("no-steal", false, "disable cross-shard job stealing and worker lending")
	maxPerJob := flag.Int("max-workers-per-job", 0, "sub-team cap per job (0 = no cap)")
	queue := flag.Int("queue", 0, "total admission queue depth, split across shards (0 = default)")
	grain := flag.Int("grain", 0, "default self-scheduling chunk size in iterations (0 = heuristic)")
	elastic := flag.Bool("elastic", true, "let sub-teams grow/shrink after admission (chunked self-scheduling)")
	tenants := flag.String("tenants", "", "tenant fair-share weights: name=w,... or bare w1,w2,... (registers t1,t2,...)")
	fair := flag.Bool("fair", true, "weighted-fair admission with priorities, deadlines and preemption (false = plain FIFO)")
	lock := flag.Bool("lock-os-threads", false, "pin workers to OS threads")
	flag.Parse()

	weights, err := parseTenantWeights(*tenants)
	if err != nil {
		log.Fatal(err)
	}

	srv := newServer(serverConfig{
		Workers:          *workers,
		Shards:           *shards,
		StealInterval:    *stealEvery,
		DisableStealing:  *noSteal,
		MaxWorkersPerJob: *maxPerJob,
		QueueDepth:       *queue,
		DefaultGrain:     *grain,
		DisableElastic:   !*elastic,
		TenantWeights:    weights,
		DisableFair:      !*fair,
		LockOSThread:     *lock,
	})
	defer srv.Close()

	log.Printf("loopd: serving on %s with %d workers across %d shards (%s)",
		*addr, srv.rt.P(), srv.rt.Shards(), srv.rt.Topology())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
