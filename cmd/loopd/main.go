// Command loopd is a long-lived daemon serving parallel-loop jobs over HTTP:
// the multi-tenant front-end of the half-barrier loop scheduler. One
// persistent worker team is shared by every request; concurrent jobs are
// molded onto sub-teams and complete through per-job half-barrier join waves,
// so the daemon never pays a full barrier on the serving path.
//
// Endpoints:
//
//	POST /run?workload=spin&n=4096&jobs=8   submit and await jobs of a named
//	                                        workload (see GET /stats for names)
//	GET  /stats                             queue depth, occupancy and job
//	                                        latency percentiles as JSON
//	GET  /metrics                           the same in Prometheus text format
package main

import (
	"flag"
	"log"
	"net/http"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared team size (0 = GOMAXPROCS)")
	maxPerJob := flag.Int("max-workers-per-job", 0, "sub-team cap per job (0 = no cap)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default)")
	grain := flag.Int("grain", 0, "default self-scheduling chunk size in iterations (0 = heuristic)")
	elastic := flag.Bool("elastic", true, "let sub-teams grow/shrink after admission (chunked self-scheduling)")
	lock := flag.Bool("lock-os-threads", false, "pin workers to OS threads")
	flag.Parse()

	srv := newServer(serverConfig{
		Workers:          *workers,
		MaxWorkersPerJob: *maxPerJob,
		QueueDepth:       *queue,
		DefaultGrain:     *grain,
		DisableElastic:   !*elastic,
		LockOSThread:     *lock,
	})
	defer srv.Close()

	log.Printf("loopd: serving on %s with %d shared workers", *addr, srv.rt.P())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
