// Command loopd is a long-lived daemon serving parallel-loop jobs over HTTP:
// the multi-tenant front-end of the half-barrier loop scheduler. The worker
// set is partitioned into per-topology-domain shards, each with its own
// dispatcher; requests are admitted to the least-loaded shard, idle shards
// steal queued jobs and lend workers across shards, and every job completes
// through a per-job half-barrier join wave — the daemon never pays a full
// barrier, and no lock or queue is shared by all shards on the serving path.
//
// Endpoints:
//
//	POST /run?workload=spin&n=4096&jobs=8   submit and await jobs of a named
//	                                        workload (see GET /stats for names;
//	                                        &shard=i pins to one shard)
//	POST /run?pipeline=spin:4096,sum:1024:4,sum:512
//	                                        submit a pipeline of named
//	                                        workload stages (workload[:n[:width]]
//	                                        each): the whole stage graph is
//	                                        submitted up front and every job of
//	                                        a stage starts only after every job
//	                                        of the previous stage completes
//	                                        (fan-out/fan-in dependencies inside
//	                                        the runtime, no client-side waits)
//	GET  /stats                             queue depth, blocked depth,
//	                                        occupancy and job latency
//	                                        percentiles as JSON, totals plus
//	                                        per-shard
//	GET  /metrics                           the same in Prometheus text format
//	                                        (loopd_* totals, loopd_shard_*
//	                                        shard-labelled; pipelines add
//	                                        loopd_blocked_depth and the
//	                                        released/depcanceled counters)
package main

import (
	"flag"
	"log"
	"net/http"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "total worker count across all shards (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "topology shards, each with its own dispatcher (0 = one per cache/socket group)")
	stealEvery := flag.Duration("steal-interval", 0, "idle shards' sibling re-scan period (0 = default 200µs)")
	noSteal := flag.Bool("no-steal", false, "disable cross-shard job stealing and worker lending")
	maxPerJob := flag.Int("max-workers-per-job", 0, "sub-team cap per job (0 = no cap)")
	queue := flag.Int("queue", 0, "total admission queue depth, split across shards (0 = default)")
	grain := flag.Int("grain", 0, "default self-scheduling chunk size in iterations (0 = heuristic)")
	elastic := flag.Bool("elastic", true, "let sub-teams grow/shrink after admission (chunked self-scheduling)")
	lock := flag.Bool("lock-os-threads", false, "pin workers to OS threads")
	flag.Parse()

	srv := newServer(serverConfig{
		Workers:          *workers,
		Shards:           *shards,
		StealInterval:    *stealEvery,
		DisableStealing:  *noSteal,
		MaxWorkersPerJob: *maxPerJob,
		QueueDepth:       *queue,
		DefaultGrain:     *grain,
		DisableElastic:   !*elastic,
		LockOSThread:     *lock,
	})
	defer srv.Close()

	log.Printf("loopd: serving on %s with %d workers across %d shards (%s)",
		*addr, srv.rt.P(), srv.rt.Shards(), srv.rt.Topology())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
