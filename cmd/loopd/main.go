// Command loopd is a long-lived daemon serving parallel-loop jobs over HTTP:
// the multi-tenant front-end of the half-barrier loop scheduler. The worker
// set is partitioned into per-topology-domain shards, each with its own
// dispatcher; requests are admitted to the least-loaded shard, idle shards
// steal queued jobs and lend workers across shards, and every job completes
// through a per-job half-barrier join wave — the daemon never pays a full
// barrier, and no lock or queue is shared by all shards on the serving path.
//
// Endpoints:
//
//	POST /run?workload=spin&n=4096&jobs=8   submit and await jobs of a named
//	                                        workload (see GET /stats for names;
//	                                        &shard=i pins to one shard;
//	                                        &tenant=name charges a weighted
//	                                        fair-share account, &prio=p sets
//	                                        the strict admission priority and
//	                                        &deadline_ms=d the completion
//	                                        deadline used for EDF ordering
//	                                        and deadline-risk preemption;
//	                                        &nowait=1 fails fast with 503 +
//	                                        Retry-After instead of blocking
//	                                        when the admission queue is full)
//	POST /run?pipeline=spin:4096,sum:1024:4,sum:512
//	                                        submit a pipeline of named
//	                                        workload stages (workload[:n[:width]]
//	                                        each): the whole stage graph is
//	                                        submitted up front and every job of
//	                                        a stage starts only after every job
//	                                        of the previous stage completes
//	                                        (fan-out/fan-in dependencies inside
//	                                        the runtime, no client-side waits)
//	GET  /stats                             queue depth, blocked depth,
//	                                        occupancy, job latency percentiles,
//	                                        per-tenant SLO windows, Go-runtime
//	                                        health and tracer accounting as
//	                                        JSON, totals plus per-shard; every
//	                                        scrape carries a monotonic
//	                                        snapshot_seq
//	GET  /metrics                           the same in Prometheus text format
//	                                        (loopd_* totals, loopd_shard_*
//	                                        shard-labelled, loopd_tenant_* and
//	                                        loopd_slo_* tenant-labelled,
//	                                        loopd_build_info, loopd_trace_*)
//	GET  /events                            live lifecycle event feed as
//	                                        server-sent events (&tenant= and
//	                                        &job= filter; &buffer= sizes the
//	                                        per-subscriber buffer — a slow
//	                                        consumer drops events, counted,
//	                                        never blocking the runtime)
//	GET  /trace/{job}                       a finished job's span tree as
//	                                        OTLP-compatible JSON (job ids come
//	                                        from /run responses and /events)
//	POST /jobs/{job}/suspend                park an in-flight job at its next
//	                                        chunk-wave boundary with progress
//	                                        checkpointed (needs tracing; with
//	                                        -checkpoint-dir the snapshot is
//	                                        durable and survives restarts)
//	POST /jobs/{job}/resume                 re-admit a suspended job from its
//	                                        checkpointed cursor watermark,
//	                                        same job id, one continuous trace
//	GET  /debug/pprof/                      Go profiling handlers (-debug only)
package main

import (
	"flag"
	"log"
	"net/http"

	"loopsched/internal/loopd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "total worker count across all shards (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "topology shards, each with its own dispatcher (0 = one per cache/socket group)")
	stealEvery := flag.Duration("steal-interval", 0, "idle shards' sibling re-scan period (0 = default 200µs)")
	noSteal := flag.Bool("no-steal", false, "disable cross-shard job stealing and worker lending")
	maxPerJob := flag.Int("max-workers-per-job", 0, "sub-team cap per job (0 = no cap)")
	queue := flag.Int("queue", 0, "total admission queue depth, split across shards (0 = default)")
	grain := flag.Int("grain", 0, "default self-scheduling chunk size in iterations (0 = heuristic)")
	elastic := flag.Bool("elastic", true, "let sub-teams grow/shrink after admission (chunked self-scheduling)")
	tenants := flag.String("tenants", "", "tenant fair-share weights: name=w,... or bare w1,w2,... (registers t1,t2,...)")
	fair := flag.Bool("fair", true, "weighted-fair admission with priorities, deadlines and preemption (false = plain FIFO)")
	lock := flag.Bool("lock-os-threads", false, "pin workers to OS threads")
	traceOn := flag.Bool("trace", true, "lifecycle tracing: job ids in /run responses, /events stream, /trace/{job} span trees")
	traceBuffer := flag.Int("trace-buffer", 4096, "default per-subscriber /events buffer (slow subscribers drop, never block)")
	traceCap := flag.Int("trace-capacity", 0, "finished job traces retained for /trace/{job} (0 = default 1024)")
	sloTarget := flag.Float64("slo-target", 0, "per-tenant deadline-hit objective for burn rates (0 = default 0.99)")
	maxWait := flag.Duration("max-wait", 0, "bound on blocking for an admission queue slot before rejecting with 503 + Retry-After (0 = block indefinitely)")
	shed := flag.Bool("shed", false, "reject deadline jobs whose deadline cannot be met at the measured service rate (503 + Retry-After) instead of admitting them to miss")
	breakerBurn := flag.Float64("breaker-burn", 0, "per-tenant circuit breaker SLO burn-rate limit: at/above it a queue-crowding tenant is shed with 429 + Retry-After (0 = breakers off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker sheds before probing for recovery (0 = default 250ms)")
	debugHandlers := flag.Bool("debug", false, "serve the net/http/pprof handlers under /debug/pprof/")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for the checkpoint WAL: enables POST /jobs/{job}/suspend|resume durability and crash recovery of unfinished jobs at startup (forces -trace)")
	eventsKeepalive := flag.Duration("events-keepalive", 0, "idle heartbeat period of the /events SSE stream (0 = default 15s)")
	flag.Parse()

	weights, err := loopd.ParseTenantWeights(*tenants)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := loopd.New(loopd.Config{
		Workers:          *workers,
		Shards:           *shards,
		StealInterval:    *stealEvery,
		DisableStealing:  *noSteal,
		MaxWorkersPerJob: *maxPerJob,
		QueueDepth:       *queue,
		DefaultGrain:     *grain,
		DisableElastic:   !*elastic,
		TenantWeights:    weights,
		DisableFair:      !*fair,
		LockOSThread:     *lock,
		Trace:            *traceOn,
		TraceBuffer:      *traceBuffer,
		TraceCapacity:    *traceCap,
		SLOTarget:        *sloTarget,
		MaxWait:          *maxWait,
		ShedInfeasible:   *shed,
		BreakerBurnRate:  *breakerBurn,
		BreakerCooldown:  *breakerCooldown,
		Debug:            *debugHandlers,
		CheckpointDir:    *checkpointDir,
		EventsKeepalive:  *eventsKeepalive,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	rt := srv.Runtime()
	log.Printf("loopd: serving on %s with %d workers across %d shards (%s)",
		*addr, rt.P(), rt.Shards(), rt.Topology())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
