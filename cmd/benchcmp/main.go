// Command benchcmp compares two BENCH_*.json reports (base vs head of a PR)
// metric by metric against a regression threshold and renders the result as
// a markdown table, the shape GitHub renders when the output is appended to
// $GITHUB_STEP_SUMMARY.
//
//	benchcmp -base BENCH_shardburst.base.json -head BENCH_shardburst.json \
//	    -metric sharded.jobs_per_second:higher \
//	    -metric sharded.latency_p95_seconds:lower \
//	    -threshold 0.25 -fail
//
// Each -metric is a dotted JSON path plus a direction (higher or lower is
// better), optionally suffixed :trace to mark a tracing-only metric
// (e.g. "scenarios.0.on_jobs_per_second:higher:trace"): one that only moves
// when lifecycle tracing is enabled, so a degradation there is a tracing-cost
// regression, not a baseline slowdown. The two classes are flagged separately
// in the table and gated independently — -fail exits 1 on baseline
// regressions, -fail-trace exits 1 on tracing-only ones. -fail is the mode
// the comparison logic is verified in (a synthetic 2x slowdown must fail;
// see internal/bench/compare_test.go). Without either flag, regressions are
// reported but the exit status stays 0: the report-only mode used on shared
// CI runners, whose timing noise would make a hard gate flaky. A metric
// missing on either side (e.g. a base commit that predates the benchmark) is
// reported and never counted as a regression; a whole report file missing on
// either side — the first trajectory run after a new BENCH_*.json is
// introduced — is handled the same way, not treated as an error.
//
// # Manifest mode
//
// With -manifest, benchcmp drives the whole benchmark fleet declared in
// internal/bench/manifest.json instead of one file pair, so CI carries one
// driver invocation per role instead of a YAML block per bench:
//
//	benchcmp -manifest internal/bench/manifest.json -run -suffix .head
//	benchcmp -manifest internal/bench/manifest.json -run -suffix .base -dir ../base
//	benchcmp -manifest internal/bench/manifest.json -run            # trajectory names
//	benchcmp -manifest internal/bench/manifest.json -compare >> "$GITHUB_STEP_SUMMARY"
//	benchcmp -manifest internal/bench/manifest.json -list-outs      # canonical names
//
// -run executes every entry's command (whitespace-split, no shell; {out}
// replaced by the report path, always written under the invoking directory)
// with -suffix spliced into the report name before the extension. -dir runs
// the commands in another checkout — the PR-base worktree — skipping
// entries whose dir does not exist there (a base commit predating the
// bench), while still using the head checkout's manifest. -compare renders
// one table per entry (base vs head suffixes) and honours -fail/-fail-trace
// across all of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"loopsched/internal/bench"
)

// metricFlags collects repeated -metric flags.
type metricFlags []bench.MetricSpec

func (m *metricFlags) String() string { return fmt.Sprint(*m) }

func (m *metricFlags) Set(s string) error {
	spec, err := bench.ParseMetricSpec(s)
	if err != nil {
		return err
	}
	*m = append(*m, spec)
	return nil
}

func main() {
	basePath := flag.String("base", "", "base report JSON (required)")
	headPath := flag.String("head", "", "head report JSON (required)")
	title := flag.String("title", "", "table title (default: the head file name)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional degradation per metric (0.25 = 25%)")
	failOnRegression := flag.Bool("fail", false, "exit 1 when any baseline metric degrades beyond the threshold")
	failOnTraceRegression := flag.Bool("fail-trace", false, "exit 1 when any :trace metric degrades beyond the threshold")
	list := flag.Bool("list", false, "list the head report's metric paths and exit")
	manifestPath := flag.String("manifest", "", "benchmark manifest JSON; enables -run/-compare/-list-outs fleet modes")
	runFleet := flag.Bool("run", false, "manifest mode: run every entry's bench command")
	compareFleet := flag.Bool("compare", false, "manifest mode: compare every entry's base vs head reports")
	listOuts := flag.Bool("list-outs", false, "manifest mode: print every entry's canonical report name")
	suffix := flag.String("suffix", "", "manifest -run: report-name suffix before .json (e.g. .head); empty = trajectory names")
	runDir := flag.String("dir", "", "manifest -run: directory to run bench commands in (e.g. the PR-base worktree); entries whose dir is absent there are skipped")
	baseSuffix := flag.String("base-suffix", ".base", "manifest -compare: base report suffix")
	headSuffix := flag.String("head-suffix", ".head", "manifest -compare: head report suffix")
	var metrics metricFlags
	flag.Var(&metrics, "metric", "metric to compare, as path:higher or path:lower, with optional :trace suffix (repeatable)")
	flag.Parse()

	if *manifestPath != "" {
		m, err := bench.LoadManifest(*manifestPath)
		if err != nil {
			fatal(err)
		}
		switch {
		case *listOuts:
			for i := range m.Entries {
				fmt.Println(m.Entries[i].OutFile(""))
			}
		case *runFleet:
			if err := runManifest(m, *suffix, *runDir); err != nil {
				fatal(err)
			}
		case *compareFleet:
			exit := compareManifest(m, *baseSuffix, *headSuffix, *failOnRegression, *failOnTraceRegression)
			os.Exit(exit)
		default:
			fatal(fmt.Errorf("benchcmp: -manifest needs one of -run, -compare or -list-outs"))
		}
		return
	}

	if *headPath == "" || (!*list && *basePath == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *list {
		data, err := os.ReadFile(*headPath)
		if err != nil {
			fatal(err)
		}
		flat, err := bench.FlattenJSON(data)
		if err != nil {
			fatal(err)
		}
		for _, p := range bench.SortedPaths(flat) {
			fmt.Printf("%s = %g\n", p, flat[p])
		}
		return
	}
	if len(metrics) == 0 {
		fatal(fmt.Errorf("benchcmp: at least one -metric is required"))
	}
	cs, regressed, err := bench.CompareBenchFiles(*basePath, *headPath, metrics, *threshold)
	if err != nil {
		fatal(err)
	}
	if *title == "" {
		*title = *headPath
	}
	if err := bench.WriteComparison(os.Stdout, *title, cs, *threshold); err != nil {
		fatal(err)
	}
	exit := 0
	if regressed && *failOnRegression {
		fmt.Fprintln(os.Stderr, "benchcmp: baseline regression beyond threshold")
		exit = 1
	}
	if bench.TraceRegressed(cs) && *failOnTraceRegression {
		fmt.Fprintln(os.Stderr, "benchcmp: tracing-only regression beyond threshold")
		exit = 1
	}
	os.Exit(exit)
}

// runManifest executes every entry's bench command. Reports always land in
// the invoking directory (as absolute paths), even when the commands run in
// another checkout via dir; entries whose probe dir is missing there are
// skipped with a note — that base commit predates the bench.
func runManifest(m *bench.Manifest, suffix, dir string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		probe := e.Dir
		if dir != "" {
			probe = filepath.Join(dir, e.Dir)
		}
		if _, err := os.Stat(probe); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: skipping %s: %s absent (bench not present in this checkout)\n", e.Name, probe)
			continue
		}
		out := filepath.Join(cwd, e.OutFile(suffix))
		argv := e.Command(out)
		fmt.Fprintf(os.Stderr, "benchcmp: running %s: %v\n", e.Name, argv)
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Dir = dir
		cmd.Stdout = os.Stderr // bench text output is progress, not the report
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("benchcmp: entry %s: %w", e.Name, err)
		}
	}
	return nil
}

// compareManifest renders one comparison table per entry and returns the
// process exit code under the fail flags. Missing report files (a bench new
// in this PR, or skipped on the base side) are reported by the comparison
// layer as missing, never as regressions.
func compareManifest(m *bench.Manifest, baseSuffix, headSuffix string, failBase, failTrace bool) int {
	exit := 0
	for i := range m.Entries {
		e := &m.Entries[i]
		specs, err := e.MetricSpecs()
		if err != nil {
			fatal(err)
		}
		threshold := m.EntryThreshold(e)
		cs, regressed, err := bench.CompareBenchFiles(e.OutFile(baseSuffix), e.OutFile(headSuffix), specs, threshold)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteComparison(os.Stdout, e.Title, cs, threshold); err != nil {
			fatal(err)
		}
		if regressed && failBase {
			fmt.Fprintf(os.Stderr, "benchcmp: %s: baseline regression beyond threshold\n", e.Name)
			exit = 1
		}
		if bench.TraceRegressed(cs) && failTrace {
			fmt.Fprintf(os.Stderr, "benchcmp: %s: tracing-only regression beyond threshold\n", e.Name)
			exit = 1
		}
	}
	return exit
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
