// Command benchcmp compares two BENCH_*.json reports (base vs head of a PR)
// metric by metric against a regression threshold and renders the result as
// a markdown table, the shape GitHub renders when the output is appended to
// $GITHUB_STEP_SUMMARY.
//
//	benchcmp -base BENCH_shardburst.base.json -head BENCH_shardburst.json \
//	    -metric sharded.jobs_per_second:higher \
//	    -metric sharded.latency_p95_seconds:lower \
//	    -threshold 0.25 -fail
//
// Each -metric is a dotted JSON path plus a direction (higher or lower is
// better), optionally suffixed :trace to mark a tracing-only metric
// (e.g. "scenarios.0.on_jobs_per_second:higher:trace"): one that only moves
// when lifecycle tracing is enabled, so a degradation there is a tracing-cost
// regression, not a baseline slowdown. The two classes are flagged separately
// in the table and gated independently — -fail exits 1 on baseline
// regressions, -fail-trace exits 1 on tracing-only ones. -fail is the mode
// the comparison logic is verified in (a synthetic 2x slowdown must fail;
// see internal/bench/compare_test.go). Without either flag, regressions are
// reported but the exit status stays 0: the report-only mode used on shared
// CI runners, whose timing noise would make a hard gate flaky. A metric
// missing on either side (e.g. a base commit that predates the benchmark) is
// reported and never counted as a regression; a whole report file missing on
// either side — the first trajectory run after a new BENCH_*.json is
// introduced — is handled the same way, not treated as an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"loopsched/internal/bench"
)

// metricFlags collects repeated -metric flags.
type metricFlags []bench.MetricSpec

func (m *metricFlags) String() string { return fmt.Sprint(*m) }

func (m *metricFlags) Set(s string) error {
	spec, err := bench.ParseMetricSpec(s)
	if err != nil {
		return err
	}
	*m = append(*m, spec)
	return nil
}

func main() {
	basePath := flag.String("base", "", "base report JSON (required)")
	headPath := flag.String("head", "", "head report JSON (required)")
	title := flag.String("title", "", "table title (default: the head file name)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional degradation per metric (0.25 = 25%)")
	failOnRegression := flag.Bool("fail", false, "exit 1 when any baseline metric degrades beyond the threshold")
	failOnTraceRegression := flag.Bool("fail-trace", false, "exit 1 when any :trace metric degrades beyond the threshold")
	list := flag.Bool("list", false, "list the head report's metric paths and exit")
	var metrics metricFlags
	flag.Var(&metrics, "metric", "metric to compare, as path:higher or path:lower, with optional :trace suffix (repeatable)")
	flag.Parse()

	if *headPath == "" || (!*list && *basePath == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *list {
		data, err := os.ReadFile(*headPath)
		if err != nil {
			fatal(err)
		}
		flat, err := bench.FlattenJSON(data)
		if err != nil {
			fatal(err)
		}
		for _, p := range bench.SortedPaths(flat) {
			fmt.Printf("%s = %g\n", p, flat[p])
		}
		return
	}
	if len(metrics) == 0 {
		fatal(fmt.Errorf("benchcmp: at least one -metric is required"))
	}
	cs, regressed, err := bench.CompareBenchFiles(*basePath, *headPath, metrics, *threshold)
	if err != nil {
		fatal(err)
	}
	if *title == "" {
		*title = *headPath
	}
	if err := bench.WriteComparison(os.Stdout, *title, cs, *threshold); err != nil {
		fatal(err)
	}
	exit := 0
	if regressed && *failOnRegression {
		fmt.Fprintln(os.Stderr, "benchcmp: baseline regression beyond threshold")
		exit = 1
	}
	if bench.TraceRegressed(cs) && *failOnTraceRegression {
		fmt.Fprintln(os.Stderr, "benchcmp: tracing-only regression beyond threshold")
		exit = 1
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
