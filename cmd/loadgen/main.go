// Command loadgen drives a loopd daemon with trace-shaped traffic: a
// deterministic load generator for capacity tests, regression benches and
// overload drills.
//
// Traffic comes from one of two sources: a synthesized trace (-profile and
// -seed; diurnal curves, flash crowds, heavy-tailed job sizes, adversarial
// deadline-spamming tenants, mixed pipeline+scalar traffic — the same
// distributions the invariant harness draws from) or a recorded trace file
// (-replay). Either way the op stream is a pure function of its source: the
// same seed or file always submits the same requests, so a run reproduces.
//
// The target is a live daemon (-url) or an in-process one (-selfserve),
// which serves the exact production handler over a loopback listener — no
// separate process, same code path as cmd/loopd.
//
// Usage:
//
//	loadgen -selfserve -profile mixed -seed 1 -ops 400        # synthesize and run
//	loadgen -profile adversarial -record trace.jsonl          # record only
//	loadgen -url http://host:8080 -replay trace.jsonl -json BENCH_traceload.json
//
// The report (per-tenant and total goodput, latency quantiles, shed ratios)
// prints as text and, with -json, lands in a benchcmp-comparable file.
// Acceptance gates for CI: -max-transport-errors and -min-goodput, or
// TRACELOAD_STRICT=1 to require zero transport and protocol errors and
// positive goodput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"loopsched/internal/loadgen"
	"loopsched/internal/loopd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	url := flag.String("url", "", "target daemon base URL (e.g. http://127.0.0.1:8080)")
	selfserve := flag.Bool("selfserve", false, "serve an in-process loopd on a loopback listener instead of -url")
	workers := flag.Int("workers", 0, "selfserve worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "selfserve admission queue depth (0 = default)")
	maxWait := flag.Duration("max-wait", 0, "selfserve bound on blocking for a queue slot (0 = block)")
	shedInfeasible := flag.Bool("shed", false, "selfserve: shed infeasible-deadline jobs")
	breakerBurn := flag.Float64("breaker-burn", 0, "selfserve per-tenant breaker burn-rate limit (0 = off)")

	seed := flag.Int64("seed", 1, "synthesis seed: the op stream is a pure function of it")
	profile := flag.String("profile", "mixed", fmt.Sprintf("traffic profile %v", loadgen.Profiles()))
	ops := flag.Int("ops", 0, "synthesized request count (0 = default 256)")
	durationMs := flag.Float64("duration-ms", 0, "synthesized trace span in trace-time ms (0 = default 10000)")
	tenants := flag.Int("tenants", 0, "synthesized tenant count (0 = default 4)")

	record := flag.String("record", "", "write the trace to this file (with no target: record only and exit)")
	replay := flag.String("replay", "", "replay this trace file instead of synthesizing")

	mode := flag.String("mode", "open", "arrival control: open (fire at trace time) or closed (one outstanding per tenant)")
	speed := flag.Float64("speed", 1, "trace-time speedup: 2 replays twice as fast")
	inflight := flag.Int("inflight", 0, "open-mode cap on concurrent requests (0 = default 256)")
	timeout := flag.Duration("timeout", 0, "overall replay budget (0 = none)")

	jsonOut := flag.String("json", "", "write the report as JSON to this file (benchcmp-comparable)")
	maxTransport := flag.Int("max-transport-errors", -1, "fail if transport errors exceed this (-1 = no gate)")
	minGoodput := flag.Float64("min-goodput", 0, "fail if total goodput (RPS) is below this (0 = no gate)")
	flag.Parse()

	var tr loadgen.Trace
	var err error
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replaying %s: %d ops over %.0fms (profile %q, seed %d)",
			*replay, len(tr.Ops), tr.DurationMs(), tr.Meta.Profile, tr.Meta.Seed)
	} else {
		tr, err = loadgen.Synthesize(loadgen.SynthConfig{
			Seed: *seed, Profile: *profile, Ops: *ops,
			DurationMs: *durationMs, Tenants: *tenants,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("synthesized %d ops over %.0fms (profile %q, seed %d)",
			len(tr.Ops), tr.DurationMs(), tr.Meta.Profile, tr.Meta.Seed)
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := loadgen.WriteTrace(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %d ops to %s", len(tr.Ops), *record)
		if *url == "" && !*selfserve {
			return
		}
	}

	base := *url
	if *selfserve {
		if base != "" {
			log.Fatal("-selfserve and -url are mutually exclusive")
		}
		srv, err := loopd.New(loopd.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			MaxWait:         *maxWait,
			ShedInfeasible:  *shedInfeasible,
			BreakerBurnRate: *breakerBurn,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		rt := srv.Runtime()
		log.Printf("selfserve on %s: %d workers across %d shards", base, rt.P(), rt.Shards())
	}
	if base == "" {
		log.Fatal("no target: pass -url or -selfserve (or -record alone to record)")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := loadgen.Run(ctx, tr, loadgen.RunConfig{
		BaseURL: base, Mode: *mode, Speed: *speed, MaxInflight: *inflight,
	})
	if err != nil {
		log.Fatal(err)
	}

	printReport(rep)
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *jsonOut)
	}

	strict := os.Getenv("TRACELOAD_STRICT") == "1"
	fail := false
	if *maxTransport >= 0 && rep.Total.TransportErrors > *maxTransport {
		log.Printf("FAIL: %d transport errors > limit %d", rep.Total.TransportErrors, *maxTransport)
		fail = true
	}
	if *minGoodput > 0 && rep.Total.GoodputRPS < *minGoodput {
		log.Printf("FAIL: goodput %.1f rps < limit %.1f", rep.Total.GoodputRPS, *minGoodput)
		fail = true
	}
	if strict {
		if rep.Total.TransportErrors > 0 {
			log.Printf("FAIL (strict): %d transport errors", rep.Total.TransportErrors)
			fail = true
		}
		if rep.Total.ProtocolErrors > 0 {
			log.Printf("FAIL (strict): %d protocol errors (non-overload rejections)", rep.Total.ProtocolErrors)
			fail = true
		}
		if rep.Total.OK == 0 {
			log.Print("FAIL (strict): zero requests completed")
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

func printReport(rep *loadgen.Report) {
	fmt.Printf("%-12s %6s %6s %6s %6s %6s  %9s %7s %9s %9s %9s\n",
		"tenant", "ops", "ok", "shed", "proto", "xport", "good rps", "shed%", "p50 ms", "p95 ms", "p99 ms")
	row := func(name string, t loadgen.TenantReport) {
		fmt.Printf("%-12s %6d %6d %6d %6d %6d  %9.1f %6.1f%% %9.2f %9.2f %9.2f\n",
			name, t.Ops, t.OK, t.Shed, t.ProtocolErrors, t.TransportErrors,
			t.GoodputRPS, 100*t.ShedRatio, t.LatencyP50Ms, t.LatencyP95Ms, t.LatencyP99Ms)
	}
	for _, name := range rep.TenantNames() {
		row(name, rep.Tenants[name])
	}
	row("TOTAL", rep.Total)
	fmt.Printf("%d ops in %.2fs (%s mode, %gx speed)\n", rep.Ops, rep.WallSeconds, rep.Mode, rep.Speed)
}
