// Command linreg regenerates Figure 3 of the paper: the parallel efficiency
// of the Phoenix++-style linear-regression map-reduce workload under the
// baseline Cilk-style runtime (panel a) and the OpenMP-style runtimes
// (panel b), compared against the fine-grain runtime with its reduction
// merged into the join half-barrier.
//
// Usage:
//
//	go run ./cmd/linreg [-panel a|b|both] [-points N] [-reps N]
//	                    [-threads 1,2,4,...] [-chunk N] [-medium] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"loopsched/internal/bench"
	"loopsched/internal/linreg"
)

func main() {
	var (
		panel   = flag.String("panel", "both", "which panel to run: a (Cilk), b (OpenMP) or both")
		points  = flag.Int("points", 4<<20, "number of (x,y) samples")
		medium  = flag.Bool("medium", false, "use the Phoenix++ 'medium' input size (~26M points), overriding -points")
		reps    = flag.Int("reps", 3, "timed repetitions (minimum kept)")
		threads = flag.String("threads", "", "comma-separated thread counts (default: 1,2,4,... up to the machine)")
		chunk   = flag.Int("chunk", 32768, "points per map task (Phoenix++-style chunking; -1 = a single loop over the whole dataset)")
		verify  = flag.Bool("verify", false, "check every runtime against the sequential oracle and exit")
	)
	flag.Parse()

	if *verify {
		for _, name := range []string{"fine-grain-tree", "openmp-static", "openmp-dynamic", "cilk", "hybrid"} {
			rel, err := bench.VerifyLinreg(name, 1<<18)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-20s max relative error vs sequential = %.3g\n", name, rel)
		}
		return
	}

	n := *points
	if *medium {
		n = linreg.PaperMediumPoints
	}
	counts := parseInts(*threads)

	fmt.Printf("Reproducing Figure 3 (GOMAXPROCS=%d, NumCPU=%d, %d points)\n\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), n)

	if *panel == "a" || *panel == "both" {
		res, err := bench.RunLinreg(bench.LinregOptions{
			Points: n, Reps: *reps, ThreadCounts: counts, ChunkPoints: *chunk,
			Baseline: "cilk", FineGrain: "fine-grain-tree",
		})
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteLinreg(os.Stdout, res, "a"); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *panel == "b" || *panel == "both" {
		res, err := bench.RunLinreg(bench.LinregOptions{
			Points: n, Reps: *reps, ThreadCounts: counts, ChunkPoints: *chunk,
			Baseline: "openmp-static", FineGrain: "fine-grain-tree",
		})
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteLinreg(os.Stdout, res, "b"); err != nil {
			fatal(err)
		}
		// The paper's panel (b) also plots OpenMP dynamic; report it as an
		// extra baseline series.
		res2, err := bench.RunLinreg(bench.LinregOptions{
			Points: n, Reps: *reps, ThreadCounts: counts, ChunkPoints: *chunk,
			Baseline: "openmp-dynamic", FineGrain: "fine-grain-tree",
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := bench.WriteLinreg(os.Stdout, res2, "b (dynamic baseline)"); err != nil {
			fatal(err)
		}
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("invalid thread count %q", part))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "linreg:", err)
	os.Exit(1)
}
