// Command mpdata regenerates Figure 2 of the paper: the speedup of the
// MPDATA advection solver on the 5568-point / 16399-edge unstructured grid
// under the fine-grain scheduler and the OpenMP-style baseline (left panel),
// and the relative speedup of the fine-grain scheduler over the baseline
// (right panel).
//
// Usage:
//
//	go run ./cmd/mpdata [-steps N] [-reps N] [-threads 1,2,4,...]
//	                    [-schedulers a,b] [-corrective N] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"loopsched/internal/bench"
)

func main() {
	var (
		steps      = flag.Int("steps", 50, "MPDATA time steps per measurement")
		reps       = flag.Int("reps", 3, "timed repetitions (minimum kept)")
		threads    = flag.String("threads", "", "comma-separated thread counts (default: 1,2,4,... up to the machine)")
		schedulers = flag.String("schedulers", "fine-grain-tree,openmp-static", "comma-separated scheduler names for the left panel")
		corrective = flag.Int("corrective", 1, "number of MPDATA corrective passes")
		verify     = flag.Bool("verify", false, "check the parallel solution against the sequential oracle and exit")
	)
	flag.Parse()

	if *verify {
		for _, name := range splitList(*schedulers) {
			maxDiff, massErr, err := bench.VerifyMPDATA(name, 10)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-20s max |Δψ| vs sequential = %.3g, relative mass error = %.3g\n", name, maxDiff, massErr)
		}
		return
	}

	opt := bench.MPDATAOptions{
		Steps:        *steps,
		Reps:         *reps,
		Corrective:   *corrective,
		ThreadCounts: parseInts(*threads),
		Schedulers:   splitList(*schedulers),
	}

	fmt.Printf("Reproducing Figure 2 (GOMAXPROCS=%d, NumCPU=%d)\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	if d, err := bench.LoopDuration("fine-grain-tree", 50); err == nil {
		fmt.Printf("average parallel-loop duration inside a time step: %v (fine-grain regime)\n\n", d)
	}

	res, err := bench.RunMPDATA(opt)
	if err != nil {
		fatal(err)
	}
	if err := bench.WriteMPDATA(os.Stdout, res); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("invalid thread count %q", part))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpdata:", err)
	os.Exit(1)
}
