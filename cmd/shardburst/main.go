// Command shardburst runs the sharded-pool throughput comparison (1 shard vs
// n shards over the same worker set, under a burst/skew tenant mix) and
// emits both a human-readable table and the machine-readable
// BENCH_shardburst.json artifact used to track the perf trajectory across
// PRs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"loopsched/internal/bench"
)

func main() {
	workers := flag.Int("workers", 0, "total worker count (0 = GOMAXPROCS capped at 16)")
	shards := flag.Int("shards", 0, "shard count of the sharded configuration (0 = min(4, workers))")
	tenants := flag.Int("tenants", 0, "concurrent submitters (0 = 4x workers)")
	jobs := flag.Int("jobs", 0, "jobs per tenant (0 = 30)")
	n := flag.Int("n", 0, "iterations per small job (0 = 256)")
	iterNs := flag.Float64("iterns", 0, "target ns per iteration of the big skewed jobs (0 = 200)")
	stealEvery := flag.Duration("steal-interval", 0, "idle shards' sibling re-scan period (0 = default)")
	noSteal := flag.Bool("no-steal", false, "disable cross-shard stealing in the sharded configuration")
	noLock := flag.Bool("no-lock", false, "do not pin workers to OS threads")
	jsonPath := flag.String("json", "BENCH_shardburst.json", "write the machine-readable report here ('' = skip)")
	flag.Parse()

	if *noLock {
		bench.LockThreads = false
	}
	opt := bench.ShardBurstOptions{
		Workers:         *workers,
		Shards:          *shards,
		Tenants:         *tenants,
		JobsPerTenant:   *jobs,
		N:               *n,
		IterNs:          *iterNs,
		StealInterval:   *stealEvery,
		DisableStealing: *noSteal,
	}
	start := time.Now()
	rep, err := bench.RunShardBurstComparison(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteShardBurst(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	if *jsonPath != "" {
		if err := bench.WriteShardBurstJSON(*jsonPath, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	fmt.Printf("total %s\n", bench.Elapsed(start))
}
