// Benchmarks regenerating the paper's evaluation with `go test -bench`.
//
// One benchmark family exists per table/figure:
//
//   - BenchmarkTable1_LoopLaunch — the scheduler-burden micro-benchmark
//     behind Table 1: the cost of dispatching one fine-grain parallel loop
//     under each scheduler. The full Amdahl fit (the d values of Table 1) is
//     produced by `go run ./cmd/burden`; the per-launch cost benchmarked
//     here is the quantity that fit estimates.
//   - BenchmarkTable1_Burden — the actual least-squares burden estimate,
//     reported as a custom metric (burden-us).
//   - BenchmarkFigure2_MPDATA — one MPDATA time step on the paper's grid
//     under the fine-grain and OpenMP-style schedulers (Figure 2).
//   - BenchmarkFigure3_Linreg — the linear-regression reduction under the
//     fine-grain, Cilk-style and OpenMP-style runtimes (Figure 3).
//   - BenchmarkAblation_* — the design-choice ablations (half vs. full
//     barrier, tree vs. centralized, tree fan-out, merged vs. separate
//     reduction).
//   - BenchmarkBarrier_* — raw synchronisation primitive costs.
package loopsched_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/bench"
	"loopsched/internal/core"
	"loopsched/internal/grid"
	"loopsched/internal/jobs"
	"loopsched/internal/linreg"
	"loopsched/internal/mpdata"
	"loopsched/internal/sched"
	"loopsched/internal/topology"
	"loopsched/internal/workload"
)

// table1LoopIters is the size of the fine-grain probe loop: ~256 iterations
// of ~100 ns is a ~25 µs loop, comparable to the burden of the heavier
// schedulers — exactly the regime Table 1 characterises.
const table1LoopIters = 256

func benchWorkers() int { return runtime.GOMAXPROCS(0) }

// BenchmarkTable1_LoopLaunch measures the wall-clock cost of one parallel
// loop launch (including its ~25 µs of work) under every scheduler of
// Table 1. The differences between schedulers are their burden.
func BenchmarkTable1_LoopLaunch(b *testing.B) {
	work := workload.Calibrate(100)
	body := func(w, begin, end int) { workload.Consume(work.Run(begin, end)) }
	for _, name := range bench.Table1Schedulers() {
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewScheduler(name, benchWorkers())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.For(table1LoopIters, body) // warm up the team
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.For(table1LoopIters, body)
			}
		})
	}
}

// BenchmarkTable1_Burden runs the granularity sweep and Amdahl fit for each
// Table 1 scheduler and reports the estimated burden as a custom metric.
// It is insensitive to b.N (the sweep is a fixed-size experiment), so run it
// with -benchtime=1x.
func BenchmarkTable1_Burden(b *testing.B) {
	opt := bench.BurdenOptions{
		Workers:    benchWorkers(),
		Iterations: 4096,
		MinTotal:   20 * time.Microsecond,
		MaxTotal:   5 * time.Millisecond,
		Points:     10,
		Reps:       3,
	}
	for _, name := range bench.Table1Schedulers() {
		b.Run(name, func(b *testing.B) {
			var last bench.BurdenResult
			for i := 0; i < b.N; i++ {
				res, err := bench.MeasureBurden(name, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.BurdenUs(), "burden-us")
			b.ReportMetric(last.Fit.EffectiveP, "effective-P")
		})
	}
}

// BenchmarkFigure2_MPDATA measures one MPDATA time step (4 fine-grain
// parallel loops) on the paper's 5568-point / 16399-edge grid.
func BenchmarkFigure2_MPDATA(b *testing.B) {
	g, err := grid.NewPaperGrid()
	if err != nil {
		b.Fatal(err)
	}
	base, err := mpdata.New(g, mpdata.Config{Corrective: 1})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, s sched.Scheduler) {
		solver := base.Clone()
		solver.Step(s) // warm up
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver.Step(s)
		}
		b.StopTimer()
		loops := float64(solver.LoopsPerStep())
		b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/loops, "us/loop")
	}
	b.Run("sequential", func(b *testing.B) { run(b, sched.NewSequential()) })
	for _, name := range []string{"fine-grain-tree", "openmp-static", "openmp-dynamic", "cilk", "hybrid"} {
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewScheduler(name, benchWorkers())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			run(b, s)
		})
	}
}

// BenchmarkFigure3_Linreg measures the linear-regression reduction (a single
// reducing parallel loop over the dataset) under each runtime.
func BenchmarkFigure3_Linreg(b *testing.B) {
	data := linreg.Generate(1 << 21)
	run := func(b *testing.B, s sched.Scheduler) {
		if _, err := data.Run(s); err != nil { // warm up + validity
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data.Points) * 2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := data.Run(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, sched.NewSequential()) })
	for _, name := range []string{"fine-grain-tree", "cilk", "openmp-static", "openmp-dynamic", "hybrid"} {
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewScheduler(name, benchWorkers())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			run(b, s)
		})
	}
}

// BenchmarkAblation_BarrierPattern isolates the paper's central design
// choice: half-barrier vs. full-barrier and tree vs. centralized, on an
// otherwise identical scheduler, running an empty fine-grain loop so the
// measurement is pure synchronisation.
func BenchmarkAblation_BarrierPattern(b *testing.B) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"tree-half", core.Config{Barrier: core.BarrierTree, Mode: core.ModeHalf}},
		{"tree-full", core.Config{Barrier: core.BarrierTree, Mode: core.ModeFull}},
		{"centralized-half", core.Config{Barrier: core.BarrierCentralized, Mode: core.ModeHalf}},
		{"centralized-full", core.Config{Barrier: core.BarrierCentralized, Mode: core.ModeFull}},
	}
	body := func(w, begin, end int) {}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg
			cfg.Workers = benchWorkers()
			s := core.New(cfg)
			defer s.Close()
			s.For(64, body)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.For(64, body)
			}
		})
	}
}

// BenchmarkAblation_TreeFanout sweeps the tree fan-out, the tuning knob the
// paper adjusts to the machine organisation.
func BenchmarkAblation_TreeFanout(b *testing.B) {
	body := func(w, begin, end int) {}
	for _, fan := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("fanout-%d", fan), func(b *testing.B) {
			s := core.New(core.Config{Workers: benchWorkers(), InnerFanout: fan, OuterFanout: fan})
			defer s.Close()
			s.For(64, body)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.For(64, body)
			}
		})
	}
}

// BenchmarkAblation_Reduction compares a reducing loop whose combines are
// merged into the join half-barrier (fine-grain) against the OpenMP-style
// separate reduction barrier and the Cilk-style per-task views — the paper's
// "two half-barriers vs. three full barriers" argument.
func BenchmarkAblation_Reduction(b *testing.B) {
	work := workload.Calibrate(100)
	body := func(w, begin, end int, acc float64) float64 {
		workload.Consume(work.Run(begin, end))
		return acc + float64(end-begin)
	}
	combine := func(a, b float64) float64 { return a + b }
	for _, name := range []string{"fine-grain-tree", "fine-grain-tree-full-barrier", "openmp-static", "cilk"} {
		b.Run(name, func(b *testing.B) {
			s, err := bench.NewScheduler(name, benchWorkers())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			_ = s.ForReduce(table1LoopIters, 0, combine, body)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.ForReduce(table1LoopIters, 0, combine, body)
			}
		})
	}
}

// BenchmarkMultitenant_Throughput measures aggregate job throughput when
// concurrent tenants share one persistent team through the jobs subsystem:
// each benchmark iteration has every tenant submit one ~100 µs parallel-loop
// job and wait for it.
func BenchmarkMultitenant_Throughput(b *testing.B) {
	work := workload.Calibrate(100)
	for _, tenants := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("tenants-%d", tenants), func(b *testing.B) {
			s := jobs.New(jobs.Config{Workers: benchWorkers()})
			defer s.Close()
			body := func(w, lo, hi int) { workload.Consume(work.Run(lo, hi)) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for t := 0; t < tenants; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						j, err := s.Submit(jobs.Request{N: 1024, Body: body})
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := j.Wait(); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.ReportMetric(float64(tenants)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkBarrier_Primitives measures one episode of each raw
// synchronisation primitive with all workers participating: the floor under
// every scheduler's burden.
func BenchmarkBarrier_Primitives(b *testing.B) {
	p := benchWorkers()
	if p < 2 {
		b.Skip("needs at least 2 workers")
	}
	topo := topology.Detect(p)

	// Use a fine-grain scheduler as the vehicle: an empty loop is exactly one
	// fork + one join episode of the underlying primitive.
	b.Run("half-barrier-pair/tree", func(b *testing.B) {
		s := core.New(core.Config{Workers: p, Barrier: core.BarrierTree, Mode: core.ModeHalf})
		defer s.Close()
		body := func(w, begin, end int) {}
		s.For(p, body)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.For(p, body)
		}
	})
	b.Run("full-barrier-pair/tree", func(b *testing.B) {
		s := core.New(core.Config{Workers: p, Barrier: core.BarrierTree, Mode: core.ModeFull})
		defer s.Close()
		body := func(w, begin, end int) {}
		s.For(p, body)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.For(p, body)
		}
	})

	_ = topo
	_ = barrier.NewCentralized(p) // ensure the package is linked even if the sub-benchmarks above are filtered out
}
