package loopsched

import (
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func testPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	cfg.DisableThreadLock = true
	if cfg.Workers <= 0 {
		p := runtime.GOMAXPROCS(0)
		if p > 8 {
			p = 8
		}
		cfg.Workers = p
	}
	pool := New(cfg)
	t.Cleanup(pool.Close)
	return pool
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Barrier: BarrierCentralized},
		{FullBarrier: true},
		{Workers: 1},
		{Workers: 3, GroupSize: 2, InnerFanout: 2, OuterFanout: 2},
	} {
		pool := testPool(t, cfg)
		n := 5000
		marks := make([]int32, n)
		pool.ForEach(n, func(i int) { atomic.AddInt32(&marks[i], 1) })
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("%v: index %d visited %d times", pool, i, m)
			}
		}
	}
}

func TestForAndForRange(t *testing.T) {
	pool := testPool(t, Config{})
	var covered atomic.Int64
	pool.For(1000, func(worker, low, high int) {
		if worker < 0 || worker >= pool.Workers() {
			t.Errorf("worker %d out of range", worker)
		}
		covered.Add(int64(high - low))
	})
	if covered.Load() != 1000 {
		t.Errorf("For covered %d", covered.Load())
	}
	covered.Store(0)
	pool.ForRange(777, func(low, high int) { covered.Add(int64(high - low)) })
	if covered.Load() != 777 {
		t.Errorf("ForRange covered %d", covered.Load())
	}
}

func TestReduceFloat64(t *testing.T) {
	pool := testPool(t, Config{})
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i % 97)
	}
	got := pool.ReduceFloat64(len(xs), 0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += xs[i]
			}
			return acc
		})
	want := 0.0
	for _, x := range xs {
		want += x
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestReduceVec(t *testing.T) {
	pool := testPool(t, Config{})
	n := 4321
	v := pool.ReduceVec(n, 2, func(w, lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			acc[0]++
			acc[1] += float64(i)
		}
	})
	if int(v[0]) != n || v[1] != float64(n)*float64(n-1)/2 {
		t.Errorf("ReduceVec = %v", v)
	}
}

func TestGenericReduceOrderedAppend(t *testing.T) {
	// The strongest ordering test: concatenating per-iteration slices must
	// reproduce 0..n-1 exactly, for every barrier/mode configuration.
	for _, cfg := range []Config{{}, {Barrier: BarrierCentralized}, {FullBarrier: true}, {Barrier: BarrierCentralized, FullBarrier: true}} {
		pool := testPool(t, cfg)
		n := 2000
		got := Reduce(pool, n, AppendOp[int](), func(w, lo, hi int, acc []int) []int {
			for i := lo; i < hi; i++ {
				acc = append(acc, i)
			}
			return acc
		})
		if len(got) != n {
			t.Fatalf("%v: got %d elements", pool, len(got))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("%v: ordered reduction violated iteration order", pool)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("%v: element %d = %d", pool, i, v)
			}
		}
	}
}

func TestGenericReduceSumAndMax(t *testing.T) {
	pool := testPool(t, Config{})
	n := 10000
	sum := Reduce(pool, n, SumOp[int64](), func(w, lo, hi int, acc int64) int64 {
		for i := lo; i < hi; i++ {
			acc += int64(i)
		}
		return acc
	})
	if sum != int64(n)*int64(n-1)/2 {
		t.Errorf("generic sum = %d", sum)
	}
	max := Reduce(pool, n, MaxOp[int](-1), func(w, lo, hi int, acc int) int {
		for i := lo; i < hi; i++ {
			v := (i * 37) % 1009
			if v > acc {
				acc = v
			}
		}
		return acc
	})
	want := 0
	for i := 0; i < n; i++ {
		if v := (i * 37) % 1009; v > want {
			want = v
		}
	}
	if max != want {
		t.Errorf("generic max = %d, want %d", max, want)
	}
	min := Reduce(pool, n, MinOp[int](1<<62), func(w, lo, hi int, acc int) int {
		for i := lo; i < hi; i++ {
			v := (i*37)%1009 + 3
			if v < acc {
				acc = v
			}
		}
		return acc
	})
	if min != 3 {
		t.Errorf("generic min = %d, want 3", min)
	}
}

func TestReducerHyperobjectStyle(t *testing.T) {
	pool := testPool(t, Config{})
	r := NewReducer(pool, SumOp[int64]())
	n := 5000
	r.ForCombine(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			r.Update(w, int64(i))
		}
	})
	if got := r.Value(); got != int64(n)*int64(n-1)/2 {
		t.Errorf("reducer value = %d", got)
	}
	// Reusable: a second loop starts from a clean state.
	r.ForCombine(10, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			r.Update(w, 1)
		}
	})
	if got := r.Value(); got != 10 {
		t.Errorf("second reduction = %d, want 10", got)
	}
	r.Set(0, 41)
	r.Update(0, 1)
	if r.View(0) != 42 {
		t.Errorf("View/Set/Update broken: %d", r.View(0))
	}
}

func TestPoolMetadata(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	if pool.Workers() != 2 {
		t.Errorf("Workers = %d", pool.Workers())
	}
	if pool.String() == "" {
		t.Errorf("empty String")
	}
	if pool.Scheduler() == nil || pool.Scheduler().Name() == "" {
		t.Errorf("Scheduler() not exposed")
	}
	// Close is idempotent (Cleanup will close again).
	pool.Close()
}

func TestEmptyLoops(t *testing.T) {
	pool := testPool(t, Config{})
	called := false
	pool.ForEach(0, func(i int) { called = true })
	pool.ForRange(-1, func(lo, hi int) { called = true })
	if called {
		t.Errorf("body invoked for an empty loop")
	}
	if got := Reduce(pool, 0, SumOp[int](), func(w, lo, hi int, acc int) int { return acc + 1 }); got != 0 {
		t.Errorf("empty generic reduce = %d", got)
	}
}

func TestSubmitAsyncMatchesSynchronous(t *testing.T) {
	pool := testPool(t, Config{})
	n := 8192
	sync := make([]float64, n)
	pool.ForEach(n, func(i int) { sync[i] = float64(i) * 1.5 })

	async := make([]float64, n)
	if err := pool.Submit(n, func(i int) { async[i] = float64(i) * 1.5 }).Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range sync {
		if math.Float64bits(async[i]) != math.Float64bits(sync[i]) {
			t.Fatalf("index %d: async %v != sync %v", i, async[i], sync[i])
		}
	}
}

func TestSubmitReduceResult(t *testing.T) {
	pool := testPool(t, Config{})
	n := 12345
	j := pool.SubmitReduce(n, 0, func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += float64(i)
			}
			return acc
		})
	got, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * float64(n-1) / 2; got != want {
		t.Errorf("async sum = %v, want %v", got, want)
	}
}

func TestSubmitOptsKnobs(t *testing.T) {
	pool := testPool(t, Config{})
	n := 4096
	var touched atomic.Int64
	j := pool.SubmitOpts(n, JobOptions{MaxWorkers: 2, Grain: 256, Label: "opts"}, func(i int) {
		touched.Add(1)
	})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if touched.Load() != int64(n) {
		t.Errorf("touched %d of %d iterations", touched.Load(), n)
	}
	if k := j.Workers(); k < 1 || k > 2 {
		t.Errorf("MaxWorkers=2 job peaked at %d workers", k)
	}
}

func TestSubmitReduceOptsCommutative(t *testing.T) {
	// A commutative reduction runs elastically (arrival-order folding); an
	// integer-valued sum must still be exact.
	pool := testPool(t, Config{})
	n := 23456
	j := pool.SubmitReduceOpts(n, JobOptions{Commutative: true, Grain: 512}, 0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += float64(i)
			}
			return acc
		})
	got, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * float64(n-1) / 2; got != want {
		t.Errorf("commutative async sum = %v, want %v", got, want)
	}
}

func TestAsyncRigidConfig(t *testing.T) {
	// AsyncRigid restores the static-block contract: each sub-worker sees
	// exactly one contiguous share.
	pool := testPool(t, Config{AsyncRigid: true})
	var mu sync.Mutex
	calls := map[int]int{}
	j := pool.SubmitFor(1000, func(w, lo, hi int) {
		mu.Lock()
		calls[w]++
		mu.Unlock()
	})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for w, c := range calls {
		if c != 1 {
			t.Errorf("rigid sub-worker %d called %d times, want 1", w, c)
		}
	}
}

func TestSubmitIsSafeFromManyGoroutines(t *testing.T) {
	pool := testPool(t, Config{})
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := pool.Submit(250, func(i int) { total.Add(1) }).Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 12*20*250 {
		t.Errorf("covered %d iterations, want %d", got, 12*20*250)
	}
}

func TestGroupFanOutFanIn(t *testing.T) {
	pool := testPool(t, Config{})
	g := pool.Group()
	outs := make([][]int, 6)
	for k := range outs {
		k := k
		n := 100 * (k + 1)
		outs[k] = make([]int, n)
		g.ForEach(n, func(i int) { outs[k][i] = i + k })
	}
	sum := g.Reduce(1000, 0, func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 { return acc + float64(hi-lo) })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for k, out := range outs {
		for i, v := range out {
			if v != i+k {
				t.Fatalf("job %d index %d = %d, want %d", k, i, v, i+k)
			}
		}
	}
	if v, err := sum.Result(); err != nil || v != 1000 {
		t.Errorf("group reduce = %v, %v", v, err)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	pool := New(Config{Workers: 2, DisableThreadLock: true})
	if err := pool.Submit(10, func(i int) {}).Wait(); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if err := pool.Submit(10, func(i int) {}).Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestCloseWithoutSubmitDoesNotCreateAsyncRuntime(t *testing.T) {
	pool := New(Config{Workers: 2, DisableThreadLock: true})
	pool.ForEach(10, func(i int) {})
	pool.Close() // must not hang or spawn the async team
}

func TestPropertyGenericReduceMatchesSerial(t *testing.T) {
	pool := testPool(t, Config{})
	f := func(vals []int32) bool {
		n := len(vals)
		got := Reduce(pool, n, SumOp[int64](), func(w, lo, hi int, acc int64) int64 {
			for i := lo; i < hi; i++ {
				acc += int64(vals[i])
			}
			return acc
		})
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAsyncShardedPool(t *testing.T) {
	// A sharded async runtime behind the public API: jobs route across
	// shards, pinned jobs land where asked, results stay exact, and the
	// merged stats reconcile with the per-shard ones.
	pool := testPool(t, Config{Workers: 4, AsyncShards: 2})
	if got := pool.AsyncShards(); got != 2 {
		t.Fatalf("AsyncShards = %d, want 2", got)
	}
	const jobs = 24
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 600 + g
			j := pool.SubmitReduceOpts(n, JobOptions{Commutative: true}, 0,
				func(a, b float64) float64 { return a + b },
				func(w, lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				})
			v, err := j.Result()
			if err != nil {
				t.Error(err)
				return
			}
			if want := float64(n) * float64(n-1) / 2; v != want {
				t.Errorf("job %d: sum = %v, want %v", g, v, want)
			}
		}(g)
	}
	wg.Wait()
	st := pool.AsyncStats()
	if len(st.Shards) != 2 {
		t.Fatalf("stats cover %d shards, want 2", len(st.Shards))
	}
	if st.Total.Completed != jobs {
		t.Errorf("total completed = %d, want %d", st.Total.Completed, jobs)
	}
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.Completed
	}
	if sum != st.Total.Completed {
		t.Errorf("per-shard completed sum %d != total %d", sum, st.Total.Completed)
	}
}

func TestPoolTenantAccountsThroughPublicAPI(t *testing.T) {
	// Pool.Tenant registrations made before the async runtime exists must
	// survive into it, and JobOptions.Tenant/Priority/Deadline must land in
	// the runtime's tenant accounting.
	pool := testPool(t, Config{Workers: 2})
	pool.Tenant("gold", 3) // before the lazy runtime is created
	var ran atomic.Int64
	j := pool.SubmitOpts(100, JobOptions{
		Tenant:   "gold",
		Priority: 5,
		Deadline: time.Now().Add(time.Minute),
	}, func(i int) { ran.Add(1) })
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 iterations", ran.Load())
	}
	if err := pool.Submit(50, func(i int) {}).Wait(); err != nil {
		t.Fatal(err)
	}
	pool.Tenant("silver", 2) // after creation: applied live
	st := pool.AsyncStats()
	gold := st.Total.Tenants["gold"]
	if gold.Weight != 3 || gold.Completed != 1 || gold.IterationsDone != 100 {
		t.Errorf("gold account = %+v, want weight 3, 1 completion, 100 iterations", gold)
	}
	if def := st.Total.Tenants["default"]; def.Completed != 1 {
		t.Errorf("default account = %+v, want the untagged job", def)
	}
}

func TestAsyncShardPinning(t *testing.T) {
	pool := testPool(t, Config{Workers: 4, AsyncShards: 2})
	// Pin to shard 2 (1-based): the job must be admitted there.
	j := pool.SubmitOpts(100, JobOptions{Shard: 2}, func(i int) {})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := pool.AsyncStats().Shards[1].Submitted; got != 1 {
		t.Errorf("shard 2 submitted = %d, want the pinned job", got)
	}
	// An out-of-range pin fails the job without running the body — negative
	// values included (they must not silently fall back to routing).
	for _, shard := range []int{99, -1} {
		bad := pool.SubmitOpts(10, JobOptions{Shard: shard}, func(i int) { t.Error("body ran") })
		if err := bad.Wait(); err == nil {
			t.Errorf("shard pin %d accepted", shard)
		}
	}
}

func TestAsyncObserversDoNotCreateRuntime(t *testing.T) {
	// Stats readers (metrics scrapers) must not instantiate worker teams as
	// a side effect of observing an idle pool.
	pool := testPool(t, Config{Workers: 2, AsyncShards: 2})
	if got := pool.AsyncShards(); got != 2 {
		t.Errorf("AsyncShards = %d, want 2 (resolved without creating the runtime)", got)
	}
	if st := pool.AsyncStats(); st.Total.Workers != 0 || st.Shards != nil {
		t.Errorf("AsyncStats on an unused pool = %+v, want the zero value", st)
	}
	pool.jobsMu.Lock()
	created := pool.jobsRT != nil
	pool.jobsMu.Unlock()
	if created {
		t.Error("observer calls instantiated the async runtime")
	}
}

func TestJobThenChain(t *testing.T) {
	pool := testPool(t, Config{Workers: 4})
	const n = 4096
	a := make([]float64, n)
	last := pool.Submit(n, func(i int) { a[i] = float64(i) }).
		Then(n, func(i int) { a[i] *= 2 }).
		ThenReduce(n, 0,
			func(x, y float64) float64 { return x + y },
			func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += a[i]
				}
				return acc
			})
	v, err := last.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * float64(n-1); v != want { // 2 * n(n-1)/2
		t.Errorf("pipeline result = %v, want %v", v, want)
	}
}

func TestSubmitPipelineStages(t *testing.T) {
	pool := testPool(t, Config{Workers: 4, AsyncShards: 2})
	const n = 2048
	data := make([]float64, n)
	js := pool.SubmitPipeline(
		Stage{N: n, Body: func(i int) { data[i] = float64(i) }},
		Stage{N: n, For: func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] += 1
			}
		}},
		Stage{N: n, Reduce: &ReduceStage{
			Commutative: true,
			Combine:     func(x, y float64) float64 { return x + y },
			Body: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			},
		}},
	)
	if len(js) != 3 {
		t.Fatalf("got %d handles, want 3", len(js))
	}
	v, err := js[2].Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n)*float64(n-1)/2 + n; v != want {
		t.Errorf("pipeline sum = %v, want %v", v, want)
	}
	if st := pool.AsyncStats(); st.Total.Released != 2 {
		t.Errorf("released = %d, want 2 (two dependent stages)", st.Total.Released)
	}
}

func TestSubmitPipelineInvalidStage(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	ran := false
	js := pool.SubmitPipeline(
		Stage{N: 8}, // no body: invalid
		Stage{N: 8, Body: func(i int) { ran = true }},
	)
	if err := js[0].Wait(); err == nil {
		t.Error("invalid stage did not fail")
	}
	if err := js[1].Wait(); !errors.Is(err, ErrCanceled) {
		t.Errorf("stage after invalid stage: err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Error("stage after an invalid stage ran")
	}
}

func TestAfterCancelPropagatesThroughPublicAPI(t *testing.T) {
	pool := testPool(t, Config{Workers: 1})
	gate := make(chan struct{})
	occupy := pool.Submit(1, func(i int) { <-gate })
	defer func() {
		close(gate)
		occupy.Wait()
	}()
	up := pool.Submit(64, func(i int) {})
	down := pool.SubmitOpts(64, JobOptions{After: []*Job{up}}, func(i int) {
		t.Error("canceled dependent ran")
	})
	if !up.Cancel() {
		t.Fatal("Cancel on a queued upstream failed")
	}
	err := down.Wait()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("dependent err = %v, want ErrCanceled", err)
	}
	// The wrap contract: the dependent's error is not the bare sentinel but
	// a propagation error wrapping the upstream's cancellation.
	if err == ErrCanceled { //nolint:errorlint // deliberate identity check
		t.Error("dependent err is the bare ErrCanceled sentinel; want the upstream's cancellation wrapped")
	}
}

func TestPoolTraceThroughPublicAPI(t *testing.T) {
	pool := testPool(t, Config{Workers: 4, Trace: true, TraceCapacity: 64})
	tr := pool.Tracer()
	if tr == nil {
		t.Fatal("Config.Trace set but Tracer() is nil")
	}
	sub := tr.Subscribe(1024, "", 0)
	defer sub.Close()

	js := pool.SubmitPipeline(
		Stage{N: 256, Opts: JobOptions{Tenant: "pipe", Label: "produce"}, Body: func(i int) {}},
		Stage{N: 256, Opts: JobOptions{Tenant: "pipe", Label: "consume"}, Body: func(i int) {}},
	)
	for _, j := range js {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	jt := js[1].Trace()
	if jt == nil {
		t.Fatal("traced pool returned a nil Job.Trace")
	}
	if !jt.Finished() {
		t.Fatal("trace not finished after Wait")
	}
	if jt.Tenant != "pipe" || jt.Label != "consume" {
		t.Fatalf("trace tenant/label = %q/%q, want pipe/consume", jt.Tenant, jt.Label)
	}
	if tr.Trace(jt.ID) == nil {
		t.Fatal("finished trace not queryable from the pool tracer")
	}
	doc := jt.OTLP("loopsched")
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans[0].Spans) == 0 {
		t.Fatal("empty OTLP document for a finished trace")
	}
	// The dependent stage must have recorded its blocked -> released hold.
	var sawBlocked, sawReleased bool
	for _, ev := range jt.Events() {
		switch ev.Type {
		case "blocked":
			sawBlocked = true
		case "released":
			sawReleased = true
		}
	}
	if !sawBlocked || !sawReleased {
		t.Fatalf("dependent stage events missing blocked/released: blocked=%v released=%v", sawBlocked, sawReleased)
	}
	// The live feed delivered events for both stages.
	got := 0
	for {
		select {
		case <-sub.Events():
			got++
			continue
		default:
		}
		break
	}
	if got == 0 {
		t.Fatal("subscription delivered no events")
	}
}

func TestPoolUntracedHasNoTracer(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	if pool.Tracer() != nil {
		t.Fatal("Tracer() non-nil without Config.Trace")
	}
	j := pool.Submit(32, func(i int) {})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Trace() != nil {
		t.Fatal("untraced pool produced a job trace")
	}
	if pool.failedJob(ErrClosed).Trace() != nil {
		t.Fatal("failed job has a trace")
	}
}

func TestSubmitBatch(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	const batch = 8
	var sum atomic.Int64
	reqs := make([]BatchRequest, batch)
	out := make([]*Job, batch)
	for i := range reqs {
		reqs[i] = BatchRequest{N: 100, Body: func(w, lo, hi int) {
			sum.Add(int64(hi - lo))
		}}
	}
	for round := 0; round < 20; round++ {
		sum.Store(0)
		if err := pool.SubmitBatch(reqs, out); err != nil {
			t.Fatal(err)
		}
		for i, j := range out {
			if err := j.Wait(); err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
			j.Release()
			out[i] = nil
		}
		if got := sum.Load(); got != batch*100 {
			t.Fatalf("round %d: iterations = %d, want %d", round, got, batch*100)
		}
	}
}

func TestSubmitBatchRejectsAfterAndShard(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	up := pool.Submit(8, func(i int) {})
	defer up.Wait()
	body := func(w, lo, hi int) {}
	out := make([]*Job, 1)
	if err := pool.SubmitBatch([]BatchRequest{{N: 8, Body: body, Opts: JobOptions{After: []*Job{up}}}}, out); err == nil {
		t.Error("After accepted in a batch")
	}
	if err := pool.SubmitBatch([]BatchRequest{{N: 8, Body: body, Opts: JobOptions{Shard: 1}}}, out); err == nil {
		t.Error("Shard pin accepted in a batch")
	}
	if err := pool.SubmitBatch([]BatchRequest{{N: 8, Body: body}}, nil); err == nil {
		t.Error("short out slice accepted")
	}
}

func TestJobReleaseRecyclesHandle(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	j := pool.SubmitFor(64, func(w, lo, hi int) {})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	j.Release()
	// The released handle must come back for the next submission, rebound to
	// a fresh job that behaves normally.
	j2 := pool.SubmitFor(64, func(w, lo, hi int) {})
	if j2 != j {
		t.Log("handle not recycled (another goroutine may have taken it); still must work")
	}
	if err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	j2.Release()
	// Release on failed and nil handles is a no-op.
	pool.failedJob(ErrClosed).Release()
	var nilJob *Job
	nilJob.Release()
}

// TestPublicSubmitAllocs pins the public layer's share of the tentpole: a
// steady-state SubmitFor/Wait/Release cycle through Pool, the handle
// freelist, the Sharded router and the runtime performs zero heap
// allocations. SubmitFor passes the body through without wrapping, so the
// cycle is closure-free; Submit/ForEach shapes wrap the body and pay one
// closure allocation by design.
func TestPublicSubmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	pool := testPool(t, Config{Workers: 2})
	body := func(w, lo, hi int) {}
	for i := 0; i < 128; i++ {
		j := pool.SubmitFor(64, body)
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		j.Release()
	}
	avg := testing.AllocsPerRun(500, func() {
		j := pool.SubmitFor(64, body)
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		j.Release()
	})
	if avg != 0 {
		t.Errorf("SubmitFor/Wait/Release cycle: %v allocs/op, want 0", avg)
	}
}

// TestPublicSubmitBatchAllocs pins the batched public path at zero
// allocations per submitted job in steady state.
func TestPublicSubmitBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	pool := testPool(t, Config{Workers: 2})
	const batch = 16
	body := func(w, lo, hi int) {}
	reqs := make([]BatchRequest, batch)
	out := make([]*Job, batch)
	for i := range reqs {
		reqs[i] = BatchRequest{N: 64, Body: body}
	}
	cycle := func() {
		if err := pool.SubmitBatch(reqs, out); err != nil {
			t.Fatal(err)
		}
		for i, j := range out {
			if err := j.Wait(); err != nil {
				t.Fatal(err)
			}
			j.Release()
			out[i] = nil
		}
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(100, cycle)
	if got := avg / batch; got != 0 {
		t.Errorf("SubmitBatch cycle: %v allocs per submitted job, want 0", got)
	}
}

// TestAsyncSuspendResume drives the pause API through the public wrapper: a
// commutative reduction is suspended mid-flight, holds no result while
// parked, and after Resume completes with the exact uninterrupted sum.
func TestAsyncSuspendResume(t *testing.T) {
	pool := testPool(t, Config{Workers: 2})
	const n = 200_000
	j := pool.SubmitReduceOpts(n, JobOptions{Commutative: true, Grain: 256}, 0,
		func(a, b float64) float64 { return a + b },
		func(_, low, high int, acc float64) float64 {
			for i := low; i < high; i++ {
				acc += float64(i)
			}
			return acc
		})
	if !j.Suspend() {
		t.Fatal("Suspend refused on an in-flight job")
	}
	if !j.Suspend() {
		t.Error("Suspend is not idempotent on a parked job")
	}
	// Resume may race the park of a running job; retry until it lands.
	deadline := time.Now().Add(10 * time.Second)
	for !j.Resume() {
		if time.Now().After(deadline) {
			t.Fatal("Resume never landed")
		}
		runtime.Gosched()
	}
	v, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * float64(n-1) / 2; v != want {
		t.Fatalf("suspended+resumed reduction = %v, want %v", v, want)
	}

	// Terminal and failed-submission handles refuse the pause API.
	if j.Suspend() || j.Resume() {
		t.Error("Suspend/Resume accepted on a completed job")
	}
	bad := &Job{}
	if bad.Suspend() || bad.Resume() {
		t.Error("Suspend/Resume accepted on a failed-submission handle")
	}
}
