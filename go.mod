module loopsched

go 1.23
