// Package loopsched is a low-overhead parallel loop scheduler for fine-grain
// (microsecond-scale) loops, reproducing the runtime described in
//
//	M. Arif and H. Vandierendonck, "POSTER: Reducing the Burden of Parallel
//	Loop Schedulers for Many-Core Processors", PPoPP 2018.
//
// A Pool owns a team of persistent workers (goroutines locked to OS
// threads). Parallel loops are published to the team with a single release
// wave and completed with a single join wave — the paper's *half-barrier*
// pattern — instead of the two (or, with reductions, three) full barriers a
// conventional fork/join runtime executes. Reductions are folded into the
// join wave, so a reducing loop costs exactly P-1 combine operations applied
// in iteration order, which keeps non-commutative reducers correct.
//
// # Quick start
//
//	pool := loopsched.New(loopsched.Config{})
//	defer pool.Close()
//
//	pool.ForEach(len(xs), func(i int) { xs[i] *= 2 })
//
//	sum := pool.ReduceFloat64(len(xs), 0,
//		func(a, b float64) float64 { return a + b },
//		func(w, lo, hi int, acc float64) float64 {
//			for i := lo; i < hi; i++ { acc += xs[i] }
//			return acc
//		})
//
// The baseline runtimes the paper compares against (an OpenMP-style
// fork/join runtime and a Cilk-style work-stealing runtime) live under
// internal/ and are exercised by the benchmark harness in cmd/ and
// bench_test.go; library users only need this package.
package loopsched

import (
	"fmt"
	"sync"
	"time"

	"loopsched/internal/core"
	"loopsched/internal/jobs"
	"loopsched/internal/reduce"
	"loopsched/internal/sched"
	"loopsched/internal/trace"
)

// Tracing re-exports: the async runtime's lifecycle tracing is implemented in
// internal/trace; these aliases let library users consume it without importing
// an internal package.
type (
	// Tracer collects per-job lifecycle traces and streams events to
	// subscribers; obtain the pool's from Pool.Tracer.
	Tracer = trace.Tracer
	// JobTrace is one job's recorded trace (events and chunk-wave stints);
	// obtain a job's from Job.Trace, or a finished one from Tracer.Trace.
	JobTrace = trace.JobTrace
	// TraceEvent is one lifecycle transition as delivered to subscribers.
	TraceEvent = trace.StreamEvent
	// TraceSubscription is a live event feed created by Tracer.Subscribe.
	TraceSubscription = trace.Subscription
)

// BarrierKind selects the synchronisation substrate of a Pool.
type BarrierKind int

// Barrier kinds.
const (
	// BarrierTree is a topology-aligned tree barrier (the default and the
	// paper's choice).
	BarrierTree BarrierKind = iota
	// BarrierCentralized is a single-counter barrier; it is simpler but its
	// cost grows linearly with the worker count.
	BarrierCentralized
)

// Config configures a Pool. The zero value selects the defaults: all
// available processors, tree barrier, half-barrier synchronisation, workers
// locked to OS threads.
type Config struct {
	// Workers is the team size including the caller; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Barrier selects the synchronisation substrate.
	Barrier BarrierKind
	// FullBarrier disables the half-barrier optimisation and uses
	// conventional full barriers at fork and join; it exists for
	// experimentation and for reproducing the paper's ablation.
	FullBarrier bool
	// GroupSize overrides the number of workers assumed to share a cache
	// domain when shaping the barrier tree; <= 0 uses a heuristic.
	GroupSize int
	// InnerFanout and OuterFanout tune the barrier tree's fan-out within and
	// across groups; values < 2 select the defaults.
	InnerFanout, OuterFanout int
	// DisableThreadLock keeps workers as ordinary goroutines instead of
	// locking them to OS threads. Locking is the default because it gives
	// the scheduler stable worker identities; disable it when creating many
	// short-lived pools (for example, in tests).
	DisableThreadLock bool
	// AsyncGrain is the default self-scheduling chunk size (in iterations)
	// for asynchronously submitted jobs; <= 0 selects a per-job heuristic.
	// Individual jobs override it with JobOptions.Grain.
	AsyncGrain int
	// AsyncRigid disables elastic sub-teams on the async runtime: every
	// job's sub-team is frozen at admission and partitioned statically, the
	// paper's rigid-team behaviour. It exists for comparison and for callers
	// that require the static-block body contract.
	AsyncRigid bool
	// AsyncShards partitions the async runtime's workers into per-topology-
	// domain shards, each with its own dispatcher, router-admitted to the
	// least-loaded shard with cross-shard work stealing between them.
	// 0 selects a single shard (one dispatcher, the pre-sharding behaviour);
	// < 0 derives the shard count from the machine topology (one shard per
	// cache/socket group); >= 2 selects that many shards.
	AsyncShards int
	// AsyncStealInterval is how often a fully idle shard re-scans its
	// siblings for queued jobs to steal or elastic jobs to lend workers to;
	// <= 0 selects the default (200µs). Ignored with fewer than two shards.
	AsyncStealInterval time.Duration
	// Trace enables lifecycle tracing on the async runtime: every job
	// records a span of its transitions (submit, admission, dispatch,
	// elastic churn, join) and finished traces are kept in a ring queryable
	// through Pool.Tracer. Tracing off costs one nil check per transition.
	Trace bool
	// TraceCapacity is the number of finished job traces retained;
	// <= 0 selects the default (1024). Ignored unless Trace is set.
	TraceCapacity int
	// SLOTarget is the per-tenant deadline-hit objective burn rates are
	// measured against in the async runtime's SLO snapshots; outside (0, 1)
	// selects the default (0.99).
	SLOTarget float64
	// MaxWait bounds how long an async submission may block for an admission
	// queue slot once the queue is full: past it the submission is rejected
	// with ErrBacklogged carrying a suggested retry delay. <= 0 keeps the
	// default unbounded block. See also JobOptions.NoWait.
	MaxWait time.Duration
	// ShedInfeasible makes the async runtime reject, with ErrInfeasible and
	// a suggested retry delay, deadline jobs whose deadline could not be met
	// even if the queue drained at the measured service rate — instead of
	// admitting them only to miss.
	ShedInfeasible bool
	// BreakerBurnRate arms per-tenant circuit breakers on the async runtime:
	// a tenant whose recent deadline outcomes imply an SLO burn rate at or
	// above this limit, while it holds a meaningful share of the queue, is
	// shed at intake with ErrBreakerOpen until a cooldown and a successful
	// probe. <= 0 (the default) disables the breakers.
	BreakerBurnRate float64
	// BreakerCooldown is how long an open breaker sheds before probing for
	// recovery; <= 0 selects the default (250ms). Ignored unless
	// BreakerBurnRate is set.
	BreakerCooldown time.Duration
}

// Pool is a team of persistent workers executing parallel loops. The
// synchronous methods (For, ForEach, the reductions) belong to a single
// master goroutine — the goroutine that created the pool — and are not safe
// for concurrent use. The asynchronous methods (Submit, SubmitFor,
// SubmitReduce, Group) are safe from any number of goroutines: they route
// through a multi-tenant jobs runtime that multiplexes concurrent loop jobs
// onto a second persistent team of the same size, created lazily on first
// use.
type Pool struct {
	s *core.Scheduler

	asyncGrain         int
	asyncRigid         bool
	asyncShards        int
	asyncStealInterval time.Duration
	asyncSLOTarget     float64
	asyncMaxWait       time.Duration
	asyncShed          bool
	asyncBreakerBurn   float64
	asyncBreakerCool   time.Duration
	tracer             *trace.Tracer

	jobsMu     sync.Mutex
	jobsRT     *jobs.Sharded
	jobsClosed bool
	// tenantWeights collects Pool.Tenant registrations made before the
	// async runtime is instantiated, applied at creation.
	tenantWeights map[string]int

	// handleMu/handleFree recycle public Job handles returned through
	// Job.Release, mirroring the runtime's internal job freelist so a
	// steady-state Submit/Wait/Release cycle allocates nothing at this layer
	// either. Bounded; overflow falls to the garbage collector.
	handleMu   sync.Mutex
	handleFree []*Job

	// batchMu/batchReqs/batchJobs are SubmitBatch's reusable translation
	// scratch (public requests -> runtime requests -> runtime handles).
	// Serializing concurrent batches on one scratch is deliberate: the batch
	// API amortizes locking, it is not a latency path.
	batchMu   sync.Mutex
	batchReqs []jobs.Request
	batchJobs []*jobs.Job
}

// maxFreeHandles bounds the public handle freelist.
const maxFreeHandles = 1024

// New creates a pool. Call Close to release its workers.
func New(cfg Config) *Pool {
	kind := core.BarrierTree
	if cfg.Barrier == BarrierCentralized {
		kind = core.BarrierCentralized
	}
	mode := core.ModeHalf
	if cfg.FullBarrier {
		mode = core.ModeFull
	}
	s := core.New(core.Config{
		Workers:      cfg.Workers,
		Barrier:      kind,
		Mode:         mode,
		GroupSize:    cfg.GroupSize,
		InnerFanout:  cfg.InnerFanout,
		OuterFanout:  cfg.OuterFanout,
		LockOSThread: !cfg.DisableThreadLock,
	})
	p := &Pool{
		s:                  s,
		asyncGrain:         cfg.AsyncGrain,
		asyncRigid:         cfg.AsyncRigid,
		asyncShards:        cfg.AsyncShards,
		asyncStealInterval: cfg.AsyncStealInterval,
		asyncSLOTarget:     cfg.SLOTarget,
		asyncMaxWait:       cfg.MaxWait,
		asyncShed:          cfg.ShedInfeasible,
		asyncBreakerBurn:   cfg.BreakerBurnRate,
		asyncBreakerCool:   cfg.BreakerCooldown,
	}
	if cfg.Trace {
		p.tracer = trace.NewTracer(cfg.TraceCapacity)
	}
	return p
}

// NewDefault creates a pool with the default configuration.
func NewDefault() *Pool { return New(Config{}) }

// Workers returns the team size, including the master.
func (p *Pool) Workers() int { return p.s.P() }

// Close releases the pool's workers (and the async jobs runtime, if it was
// ever used; queued jobs are drained first). The pool must not be used
// afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.jobsMu.Lock()
	rt := p.jobsRT
	p.jobsRT = nil
	p.jobsClosed = true
	p.jobsMu.Unlock()
	if rt != nil {
		rt.Close()
	}
	p.s.Close()
}

// jobs returns the lazily created async runtime, or nil after Close.
func (p *Pool) jobs() *jobs.Sharded {
	p.jobsMu.Lock()
	defer p.jobsMu.Unlock()
	if p.jobsRT == nil && !p.jobsClosed {
		shards := resolveShardRequest(p.asyncShards)
		// The async team is never locked to OS threads: unlike the
		// synchronous team's spin-waiting workers, jobs workers park on
		// channels between jobs, and pinning a second P threads would only
		// oversubscribe the machine.
		weights := make(map[string]int, len(p.tenantWeights))
		for name, w := range p.tenantWeights {
			weights[name] = w
		}
		p.jobsRT = jobs.NewSharded(jobs.ShardedConfig{
			Config: jobs.Config{
				Workers:         p.s.P(),
				DefaultGrain:    p.asyncGrain,
				DisableElastic:  p.asyncRigid,
				TenantWeights:   weights,
				Tracer:          p.tracer,
				SLOTarget:       p.asyncSLOTarget,
				MaxWait:         p.asyncMaxWait,
				ShedInfeasible:  p.asyncShed,
				BreakerBurnRate: p.asyncBreakerBurn,
				BreakerCooldown: p.asyncBreakerCool,
				Name:            "async-" + p.s.Name(),
			},
			Shards:        shards,
			StealInterval: p.asyncStealInterval,
		})
	}
	return p.jobsRT
}

// Tenant registers (or re-weights) a tenant account on the async runtime:
// under saturation, tenants are admitted in proportion to their weights
// (weights < 1 are clamped to 1). Tag jobs with JobOptions.Tenant to charge
// them to an account; unregistered tenants run at weight 1. Tenant is safe
// for concurrent use and may be called before any job is submitted — the
// weights survive until the runtime is created and apply from its first
// admission.
func (p *Pool) Tenant(name string, weight int) {
	p.jobsMu.Lock()
	if p.tenantWeights == nil {
		p.tenantWeights = make(map[string]int)
	}
	p.tenantWeights[name] = weight
	rt := p.jobsRT
	p.jobsMu.Unlock()
	if rt != nil {
		rt.SetTenantWeight(name, weight)
	}
}

// AsyncShards returns the shard count the async runtime has (or will have
// on first use: observing a pool must not instantiate its worker teams), or
// 0 after Close.
func (p *Pool) AsyncShards() int {
	p.jobsMu.Lock()
	rt, closed := p.jobsRT, p.jobsClosed
	p.jobsMu.Unlock()
	if rt != nil {
		return rt.Shards()
	}
	if closed {
		return 0
	}
	return jobs.ResolveShardCount(p.s.P(), resolveShardRequest(p.asyncShards))
}

// resolveShardRequest maps Config.AsyncShards (0 = one shard, < 0 =
// topology-derived) onto the jobs runtime's convention (<= 0 =
// topology-derived).
func resolveShardRequest(asyncShards int) int {
	switch {
	case asyncShards == 0:
		return 1
	case asyncShards < 0:
		return 0
	}
	return asyncShards
}

// AsyncStats returns a snapshot of the async runtime's shards and merged
// totals. The zero value is returned before the first async submission and
// after Close: a read-only observer never instantiates the runtime.
func (p *Pool) AsyncStats() jobs.ShardedStats {
	p.jobsMu.Lock()
	rt := p.jobsRT
	p.jobsMu.Unlock()
	if rt == nil {
		return jobs.ShardedStats{}
	}
	return rt.Stats()
}

// Tracer returns the pool's lifecycle tracer, or nil unless Config.Trace
// was set. Subscribe to it for a live event feed, or query finished job
// traces with Tracer.Trace.
func (p *Pool) Tracer() *Tracer { return p.tracer }

// Scheduler exposes the underlying runtime through the internal scheduler
// interface; it is used by the benchmark harness and example applications
// that accept any runtime.
func (p *Pool) Scheduler() sched.Scheduler { return p.s }

// String implements fmt.Stringer.
func (p *Pool) String() string {
	return fmt.Sprintf("loopsched.Pool{workers=%d, %s, %s}", p.s.P(), p.s.Config().Barrier, p.s.Config().Mode)
}

// For executes body over contiguous chunks of [0, n), one chunk per worker
// (static block partitioning). body receives the worker index and the
// half-open chunk bounds.
func (p *Pool) For(n int, body func(worker, low, high int)) {
	p.s.For(n, body)
}

// ForRange executes body over contiguous chunks of [0, n) without exposing
// the worker index.
func (p *Pool) ForRange(n int, body func(low, high int)) {
	p.s.For(n, func(w, low, high int) { body(low, high) })
}

// ForEach executes body once per index in [0, n).
func (p *Pool) ForEach(n int, body func(i int)) {
	p.s.For(n, func(w, low, high int) {
		for i := low; i < high; i++ {
			body(i)
		}
	})
}

// ReduceFloat64 executes a reducing loop over [0, n): each worker folds its
// chunk into a private accumulator starting at identity, and the per-worker
// results are combined — inside the join wave, in iteration order — with
// combine.
func (p *Pool) ReduceFloat64(n int, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) float64 {
	return p.s.ForReduce(n, identity, combine, body)
}

// ReduceVec executes a loop that accumulates element-wise into a vector of
// width float64 values (for example, the moment sums of a regression) and
// returns the combined vector.
func (p *Pool) ReduceVec(n, width int, body func(worker, low, high int, acc []float64)) []float64 {
	return p.s.ForReduceVec(n, width, body)
}

// Op describes a reduction operation over values of type T: an identity
// constructor and an associative (not necessarily commutative) combine.
type Op[T any] = reduce.Op[T]

// SumOp returns the addition reduction for a numeric type.
func SumOp[T int | int32 | int64 | float32 | float64]() Op[T] { return reduce.Sum[T]() }

// MaxOp returns the maximum reduction with the given lowest value as
// identity.
func MaxOp[T int | int32 | int64 | float32 | float64](lowest T) Op[T] { return reduce.Max[T](lowest) }

// MinOp returns the minimum reduction with the given highest value as
// identity.
func MinOp[T int | int32 | int64 | float32 | float64](highest T) Op[T] { return reduce.Min[T](highest) }

// AppendOp returns the slice-concatenation reduction — the canonical
// non-commutative (ordered) reducer.
func AppendOp[T any]() Op[[]T] { return reduce.Append[T]() }

// Reduce executes a reducing loop with an arbitrary view type T. Per-worker
// views are allocated statically before the loop starts (the paper's
// replacement for lazily created Cilk reducer views) and folded into the
// join wave in iteration order with exactly Workers()-1 combine operations.
func Reduce[T any](p *Pool, n int, op Op[T], body func(worker, low, high int, acc T) T) T {
	views := reduce.NewViews(op, p.Workers())
	p.s.ForCombine(n,
		func(w, low, high int) {
			views.Set(w, body(w, low, high, views.Get(w)))
		},
		views.CombineInto,
	)
	return views.Root()
}

// Reducer is a reusable reduction variable bound to a pool: the equivalent
// of a Cilk reducer hyperobject, except that its per-worker views are
// allocated once (statically) and reused across loops instead of being
// created lazily and merged at steals. Use it when the same reduction
// variable is updated from many loops, or when a loop updates several
// reduction variables at once.
type Reducer[T any] struct {
	pool  *Pool
	op    Op[T]
	views *reduce.Views[T]
}

// NewReducer creates a reducer bound to the pool.
func NewReducer[T any](p *Pool, op Op[T]) *Reducer[T] {
	return &Reducer[T]{pool: p, op: op, views: reduce.NewViews(op, p.Workers())}
}

// View returns a pointer-free accessor pair for worker w: the current view
// value and a setter. Most callers should use Update instead.
func (r *Reducer[T]) View(w int) T { return r.views.Get(w) }

// Update folds x into worker w's view. It must only be called from loop
// bodies running on the reducer's pool, using the worker index the body
// received.
func (r *Reducer[T]) Update(w int, x T) { r.views.Update(w, x) }

// Set overwrites worker w's view.
func (r *Reducer[T]) Set(w int, x T) { r.views.Set(w, x) }

// ForCombine runs a loop on the reducer's pool and folds the reducer's
// views inside the join wave; after it returns, the combined value is
// available from Value. Exactly Workers()-1 combines are performed.
func (r *Reducer[T]) ForCombine(n int, body func(worker, low, high int)) {
	r.pool.s.ForCombine(n, body, r.views.CombineInto)
}

// Value returns the reduction of all views (after ForCombine, that is the
// root view) and resets the reducer for reuse.
func (r *Reducer[T]) Value() T {
	v := r.views.Fold()
	return v
}

// Async error sentinels, for errors.Is against Job.Wait results.
var (
	// ErrCanceled is returned by Wait on a job canceled before it started —
	// explicitly with Cancel, or because an upstream dependency was canceled
	// (the dependent's error then also wraps the upstream's).
	ErrCanceled = jobs.ErrCanceled
	// ErrClosed is returned by Wait on a job submitted after Close.
	ErrClosed = jobs.ErrClosed
	// ErrCycle is returned at submission when JobOptions.After closes a
	// dependency cycle. Well-typed use cannot build one (After only accepts
	// handles of already-submitted jobs), but submission verifies the graph
	// anyway.
	ErrCycle = jobs.ErrCycle
	// ErrReleased is returned by Wait/Result callers that raced a Release:
	// the handle's job was already recycled. It marks a use-after-release
	// bug in the caller, not a scheduler failure.
	ErrReleased = jobs.ErrReleased
	// ErrInfeasible is returned at submission (wrapped in an overload error
	// carrying a retry hint — see SuggestedRetry) when ShedInfeasible is set
	// and the job's deadline could not be met even if the queue drained at
	// the measured service rate.
	ErrInfeasible = jobs.ErrInfeasible
	// ErrBacklogged is returned at submission when the admission queue is
	// full and either JobOptions.NoWait was set or Config.MaxWait elapsed
	// before a slot freed. Carries a retry hint — see SuggestedRetry.
	ErrBacklogged = jobs.ErrBacklogged
	// ErrBreakerOpen is returned at submission when the job's tenant has an
	// open circuit breaker (Config.BreakerBurnRate): the tenant is burning
	// its SLO while crowding the queue, and is shed until a cooldown and a
	// successful probe. Carries a retry hint — see SuggestedRetry.
	ErrBreakerOpen = jobs.ErrBreakerOpen
)

// SuggestedRetry extracts the retry-after hint from an overload rejection
// (ErrInfeasible, ErrBacklogged or ErrBreakerOpen): the delay after which
// the submission is next expected to be admittable. ok is false when err
// carries no hint.
func SuggestedRetry(err error) (d time.Duration, ok bool) {
	return jobs.SuggestedRetry(err)
}

// Job is a handle to an asynchronously submitted parallel loop. Many jobs
// run concurrently on the pool's async team: each is molded onto a sub-team
// of k workers chosen from the queue pressure and the job's size, and
// completes through a single join half-barrier wave — concurrent jobs never
// synchronise with each other. Job methods are safe for concurrent use.
type Job struct {
	inner *jobs.Job
	pool  *Pool
	err   error // submission error; the job never ran
}

// Wait blocks until the job completes and returns its error (nil on
// success). Canceled jobs return ErrCanceled.
func (j *Job) Wait() error {
	_, err := j.Result()
	return err
}

// Result blocks until the job completes and returns the reduction result
// (0 for non-reducing jobs) and any error.
func (j *Job) Result() (float64, error) {
	if j.inner == nil {
		return 0, j.err
	}
	return j.inner.Wait()
}

// Cancel cancels the job if it has not started yet and reports whether it
// did; a canceled job's Wait returns an error and its body never runs.
func (j *Job) Cancel() bool {
	if j.inner == nil {
		return false
	}
	return j.inner.Cancel()
}

// Suspend parks the job with its progress checkpointed: a queued job parks
// instantly, a running one at its next chunk-wave boundary (no participant
// is ever interrupted mid-chunk). Reports whether the pause was accepted —
// false for terminal, blocked, or rigid mid-run jobs; true (idempotently)
// for one already suspended. A suspended job holds no workers and its Wait
// keeps blocking until it is resumed or canceled.
func (j *Job) Suspend() bool {
	if j.inner == nil {
		return false
	}
	return j.inner.Suspend()
}

// Resume re-admits a suspended job from its checkpointed cursor watermark:
// every iteration below it ran exactly once and its partial reduction is
// preserved, so the result is byte-identical to an uninterrupted run.
// Reports false when the job is not suspended (including the window where a
// running job has accepted a Suspend but not parked yet — retry after the
// park, observable as the "suspended" trace event).
func (j *Job) Resume() bool {
	if j.inner == nil {
		return false
	}
	return j.inner.Resume()
}

// Workers returns the sub-team size the job was molded onto (0 until it is
// admitted).
func (j *Job) Workers() int {
	if j.inner == nil {
		return 0
	}
	return j.inner.Workers()
}

// Trace returns the job's lifecycle trace, or nil unless the pool was
// created with Config.Trace (failed submissions also have no trace). The
// trace is live while the job runs; after Wait it is finished and its OTLP
// span tree is complete.
func (j *Job) Trace() *JobTrace {
	if j.inner == nil {
		return nil
	}
	return j.inner.Trace()
}

// Release recycles the handle (and its runtime job) for reuse by later
// submissions, making steady-state submission allocation-free. Call it only
// after the job is terminal — Wait/Result returned, or Cancel succeeded —
// and only when no other goroutine still uses this handle: any later method
// call on a released handle is a use-after-release bug (a stale Wait that
// raced the Release reports ErrReleased; a call after the handle is recycled
// observes an unrelated job). Release on a failed-submission handle or a nil
// handle is a no-op beyond recycling. Jobs never released are simply
// garbage-collected, as before pooling.
func (j *Job) Release() {
	if j == nil {
		return
	}
	p, inner := j.pool, j.inner
	j.inner, j.pool, j.err = nil, nil, nil
	if inner != nil {
		inner.Release()
	}
	if p == nil {
		return
	}
	p.handleMu.Lock()
	if len(p.handleFree) < maxFreeHandles {
		p.handleFree = append(p.handleFree, j)
	}
	p.handleMu.Unlock()
}

// handle pops a recycled public Job handle (or allocates one) and binds it.
func (p *Pool) handle(inner *jobs.Job, err error) *Job {
	var j *Job
	p.handleMu.Lock()
	if n := len(p.handleFree); n > 0 {
		j = p.handleFree[n-1]
		p.handleFree[n-1] = nil
		p.handleFree = p.handleFree[:n-1]
	}
	p.handleMu.Unlock()
	if j == nil {
		j = &Job{}
	}
	j.inner, j.pool, j.err = inner, p, err
	return j
}

// failedJob wraps a submission error as an already-completed Job so call
// sites can chain Submit(...).Wait() without a separate error path.
func (p *Pool) failedJob(err error) *Job { return p.handle(nil, err) }

// submit routes a request to the async runtime: to the least-loaded shard,
// or to the pinned shard when the options name one (1-based; 0 routes).
// after carries the public dependency handles; a dependent of a job that
// never made it past submission fails immediately with the upstream's error
// wrapped under ErrCanceled, mirroring runtime cancel propagation.
func (p *Pool) submit(shard int, after []*Job, req jobs.Request) *Job {
	for _, u := range after {
		if u == nil {
			return p.failedJob(fmt.Errorf("loopsched: nil upstream job in After"))
		}
		if u.inner == nil {
			err := u.err
			if err == nil {
				err = fmt.Errorf("invalid zero Job")
			}
			return p.failedJob(fmt.Errorf("%w: upstream failed at submission: %w", ErrCanceled, err))
		}
		req.After = append(req.After, u.inner)
	}
	rt := p.jobs()
	if rt == nil {
		return p.failedJob(jobs.ErrClosed)
	}
	var j *jobs.Job
	var err error
	if shard != 0 {
		// Validate against the public 1-based contract before translating,
		// so the error names the caller's shard number, not the internal
		// 0-based index.
		if shard < 1 || shard > rt.Shards() {
			return p.failedJob(fmt.Errorf("loopsched: shard %d out of range [1,%d]", shard, rt.Shards()))
		}
		j, err = rt.SubmitTo(shard-1, req)
	} else {
		j, err = rt.Submit(req)
	}
	if err != nil {
		return p.failedJob(err)
	}
	return p.handle(j, nil)
}

// BatchRequest describes one job of a SubmitBatch call, in the SubmitFor
// shape (the body receives the sub-team worker index and chunk bounds —
// the only shape that needs no per-job closure, keeping batches
// allocation-free).
type BatchRequest struct {
	// N is the job's iteration count (<= 0 completes immediately).
	N int
	// Body is the chunked loop body (the SubmitFor contract).
	Body func(worker, low, high int)
	// Opts tunes the job. Opts.After and Opts.Shard are not supported in
	// batches (use Submit for dependency edges and pinning) and fail the
	// whole batch.
	Opts JobOptions
}

// SubmitBatch submits len(reqs) independent jobs in one call, filling out[i]
// with the handle for reqs[i]: the whole batch is routed to one shard and
// admitted under a single fair-queue lock acquisition, so the per-job
// submission cost is amortized N-fold. out is the caller's storage and must
// hold at least len(reqs) entries. An invalid request fails the whole batch
// before anything is submitted; ErrClosed can split a batch only when Close
// overlaps the call, in which case out[i] is non-nil for exactly the jobs
// that were admitted. Safe from any number of goroutines (concurrent batches
// serialize on the translation scratch).
func (p *Pool) SubmitBatch(reqs []BatchRequest, out []*Job) error {
	if len(out) < len(reqs) {
		return fmt.Errorf("loopsched: SubmitBatch needs len(out) >= len(reqs)")
	}
	if len(reqs) == 0 {
		return nil
	}
	for i := range reqs {
		if len(reqs[i].Opts.After) > 0 {
			return fmt.Errorf("loopsched: SubmitBatch request %d carries After; use Submit for dependencies", i)
		}
		if reqs[i].Opts.Shard != 0 {
			return fmt.Errorf("loopsched: SubmitBatch request %d pins a shard; use SubmitForOpts to pin", i)
		}
	}
	rt := p.jobs()
	if rt == nil {
		return ErrClosed
	}
	p.batchMu.Lock()
	defer p.batchMu.Unlock()
	p.batchReqs = p.batchReqs[:0]
	p.batchJobs = p.batchJobs[:0]
	for i := range reqs {
		r := &reqs[i]
		o := &r.Opts
		p.batchReqs = append(p.batchReqs, jobs.Request{
			N: r.N, Body: r.Body, MaxWorkers: o.MaxWorkers, Grain: o.Grain,
			Tenant: o.Tenant, Priority: o.Priority, Deadline: o.Deadline, Label: o.Label,
		})
		p.batchJobs = append(p.batchJobs, nil)
	}
	err := rt.SubmitBatch(p.batchReqs, p.batchJobs)
	for i, inner := range p.batchJobs {
		if inner != nil {
			out[i] = p.handle(inner, nil)
		}
		p.batchJobs[i] = nil
	}
	// Drop the body references so a retained scratch never pins caller
	// closures past the call.
	clear(p.batchReqs)
	return err
}

// JobOptions tunes one asynchronously submitted job. The zero value selects
// the defaults.
type JobOptions struct {
	// MaxWorkers caps the job's sub-team size; <= 0 means no cap beyond the
	// runtime's own limits.
	MaxWorkers int
	// Grain is the self-scheduling chunk size in iterations — the smallest
	// unit of work worth one atomic claim, and the minimum share a
	// sub-worker is admitted for. <= 0 selects the pool's AsyncGrain, or a
	// heuristic.
	Grain int
	// Commutative declares a reducing job's combine commutative (and its
	// identity a true identity), letting the runtime execute it elastically:
	// sub-workers self-schedule chunks and partials are folded in arrival
	// order. Leave it false for ordered (non-commutative) reductions, which
	// keep the rigid static-block path and worker-order folding.
	Commutative bool
	// Shard pins the job to one shard of a sharded async runtime, 1-based
	// (shard n of AsyncShards); 0 routes to the least-loaded shard. Pinning
	// controls admission locality: unless stealing is disabled, an idle
	// sibling shard may still steal the job or lend workers to it. Out of
	// range values fail the job with an error from Wait. A pinned job with
	// dependencies is released back onto its pinned shard.
	Shard int
	// Tenant names the account the job is charged to; the empty string
	// selects the shared "default" account. Register weights with
	// Pool.Tenant to serve tenants in proportion under saturation;
	// unregistered tenants run at weight 1.
	Tenant string
	// Priority orders admission strictly: a waiting higher-priority job is
	// admitted before every lower-priority one, across all tenants, and the
	// runtime shrinks running lower-priority elastic jobs chunk by chunk to
	// free workers for it. 0 is the default class; negative priorities
	// yield to everything else.
	Priority int
	// Deadline is the job's completion deadline: the admission tie-break
	// within a priority class (earliest deadline first) and the preemption
	// trigger when it is at risk. The zero time means no deadline; missing
	// a deadline does not fail the job, it only increments the runtime's
	// deadline-missed counters.
	Deadline time.Time
	// After lists jobs that must complete before this one starts. The job is
	// held in a blocked state — outside the admission queue, invisible to
	// fair-share sizing and to cross-shard stealing — until the last
	// upstream's join wave releases it; on a sharded runtime the released
	// job is admitted to the least-loaded shard at release time. Canceling
	// an upstream cancels this job too: Wait returns an error matching
	// ErrCanceled that wraps the upstream's. See also Job.Then,
	// Job.ThenReduce and Pool.SubmitPipeline.
	After []*Job
	// NoWait makes the submission fail fast with an error matching
	// ErrBacklogged (instead of blocking for up to Config.MaxWait, or
	// indefinitely) when the admission queue is full. The returned Job
	// surfaces the error from Wait; SuggestedRetry extracts the hint.
	NoWait bool
	// Label tags the job in the runtime's statistics.
	Label string
}

// Submit starts body once per index in [0, n) asynchronously and returns a
// handle. Unlike the synchronous methods, Submit is safe from any number of
// goroutines: concurrent jobs share the pool's async team, partitioned among
// them without full barriers.
func (p *Pool) Submit(n int, body func(i int)) *Job {
	return p.SubmitOpts(n, JobOptions{}, body)
}

// SubmitOpts is Submit with per-job tuning options.
func (p *Pool) SubmitOpts(n int, o JobOptions, body func(i int)) *Job {
	return p.submit(o.Shard, o.After, jobs.Request{N: n, Body: func(w, low, high int) {
		for i := low; i < high; i++ {
			body(i)
		}
	}, MaxWorkers: o.MaxWorkers, Grain: o.Grain, Tenant: o.Tenant, Priority: o.Priority, Deadline: o.Deadline, NoWait: o.NoWait, Label: o.Label})
}

// SubmitFor is the asynchronous For: body receives a dense sub-team worker
// index — bounded by the job's worker caps and never reaching the pool size
// (size per-worker state by MaxWorkers if set, else by Workers()) — and
// contiguous chunk bounds. A sub-worker may receive several disjoint chunks
// as the elastic runtime rebalances work, and after elastic churn the ids
// seen over the job's lifetime may exceed its peak concurrent worker count.
func (p *Pool) SubmitFor(n int, body func(worker, low, high int)) *Job {
	return p.SubmitForOpts(n, JobOptions{}, body)
}

// SubmitForOpts is SubmitFor with per-job tuning options.
func (p *Pool) SubmitForOpts(n int, o JobOptions, body func(worker, low, high int)) *Job {
	return p.submit(o.Shard, o.After, jobs.Request{N: n, Body: body, MaxWorkers: o.MaxWorkers, Grain: o.Grain, Tenant: o.Tenant, Priority: o.Priority, Deadline: o.Deadline, NoWait: o.NoWait, Label: o.Label})
}

// SubmitReduce is the asynchronous ReduceFloat64: per-sub-worker partials
// are folded — in iteration order, inside the job's join wave — with
// combine. The result is available from Job.Result.
func (p *Pool) SubmitReduce(n int, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) *Job {
	return p.SubmitReduceOpts(n, JobOptions{}, identity, combine, body)
}

// SubmitReduceOpts is SubmitReduce with per-job tuning options. Setting
// o.Commutative allows the runtime to run the reduction elastically (chunked
// self-scheduling, partials folded in arrival order); leave it false when
// the combine is order-sensitive.
func (p *Pool) SubmitReduceOpts(n int, o JobOptions, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) *Job {
	return p.submit(o.Shard, o.After, jobs.Request{
		N: n, RBody: body, Identity: identity, Combine: combine,
		Commutative: o.Commutative, MaxWorkers: o.MaxWorkers, Grain: o.Grain,
		Tenant: o.Tenant, Priority: o.Priority, Deadline: o.Deadline, NoWait: o.NoWait, Label: o.Label,
	})
}

// Then submits a dependent job: body runs over [0, n) only after j's join
// wave completes, and is canceled (with an error matching ErrCanceled) if j
// is canceled. It returns the dependent's handle, so linear pipelines chain:
//
//	last := pool.Submit(n, produce).Then(n, transform).Then(n, consume)
//	err := last.Wait()
func (j *Job) Then(n int, body func(i int)) *Job {
	return j.ThenOpts(n, JobOptions{}, body)
}

// ThenOpts is Then with per-job tuning options; j is prepended to o.After.
func (j *Job) ThenOpts(n int, o JobOptions, body func(i int)) *Job {
	if j.pool == nil {
		return &Job{err: fmt.Errorf("loopsched: Then on a zero Job")}
	}
	o.After = append([]*Job{j}, o.After...)
	return j.pool.SubmitOpts(n, o, body)
}

// ThenReduce submits a dependent reducing job (see SubmitReduce) that starts
// only after j completes and returns its handle; read the reduction from
// Result.
func (j *Job) ThenReduce(n int, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) *Job {
	return j.ThenReduceOpts(n, JobOptions{}, identity, combine, body)
}

// ThenReduceOpts is ThenReduce with per-job tuning options; j is prepended
// to o.After.
func (j *Job) ThenReduceOpts(n int, o JobOptions, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) *Job {
	if j.pool == nil {
		return &Job{err: fmt.Errorf("loopsched: ThenReduce on a zero Job")}
	}
	o.After = append([]*Job{j}, o.After...)
	return j.pool.SubmitReduceOpts(n, o, identity, combine, body)
}

// Stage describes one stage of a pipeline submitted with SubmitPipeline.
// Exactly one of Body, For and Reduce must be set.
type Stage struct {
	// N is the stage's iteration count.
	N int
	// Opts tunes the stage's job. Opts.After adds upstreams beyond the
	// previous stage (for joining side inputs into a pipeline).
	Opts JobOptions
	// Body is an element-wise loop body (the Submit shape).
	Body func(i int)
	// For is a chunked loop body (the SubmitFor shape).
	For func(worker, low, high int)
	// Reduce describes a reducing stage (the SubmitReduce shape).
	Reduce *ReduceStage
}

// ReduceStage is the reduction spec of a pipeline Stage.
type ReduceStage struct {
	Identity float64
	Combine  func(a, b float64) float64
	// Commutative declares Combine commutative, enabling elastic execution
	// (see JobOptions.Commutative).
	Commutative bool
	Body        func(worker, low, high int, acc float64) float64
}

// SubmitPipeline submits a linear chain of dependent stages in one call:
// stage i+1 starts only when stage i's join wave completes, without any
// client-side waiting in between — the completing worker releases the next
// stage inside the runtime. It returns one handle per stage, in order;
// waiting on the last handle waits for the whole pipeline, and canceling an
// early stage cancels everything after it. An invalid stage yields a failed
// handle whose error propagates down the remaining stages.
func (p *Pool) SubmitPipeline(stages ...Stage) []*Job {
	out := make([]*Job, len(stages))
	var prev *Job
	for i, st := range stages {
		o := st.Opts
		if prev != nil {
			o.After = append([]*Job{prev}, o.After...)
		}
		set := 0
		for _, ok := range []bool{st.Body != nil, st.For != nil, st.Reduce != nil} {
			if ok {
				set++
			}
		}
		var j *Job
		switch {
		case set != 1:
			j = p.failedJob(fmt.Errorf("loopsched: pipeline stage %d must set exactly one of Body, For and Reduce", i))
			// Thread the failure through the chain so later stages cancel.
			if prev != nil {
				j.err = fmt.Errorf("%w (after stage %d)", j.err, i-1)
			}
		case st.Body != nil:
			j = p.SubmitOpts(st.N, o, st.Body)
		case st.For != nil:
			j = p.SubmitForOpts(st.N, o, st.For)
		default:
			r := st.Reduce
			o.Commutative = o.Commutative || r.Commutative
			j = p.SubmitReduceOpts(st.N, o, r.Identity, r.Combine, r.Body)
		}
		out[i] = j
		prev = j
	}
	return out
}

// Group collects asynchronously submitted jobs for fan-out/fan-in: submit
// any number of loops from any goroutines, then Wait for all of them at
// once. The zero Group is not valid; obtain one from Pool.Group.
type Group struct {
	p  *Pool
	mu sync.Mutex
	js []*Job
}

// Group returns a new empty job group bound to the pool.
func (p *Pool) Group() *Group { return &Group{p: p} }

// add registers a job with the group and returns it.
func (g *Group) add(j *Job) *Job {
	g.mu.Lock()
	g.js = append(g.js, j)
	g.mu.Unlock()
	return j
}

// ForEach submits body over [0, n) as a job in the group.
func (g *Group) ForEach(n int, body func(i int)) *Job {
	return g.add(g.p.Submit(n, body))
}

// For submits a chunked loop as a job in the group.
func (g *Group) For(n int, body func(worker, low, high int)) *Job {
	return g.add(g.p.SubmitFor(n, body))
}

// Reduce submits a reducing loop as a job in the group; read its result from
// the returned handle after Wait.
func (g *Group) Reduce(n int, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) *Job {
	return g.add(g.p.SubmitReduce(n, identity, combine, body))
}

// Wait blocks until every job submitted through the group has completed and
// returns the first error encountered (in submission order). The group can
// keep accepting jobs while Wait runs; jobs added after Wait returns need a
// new Wait.
func (g *Group) Wait() error {
	g.mu.Lock()
	js := append([]*Job(nil), g.js...)
	g.mu.Unlock()
	var first error
	for _, j := range js {
		if err := j.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
