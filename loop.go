// Package loopsched is a low-overhead parallel loop scheduler for fine-grain
// (microsecond-scale) loops, reproducing the runtime described in
//
//	M. Arif and H. Vandierendonck, "POSTER: Reducing the Burden of Parallel
//	Loop Schedulers for Many-Core Processors", PPoPP 2018.
//
// A Pool owns a team of persistent workers (goroutines locked to OS
// threads). Parallel loops are published to the team with a single release
// wave and completed with a single join wave — the paper's *half-barrier*
// pattern — instead of the two (or, with reductions, three) full barriers a
// conventional fork/join runtime executes. Reductions are folded into the
// join wave, so a reducing loop costs exactly P-1 combine operations applied
// in iteration order, which keeps non-commutative reducers correct.
//
// # Quick start
//
//	pool := loopsched.New(loopsched.Config{})
//	defer pool.Close()
//
//	pool.ForEach(len(xs), func(i int) { xs[i] *= 2 })
//
//	sum := pool.ReduceFloat64(len(xs), 0,
//		func(a, b float64) float64 { return a + b },
//		func(w, lo, hi int, acc float64) float64 {
//			for i := lo; i < hi; i++ { acc += xs[i] }
//			return acc
//		})
//
// The baseline runtimes the paper compares against (an OpenMP-style
// fork/join runtime and a Cilk-style work-stealing runtime) live under
// internal/ and are exercised by the benchmark harness in cmd/ and
// bench_test.go; library users only need this package.
package loopsched

import (
	"fmt"

	"loopsched/internal/core"
	"loopsched/internal/reduce"
	"loopsched/internal/sched"
)

// BarrierKind selects the synchronisation substrate of a Pool.
type BarrierKind int

// Barrier kinds.
const (
	// BarrierTree is a topology-aligned tree barrier (the default and the
	// paper's choice).
	BarrierTree BarrierKind = iota
	// BarrierCentralized is a single-counter barrier; it is simpler but its
	// cost grows linearly with the worker count.
	BarrierCentralized
)

// Config configures a Pool. The zero value selects the defaults: all
// available processors, tree barrier, half-barrier synchronisation, workers
// locked to OS threads.
type Config struct {
	// Workers is the team size including the caller; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Barrier selects the synchronisation substrate.
	Barrier BarrierKind
	// FullBarrier disables the half-barrier optimisation and uses
	// conventional full barriers at fork and join; it exists for
	// experimentation and for reproducing the paper's ablation.
	FullBarrier bool
	// GroupSize overrides the number of workers assumed to share a cache
	// domain when shaping the barrier tree; <= 0 uses a heuristic.
	GroupSize int
	// InnerFanout and OuterFanout tune the barrier tree's fan-out within and
	// across groups; values < 2 select the defaults.
	InnerFanout, OuterFanout int
	// DisableThreadLock keeps workers as ordinary goroutines instead of
	// locking them to OS threads. Locking is the default because it gives
	// the scheduler stable worker identities; disable it when creating many
	// short-lived pools (for example, in tests).
	DisableThreadLock bool
}

// Pool is a team of persistent workers executing parallel loops for a single
// master goroutine (the goroutine that created the pool). Its methods are
// not safe for concurrent use from multiple goroutines.
type Pool struct {
	s *core.Scheduler
}

// New creates a pool. Call Close to release its workers.
func New(cfg Config) *Pool {
	kind := core.BarrierTree
	if cfg.Barrier == BarrierCentralized {
		kind = core.BarrierCentralized
	}
	mode := core.ModeHalf
	if cfg.FullBarrier {
		mode = core.ModeFull
	}
	s := core.New(core.Config{
		Workers:      cfg.Workers,
		Barrier:      kind,
		Mode:         mode,
		GroupSize:    cfg.GroupSize,
		InnerFanout:  cfg.InnerFanout,
		OuterFanout:  cfg.OuterFanout,
		LockOSThread: !cfg.DisableThreadLock,
	})
	return &Pool{s: s}
}

// NewDefault creates a pool with the default configuration.
func NewDefault() *Pool { return New(Config{}) }

// Workers returns the team size, including the master.
func (p *Pool) Workers() int { return p.s.P() }

// Close releases the pool's workers. The pool must not be used afterwards.
// Close is idempotent.
func (p *Pool) Close() { p.s.Close() }

// Scheduler exposes the underlying runtime through the internal scheduler
// interface; it is used by the benchmark harness and example applications
// that accept any runtime.
func (p *Pool) Scheduler() sched.Scheduler { return p.s }

// String implements fmt.Stringer.
func (p *Pool) String() string {
	return fmt.Sprintf("loopsched.Pool{workers=%d, %s, %s}", p.s.P(), p.s.Config().Barrier, p.s.Config().Mode)
}

// For executes body over contiguous chunks of [0, n), one chunk per worker
// (static block partitioning). body receives the worker index and the
// half-open chunk bounds.
func (p *Pool) For(n int, body func(worker, low, high int)) {
	p.s.For(n, body)
}

// ForRange executes body over contiguous chunks of [0, n) without exposing
// the worker index.
func (p *Pool) ForRange(n int, body func(low, high int)) {
	p.s.For(n, func(w, low, high int) { body(low, high) })
}

// ForEach executes body once per index in [0, n).
func (p *Pool) ForEach(n int, body func(i int)) {
	p.s.For(n, func(w, low, high int) {
		for i := low; i < high; i++ {
			body(i)
		}
	})
}

// ReduceFloat64 executes a reducing loop over [0, n): each worker folds its
// chunk into a private accumulator starting at identity, and the per-worker
// results are combined — inside the join wave, in iteration order — with
// combine.
func (p *Pool) ReduceFloat64(n int, identity float64, combine func(a, b float64) float64, body func(worker, low, high int, acc float64) float64) float64 {
	return p.s.ForReduce(n, identity, combine, body)
}

// ReduceVec executes a loop that accumulates element-wise into a vector of
// width float64 values (for example, the moment sums of a regression) and
// returns the combined vector.
func (p *Pool) ReduceVec(n, width int, body func(worker, low, high int, acc []float64)) []float64 {
	return p.s.ForReduceVec(n, width, body)
}

// Op describes a reduction operation over values of type T: an identity
// constructor and an associative (not necessarily commutative) combine.
type Op[T any] = reduce.Op[T]

// SumOp returns the addition reduction for a numeric type.
func SumOp[T int | int32 | int64 | float32 | float64]() Op[T] { return reduce.Sum[T]() }

// MaxOp returns the maximum reduction with the given lowest value as
// identity.
func MaxOp[T int | int32 | int64 | float32 | float64](lowest T) Op[T] { return reduce.Max[T](lowest) }

// MinOp returns the minimum reduction with the given highest value as
// identity.
func MinOp[T int | int32 | int64 | float32 | float64](highest T) Op[T] { return reduce.Min[T](highest) }

// AppendOp returns the slice-concatenation reduction — the canonical
// non-commutative (ordered) reducer.
func AppendOp[T any]() Op[[]T] { return reduce.Append[T]() }

// Reduce executes a reducing loop with an arbitrary view type T. Per-worker
// views are allocated statically before the loop starts (the paper's
// replacement for lazily created Cilk reducer views) and folded into the
// join wave in iteration order with exactly Workers()-1 combine operations.
func Reduce[T any](p *Pool, n int, op Op[T], body func(worker, low, high int, acc T) T) T {
	views := reduce.NewViews(op, p.Workers())
	p.s.ForCombine(n,
		func(w, low, high int) {
			views.Set(w, body(w, low, high, views.Get(w)))
		},
		views.CombineInto,
	)
	return views.Root()
}

// Reducer is a reusable reduction variable bound to a pool: the equivalent
// of a Cilk reducer hyperobject, except that its per-worker views are
// allocated once (statically) and reused across loops instead of being
// created lazily and merged at steals. Use it when the same reduction
// variable is updated from many loops, or when a loop updates several
// reduction variables at once.
type Reducer[T any] struct {
	pool  *Pool
	op    Op[T]
	views *reduce.Views[T]
}

// NewReducer creates a reducer bound to the pool.
func NewReducer[T any](p *Pool, op Op[T]) *Reducer[T] {
	return &Reducer[T]{pool: p, op: op, views: reduce.NewViews(op, p.Workers())}
}

// View returns a pointer-free accessor pair for worker w: the current view
// value and a setter. Most callers should use Update instead.
func (r *Reducer[T]) View(w int) T { return r.views.Get(w) }

// Update folds x into worker w's view. It must only be called from loop
// bodies running on the reducer's pool, using the worker index the body
// received.
func (r *Reducer[T]) Update(w int, x T) { r.views.Update(w, x) }

// Set overwrites worker w's view.
func (r *Reducer[T]) Set(w int, x T) { r.views.Set(w, x) }

// ForCombine runs a loop on the reducer's pool and folds the reducer's
// views inside the join wave; after it returns, the combined value is
// available from Value. Exactly Workers()-1 combines are performed.
func (r *Reducer[T]) ForCombine(n int, body func(worker, low, high int)) {
	r.pool.s.ForCombine(n, body, r.views.CombineInto)
}

// Value returns the reduction of all views (after ForCombine, that is the
// root view) and resets the reducer for reuse.
func (r *Reducer[T]) Value() T {
	v := r.views.Fold()
	return v
}
