// Map-reduce example: Phoenix++-style jobs on top of the loop runtimes. It
// runs the linear-regression workload of Figure 3 (an array-container job
// whose reduction is folded into the scheduler's join wave) and a
// word-count-style hash-container job, comparing the fine-grain runtime with
// the Cilk-style baseline.
//
//	go run ./examples/mapreduce [-points N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"loopsched"
	"loopsched/internal/cilk"
	"loopsched/internal/linreg"
	"loopsched/internal/phoenix"
	"loopsched/internal/sched"
)

func main() {
	var (
		points  = flag.Int("points", 2<<20, "number of (x,y) samples for the regression")
		workers = flag.Int("workers", 0, "worker count (0 = all processors)")
	)
	flag.Parse()

	pool := loopsched.New(loopsched.Config{Workers: *workers})
	defer pool.Close()
	fineGrain := pool.Scheduler()

	baseline := cilk.New(cilk.Config{Workers: *workers})
	defer baseline.Close()

	// --- Linear regression (Figure 3 workload) ---------------------------
	data := linreg.Generate(*points)
	fmt.Printf("linear regression over %d points\n", *points)
	for _, rt := range []sched.Scheduler{fineGrain, baseline} {
		start := time.Now()
		stats, err := data.Run(rt)
		if err != nil {
			fatal(err)
		}
		fit, err := stats.Solve()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-18s y = %.4f·x %+.2f  (R²=%.3f)  in %v\n",
			rt.Name(), fit.Slope, fit.Intercept, fit.R2, time.Since(start).Round(time.Microsecond))
	}

	// --- Histogram: an array-container job -------------------------------
	const buckets = 16
	hist := phoenix.ArrayJob{
		NumKeys: buckets,
		Map: func(w, begin, end int, emit []float64) {
			for i := begin; i < end; i++ {
				emit[int(data.Points[i].Y)*buckets/256]++
			}
		},
	}
	counts, err := hist.Run(fineGrain, len(data.Points))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nhistogram of y values (%d buckets):\n", buckets)
	for b, c := range counts {
		fmt.Printf("  [%3d..%3d) %8.0f\n", b*256/buckets, (b+1)*256/buckets, c)
	}

	// --- Word count: a hash-container job ---------------------------------
	words := []string{"half", "barrier", "loop", "scheduler", "fine", "grain", "reduction", "tree"}
	text := make([]string, 200000)
	for i := range text {
		text[i] = words[(i*i+3*i)%len(words)]
	}
	wc := phoenix.HashJob[string, int]{
		Map: func(w, begin, end int, emit func(string, int)) {
			for i := begin; i < end; i++ {
				emit(text[i], 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
	}
	result, err := wc.Run(fineGrain, len(text))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nword counts over %d tokens:\n", len(text))
	for _, w := range words {
		fmt.Printf("  %-10s %d\n", w, result[w])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapreduce example:", err)
	os.Exit(1)
}
