// Command pipeline demonstrates job pipelines: parallel-loop stages chained
// through runtime dependencies — each stage starts the moment the previous
// stage's join wave completes, with no client-side waiting in between — plus
// a fan-out/fan-in diamond and cancellation propagating down a chain.
package main

import (
	"errors"
	"fmt"

	"loopsched"
)

func main() {
	pool := loopsched.New(loopsched.Config{})
	defer pool.Close()
	fmt.Printf("pool: %v\n", pool)

	const n = 1 << 20
	data := make([]float64, n)

	// A linear produce -> transform -> reduce pipeline via Then/ThenReduce.
	// Only the last handle is waited on; the intermediate releases happen
	// inside the runtime's join waves.
	last := pool.Submit(n, func(i int) { data[i] = float64(i) }).
		Then(n, func(i int) { data[i] *= 2 }).
		ThenReduce(n, 0,
			func(a, b float64) float64 { return a + b },
			func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			})
	sum, err := last.Result()
	if err != nil {
		panic(err)
	}
	want := float64(n) * float64(n-1) // sum of 2i over [0, n)
	fmt.Printf("chain:   sum = %.0f (want %.0f)\n", sum, want)

	// The same shape with SubmitPipeline: one call, one handle per stage.
	stages := pool.SubmitPipeline(
		loopsched.Stage{N: n, Body: func(i int) { data[i] = float64(i) }},
		loopsched.Stage{N: n, For: func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] += 1
			}
		}},
		loopsched.Stage{N: n, Reduce: &loopsched.ReduceStage{
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			Body: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i]
				}
				return acc
			},
		}},
	)
	sum, err = stages[len(stages)-1].Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("stages:  sum = %.0f (want %.0f)\n", sum, float64(n)*float64(n-1)/2+n)

	// Fan-out/fan-in with JobOptions.After: one source, three dependent
	// transforms that all wait for it, one sink that waits for all three.
	parts := make([][]float64, 3)
	src := pool.Submit(n, func(i int) { data[i] = 1 })
	var mids []*loopsched.Job
	for k := 0; k < 3; k++ {
		k := k
		parts[k] = make([]float64, n)
		mids = append(mids, pool.SubmitOpts(n,
			loopsched.JobOptions{After: []*loopsched.Job{src}},
			func(i int) { parts[k][i] = data[i] * float64(k+1) }))
	}
	sink := pool.SubmitReduceOpts(n,
		loopsched.JobOptions{After: mids, Commutative: true},
		0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += parts[0][i] + parts[1][i] + parts[2][i]
			}
			return acc
		})
	sum, err = sink.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("diamond: sum = %.0f (want %d)\n", sum, 6*n)

	// Canceling an upstream cancels the whole downstream chain: the stats
	// report the dependents as propagated cancels, and their errors match
	// ErrCanceled while wrapping the upstream's.
	gate := make(chan struct{})
	blocker := pool.Submit(1, func(i int) { <-gate })
	head := blocker.Then(n, func(i int) {}) // blocked behind the gate
	tail := head.Then(n, func(i int) {})    // blocked on head
	head.Cancel()                           // cancels head...
	err = tail.Wait()                       // ...and, transitively, tail
	close(gate)
	blocker.Wait()
	fmt.Printf("cancel:  tail err = %q (is ErrCanceled: %v)\n", err, errors.Is(err, loopsched.ErrCanceled))

	st := pool.AsyncStats()
	fmt.Printf("stats:   released=%d dep-canceled=%d blocked=%d\n",
		st.Total.Released, st.Total.DepCanceled, st.Total.BlockedDepth)
}
