// Reduction example: demonstrates the reducer facilities of the public API —
// scalar reductions merged into the join wave, reusable Reducer values (the
// statically allocated replacement for Cilk reducer hyperobjects), ordered
// non-commutative reductions, and how many combine operations each runtime
// performs for the same loop (P-1 for the fine-grain runtime versus a number
// proportional to the task count for the Cilk-style baseline).
//
//	go run ./examples/reduction [-workers N]
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"loopsched"
	"loopsched/internal/cilk"
	"loopsched/internal/trace"
)

func main() {
	workers := flag.Int("workers", 0, "worker count (0 = all processors)")
	flag.Parse()

	pool := loopsched.New(loopsched.Config{Workers: *workers})
	defer pool.Close()
	p := pool.Workers()

	const n = 1 << 20
	values := make([]float64, n)
	for i := range values {
		values[i] = math.Sin(float64(i) * 1e-3)
	}

	// Scalar reduction: the dot product of the signal with itself.
	energy := pool.ReduceFloat64(n, 0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += values[i] * values[i]
			}
			return acc
		})
	fmt.Printf("signal energy = %.3f (on %d workers)\n", energy, p)

	// Generic reductions: min, max and an ordered argmax built from an
	// Append reducer (ordered, non-commutative — ties resolve to the lowest
	// index exactly as a sequential scan would).
	min := loopsched.Reduce(pool, n, loopsched.MinOp[float64](math.Inf(1)),
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				if values[i] < acc {
					acc = values[i]
				}
			}
			return acc
		})
	max := loopsched.Reduce(pool, n, loopsched.MaxOp[float64](math.Inf(-1)),
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				if values[i] > acc {
					acc = values[i]
				}
			}
			return acc
		})
	fmt.Printf("range = [%.6f, %.6f]\n", min, max)

	// A reusable Reducer updated from several loops before being read.
	histogram := loopsched.NewReducer(pool, loopsched.SumOp[int64]())
	for pass := 0; pass < 4; pass++ {
		lo, hi := pass*(n/4), (pass+1)*(n/4)
		histogram.ForCombine(hi-lo, func(w, a, b int) {
			count := int64(0)
			for i := a; i < b; i++ {
				if values[lo+i] > 0 {
					count++
				}
			}
			histogram.Update(w, count)
		})
	}
	fmt.Printf("positive samples (accumulated over 4 loops) = %d of %d\n", histogram.Value(), n)

	// Compare reduction machinery: the fine-grain runtime's combine count is
	// exactly P-1 per reducing loop; the Cilk-style baseline's grows with
	// the number of spawned tasks.
	baseline := cilk.New(cilk.Config{Workers: *workers})
	defer baseline.Close()
	baseline.Counters().Reset()
	_ = baseline.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += values[i]
			}
			return acc
		})
	fgCombines := int64(p - 1)
	ckCombines := baseline.Counters().Get(trace.Reductions)
	ckViews := baseline.Counters().Get(trace.ViewsCreated)
	fmt.Println()
	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("combine operations for one reducing loop over %d elements:\n", n)
	fmt.Printf("  fine-grain (merged into join half-barrier): %d  (= P-1)\n", fgCombines)
	fmt.Printf("  cilk-style baseline (per spawned task):     %d combines, %d views created\n", ckCombines, ckViews)
}
