// Quickstart: the smallest useful program built on the public loopsched API.
// It creates a pool, runs a data-parallel transform, a scalar reduction and
// an ordered (non-commutative) generic reduction, and prints the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"loopsched"
)

func main() {
	pool := loopsched.New(loopsched.Config{})
	defer pool.Close()
	fmt.Println("pool:", pool)

	// A data-parallel transform: every index handled exactly once.
	const n = 1 << 20
	xs := make([]float64, n)
	pool.ForEach(n, func(i int) {
		xs[i] = math.Sqrt(float64(i))
	})

	// A scalar reduction folded into the scheduler's join wave.
	sum := pool.ReduceFloat64(n, 0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				acc += xs[i]
			}
			return acc
		})
	fmt.Printf("sum of sqrt(0..%d) = %.3f\n", n-1, sum)

	// A vector reduction: several statistics in one pass.
	stats := pool.ReduceVec(n, 3, func(w, lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			acc[0] += xs[i]
			acc[1] += xs[i] * xs[i]
			acc[2]++
		}
	})
	mean := stats[0] / stats[2]
	variance := stats[1]/stats[2] - mean*mean
	fmt.Printf("mean = %.3f, variance = %.3f over %d samples\n", mean, variance, int(stats[2]))

	// An ordered generic reduction (the canonical non-commutative reducer):
	// collecting the indices of local maxima in index order.
	peaks := loopsched.Reduce(pool, n-2, loopsched.AppendOp[int](),
		func(w, lo, hi int, acc []int) []int {
			for i := lo; i < hi; i++ {
				j := i + 1 // interior index
				if xs[j] > xs[j-1] && xs[j] > xs[j+1] {
					acc = append(acc, j)
				}
			}
			return acc
		})
	fmt.Printf("found %d local maxima (sqrt is monotone, so expect 0)\n", len(peaks))

	// The same pool can run many loops back to back; this is the fine-grain
	// regime the scheduler is built for.
	total := 0.0
	for step := 0; step < 1000; step++ {
		total += pool.ReduceFloat64(4096, 0,
			func(a, b float64) float64 { return a + b },
			func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += float64(i % 7)
				}
				return acc
			})
	}
	fmt.Printf("1000 back-to-back fine-grain reducing loops: total = %.0f\n", total)
}
