// Command asyncjobs demonstrates the asynchronous multi-job API: many
// goroutines submit parallel loops to one shared pool, fan out a group and
// read a reduction result from a job handle.
package main

import (
	"fmt"
	"sync"

	"loopsched"
)

func main() {
	pool := loopsched.New(loopsched.Config{})
	defer pool.Close()
	fmt.Printf("pool: %v\n", pool)

	// Concurrent tenants: each goroutine submits its own loop jobs.
	var wg sync.WaitGroup
	var total sync.Map
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			n := 100000 * (tenant + 1)
			j := pool.SubmitReduce(n, 0,
				func(a, b float64) float64 { return a + b },
				func(w, lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				})
			sum, err := j.Result()
			if err != nil {
				panic(err)
			}
			total.Store(tenant, sum)
		}(tenant)
	}
	wg.Wait()
	for tenant := 0; tenant < 4; tenant++ {
		v, _ := total.Load(tenant)
		n := 100000 * (tenant + 1)
		fmt.Printf("tenant %d: sum over [0,%d) = %.0f (want %.0f)\n",
			tenant, n, v, float64(n)*float64(n-1)/2)
	}

	// Fan-out/fan-in with a Group.
	g := pool.Group()
	out := make([]int, 1<<16)
	g.ForEach(len(out), func(i int) { out[i] = 2 * i })
	count := g.Reduce(len(out), 0,
		func(a, b float64) float64 { return a + b },
		func(w, lo, hi int, acc float64) float64 { return acc + float64(hi-lo) })
	if err := g.Wait(); err != nil {
		panic(err)
	}
	c, _ := count.Result()
	fmt.Printf("group: doubled %d elements, counted %.0f\n", len(out), c)

	// Cancellation: a job canceled before it starts never runs.
	j := pool.Submit(10, func(i int) { fmt.Println("should not print") })
	if j.Cancel() {
		fmt.Println("canceled a queued job:", func() error { return j.Wait() }())
	} else {
		fmt.Println("job started before cancel; result:", func() error { return j.Wait() }())
	}
}
