// MPDATA example: advect a scalar field on the paper's 5568-point,
// 16399-edge unstructured grid with the fine-grain scheduler, reporting mass
// conservation and field extrema as the simulation progresses — the workload
// of Figure 2 of the paper, run as an application rather than a benchmark.
//
//	go run ./examples/mpdata [-steps N] [-workers N] [-report N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"loopsched"
	"loopsched/internal/grid"
	"loopsched/internal/mpdata"
)

func main() {
	var (
		steps   = flag.Int("steps", 200, "number of time steps")
		workers = flag.Int("workers", 0, "worker count (0 = all processors)")
		report  = flag.Int("report", 50, "report diagnostics every N steps")
	)
	flag.Parse()

	g, err := grid.NewPaperGrid()
	if err != nil {
		fatal(err)
	}
	solver, err := mpdata.New(g, mpdata.Config{Corrective: 1})
	if err != nil {
		fatal(err)
	}

	pool := loopsched.New(loopsched.Config{Workers: *workers})
	defer pool.Close()
	run := pool.Scheduler()

	fmt.Printf("MPDATA on %d points / %d edges, dt = %.4f, %d workers\n",
		g.NumPoints, g.NumEdges(), solver.Dt(), pool.Workers())
	fmt.Printf("each time step issues %d parallel loops of a few microseconds each\n\n", solver.LoopsPerStep())

	mass0 := solver.Mass(run)
	start := time.Now()
	for s := 1; s <= *steps; s++ {
		solver.Step(run)
		if s%*report == 0 || s == *steps {
			mass := solver.Mass(run)
			min, max := solver.MinMax(run)
			fmt.Printf("step %4d: mass drift %+.2e   field range [%.4f, %.4f]\n",
				s, (mass-mass0)/mass0, min, max)
		}
	}
	elapsed := time.Since(start)
	loops := *steps * solver.LoopsPerStep()
	fmt.Printf("\n%d steps (%d parallel loops) in %v — %.1f µs per loop\n",
		*steps, loops, elapsed.Round(time.Millisecond), float64(elapsed.Microseconds())/float64(loops))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpdata example:", err)
	os.Exit(1)
}
