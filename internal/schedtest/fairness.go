// fairness.go extends the invariant harness with the two scheduling-policy
// invariants of the weighted-fair admission layer:
//
//   - weighted share: under sustained saturation by two tenants with
//     configured weights, the served-work ratio over a long window stays
//     within a tolerance of the weight ratio;
//   - no starvation: a light tenant's occasional jobs complete within a
//     bounded time while a heavy tenant floods the pool continuously — the
//     fair queue guarantees every admitted job is eventually served.
//
// Job bodies are time-bound (they sleep), not CPU-bound: a job occupies a
// worker for a fixed service time while leaving the whole CPU to the
// submitter goroutines, so demand genuinely exceeds capacity — and the
// tenants' queues stay backlogged — on any machine, including single-core
// CI runners where CPU-bound load generators could never outrun the workers
// they feed. (Weighted fairness is only observable while every tenant stays
// backlogged: a work-conserving scheduler serves an intermittently idle
// queue at whatever ratio the arrivals dictate.)
//
// Both invariants drive real runtimes (single scheduler or sharded pool)
// end to end; FuzzTenantAccounting covers the fair queue's own bookkeeping.
package schedtest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/jobs"
)

// FairnessOptions parameterizes the policy invariants.
type FairnessOptions struct {
	// TenantA and TenantB name the two accounts; their weights must already
	// be registered on the runner (WeightA and WeightB repeat them here for
	// the assertion).
	TenantA, TenantB string
	WeightA, WeightB int
	// Streams is the number of submitters per tenant, each keeping Window
	// jobs in flight; <= 0 selects 4 (and Window 8).
	Streams int
	Window  int
	// ServiceTime is how long each job occupies its worker; <= 0 selects
	// 200µs.
	ServiceTime time.Duration
	// WindowJobs is the number of completions the measured window spans;
	// <= 0 selects 1200 (400 in -short mode).
	WindowJobs int
	// Tolerance is the allowed relative deviation of the served-job ratio
	// from WeightA/WeightB; <= 0 selects 0.15.
	Tolerance float64
	// Deadline bounds the whole run; <= 0 selects 60s.
	Deadline time.Duration
}

func (o *FairnessOptions) normalize(short bool) {
	if o.TenantA == "" {
		o.TenantA = "share-a"
	}
	if o.TenantB == "" {
		o.TenantB = "share-b"
	}
	if o.WeightA <= 0 {
		o.WeightA = 3
	}
	if o.WeightB <= 0 {
		o.WeightB = 1
	}
	if o.Streams <= 0 {
		o.Streams = 4
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 200 * time.Microsecond
	}
	if o.WindowJobs <= 0 {
		o.WindowJobs = 1200
		if short {
			o.WindowJobs = 400
		}
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.15
	}
	if o.Deadline <= 0 {
		o.Deadline = 60 * time.Second
	}
}

// request builds one single-chunk time-bound job for the given tenant.
func (o *FairnessOptions) request(tenant string) jobs.Request {
	d := o.ServiceTime
	return jobs.Request{N: 1, Tenant: tenant, Body: func(w, lo, hi int) { time.Sleep(d) }}
}

// RunWeightedShareInvariant saturates the runner with two tenants of the
// given weights and asserts that the served-job ratio over a window of
// completions matches the weight ratio within the tolerance. tenants must
// return the runner's current per-tenant accounting (for a sharded pool,
// the merged totals). The window is delimited by completion counts, not
// wall time, so the check is robust to machine speed.
func RunWeightedShareInvariant(t *testing.T, runner JobRunner, tenants func() map[string]jobs.TenantStats, opt FairnessOptions) {
	t.Helper()
	opt.normalize(testing.Short())

	var stop atomic.Bool
	var completions atomic.Int64
	var wg sync.WaitGroup
	stream := func(tenant string) {
		defer wg.Done()
		inflight := make([]*jobs.Job, 0, opt.Window)
		for !stop.Load() {
			j, err := runner.Submit(opt.request(tenant))
			if err != nil {
				t.Errorf("weighted-share: submit: %v", err)
				return
			}
			inflight = append(inflight, j)
			if len(inflight) < opt.Window {
				continue
			}
			j, inflight = inflight[0], inflight[1:]
			if _, err := waitDeadline(j, opt.Deadline); err != nil {
				t.Errorf("weighted-share: wait: %v", err)
				return
			}
			completions.Add(1)
		}
		for _, j := range inflight {
			if _, err := waitDeadline(j, opt.Deadline); err != nil {
				t.Errorf("weighted-share: drain: %v", err)
				return
			}
		}
	}
	for i := 0; i < opt.Streams; i++ {
		wg.Add(2)
		go stream(opt.TenantA)
		go stream(opt.TenantB)
	}

	// Warm up until admission reaches steady state, then measure a fixed
	// number of completions from the runtime's own tenant accounts.
	deadline := time.Now().Add(opt.Deadline)
	waitCompletions := func(target int64, what string) bool {
		for completions.Load() < target {
			if time.Now().After(deadline) {
				t.Errorf("weighted-share: %s did not reach %d completions in time", what, target)
				stop.Store(true)
				wg.Wait()
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return true
	}
	if !waitCompletions(int64(opt.WindowJobs/4), "warmup") {
		return
	}
	before := tenants()
	if !waitCompletions(completions.Load()+int64(opt.WindowJobs), "measurement window") {
		return
	}
	after := tenants()
	stop.Store(true)
	wg.Wait()

	servedA := after[opt.TenantA].Completed - before[opt.TenantA].Completed
	servedB := after[opt.TenantB].Completed - before[opt.TenantB].Completed
	if servedA <= 0 || servedB <= 0 {
		t.Fatalf("weighted-share: window served A=%d B=%d jobs; both tenants must progress", servedA, servedB)
	}
	ratio := float64(servedA) / float64(servedB)
	want := float64(opt.WeightA) / float64(opt.WeightB)
	dev := (ratio - want) / want
	if dev < 0 {
		dev = -dev
	}
	t.Logf("weighted-share: served %d:%d jobs, ratio %.3f vs weight ratio %.3f (%.1f%% off)",
		servedA, servedB, ratio, want, dev*100)
	if dev > opt.Tolerance {
		t.Errorf("weighted-share: served ratio %.3f deviates %.1f%% from the %d:%d weights, want <= %.0f%%",
			ratio, dev*100, opt.WeightA, opt.WeightB, opt.Tolerance*100)
	}
}

// RunNoStarvationInvariant floods the runner with one heavy tenant while a
// light tenant submits occasional jobs one at a time; every light job must
// complete within the deadline (no admitted job waits forever behind the
// flood), and the flood itself must drain cleanly afterwards.
func RunNoStarvationInvariant(t *testing.T, runner JobRunner, opt FairnessOptions) {
	t.Helper()
	opt.normalize(testing.Short())

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 2*opt.Streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inflight := make([]*jobs.Job, 0, opt.Window)
			for !stop.Load() {
				j, err := runner.Submit(opt.request("flood"))
				if err != nil {
					t.Errorf("no-starvation: flood submit: %v", err)
					return
				}
				inflight = append(inflight, j)
				if len(inflight) == opt.Window {
					j, inflight = inflight[0], inflight[1:]
					if _, err := waitDeadline(j, opt.Deadline); err != nil {
						t.Errorf("no-starvation: flood wait: %v", err)
						return
					}
				}
			}
			for _, j := range inflight {
				if _, err := waitDeadline(j, opt.Deadline); err != nil {
					t.Errorf("no-starvation: flood drain: %v", err)
					return
				}
			}
		}()
	}

	sparse := 25
	if testing.Short() {
		sparse = 10
	}
	for i := 0; i < sparse; i++ {
		req := opt.request("sparse")
		if i%2 == 1 {
			// Alternate priority classes: both the weighted-fair path (same
			// class as the flood) and the priority path must make progress.
			req.Priority = 2
			req.Deadline = time.Now().Add(opt.Deadline)
		}
		j, err := runner.Submit(req)
		if err != nil {
			t.Errorf("no-starvation: sparse submit %d: %v", i, err)
			break
		}
		if _, err := waitDeadline(j, opt.Deadline); err != nil {
			t.Errorf("no-starvation: sparse job %d starved under continuous load: %v", i, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}
