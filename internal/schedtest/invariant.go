// invariant.go is the deterministic invariant harness for the multi-tenant
// jobs runtimes: it drives a jobs scheduler (single or sharded) with a
// seeded pseudo-random operation stream — submissions of plain, commutative-
// reducing and ordered-reducing loops of random sizes, grains, worker caps,
// tenants, priorities and deadlines, interleaved with cancels — and asserts
// the runtime's structural invariants after every run:
//
//   - every loop index of every completed job executed exactly once
//     (elastic growth, peeling, cross-shard stealing and lending must never
//     duplicate or drop a chunk);
//   - every join wave completes: Wait returns for every submitted job
//     within a deadline, with either a verified result or ErrCanceled;
//   - canceled jobs never ran any iteration;
//   - a dependent job (submitted with Request.After) never starts before
//     its upstream's join wave completes, and a canceled upstream cancels
//     its dependents (which never run) without leaking blocked jobs;
//   - no worker is lost: after the stream drains, the pool reports zero
//     busy workers, zero queue depth, zero blocked jobs and zero running
//     jobs, and still completes a fresh full-width job.
//
// The op stream is a pure function of InvariantOptions.Seed, so a failure
// reproduces by re-running with the logged seed. Run it under -race: the
// marks arrays double as data-race probes for overlapping chunk execution.
package schedtest

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/loadgen"
)

// JobRunner is the surface the invariant harness drives: jobs.Scheduler and
// jobs.Sharded both implement it.
type JobRunner interface {
	Submit(jobs.Request) (*jobs.Job, error)
}

// BatchRunner is the batched-admission surface; runners that implement it
// (both jobs.Scheduler and jobs.Sharded do) get SubmitBatch ops mixed into
// the invariant stream, racing batches against single submissions, cancels
// and handle recycling.
type BatchRunner interface {
	SubmitBatch(reqs []jobs.Request, out []*jobs.Job) error
}

// InvariantOptions parameterizes the op stream.
type InvariantOptions struct {
	// Seed seeds the op stream; the same seed replays the same stream
	// (subject to runtime scheduling, which the invariants are robust to).
	Seed int64
	// Tenants is the number of concurrent submitter goroutines; <= 0
	// selects 6.
	Tenants int
	// OpsPerTenant is the number of jobs each tenant submits; <= 0 selects
	// 40.
	OpsPerTenant int
	// MaxN bounds the per-job iteration count; <= 0 selects 2048.
	MaxN int
	// CancelPercent is the percentage of jobs each tenant cancels right
	// after submission (racing admission on purpose); < 0 selects 0,
	// default 20.
	CancelPercent int
	// Deadline bounds every Wait and the final drain; <= 0 selects 30s.
	Deadline time.Duration
}

func (o *InvariantOptions) normalize() {
	if o.Tenants <= 0 {
		o.Tenants = 6
	}
	if o.OpsPerTenant <= 0 {
		o.OpsPerTenant = 40
	}
	if o.MaxN <= 0 {
		o.MaxN = 2048
	}
	if o.CancelPercent == 0 {
		o.CancelPercent = 20
	}
	if o.CancelPercent < 0 {
		o.CancelPercent = 0
	}
	if o.Deadline <= 0 {
		o.Deadline = 30 * time.Second
	}
}

// DrainStats is the post-run occupancy snapshot the harness polls for the
// no-lost-worker invariant. Blocked is the runtime's blocked-depth gauge: a
// canceled upstream must never leave a dependent parked forever.
type DrainStats struct {
	BusyWorkers int
	QueueDepth  int
	Running     int
	Blocked     int
}

// RunJobInvariants drives the runner with the seeded op stream and asserts
// the invariants. drained must return the runner's current occupancy (for a
// sharded pool, the merged totals); totalWorkers is the full worker count a
// final post-drain job must be able to use.
func RunJobInvariants(t *testing.T, runner JobRunner, opt InvariantOptions, totalWorkers int, drained func() DrainStats) {
	t.Helper()
	opt.normalize()
	t.Logf("invariant stream: seed=%d tenants=%d ops=%d", opt.Seed, opt.Tenants, opt.OpsPerTenant)

	var wg sync.WaitGroup
	for tnt := 0; tnt < opt.Tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			// Each tenant derives its own deterministic stream from the seed.
			rng := rand.New(rand.NewSource(opt.Seed + int64(tnt)*1_000_003))
			for op := 0; op < opt.OpsPerTenant; op++ {
				runOneOp(t, runner, rng, opt, tnt, op)
			}
		}(tnt)
	}
	wg.Wait()

	// No worker lost, part 1: the pool must drain to zero occupancy — the
	// blocked gauge included: every dependent was either released by its
	// upstream's join wave or canceled by propagation, never parked forever.
	// The counters are decremented just after job completion is published,
	// so poll briefly instead of asserting instantly.
	deadline := time.Now().Add(opt.Deadline)
	for {
		d := drained()
		if d.BusyWorkers == 0 && d.QueueDepth == 0 && d.Running == 0 && d.Blocked == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not drain: %+v (workers lost, job stuck, or blocked dependent leaked)", d)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// No worker lost, part 2: a fresh job spanning the whole pool still
	// completes — every worker is reachable after the churn.
	n := totalWorkers * 64
	var covered atomic.Int64
	j, err := runner.Submit(jobs.Request{N: n, Grain: 1, Body: func(w, lo, hi int) {
		covered.Add(int64(hi - lo))
	}})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	if _, err := waitDeadline(j, opt.Deadline); err != nil {
		t.Fatalf("post-drain job: %v", err)
	}
	if covered.Load() != int64(n) {
		t.Fatalf("post-drain job covered %d of %d iterations", covered.Load(), n)
	}
}

// policyFields draws the scheduling-policy dimensions of one op from the
// shared loadgen traffic model (tenants deliberately shared across submitter
// goroutines so their streams interleave inside one account). The tenant and
// priority are pure functions of the seed; the deadline must be an absolute
// time, so its presence and tightness are seeded but its anchor is not — the
// invariants do not depend on it (a missed deadline only increments
// counters; ordering differences are what the stream explores).
func policyFields(rng *rand.Rand, req *jobs.Request) {
	d := loadgen.DefaultPolicy().Draw(rng)
	req.Tenant = d.Tenant
	req.Priority = d.Priority
	if d.DeadlineMs > 0 {
		req.Deadline = time.Now().Add(time.Duration(d.DeadlineMs) * time.Millisecond)
	}
}

// runOneOp submits (and possibly cancels) one pseudo-random job and checks
// its outcome.
func runOneOp(t *testing.T, runner JobRunner, rng *rand.Rand, opt InvariantOptions, tnt, op int) {
	t.Helper()
	n := rng.Intn(opt.MaxN + 1) // 0 is a legal degenerate loop
	if rng.Intn(4) == 0 {
		runDepOp(t, runner, rng, opt, tnt, op, n)
		return
	}
	// The draw happens for every runner so the stream stays a pure function
	// of the seed; only runners with batched admission act on it.
	if rng.Intn(5) == 0 {
		if br, ok := runner.(BatchRunner); ok {
			runBatchOp(t, br, rng, opt, tnt, op)
			return
		}
	}
	kind := rng.Intn(3)
	grain := 0
	if rng.Intn(2) == 0 {
		grain = 1 + rng.Intn(64)
	}
	maxWorkers := 0
	if rng.Intn(3) == 0 {
		maxWorkers = 1 + rng.Intn(4)
	}
	cancel := rng.Intn(100) < opt.CancelPercent
	// Suspend/resume churn rides the same stream: a checkpointed pause must
	// be invisible to every invariant below (exactly-once marks, closed-form
	// sums, ordered folds). Cancels race admission already; suspending a
	// canceled handle would just be a refusal, so churn the others.
	suspend := !cancel && rng.Intn(4) == 0

	var marks []int32 // exactly-once probe for plain jobs
	var req jobs.Request
	switch kind {
	case 0: // plain loop: every index marked exactly once
		marks = make([]int32, n)
		req = jobs.Request{N: n, Grain: grain, MaxWorkers: maxWorkers, Body: func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		}}
	case 1: // commutative reduction: closed-form sum, exact in float64
		req = jobs.Request{
			N: n, Grain: grain, MaxWorkers: maxWorkers, Commutative: true,
			Combine: func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += float64(i)
				}
				return acc
			},
		}
	default: // ordered reduction: the "last" fold must see the final block
		req = jobs.Request{
			N: n, Grain: grain, MaxWorkers: maxWorkers, Identity: -1,
			Combine: func(a, b float64) float64 { return b },
			RBody:   func(w, lo, hi int, acc float64) float64 { return float64(hi) },
		}
	}

	policyFields(rng, &req)
	j, err := runner.Submit(req)
	if err != nil {
		t.Errorf("tenant %d op %d (seed %d): submit: %v", tnt, op, opt.Seed, err)
		return
	}
	if cancel {
		j.Cancel() // races admission and stealing on purpose; may fail
	}
	if suspend {
		suspendResumeChurn(j, opt.Deadline)
	}
	v, err := waitDeadline(j, opt.Deadline)
	if errors.Is(err, jobs.ErrCanceled) {
		if kind == 0 {
			for i, m := range marks {
				if m != 0 {
					t.Errorf("tenant %d op %d (seed %d): canceled job ran iteration %d", tnt, op, opt.Seed, i)
					return
				}
			}
		}
		return
	}
	if err != nil {
		t.Errorf("tenant %d op %d (seed %d): wait: %v", tnt, op, opt.Seed, err)
		return
	}
	switch kind {
	case 0:
		for i, m := range marks {
			if m != 1 {
				t.Errorf("tenant %d op %d (seed %d): iteration %d of %d executed %d times, want 1",
					tnt, op, opt.Seed, i, n, m)
				return
			}
		}
	case 1:
		if want := float64(n) * float64(n-1) / 2; v != want {
			t.Errorf("tenant %d op %d (seed %d): sum over %d = %v, want %v", tnt, op, opt.Seed, n, v, want)
		}
	default:
		want := float64(n)
		if n == 0 {
			want = -1 // identity: the loop never ran
		}
		if v != want {
			t.Errorf("tenant %d op %d (seed %d): ordered 'last' fold over %d = %v, want %v (join-wave order violated)",
				tnt, op, opt.Seed, n, v, want)
		}
	}
}

// runBatchOp admits several pseudo-random jobs through one SubmitBatch call
// and checks the same invariants the single-submit ops do: every index of
// every completed job marked exactly once, canceled jobs never run, and
// degenerate (N=0) members complete inline without disturbing their
// siblings. Released handles feed the runtime's freelist, so the stream also
// races recycling against late Waits.
func runBatchOp(t *testing.T, runner BatchRunner, rng *rand.Rand, opt InvariantOptions, tnt, op int) {
	t.Helper()
	k := 2 + rng.Intn(7)
	reqs := make([]jobs.Request, k)
	marks := make([][]int32, k)
	for i := range reqs {
		n := rng.Intn(opt.MaxN + 1)
		if rng.Intn(8) == 0 {
			n = 0 // degenerate member: completes inline during admission
		}
		m := make([]int32, n)
		marks[i] = m
		reqs[i] = jobs.Request{N: n, Body: func(w, lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				atomic.AddInt32(&m[idx], 1)
			}
		}}
		if rng.Intn(2) == 0 {
			reqs[i].Grain = 1 + rng.Intn(64)
		}
		if rng.Intn(3) == 0 {
			reqs[i].MaxWorkers = 1 + rng.Intn(4)
		}
		policyFields(rng, &reqs[i])
	}
	cancelIdx := -1
	if rng.Intn(100) < opt.CancelPercent {
		cancelIdx = rng.Intn(k)
	}
	release := rng.Intn(2) == 0

	out := make([]*jobs.Job, k)
	if err := runner.SubmitBatch(reqs, out); err != nil {
		t.Errorf("tenant %d op %d (seed %d): batch submit: %v", tnt, op, opt.Seed, err)
		return
	}
	if cancelIdx >= 0 {
		out[cancelIdx].Cancel() // races admission and stealing on purpose
	}
	for i, j := range out {
		if j == nil {
			t.Errorf("tenant %d op %d (seed %d): batch member %d has no handle", tnt, op, opt.Seed, i)
			continue
		}
		_, err := waitDeadline(j, opt.Deadline)
		switch {
		case errors.Is(err, jobs.ErrCanceled):
			for idx, m := range marks[i] {
				if m != 0 {
					t.Errorf("tenant %d op %d (seed %d): canceled batch member %d ran iteration %d",
						tnt, op, opt.Seed, i, idx)
					break
				}
			}
		case err != nil:
			t.Errorf("tenant %d op %d (seed %d): batch member %d wait: %v", tnt, op, opt.Seed, i, err)
			continue // not terminal: do not release
		default:
			for idx, m := range marks[i] {
				if m != 1 {
					t.Errorf("tenant %d op %d (seed %d): batch member %d iteration %d executed %d times, want 1",
						tnt, op, opt.Seed, i, idx, m)
					break
				}
			}
		}
		if release {
			j.Release()
		}
	}
}

// runDepOp submits a small dependency graph — one or two upstream loops and
// a dependent that fans them in — and checks the DAG invariants: the
// dependent observes every upstream iteration complete before its own body
// starts (release strictly follows the upstream join wave), and a canceled
// upstream cancels the dependent, which then never runs an iteration.
func runDepOp(t *testing.T, runner JobRunner, rng *rand.Rand, opt InvariantOptions, tnt, op, n int) {
	t.Helper()
	if n == 0 {
		n = 1
	}
	upN := 1 + rng.Intn(opt.MaxN/4+1)
	fanIn := 1 + rng.Intn(2)
	cancelUp := rng.Intn(100) < opt.CancelPercent
	grain := 0
	if rng.Intn(2) == 0 {
		grain = 1 + rng.Intn(64)
	}

	covered := make([]*atomic.Int64, fanIn)
	ups := make([]*jobs.Job, fanIn)
	for i := range ups {
		covered[i] = new(atomic.Int64)
		c := covered[i]
		u, err := runner.Submit(jobs.Request{N: upN, Grain: grain, Body: func(w, lo, hi int) {
			c.Add(int64(hi - lo))
		}})
		if err != nil {
			t.Errorf("tenant %d op %d (seed %d): upstream submit: %v", tnt, op, opt.Seed, err)
			return
		}
		ups[i] = u
	}

	var earlyStart atomic.Bool // dependent ran before an upstream join completed
	var depRan atomic.Int64
	depReq := jobs.Request{N: n, Grain: grain, After: ups, Body: func(w, lo, hi int) {
		for _, c := range covered {
			if c.Load() != int64(upN) {
				earlyStart.Store(true)
			}
		}
		depRan.Add(int64(hi - lo))
	}}
	policyFields(rng, &depReq)
	dep, err := runner.Submit(depReq)
	if err != nil {
		t.Errorf("tenant %d op %d (seed %d): dependent submit: %v", tnt, op, opt.Seed, err)
		return
	}
	upCanceled := false
	if cancelUp {
		// Races admission on purpose; propagation is only required when the
		// cancel actually won.
		upCanceled = ups[rng.Intn(fanIn)].Cancel()
	} else if rng.Intn(3) == 0 {
		// Park an upstream under a live dependent: the dependent must stay
		// blocked through the pause and still observe the full upstream
		// coverage when the resumed join wave finally releases it.
		suspendResumeChurn(ups[rng.Intn(fanIn)], opt.Deadline)
	}

	_, depErr := waitDeadline(dep, opt.Deadline)
	switch {
	case upCanceled:
		if !errors.Is(depErr, jobs.ErrCanceled) {
			t.Errorf("tenant %d op %d (seed %d): dependent of canceled upstream: err = %v, want ErrCanceled",
				tnt, op, opt.Seed, depErr)
		}
		if depRan.Load() != 0 {
			t.Errorf("tenant %d op %d (seed %d): dependent of canceled upstream ran %d iterations",
				tnt, op, opt.Seed, depRan.Load())
		}
	case depErr != nil:
		t.Errorf("tenant %d op %d (seed %d): dependent wait: %v", tnt, op, opt.Seed, depErr)
	default:
		if earlyStart.Load() {
			t.Errorf("tenant %d op %d (seed %d): dependent started before its upstream's join completed",
				tnt, op, opt.Seed)
		}
		if depRan.Load() != int64(n) {
			t.Errorf("tenant %d op %d (seed %d): dependent covered %d of %d iterations",
				tnt, op, opt.Seed, depRan.Load(), n)
		}
	}
	// Upstreams always terminate either way; a lost release would show up
	// in the drain check too, but failing here names the op.
	for i, u := range ups {
		if _, err := waitDeadline(u, opt.Deadline); err != nil && !errors.Is(err, jobs.ErrCanceled) {
			t.Errorf("tenant %d op %d (seed %d): upstream %d: %v", tnt, op, opt.Seed, i, err)
		}
	}
}

// suspendResumeChurn drives one suspend/resume cycle against a live job. A
// refusal (terminal, blocked, rigid mid-run) is a legal outcome and ends the
// op; after an accepted suspend the job MUST be resumed — a parked job never
// completes on its own — so the helper polls until the resume lands or the
// job reaches a terminal state (a running job parks only at its next
// chunk-wave boundary, or completes first if no boundary remains).
func suspendResumeChurn(j *jobs.Job, deadline time.Duration) {
	if !j.Suspend() {
		return
	}
	limit := time.Now().Add(deadline)
	for !j.Resume() {
		select {
		case <-j.Done():
			return
		default:
		}
		if time.Now().After(limit) {
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// waitDeadline is Job.Wait with a timeout, so a lost join wave fails the
// test instead of hanging it.
func waitDeadline(j *jobs.Job, d time.Duration) (float64, error) {
	select {
	case <-j.Done():
		return j.Wait()
	case <-time.After(d):
		return 0, errors.New("schedtest: job did not complete within the deadline (join wave lost?)")
	}
}
