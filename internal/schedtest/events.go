// events.go adds the lifecycle event-order invariants to the harness: a
// subscriber's view of a traced run must show every job moving through its
// transitions in causal order. The asserts encode exactly the guarantees the
// runtime makes — and deliberately not more: worker-churn events that race
// the join wave by design (a peeling participant has already left the
// sub-team when it records the event) are only ordered against dispatch.
package schedtest

import (
	"sort"
	"testing"

	"loopsched/internal/trace"
)

// AssertEventOrder groups a traced run's delivered events by job and asserts
// the causal-order invariants on each:
//
//   - submitted is the job's first event and appears exactly once;
//   - blocked, released, admitted, dispatched, joined and canceled appear at
//     most once, with blocked < released < admitted and
//     admitted < dispatched < joined;
//   - dispatched and canceled are mutually exclusive (the admission CAS picks
//     exactly one winner), and joined and canceled are too;
//   - stolen sits between admitted and dispatched (a job is only stolen while
//     queued);
//   - suspended and resumed strictly alternate, each resume re-admits (so
//     admitted/dispatched appear once per admission segment instead), and a
//     cancel after a suspension is legal even on a dispatched job;
//   - grown, lent, peeled and preempted require a dispatch, and grown/lent
//     happen strictly before the join (the grow CAS holds a participant, so
//     the job cannot complete first); peeled and preempted may trail it;
//   - every event of a job carries the same tenant.
//
// Events are ordered by their tracer sequence number, so interleaved delivery
// of concurrent jobs is fine; the caller must pass a drop-free view (use an
// ample subscriber buffer or JobTrace.Events).
func AssertEventOrder(t testing.TB, events []trace.StreamEvent) {
	t.Helper()
	byJob := make(map[uint64][]trace.StreamEvent)
	for _, ev := range events {
		byJob[ev.Job] = append(byJob[ev.Job], ev)
	}
	for id, evs := range byJob {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

		first := make(map[string]uint64)
		count := make(map[string]int)
		for _, ev := range evs {
			if _, ok := first[ev.Type]; !ok {
				first[ev.Type] = ev.Seq
			}
			count[ev.Type]++
			if ev.Tenant != evs[0].Tenant {
				t.Errorf("job %d: event %q tenant %q != %q", id, ev.Type, ev.Tenant, evs[0].Tenant)
			}
		}

		if evs[0].Type != "submitted" {
			t.Errorf("job %d: first event is %q, want submitted", id, evs[0].Type)
		}
		// Every resume re-admits (and possibly re-dispatches) the job, so
		// those two appear once per lifetime segment; the rest are one-shot.
		suspends, resumes := count["suspended"], count["resumed"]
		for _, typ := range []string{"submitted", "blocked", "released", "joined", "canceled"} {
			if count[typ] > 1 {
				t.Errorf("job %d: %d %q events, want at most 1", id, count[typ], typ)
			}
		}
		for _, typ := range []string{"admitted", "dispatched"} {
			if count[typ] > 1+resumes {
				t.Errorf("job %d: %d %q events, want at most %d (one per admission segment)",
					id, count[typ], typ, 1+resumes)
			}
		}
		// suspended/resumed strictly alternate: a park is resumed before the
		// next park, and a resume needs a preceding park. A trailing
		// unresumed suspension is legal (the job was canceled while parked).
		parked := 0
		for _, ev := range evs {
			switch ev.Type {
			case "suspended":
				if parked++; parked > 1 {
					t.Errorf("job %d: suspended (seq %d) while already parked", id, ev.Seq)
				}
			case "resumed":
				if parked == 0 {
					t.Errorf("job %d: resumed (seq %d) without a preceding suspended", id, ev.Seq)
				} else {
					parked--
				}
			}
		}
		if resumes > suspends {
			t.Errorf("job %d: %d resumed events for %d suspensions", id, resumes, suspends)
		}
		// A dispatch and a cancel are mutually exclusive winners of the
		// admission CAS — unless a suspension sat in between (dispatched, then
		// parked, then canceled while parked).
		if count["dispatched"] > 0 && count["canceled"] > 0 && suspends == 0 {
			t.Errorf("job %d: both dispatched and canceled", id)
		}
		if count["joined"] > 0 && count["canceled"] > 0 {
			t.Errorf("job %d: both joined and canceled", id)
		}

		// ordered asserts a < b when both types were observed.
		ordered := func(a, b string) {
			if sa, ok := first[a]; ok {
				if sb, ok := first[b]; ok && sa >= sb {
					t.Errorf("job %d: %q (seq %d) not before %q (seq %d)", id, a, sa, b, sb)
				}
			}
		}
		ordered("submitted", "blocked")
		ordered("blocked", "released")
		ordered("released", "admitted")
		ordered("submitted", "admitted")
		ordered("admitted", "dispatched")
		ordered("dispatched", "joined")
		ordered("admitted", "suspended")
		ordered("suspended", "resumed")

		dispatched, hasDispatched := first["dispatched"]
		joined, hasJoined := first["joined"]
		admitted, hasAdmitted := first["admitted"]
		for _, ev := range evs {
			switch ev.Type {
			case "grown", "lent", "peeled", "preempted":
				if !hasDispatched {
					t.Errorf("job %d: %q without a dispatch", id, ev.Type)
				} else if ev.Seq <= dispatched {
					t.Errorf("job %d: %q (seq %d) before dispatched (seq %d)", id, ev.Type, ev.Seq, dispatched)
				}
				if (ev.Type == "grown" || ev.Type == "lent") && hasJoined && ev.Seq >= joined {
					t.Errorf("job %d: %q (seq %d) after joined (seq %d)", id, ev.Type, ev.Seq, joined)
				}
			case "stolen":
				if !hasAdmitted {
					t.Errorf("job %d: stolen without admission", id)
				} else if ev.Seq <= admitted {
					t.Errorf("job %d: stolen (seq %d) before admitted (seq %d)", id, ev.Seq, admitted)
				}
				// A resumed job is re-queued and stealable again, so the
				// stolen-only-while-queued window repeats per segment; the
				// strict check holds only for an uninterrupted lifecycle.
				if suspends == 0 && hasDispatched && ev.Seq >= dispatched {
					t.Errorf("job %d: stolen (seq %d) after dispatched (seq %d)", id, ev.Seq, dispatched)
				}
			}
		}
	}
}
