// overload.go extends the invariant harness with admission-control streams:
// seeded submissions racing a deliberately tiny admission queue with bounded
// waits (MaxWait), fail-fast submissions (NoWait), hopeless deadlines (for
// feasibility shedding) and an abusive tenant driving its circuit breaker
// open. The structural invariants:
//
//   - a shed submission never runs: no iteration of a rejected job's body
//     may execute, immediately or later;
//   - every rejection is typed: it matches exactly one of the overload
//     sentinels and carries a positive suggested-retry delay;
//   - shed accounting balances: the pool's ShedTotal equals the rejections
//     the stream observed, and decomposes into the infeasible + backlogged
//     counters plus breaker sheds — nothing lost, nothing double-counted;
//   - no admission slot leaks: after the stream drains, exactly QueueDepth
//     fail-fast submissions fit behind a fully parked pool, and the next one
//     is rejected — rejected submissions returned their slots, admitted ones
//     consumed and released them;
//   - breakers recover: an abusive tenant's breaker, driven open by deadline
//     misses under queue pressure, re-closes after the abuse stops and a
//     half-open probe succeeds.
package schedtest

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/jobs"
)

// OverloadInvariantOptions parameterizes the admission-control stream. The
// runner must be configured with QueueDepth and Workers matching the options,
// a bounded MaxWait, ShedInfeasible, and — when breakerState is supplied to
// RunOverloadInvariants — breakers armed with a short cooldown and an SLO
// target loose enough that a run of consecutive misses opens them (e.g.
// SLOTarget 0.5, BreakerBurnRate 1).
type OverloadInvariantOptions struct {
	// Seed seeds the op stream; the same seed replays the same stream.
	Seed int64
	// Submitters is the number of concurrent submitter goroutines; <= 0
	// selects 4.
	Submitters int
	// OpsPerSubmitter is the number of jobs each submitter offers; <= 0
	// selects 60.
	OpsPerSubmitter int
	// MaxN bounds the per-job iteration count; <= 0 selects 1024.
	MaxN int
	// QueueDepth must equal the runner's configured per-scheduler queue depth
	// times its scheduler count: the slot-leak probe admits exactly this many
	// fail-fast jobs behind a parked pool.
	QueueDepth int
	// Workers is the runner's total worker count (for parking the pool).
	Workers int
	// Deadline bounds every wait and poll; <= 0 selects 30s.
	Deadline time.Duration
}

func (o *OverloadInvariantOptions) normalize() {
	if o.Submitters <= 0 {
		o.Submitters = 4
	}
	if o.OpsPerSubmitter <= 0 {
		o.OpsPerSubmitter = 60
	}
	if o.MaxN <= 0 {
		o.MaxN = 1024
	}
	if o.Deadline <= 0 {
		o.Deadline = 30 * time.Second
	}
}

// ShedTotals is the pool-wide admission-rejection snapshot the harness
// reconciles against the rejections it observed: for a Scheduler the
// ShedTotal/InfeasibleTotal/BackloggedTotal stats, for a Sharded pool the
// merged totals.
type ShedTotals struct {
	Shed, Infeasible, Backlogged int64
}

// RunOverloadInvariants drives the runner with the admission-control stream
// and asserts the shed invariants. shed must return the pool's current
// rejection counters; breakerState (optional — pass nil for runners without
// breakers armed) must return the named tenant's breaker state string, and
// enables the breaker-recovery phase.
func RunOverloadInvariants(t *testing.T, runner JobRunner, opt OverloadInvariantOptions,
	drained func() DrainStats, shed func() ShedTotals, breakerState func(tenant string) string) {
	t.Helper()
	opt.normalize()
	if opt.QueueDepth <= 0 || opt.Workers <= 0 {
		t.Fatal("OverloadInvariantOptions.QueueDepth and Workers must match the runner's configuration")
	}
	t.Logf("overload stream: seed=%d submitters=%d ops=%d", opt.Seed, opt.Submitters, opt.OpsPerSubmitter)

	// Phase A: the mixed stream. Rejections are part of normal operation
	// here; the harness keeps every shed job's marks array so late execution
	// of a rejected body cannot hide.
	var (
		mu        sync.Mutex
		shedMarks [][]int32
		observed  int64
	)
	var wg sync.WaitGroup
	for sub := 0; sub < opt.Submitters; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(sub)*1_000_003))
			for op := 0; op < opt.OpsPerSubmitter; op++ {
				n := 1 + rng.Intn(opt.MaxN)
				marks := make([]int32, n)
				req := jobs.Request{
					N:      n,
					Tenant: [...]string{"ovl-a", "ovl-b"}[rng.Intn(2)],
					NoWait: rng.Intn(3) == 0,
					Body: func(w, lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&marks[i], 1)
						}
					},
				}
				switch rng.Intn(4) {
				case 0:
					// Hopeless: feeds the feasibility check once the
					// service-time EWMA is warm.
					req.Deadline = time.Now().Add(time.Microsecond)
				case 1:
					req.Deadline = time.Now().Add(time.Duration(5+rng.Intn(50)) * time.Millisecond)
				}
				j, err := runner.Submit(req)
				if err != nil {
					if !errors.Is(err, jobs.ErrInfeasible) && !errors.Is(err, jobs.ErrBacklogged) && !errors.Is(err, jobs.ErrBreakerOpen) {
						t.Errorf("submitter %d op %d (seed %d): untyped rejection: %v", sub, op, opt.Seed, err)
						continue
					}
					if d, ok := jobs.SuggestedRetry(err); !ok || d <= 0 {
						t.Errorf("submitter %d op %d (seed %d): rejection without a retry hint: %v", sub, op, opt.Seed, err)
					}
					mu.Lock()
					shedMarks = append(shedMarks, marks)
					observed++
					mu.Unlock()
					continue
				}
				if _, err := waitDeadline(j, opt.Deadline); err != nil {
					t.Errorf("submitter %d op %d (seed %d): wait: %v", sub, op, opt.Seed, err)
					continue
				}
				for i, m := range marks {
					if m != 1 {
						t.Errorf("submitter %d op %d (seed %d): iteration %d executed %d times, want 1",
							sub, op, opt.Seed, i, m)
						break
					}
				}
			}
		}(sub)
	}
	wg.Wait()
	waitDrained(t, drained, opt.Deadline)

	// Shed jobs never run — checked after the drain, so a buggy admission
	// that queued the job anyway would have had every chance to execute it.
	for _, marks := range shedMarks {
		for i, m := range marks {
			if m != 0 {
				t.Fatalf("shed job ran iteration %d (%d times): rejected submissions must never execute", i, m)
			}
		}
	}
	// Accounting balances: every rejection the stream saw is in ShedTotal,
	// and ShedTotal decomposes without loss (breaker sheds are the rest).
	st := shed()
	if st.Shed != observed {
		t.Errorf("pool ShedTotal = %d, stream observed %d rejections", st.Shed, observed)
	}
	if st.Infeasible+st.Backlogged > st.Shed {
		t.Errorf("shed accounting out of balance: infeasible %d + backlogged %d > total %d",
			st.Infeasible, st.Backlogged, st.Shed)
	}

	// Phase B: slot-leak probe. Park every worker, then fill the admission
	// queue with fail-fast submissions under a tenant with no deadline
	// history (so breakers cannot interfere): exactly QueueDepth must admit,
	// the next must be rejected as backlogged.
	release, parked := parkWorkers(t, runner, opt, drained)
	var fill []*jobs.Job
	for i := 0; i < opt.QueueDepth; i++ {
		j, err := runner.Submit(jobs.Request{N: 64, Tenant: "ovl-probe", NoWait: true, Body: func(w, lo, hi int) {}})
		if err != nil {
			t.Fatalf("slot %d of %d rejected behind a parked pool: a rejected or completed submission leaked its queue slot: %v",
				i, opt.QueueDepth, err)
		}
		fill = append(fill, j)
	}
	if _, err := runner.Submit(jobs.Request{N: 64, Tenant: "ovl-probe", NoWait: true,
		Body: func(w, lo, hi int) { t.Error("over-depth NoWait job body ran") }}); !errors.Is(err, jobs.ErrBacklogged) {
		t.Errorf("submission %d on a full queue = %v, want ErrBacklogged", opt.QueueDepth+1, err)
	}
	release()
	for _, j := range append(parked, fill...) {
		if _, err := waitDeadline(j, opt.Deadline); err != nil {
			t.Fatalf("drain after slot probe: %v", err)
		}
	}
	waitDrained(t, drained, opt.Deadline)

	// Phase C: breaker recovery. Only for runners with breakers armed.
	if breakerState != nil {
		runBreakerRecovery(t, runner, opt, drained, breakerState)
	}

	// The pool is still whole: a fresh full-width job completes.
	n := opt.Workers * 64
	var covered atomic.Int64
	j, err := runner.Submit(jobs.Request{N: n, Grain: 1, Body: func(w, lo, hi int) {
		covered.Add(int64(hi - lo))
	}})
	if err != nil {
		t.Fatalf("post-stream submit: %v", err)
	}
	if _, err := waitDeadline(j, opt.Deadline); err != nil {
		t.Fatalf("post-stream job: %v", err)
	}
	if covered.Load() != int64(n) {
		t.Fatalf("post-stream job covered %d of %d iterations", covered.Load(), n)
	}
}

// runBreakerRecovery drives one tenant's breaker open with waves of
// deadline-missing jobs completing under queue pressure, then asserts it
// sheds, stops the abuse, and polls it back to closed through half-open
// probes — load dropping must always re-admit a tenant. The runner's
// BreakerCooldown should be >= 100ms so the open-state shed assertion cannot
// race the cooldown expiring.
func runBreakerRecovery(t *testing.T, runner JobRunner, opt OverloadInvariantOptions,
	drained func() DrainStats, breakerState func(tenant string) string) {
	t.Helper()
	const abuser = "ovl-abuser"

	// Each wave parks the pool, queues a queue's worth of abuser jobs whose
	// deadlines are feasible at submit (the runner may have ShedInfeasible
	// armed) but expire while the pool stays parked, then releases — so the
	// misses are recorded while the abuser's backlog keeps its queue share
	// high. A 0.5 error budget crosses after ~11 consecutive misses, a few
	// waves at any realistic queue depth.
	waveSize := opt.QueueDepth
	if waveSize > 8 {
		waveSize = 8
	}
	hardDeadline := time.Now().Add(opt.Deadline)
	for wave := 0; breakerState(abuser) != "open"; wave++ {
		if wave >= 10 || time.Now().After(hardDeadline) {
			t.Fatalf("abuser breaker still %q after %d miss waves", breakerState(abuser), wave)
		}
		release, parked := parkWorkers(t, runner, opt, drained)
		// The parked blockers' long run times inflate the service-time EWMA,
		// so a fixed deadline would eventually be shed as infeasible; on an
		// ErrInfeasible rejection the deadline is pushed past the estimator's
		// horizon instead. The pool then stays parked past the latest granted
		// deadline, so every admitted job still misses.
		latest := time.Now()
		var abuse []*jobs.Job
		for i := 0; i < waveSize; i++ {
			d := time.Now().Add(60 * time.Millisecond)
			var j *jobs.Job
			for attempt := 0; ; attempt++ {
				var err error
				j, err = runner.Submit(jobs.Request{
					N: 64, Tenant: abuser, Deadline: d,
					Body: func(w, lo, hi int) {},
				})
				if err == nil {
					break
				}
				retry, ok := jobs.SuggestedRetry(err)
				if !errors.Is(err, jobs.ErrInfeasible) || !ok || attempt >= 8 {
					t.Fatalf("wave %d: abuse job %d: %v", wave, i, err)
				}
				d = time.Now().Add(2*retry + 60*time.Millisecond<<attempt)
			}
			if d.After(latest) {
				latest = d
			}
			abuse = append(abuse, j)
		}
		time.Sleep(time.Until(latest.Add(30 * time.Millisecond)))
		release()
		for _, j := range append(parked, abuse...) {
			if _, err := waitDeadline(j, opt.Deadline); err != nil {
				t.Fatalf("wave %d: abuse drain: %v", wave, err)
			}
		}
	}

	// Open: the abuser is shed even with a meetable deadline.
	if _, err := runner.Submit(jobs.Request{N: 64, Tenant: abuser, Deadline: time.Now().Add(time.Hour),
		Body: func(w, lo, hi int) { t.Error("breaker-shed job body ran") }}); !errors.Is(err, jobs.ErrBreakerOpen) {
		t.Errorf("submit on an open breaker = %v, want ErrBreakerOpen", err)
	}

	// Abuse over: keep offering well-behaved probes (tolerating sheds while
	// the cooldown runs) until a half-open probe hits and closes the breaker.
	deadline := time.Now().Add(opt.Deadline)
	for breakerState(abuser) != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %q after the abuse stopped: tenant locked out", breakerState(abuser))
		}
		j, err := runner.Submit(jobs.Request{
			N: 64, Tenant: abuser, Deadline: time.Now().Add(time.Hour),
			Body: func(w, lo, hi int) {},
		})
		if err != nil {
			if !errors.Is(err, jobs.ErrBreakerOpen) {
				t.Fatalf("recovery probe: %v", err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if _, err := waitDeadline(j, opt.Deadline); err != nil {
			t.Fatalf("recovery probe wait: %v", err)
		}
	}
	waitDrained(t, drained, opt.Deadline)
}

// parkWorkers occupies every worker with a single-chunk job blocking on a
// channel and waits until they all run, so everything submitted afterwards
// must queue. The returned release is idempotent and registered with
// t.Cleanup: a Fatal while the pool is parked must unblock the workers, or
// the runner's deferred Close would hang forever.
func parkWorkers(t *testing.T, runner JobRunner, opt OverloadInvariantOptions,
	drained func() DrainStats) (release func(), parked []*jobs.Job) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	for i := 0; i < opt.Workers; i++ {
		j, err := runner.Submit(jobs.Request{N: 1, Tenant: "ovl-probe", Body: func(w, lo, hi int) { <-ch }})
		if err != nil {
			t.Fatalf("parking blocker %d: %v", i, err)
		}
		parked = append(parked, j)
	}
	pollUntil(t, "blockers running", opt.Deadline, func() bool {
		d := drained()
		return d.Running == opt.Workers && d.QueueDepth == 0
	})
	return release, parked
}

// waitDrained polls the occupancy gauges to zero, like RunJobInvariants'
// drain check.
func waitDrained(t *testing.T, drained func() DrainStats, deadline time.Duration) {
	t.Helper()
	pollUntil(t, "pool to drain", deadline, func() bool {
		d := drained()
		return d.BusyWorkers == 0 && d.QueueDepth == 0 && d.Running == 0 && d.Blocked == 0
	})
}

// pollUntil spins on a condition with a deadline.
func pollUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
