// Package schedtest provides a conformance suite for implementations of the
// sched.Scheduler interface. Every runtime in this repository (the
// fine-grain scheduler, the OpenMP-style baselines, the Cilk-style baseline
// and the hybrid) runs this suite from its own test package, so behavioural
// guarantees — full coverage of the iteration space, correct reductions,
// iteration-order combination, reusability across many loops — are enforced
// uniformly.
package schedtest

import (
	"math"
	"sync/atomic"
	"testing"

	"loopsched/internal/sched"
)

// Factory creates a fresh scheduler with approximately p workers. The
// returned scheduler is closed by the suite.
type Factory func(p int) sched.Scheduler

// Run executes the full conformance suite against the factory, including
// the iteration-order reduction test. Use it for runtimes that guarantee
// ordered (non-commutative-safe) reductions: the fine-grain scheduler, the
// OpenMP static schedule and the Cilk-style divide-and-conquer loops.
func Run(t *testing.T, workerCounts []int, factory Factory) {
	t.Helper()
	run(t, workerCounts, factory, true)
}

// RunCommutative executes the suite without the iteration-order test, for
// runtimes whose dynamic chunk assignment only supports commutative
// reductions (OpenMP dynamic and guided schedules).
func RunCommutative(t *testing.T, workerCounts []int, factory Factory) {
	t.Helper()
	run(t, workerCounts, factory, false)
}

func run(t *testing.T, workerCounts []int, factory Factory, ordered bool) {
	t.Run("Coverage", func(t *testing.T) { testCoverage(t, workerCounts, factory) })
	t.Run("ReduceSum", func(t *testing.T) { testReduceSum(t, workerCounts, factory) })
	if ordered {
		t.Run("ReduceOrder", func(t *testing.T) { testReduceOrder(t, workerCounts, factory) })
	}
	t.Run("ReduceVec", func(t *testing.T) { testReduceVec(t, workerCounts, factory) })
	t.Run("ManyLoops", func(t *testing.T) { testManyLoops(t, workerCounts, factory) })
	t.Run("EmptyLoops", func(t *testing.T) { testEmptyLoops(t, factory) })
	t.Run("WorkerIDs", func(t *testing.T) { testWorkerIDs(t, workerCounts, factory) })
}

func testCoverage(t *testing.T, counts []int, factory Factory) {
	for _, p := range counts {
		s := factory(p)
		for _, n := range []int{1, 2, 3, 7, 64, 1000, 4097} {
			marks := make([]int32, n)
			s.For(n, func(w, begin, end int) {
				for i := begin; i < end; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("%s p=%d n=%d: iteration %d executed %d times, want 1", s.Name(), p, n, i, m)
				}
			}
		}
		s.Close()
	}
}

func testReduceSum(t *testing.T, counts []int, factory Factory) {
	for _, p := range counts {
		s := factory(p)
		for _, n := range []int{1, 10, 999, 32768} {
			got := s.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
				func(w, begin, end int, acc float64) float64 {
					for i := begin; i < end; i++ {
						acc += float64(i)
					}
					return acc
				})
			want := float64(n) * float64(n-1) / 2
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("%s p=%d n=%d: sum = %v, want %v", s.Name(), p, n, got, want)
			}
		}
		s.Close()
	}
}

func testReduceOrder(t *testing.T, counts []int, factory Factory) {
	// "last" fold: combine(a,b)=b, body returns its end — the result must be
	// the end of the last chunk in iteration order, i.e. n.
	for _, p := range counts {
		s := factory(p)
		n := 1003
		last := s.ForReduce(n, -1, func(a, b float64) float64 { return b },
			func(w, begin, end int, acc float64) float64 { return float64(end) })
		if last != float64(n) {
			t.Fatalf("%s p=%d: order-sensitive fold = %v, want %v", s.Name(), p, last, float64(n))
		}
		// "first" fold: result must be the begin of the first chunk, i.e. 0.
		const ident = -1
		first := s.ForReduce(n, ident, func(a, b float64) float64 {
			if a != ident {
				return a
			}
			return b
		}, func(w, begin, end int, acc float64) float64 { return float64(begin) })
		if first != 0 {
			t.Fatalf("%s p=%d: 'first' fold = %v, want 0", s.Name(), p, first)
		}
		s.Close()
	}
}

func testReduceVec(t *testing.T, counts []int, factory Factory) {
	for _, p := range counts {
		s := factory(p)
		n := 2500
		got := s.ForReduceVec(n, 4, func(w, begin, end int, acc []float64) {
			for i := begin; i < end; i++ {
				x := float64(i)
				acc[0]++
				acc[1] += x
				acc[2] += x * x
				acc[3] += 1 / (1 + x)
			}
		})
		var want [4]float64
		for i := 0; i < n; i++ {
			x := float64(i)
			want[0]++
			want[1] += x
			want[2] += x * x
			want[3] += 1 / (1 + x)
		}
		for k := 0; k < 4; k++ {
			if math.Abs(got[k]-want[k]) > 1e-6*(1+math.Abs(want[k])) {
				t.Fatalf("%s p=%d: vec[%d] = %v, want %v", s.Name(), p, k, got[k], want[k])
			}
		}
		s.Close()
	}
}

func testManyLoops(t *testing.T, counts []int, factory Factory) {
	for _, p := range counts {
		s := factory(p)
		for it := 0; it < 150; it++ {
			n := 1 + (it*53)%500
			switch it % 3 {
			case 0:
				var sum int64
				s.For(n, func(w, begin, end int) { atomic.AddInt64(&sum, int64(end-begin)) })
				if sum != int64(n) {
					t.Fatalf("%s p=%d it=%d: covered %d of %d iterations", s.Name(), p, it, sum, n)
				}
			case 1:
				got := s.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
					func(w, begin, end int, acc float64) float64 { return acc + float64(end-begin) })
				if int(got) != n {
					t.Fatalf("%s p=%d it=%d: reduce count %v, want %d", s.Name(), p, it, got, n)
				}
			default:
				v := s.ForReduceVec(n, 2, func(w, begin, end int, acc []float64) {
					acc[0] += float64(end - begin)
					acc[1] += 1
				})
				if int(v[0]) != n {
					t.Fatalf("%s p=%d it=%d: vec count %v, want %d", s.Name(), p, it, v[0], n)
				}
			}
		}
		s.Close()
	}
}

func testEmptyLoops(t *testing.T, factory Factory) {
	s := factory(2)
	defer s.Close()
	called := false
	s.For(0, func(w, b, e int) { called = true })
	s.For(-1, func(w, b, e int) { called = true })
	if called {
		t.Errorf("%s: body invoked for an empty loop", s.Name())
	}
	if got := s.ForReduce(0, 42, func(a, b float64) float64 { return a + b }, nil); got != 42 {
		t.Errorf("%s: empty reduce = %v, want the identity 42", s.Name(), got)
	}
	v := s.ForReduceVec(-3, 2, nil)
	if len(v) != 2 || v[0] != 0 || v[1] != 0 {
		t.Errorf("%s: empty vec reduce = %v, want [0 0]", s.Name(), v)
	}
}

func testWorkerIDs(t *testing.T, counts []int, factory Factory) {
	for _, p := range counts {
		s := factory(p)
		maxP := s.P()
		var bad atomic.Int64
		s.For(1000, func(w, begin, end int) {
			if w < 0 || w >= maxP {
				bad.Add(1)
			}
		})
		if bad.Load() > 0 {
			t.Errorf("%s p=%d: %d chunks reported out-of-range worker ids", s.Name(), p, bad.Load())
		}
		if s.Name() == "" {
			t.Errorf("scheduler has empty name")
		}
		s.Close()
	}
}

// WorkerCounts returns a conservative set of worker counts for the current
// machine, always including 1 and 2.
func WorkerCounts(max int) []int {
	cand := []int{1, 2, 3, 4, 6, 8}
	var out []int
	for _, c := range cand {
		if c <= max {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
