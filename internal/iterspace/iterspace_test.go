package iterspace

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Begin: 3, End: 10}
	if r.Len() != 7 || r.Empty() {
		t.Errorf("Len/Empty wrong: %v", r)
	}
	if (Range{Begin: 5, End: 5}).Len() != 0 || !(Range{Begin: 5, End: 5}).Empty() {
		t.Errorf("empty range misreported")
	}
	if (Range{Begin: 9, End: 2}).Len() != 0 {
		t.Errorf("inverted range should have length 0")
	}
	if r.String() != "[3,10)" {
		t.Errorf("String() = %q", r.String())
	}
	a, b := r.Split()
	if a.Len()+b.Len() != r.Len() || a.End != b.Begin || a.Begin != r.Begin || b.End != r.End {
		t.Errorf("Split() = %v,%v", a, b)
	}
	if a.Len() < b.Len() {
		t.Errorf("first half should get the extra iteration: %v %v", a, b)
	}
	single := Range{Begin: 4, End: 5}
	a, b = single.Split()
	if a != single || !b.Empty() {
		t.Errorf("splitting a singleton: %v %v", a, b)
	}
}

func TestBlockPartition(t *testing.T) {
	cases := []struct{ n, p int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {3, 10}, {100, 7}, {48, 48}, {47, 48}, {1000000, 48},
	}
	for _, c := range cases {
		prevEnd := 0
		total := 0
		for w := 0; w < c.p; w++ {
			r := Block(c.n, c.p, w)
			if r.Begin != prevEnd {
				t.Fatalf("Block(%d,%d,%d) begins at %d, want %d (contiguity)", c.n, c.p, w, r.Begin, prevEnd)
			}
			prevEnd = r.End
			total += r.Len()
		}
		if prevEnd != c.n || total != c.n {
			t.Fatalf("Block(%d,%d,·) covers %d ending at %d", c.n, c.p, total, prevEnd)
		}
		// Balance: sizes differ by at most one.
		min, max := c.n, 0
		for w := 0; w < c.p; w++ {
			l := Block(c.n, c.p, w).Len()
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Errorf("Block(%d,%d,·) imbalance %d", c.n, c.p, max-min)
		}
	}
	all := BlockAll(10, 3)
	if len(all) != 3 || all[0].Len() != 4 || all[2].End != 10 {
		t.Errorf("BlockAll(10,3) = %v", all)
	}
}

func TestBlockPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Block(10, 0, 0) },
		func() { Block(10, 4, -1) },
		func() { Block(10, 4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPropertyBlockCoversExactly(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8, wRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw%64) + 1
		w := int(wRaw) % p
		r := Block(n, p, w)
		if r.Len() < 0 || r.Begin < 0 || r.End > n {
			return false
		}
		// Every iteration belongs to exactly one worker.
		if n > 0 {
			i := int(nRaw) % n
			owner := -1
			for ww := 0; ww < p; ww++ {
				rr := Block(n, p, ww)
				if i >= rr.Begin && i < rr.End {
					if owner != -1 {
						return false
					}
					owner = ww
				}
			}
			if owner == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStrided(t *testing.T) {
	chunks := Strided(10, 3, 0, 2)
	want := []Range{{0, 2}, {6, 8}}
	if len(chunks) != len(want) {
		t.Fatalf("Strided = %v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("Strided = %v, want %v", chunks, want)
		}
	}
	// All workers together cover everything exactly once.
	seen := make([]int, 10)
	for w := 0; w < 3; w++ {
		for _, r := range Strided(10, 3, w, 2) {
			for i := r.Begin; i < r.End; i++ {
				seen[i]++
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("iteration %d covered %d times", i, c)
		}
	}
	if got := Strided(5, 2, 0, 0); len(got) == 0 {
		t.Errorf("chunk 0 should be treated as 1")
	}
}

func TestChunkerSequential(t *testing.T) {
	c := NewChunker(10, 3)
	var got []Range
	for {
		r, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	want := []Range{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(got) != len(want) {
		t.Fatalf("chunks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", got, want)
		}
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", c.Remaining())
	}
	c.Reset()
	if r, ok := c.Next(); !ok || r.Begin != 0 {
		t.Errorf("after Reset, Next = %v,%v", r, ok)
	}
}

func TestChunkerInitInPlace(t *testing.T) {
	// Init supports embedding a Chunker by value (one cursor per job, no
	// allocation) and re-targeting it to a fresh iteration space.
	var c Chunker
	c.Init(7, 4)
	if c.Chunk() != 4 {
		t.Errorf("Chunk = %d, want 4", c.Chunk())
	}
	var got []Range
	for {
		r, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	want := []Range{{0, 4}, {4, 7}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("chunks = %v, want %v", got, want)
	}
	c.Init(5, 0) // chunk <= 0 selects 1, cursor rewinds
	if c.Chunk() != 1 {
		t.Errorf("Chunk = %d, want 1", c.Chunk())
	}
	if c.Remaining() != 5 {
		t.Errorf("Remaining = %d after re-Init, want 5", c.Remaining())
	}
	if r, ok := c.Next(); !ok || (r != Range{0, 1}) {
		t.Errorf("Next after re-Init = %v,%v", r, ok)
	}
}

func TestChunkerConcurrent(t *testing.T) {
	const n = 100000
	c := NewChunker(n, 7)
	var covered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r, ok := c.Next()
				if !ok {
					return
				}
				covered.Add(int64(r.Len()))
			}
		}()
	}
	wg.Wait()
	if covered.Load() != n {
		t.Errorf("concurrent chunker covered %d of %d", covered.Load(), n)
	}
}

func TestGuided(t *testing.T) {
	g := NewGuided(1000, 4, 10)
	var sizes []int
	total := 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		sizes = append(sizes, r.Len())
		total += r.Len()
	}
	if total != 1000 {
		t.Fatalf("guided covered %d", total)
	}
	if sizes[0] != 250 {
		t.Errorf("first guided chunk = %d, want remaining/p = 250", sizes[0])
	}
	last := sizes[len(sizes)-1]
	if last > 10 && last != total {
		t.Errorf("last chunk %d exceeds the minimum chunk", last)
	}
	// Sizes never increase by more than rounding effects; strictly, each
	// chunk is at most the previous one.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("guided chunk %d grew: %v", i, sizes)
			break
		}
	}
	g.Reset()
	if r, ok := g.Next(); !ok || r.Begin != 0 {
		t.Errorf("after Reset: %v %v", r, ok)
	}
}

func TestGuidedConcurrent(t *testing.T) {
	const n = 50000
	g := NewGuided(n, 8, 16)
	var covered atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r, ok := g.Next()
				if !ok {
					return
				}
				covered.Add(int64(r.Len()))
			}
		}()
	}
	wg.Wait()
	if covered.Load() != n {
		t.Errorf("concurrent guided covered %d of %d", covered.Load(), n)
	}
}
