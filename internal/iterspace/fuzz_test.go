package iterspace

import (
	"sort"
	"sync"
	"testing"
)

// FuzzChunker proves the grain-sized self-scheduling contract the elastic
// jobs runtime is built on: for arbitrary bounds, grain and team sizes, the
// chunks claimed concurrently by a whole team tile [0, max(0, n)) exactly —
// no index dropped, none executed twice — with every chunk grain-aligned and
// at most grain long.
func FuzzChunker(f *testing.F) {
	f.Add(0, 1, 1)
	f.Add(1, 1, 1)
	f.Add(-7, 3, 2)
	f.Add(1000, 1, 8)
	f.Add(1000, 7, 3)
	f.Add(4097, 64, 5)
	f.Add(65536, 1024, 16)
	f.Add(5, 1000, 4) // grain far larger than the space
	f.Fuzz(func(t *testing.T, n, grain, team int) {
		// Map arbitrary fuzz inputs onto meaningful bounds. Negative n and
		// non-positive grain are legal inputs to the Chunker itself (empty
		// space, grain clamped to 1), so pass them through un-normalised.
		if n > 1<<17 {
			n = n % (1 << 17)
		}
		if grain > 1<<13 {
			grain = grain % (1 << 13)
		}
		team = team % 16
		if team < 1 {
			team = -team + 1
		}

		c := NewChunker(n, grain)
		effGrain := grain
		if effGrain <= 0 {
			effGrain = 1
		}

		var mu sync.Mutex
		var claimed []Range
		var wg sync.WaitGroup
		for w := 0; w < team; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var mine []Range
				for {
					r, ok := c.Next()
					if !ok {
						break
					}
					mine = append(mine, r)
				}
				mu.Lock()
				claimed = append(claimed, mine...)
				mu.Unlock()
			}()
		}
		wg.Wait()

		want := n
		if want < 0 {
			want = 0
		}
		sort.Slice(claimed, func(a, b int) bool { return claimed[a].Begin < claimed[b].Begin })
		next := 0
		for _, r := range claimed {
			if r.Empty() {
				t.Fatalf("n=%d grain=%d team=%d: empty chunk %v claimed as ok", n, grain, team, r)
			}
			if r.Begin != next {
				t.Fatalf("n=%d grain=%d team=%d: chunk %v does not continue tiling at %d (gap or overlap)",
					n, grain, team, r, next)
			}
			if r.Begin%effGrain != 0 {
				t.Fatalf("n=%d grain=%d team=%d: chunk %v not aligned to grain", n, grain, team, r)
			}
			if r.Len() > effGrain {
				t.Fatalf("n=%d grain=%d team=%d: chunk %v longer than grain", n, grain, team, r)
			}
			next = r.End
		}
		if next != want {
			t.Fatalf("n=%d grain=%d team=%d: tiled [0,%d) of [0,%d)", n, grain, team, next, want)
		}
		if rem := c.Remaining(); rem != 0 {
			t.Fatalf("n=%d grain=%d team=%d: Remaining() = %d after exhaustion", n, grain, team, rem)
		}
		// Replay after Reset must tile the same space again.
		c.Reset()
		total := 0
		for {
			r, ok := c.Next()
			if !ok {
				break
			}
			total += r.Len()
		}
		if total != want {
			t.Fatalf("n=%d grain=%d team=%d: replay covered %d of %d", n, grain, team, total, want)
		}
	})
}
