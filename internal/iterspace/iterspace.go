// Package iterspace provides iteration-range types and the partitioning
// policies used by the loop schedulers: static block partitioning (the
// fine-grain and OpenMP-static schedulers), chunked dynamic partitioning
// (OpenMP dynamic), guided partitioning (OpenMP guided) and recursive
// bisection (the Cilk-style scheduler).
package iterspace

import (
	"fmt"
	"sync/atomic"
)

// Range is a half-open iteration interval [Begin, End).
type Range struct {
	Begin int
	End   int
}

// Len returns the number of iterations in the range (never negative).
func (r Range) Len() int {
	if r.End <= r.Begin {
		return 0
	}
	return r.End - r.Begin
}

// Empty reports whether the range contains no iterations.
func (r Range) Empty() bool { return r.End <= r.Begin }

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Begin, r.End) }

// Split bisects the range into two halves. The first half receives the extra
// iteration when the length is odd. Splitting an empty or single-iteration
// range returns the range itself and an empty second half.
func (r Range) Split() (Range, Range) {
	if r.Len() <= 1 {
		return r, Range{Begin: r.End, End: r.End}
	}
	mid := r.Begin + (r.End-r.Begin+1)/2
	return Range{r.Begin, mid}, Range{mid, r.End}
}

// Block computes the static block assignment of worker w out of p workers
// over n iterations: contiguous blocks as equal as possible, with the first
// n%p workers receiving one extra iteration. This matches OpenMP
// schedule(static) with the default chunk size and the paper's step 1
// ("the master divides the loop iteration range among available workers").
func Block(n, p, w int) Range {
	if p <= 0 {
		panic(fmt.Sprintf("iterspace: non-positive worker count %d", p))
	}
	if w < 0 || w >= p {
		panic(fmt.Sprintf("iterspace: worker %d out of range [0,%d)", w, p))
	}
	if n <= 0 {
		return Range{}
	}
	base := n / p
	rem := n % p
	var begin int
	if w < rem {
		begin = w * (base + 1)
		return Range{begin, begin + base + 1}
	}
	begin = rem*(base+1) + (w-rem)*base
	return Range{begin, begin + base}
}

// BlockAll returns the block assignment of every worker, in worker order.
// The concatenation of the returned ranges is exactly [0, n).
func BlockAll(n, p int) []Range {
	out := make([]Range, p)
	for w := 0; w < p; w++ {
		out[w] = Block(n, p, w)
	}
	return out
}

// Strided computes the block-cyclic assignment with the given chunk size:
// worker w executes chunks w, w+p, w+2p, ... of size chunk. The returned
// ranges are the chunks in execution order for that worker.
func Strided(n, p, w, chunk int) []Range {
	if chunk <= 0 {
		chunk = 1
	}
	var out []Range
	for begin := w * chunk; begin < n; begin += p * chunk {
		end := begin + chunk
		if end > n {
			end = n
		}
		out = append(out, Range{begin, end})
	}
	return out
}

// Chunker hands out chunks of an iteration space dynamically. It is the
// shared-counter scheduler behind OpenMP schedule(dynamic,chunk): every Next
// call claims the next `chunk` iterations with a single atomic add.
type Chunker struct {
	next  atomic.Int64
	n     int64
	chunk int64
}

// NewChunker creates a dynamic chunker over n iterations with the given
// chunk size (minimum 1).
func NewChunker(n, chunk int) *Chunker {
	c := &Chunker{}
	c.Init(n, chunk)
	return c
}

// Init (re)initialises an embedded Chunker in place over n iterations with
// the given chunk size (minimum 1), so that callers embedding a Chunker by
// value — one atomic cursor per job, say — need no extra allocation. It must
// not be called concurrently with Next.
func (c *Chunker) Init(n, chunk int) {
	if chunk <= 0 {
		chunk = 1
	}
	c.n = int64(n)
	c.chunk = int64(chunk)
	c.next.Store(0)
}

// InitAt is Init with a starting offset: claims begin at `begin` instead of
// 0, so a checkpointed job resumes from its cursor watermark and re-executes
// nothing. begin is clamped to [0, n]. It must not be called concurrently
// with Next.
func (c *Chunker) InitAt(begin, n, chunk int) {
	c.Init(n, chunk)
	b := int64(begin)
	if b < 0 {
		b = 0
	}
	if b > c.n {
		b = c.n
	}
	c.next.Store(b)
}

// Chunk returns the chunk size handed out by Next.
func (c *Chunker) Chunk() int { return int(c.chunk) }

// Claimed returns the exclusive high-water mark of claimed iterations:
// every iteration below it has been handed out by some Next call (clamped to
// n — the final claims overshoot the space). Once all claimants have finished
// their chunks and stopped claiming, this is the job's exact executed
// watermark.
func (c *Chunker) Claimed() int {
	claimed := c.next.Load()
	if claimed > c.n {
		claimed = c.n
	}
	if claimed < 0 {
		claimed = 0
	}
	return int(claimed)
}

// Next claims the next chunk. It returns an empty range (ok == false) once
// the iteration space is exhausted.
func (c *Chunker) Next() (Range, bool) {
	begin := c.next.Add(c.chunk) - c.chunk
	if begin >= c.n {
		return Range{}, false
	}
	end := begin + c.chunk
	if end > c.n {
		end = c.n
	}
	return Range{int(begin), int(end)}, true
}

// Remaining returns a lower bound on the number of unclaimed iterations.
func (c *Chunker) Remaining() int {
	claimed := c.next.Load()
	if claimed >= c.n {
		return 0
	}
	return int(c.n - claimed)
}

// Reset rewinds the chunker so the same iteration space can be replayed.
// It must not be called concurrently with Next.
func (c *Chunker) Reset() { c.next.Store(0) }

// Guided hands out chunks whose size decays with the remaining work, like
// OpenMP schedule(guided,chunkMin): each claim takes remaining/p iterations,
// but never fewer than chunkMin.
type Guided struct {
	mu       spinlock
	next     int64
	n        int64
	p        int64
	chunkMin int64
}

// NewGuided creates a guided scheduler over n iterations for p workers with
// the given minimum chunk size.
func NewGuided(n, p, chunkMin int) *Guided {
	if p <= 0 {
		p = 1
	}
	if chunkMin <= 0 {
		chunkMin = 1
	}
	return &Guided{n: int64(n), p: int64(p), chunkMin: int64(chunkMin)}
}

// Next claims the next guided chunk.
func (g *Guided) Next() (Range, bool) {
	g.mu.lock()
	if g.next >= g.n {
		g.mu.unlock()
		return Range{}, false
	}
	remaining := g.n - g.next
	size := remaining / g.p
	if size < g.chunkMin {
		size = g.chunkMin
	}
	if size > remaining {
		size = remaining
	}
	begin := g.next
	g.next += size
	g.mu.unlock()
	return Range{int(begin), int(begin + size)}, true
}

// Reset rewinds the guided scheduler. Not safe concurrently with Next.
func (g *Guided) Reset() { g.next = 0 }

// spinlock is a minimal test-and-set lock. The guided scheduler's critical
// section is a handful of instructions; a mutex's parking path would
// dominate it.
type spinlock struct {
	v atomic.Uint32
}

func (l *spinlock) lock() {
	for {
		if l.v.CompareAndSwap(0, 1) {
			return
		}
		for l.v.Load() != 0 {
			// spin
		}
	}
}

func (l *spinlock) unlock() { l.v.Store(0) }
