package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Stddev != 0 || one.Median != 7 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestMedianEven(t *testing.T) {
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("Median(nil) = %v", m)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose; input must not be modified
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
		{-1, 1}, {2, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 4 {
		t.Errorf("input modified: %v", xs)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Quantiles(xs, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", got, want)
		}
	}
	if out := Quantiles(nil, 0.5, 0.9); len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Errorf("empty Quantiles = %v", out)
	}
	// Agreement with Quantile and Median.
	for _, q := range []float64{0.1, 0.42, 0.77} {
		if Quantiles(xs, q)[0] != Quantile(xs, q) {
			t.Errorf("Quantiles(%v) disagrees with Quantile", q)
		}
	}
	if Quantile(xs, 0.5) != Median(xs) {
		t.Errorf("median quantile disagrees with Median")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Errorf("Mean broken")
	}
}

func TestDurations(t *testing.T) {
	ds := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	if MinDuration(ds) != time.Millisecond {
		t.Errorf("MinDuration = %v", MinDuration(ds))
	}
	if MedianDuration(ds) != 2*time.Millisecond {
		t.Errorf("MedianDuration = %v", MedianDuration(ds))
	}
	if MinDuration(nil) != 0 || MedianDuration(nil) != 0 {
		t.Errorf("empty durations should yield 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2.5 + 1.5*x[i]
	}
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2.5) > 1e-9 || math.Abs(b-1.5) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = %v %v %v", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Errorf("accepted a single point")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Errorf("accepted mismatched lengths")
	}
	if _, _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Errorf("accepted degenerate x")
	}
}

func TestPropertyLinearFitRecoversLine(t *testing.T) {
	f := func(aRaw, bRaw int8, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		a := float64(aRaw) / 4
		b := float64(bRaw) / 8
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = a + b*x[i]
		}
		ga, gb, r2, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6 && r2 > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimer(t *testing.T) {
	calls := 0
	ds := Timer(3, true, func() { calls++ })
	if len(ds) != 3 || calls != 4 { // 1 warm-up + 3 timed
		t.Errorf("Timer ran %d times, returned %d samples", calls, len(ds))
	}
	ds = Timer(0, false, func() { calls++ })
	if len(ds) != 1 {
		t.Errorf("Timer with reps<=0 should run once")
	}
	for _, d := range ds {
		if d < 0 {
			t.Errorf("negative duration %v", d)
		}
	}
}
