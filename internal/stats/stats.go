// Package stats provides the small statistical toolkit used by the
// benchmark harness: summary statistics, robust repetition helpers and
// simple linear least squares. Everything is float64 and allocation-light.
package stats

import (
	"errors"
	"math"
	"sort"
	"time"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	Stddev float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Median(xs)
	return s
}

// Median returns the median of the sample (average of the middle two for
// even sizes). The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Quantile returns the q-quantile of the sample (q clamped to [0, 1]) using
// linear interpolation between order statistics. The input is not modified.
// An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q)
}

// quantileSorted interpolates the q-quantile of an already-sorted non-empty
// sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the given quantiles of the sample in one pass over a
// single sorted copy; it is the latency-percentile helper used by the jobs
// subsystem's statistics endpoint.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, q := range qs {
		out[i] = quantileSorted(cp, q)
	}
	return out
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinDuration returns the smallest of the supplied durations; benchmark
// timing conventionally reports the minimum of several repetitions as the
// least-noisy estimate of the true cost.
func MinDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	min := ds[0]
	for _, d := range ds[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// MedianDuration returns the median of the supplied durations.
func MedianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Median(xs))
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns the
// intercept a, slope b and the coefficient of determination R².
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: mismatched sample lengths")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, 0, 0, errors.New("stats: need at least two points")
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x sample")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// R².
	my := sy / n
	var ssTot, ssRes float64
	for i := range x {
		fit := a + b*x[i]
		ssRes += (y[i] - fit) * (y[i] - fit)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else {
		r2 = 1
	}
	return a, b, r2, nil
}

// Timer measures wall-clock durations of repeated runs of a function and
// returns them. The function is run once untimed to warm caches when warmup
// is true.
func Timer(reps int, warmup bool, f func()) []time.Duration {
	if reps <= 0 {
		reps = 1
	}
	if warmup {
		f()
	}
	out := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		out[i] = time.Since(start)
	}
	return out
}
