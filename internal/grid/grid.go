// Package grid provides the unstructured grid substrate for the MPDATA
// experiment (Figure 2 of the paper).
//
// The paper evaluates MPDATA "on a grid with 5568 points and 16399 edges"
// from the European Centre for Medium-range Weather Forecasting. That grid
// is not publicly available, so this package generates a synthetic
// unstructured grid of the same size and character: a planar triangulated
// mesh of a rectangular domain (with a small amount of boundary trimming to
// hit the exact edge count), stored in compressed adjacency (CSR) form. What
// matters for the reproduction is the *shape of the loops* MPDATA runs over
// the grid — an edge loop of ~16k very cheap iterations and point loops of
// ~5.5k iterations — which the synthetic mesh preserves exactly.
package grid

import (
	"fmt"
	"math"
)

// Grid is an unstructured mesh described by its points and edges, with CSR
// adjacency for point-centric loops.
type Grid struct {
	// NumPoints is the number of mesh points.
	NumPoints int
	// X and Y are the point coordinates.
	X, Y []float64
	// Area is the dual-cell area associated with each point.
	Area []float64

	// EdgeFrom and EdgeTo are the endpoints of each edge (from < to).
	EdgeFrom, EdgeTo []int32
	// EdgeNX and EdgeNY are the components of the edge normal (scaled by the
	// face length of the dual cell boundary crossing the edge).
	EdgeNX, EdgeNY []float64

	// CSR adjacency: the edges incident to point p are
	// IncidentEdges[IncidentStart[p]:IncidentStart[p+1]].
	IncidentStart []int32
	IncidentEdges []int32
}

// NumEdges returns the number of edges.
func (g *Grid) NumEdges() int { return len(g.EdgeFrom) }

// PaperPoints and PaperEdges are the sizes reported in the paper for the
// MPDATA grid.
const (
	PaperPoints = 5568
	PaperEdges  = 16399
)

// NewTriangulated builds a triangulated structured-topology mesh with rows×
// cols points: every interior cell of the underlying lattice is split into
// two triangles, so edges are the horizontal, vertical and one diagonal
// family. The mesh is then trimmed (diagonal edges removed from the end) to
// the requested edge budget, if positive, producing an unstructured edge
// set.
func NewTriangulated(rows, cols, edgeBudget int) (*Grid, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("grid: need at least a 2x2 mesh, got %dx%d", rows, cols)
	}
	n := rows * cols
	g := &Grid{
		NumPoints: n,
		X:         make([]float64, n),
		Y:         make([]float64, n),
		Area:      make([]float64, n),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := r*cols + c
			// Slightly perturbed coordinates make the mesh "unstructured"
			// without destroying positivity of areas: the perturbation is a
			// deterministic function of the index.
			dx := 0.15 * math.Sin(float64(7*p%13))
			dy := 0.15 * math.Cos(float64(5*p%17))
			if r == 0 || c == 0 || r == rows-1 || c == cols-1 {
				dx, dy = 0, 0 // keep the boundary regular
			}
			g.X[p] = float64(c) + dx
			g.Y[p] = float64(r) + dy
			g.Area[p] = 1.0
		}
	}
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		g.EdgeFrom = append(g.EdgeFrom, int32(a))
		g.EdgeTo = append(g.EdgeTo, int32(b))
	}
	// Horizontal and vertical lattice edges.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := r*cols + c
			if c+1 < cols {
				addEdge(p, p+1)
			}
			if r+1 < rows {
				addEdge(p, p+cols)
			}
		}
	}
	// Diagonal edges (one per lattice cell) appended last so that trimming
	// to an edge budget removes only diagonals and keeps the mesh connected.
	for r := 0; r+1 < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			p := r*cols + c
			if (r+c)%2 == 0 {
				addEdge(p, p+cols+1)
			} else {
				addEdge(p+1, p+cols)
			}
		}
	}
	if edgeBudget > 0 {
		if edgeBudget < rows*(cols-1)+cols*(rows-1) {
			return nil, fmt.Errorf("grid: edge budget %d below the lattice minimum %d", edgeBudget, rows*(cols-1)+cols*(rows-1))
		}
		if edgeBudget > len(g.EdgeFrom) {
			return nil, fmt.Errorf("grid: edge budget %d exceeds the %d edges of a %dx%d triangulation", edgeBudget, len(g.EdgeFrom), rows, cols)
		}
		g.EdgeFrom = g.EdgeFrom[:edgeBudget]
		g.EdgeTo = g.EdgeTo[:edgeBudget]
	}
	g.computeNormals()
	g.buildAdjacency()
	return g, nil
}

// NewPaperGrid builds a synthetic grid with exactly the paper's 5568 points
// and 16399 edges (a 64×87 lattice whose triangulation has 16403 edges,
// trimmed by four diagonals to the paper's edge count).
func NewPaperGrid() (*Grid, error) {
	const rows, cols = 64, 87
	if rows*cols != PaperPoints {
		return nil, fmt.Errorf("grid: internal error, %d×%d != %d", rows, cols, PaperPoints)
	}
	return NewTriangulated(rows, cols, PaperEdges)
}

// computeNormals derives an edge "normal" (direction scaled by an effective
// face length) for the finite-volume update.
func (g *Grid) computeNormals() {
	m := g.NumEdges()
	g.EdgeNX = make([]float64, m)
	g.EdgeNY = make([]float64, m)
	for e := 0; e < m; e++ {
		a, b := g.EdgeFrom[e], g.EdgeTo[e]
		dx := g.X[b] - g.X[a]
		dy := g.Y[b] - g.Y[a]
		l := math.Hypot(dx, dy)
		if l == 0 {
			l = 1
		}
		// The dual face crossing the edge is approximated as having unit
		// length; its normal is the edge direction.
		g.EdgeNX[e] = dx / l
		g.EdgeNY[e] = dy / l
	}
}

// buildAdjacency fills the CSR incidence structure.
func (g *Grid) buildAdjacency() {
	n := g.NumPoints
	counts := make([]int32, n+1)
	for e := 0; e < g.NumEdges(); e++ {
		counts[g.EdgeFrom[e]+1]++
		counts[g.EdgeTo[e]+1]++
	}
	for p := 0; p < n; p++ {
		counts[p+1] += counts[p]
	}
	g.IncidentStart = counts
	g.IncidentEdges = make([]int32, counts[n])
	cursor := make([]int32, n)
	for e := 0; e < g.NumEdges(); e++ {
		a, b := g.EdgeFrom[e], g.EdgeTo[e]
		g.IncidentEdges[g.IncidentStart[a]+cursor[a]] = int32(e)
		cursor[a]++
		g.IncidentEdges[g.IncidentStart[b]+cursor[b]] = int32(e)
		cursor[b]++
	}
}

// Degree returns the number of edges incident to point p.
func (g *Grid) Degree(p int) int {
	return int(g.IncidentStart[p+1] - g.IncidentStart[p])
}

// Validate checks structural invariants: edge endpoints in range, no self
// edges, adjacency consistent with the edge list, positive areas.
func (g *Grid) Validate() error {
	n := g.NumPoints
	if len(g.X) != n || len(g.Y) != n || len(g.Area) != n {
		return fmt.Errorf("grid: coordinate arrays have wrong length")
	}
	for e := 0; e < g.NumEdges(); e++ {
		a, b := g.EdgeFrom[e], g.EdgeTo[e]
		if a < 0 || int(a) >= n || b < 0 || int(b) >= n {
			return fmt.Errorf("grid: edge %d endpoints (%d,%d) out of range", e, a, b)
		}
		if a == b {
			return fmt.Errorf("grid: edge %d is a self loop on point %d", e, a)
		}
	}
	for p := 0; p < n; p++ {
		if g.Area[p] <= 0 {
			return fmt.Errorf("grid: point %d has non-positive area %g", p, g.Area[p])
		}
	}
	var incident int64
	for p := 0; p < n; p++ {
		for _, e := range g.IncidentEdges[g.IncidentStart[p]:g.IncidentStart[p+1]] {
			if g.EdgeFrom[e] != int32(p) && g.EdgeTo[e] != int32(p) {
				return fmt.Errorf("grid: adjacency lists edge %d at point %d, but the edge does not touch it", e, p)
			}
			incident++
		}
	}
	if incident != 2*int64(g.NumEdges()) {
		return fmt.Errorf("grid: adjacency covers %d incidences, want %d", incident, 2*g.NumEdges())
	}
	return nil
}
