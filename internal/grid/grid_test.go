package grid

import (
	"testing"
	"testing/quick"
)

func TestPaperGridHasExactPaperSizes(t *testing.T) {
	g, err := NewPaperGrid()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints != PaperPoints {
		t.Errorf("points = %d, want %d", g.NumPoints, PaperPoints)
	}
	if g.NumEdges() != PaperEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), PaperEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulatedSmall(t *testing.T) {
	g, err := NewTriangulated(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPoints != 12 {
		t.Errorf("points = %d", g.NumPoints)
	}
	// 3x4 lattice: 3*3 horizontal + 4*2 vertical + 2*3 diagonal = 9+8+6 = 23.
	if g.NumEdges() != 23 {
		t.Errorf("edges = %d, want 23", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every point of a connected triangulation has at least 2 incident edges.
	for p := 0; p < g.NumPoints; p++ {
		if g.Degree(p) < 2 {
			t.Errorf("point %d has degree %d", p, g.Degree(p))
		}
	}
}

func TestTriangulatedEdgeBudget(t *testing.T) {
	g, err := NewTriangulated(4, 4, 26) // lattice minimum is 24, full is 33
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 26 {
		t.Errorf("edges = %d, want 26", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulatedErrors(t *testing.T) {
	if _, err := NewTriangulated(1, 5, 0); err == nil {
		t.Errorf("accepted a 1-row mesh")
	}
	if _, err := NewTriangulated(4, 4, 5); err == nil {
		t.Errorf("accepted an edge budget below the lattice minimum")
	}
	if _, err := NewTriangulated(4, 4, 1000); err == nil {
		t.Errorf("accepted an edge budget above the triangulation size")
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g, err := NewTriangulated(6, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of degrees equals twice the edge count.
	total := 0
	for p := 0; p < g.NumPoints; p++ {
		total += g.Degree(p)
	}
	if total != 2*g.NumEdges() {
		t.Errorf("degree sum %d, want %d", total, 2*g.NumEdges())
	}
	// Each edge appears exactly once in each endpoint's incidence list.
	for e := 0; e < g.NumEdges(); e++ {
		for _, end := range []int32{g.EdgeFrom[e], g.EdgeTo[e]} {
			found := 0
			for _, ie := range g.IncidentEdges[g.IncidentStart[end]:g.IncidentStart[end+1]] {
				if int(ie) == e {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("edge %d appears %d times at point %d", e, found, end)
			}
		}
	}
}

func TestEdgeNormalsAreUnit(t *testing.T) {
	g, err := NewTriangulated(5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < g.NumEdges(); e++ {
		l := g.EdgeNX[e]*g.EdgeNX[e] + g.EdgeNY[e]*g.EdgeNY[e]
		if l < 0.99 || l > 1.01 {
			t.Errorf("edge %d normal has squared length %v", e, l)
		}
	}
}

func TestPropertyRandomMeshesValidate(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		rows := int(rRaw%20) + 2
		cols := int(cRaw%20) + 2
		g, err := NewTriangulated(rows, cols, 0)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.NumPoints == rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
