// Package sched defines the scheduler-facing contract that every runtime in
// this repository implements (the fine-grain half-barrier scheduler, the
// OpenMP-style baselines, the Cilk-style baseline and the hybrid), so that
// the workloads — the granularity micro-benchmark, MPDATA and the map-reduce
// kernels — are written once and run under any of them.
package sched

// Body is the body of a parallel loop over a contiguous chunk of the
// iteration space: it processes iterations [begin, end) on worker w.
type Body func(w, begin, end int)

// ReduceBody is the body of a reducing parallel loop: it processes
// iterations [begin, end) on worker w, folding into acc and returning the
// new accumulator value. The runtime guarantees that per-worker accumulators
// are combined in increasing worker-index order.
type ReduceBody func(w, begin, end int, acc float64) float64

// VecBody is the body of a parallel loop with a small-vector reduction: it
// processes iterations [begin, end) on worker w, accumulating in place into
// acc (whose length is the Width passed to ForReduceVec). It must only add
// to — never reset — acc.
type VecBody func(w, begin, end int, acc []float64)

// Scheduler is a parallel-loop runtime.
type Scheduler interface {
	// Name identifies the runtime in benchmark output (for example
	// "fine-grain-tree" or "openmp-static").
	Name() string
	// P returns the number of workers, including the master.
	P() int
	// For executes body over the iteration space [0, n), dividing it among
	// the workers according to the runtime's scheduling policy. It returns
	// when all iterations have completed.
	For(n int, body Body)
	// ForReduce executes a reducing loop with identity `identity` and the
	// associative combine function `combine`, returning the reduction of
	// all per-worker partial results in worker order.
	ForReduce(n int, identity float64, combine func(a, b float64) float64, body ReduceBody) float64
	// ForReduceVec executes a loop reducing into a vector of `width`
	// float64s by element-wise addition, returning the summed vector.
	ForReduceVec(n, width int, body VecBody) []float64
	// Close releases the runtime's workers. The scheduler must not be used
	// after Close.
	Close()
}

// SumVec adds src into dst element-wise; a helper shared by runtimes that
// implement ForReduceVec by per-worker buffers.
func SumVec(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Sequential is the trivial scheduler: it runs everything on the calling
// goroutine. It provides the T (sequential time) baseline for speedup
// measurements and a correctness oracle for the parallel runtimes.
type Sequential struct{}

// NewSequential returns the sequential scheduler.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Scheduler.
func (*Sequential) Name() string { return "sequential" }

// P implements Scheduler.
func (*Sequential) P() int { return 1 }

// For implements Scheduler.
func (*Sequential) For(n int, body Body) {
	if n <= 0 {
		return
	}
	body(0, 0, n)
}

// ForReduce implements Scheduler.
func (*Sequential) ForReduce(n int, identity float64, combine func(a, b float64) float64, body ReduceBody) float64 {
	acc := identity
	if n > 0 {
		acc = body(0, 0, n, acc)
	}
	return acc
}

// ForReduceVec implements Scheduler.
func (*Sequential) ForReduceVec(n, width int, body VecBody) []float64 {
	acc := make([]float64, width)
	if n > 0 {
		body(0, 0, n, acc)
	}
	return acc
}

// Close implements Scheduler.
func (*Sequential) Close() {}

var _ Scheduler = (*Sequential)(nil)
