package sched

import (
	"testing"
)

func TestSequentialFor(t *testing.T) {
	s := NewSequential()
	if s.Name() != "sequential" || s.P() != 1 {
		t.Errorf("metadata wrong")
	}
	var chunks int
	var total int
	s.For(10, func(w, begin, end int) {
		chunks++
		total += end - begin
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
	})
	if chunks != 1 || total != 10 {
		t.Errorf("sequential For: %d chunks covering %d", chunks, total)
	}
	s.For(0, func(w, b, e int) { t.Errorf("body called for empty loop") })
	s.Close()
}

func TestSequentialReduce(t *testing.T) {
	s := NewSequential()
	got := s.ForReduce(5, 100, func(a, b float64) float64 { return a + b },
		func(w, b, e int, acc float64) float64 { return acc + float64(e-b) })
	if got != 105 {
		t.Errorf("ForReduce = %v", got)
	}
	if got := s.ForReduce(0, 7, nil, nil); got != 7 {
		t.Errorf("empty ForReduce = %v", got)
	}
	v := s.ForReduceVec(4, 2, func(w, b, e int, acc []float64) {
		acc[0] += float64(e - b)
		acc[1] += 1
	})
	if v[0] != 4 || v[1] != 1 {
		t.Errorf("ForReduceVec = %v", v)
	}
	v = s.ForReduceVec(0, 3, nil)
	if len(v) != 3 {
		t.Errorf("empty vec reduce has wrong width: %v", v)
	}
}

func TestSumVec(t *testing.T) {
	dst := []float64{1, 2, 3}
	SumVec(dst, []float64{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Errorf("SumVec = %v", dst)
	}
}
