// Package omp implements an OpenMP-style parallel-loop runtime used as the
// baseline the paper compares against.
//
// The runtime follows the structure the paper ascribes to the Intel OpenMP
// runtime for statically scheduled loops:
//
//  1. the master publishes the work description,
//  2. a full *fork barrier* releases the team into the parallel region,
//  3. workers execute their share (static blocks, dynamic chunks or guided
//     chunks),
//  4. a full *join barrier* ends the region.
//
// For loops with reduction clauses the runtime inserts an additional
// barrier-like construct before the join barrier to aggregate the
// per-thread partial results — three barrier episodes per reducing loop,
// which is precisely the redundancy the half-barrier scheduler removes
// (see internal/core).
package omp

import (
	"fmt"
	"runtime"

	"loopsched/internal/barrier"
	"loopsched/internal/iterspace"
	"loopsched/internal/pool"
	"loopsched/internal/sched"
	"loopsched/internal/topology"
	"loopsched/internal/trace"
)

// Schedule selects the loop scheduling policy, mirroring OpenMP's
// schedule(...) clause.
type Schedule int

// Schedules.
const (
	// Static divides the iteration space into one contiguous block per
	// worker (schedule(static)).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter
	// (schedule(dynamic, chunk)); the OpenMP default chunk size is 1.
	Dynamic
	// Guided hands out geometrically shrinking chunks
	// (schedule(guided, chunk)).
	Guided
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// BarrierKind selects the barrier implementation backing the runtime.
type BarrierKind int

// Barrier kinds.
const (
	// BarrierCentralized is a sense-reversing counter barrier.
	BarrierCentralized BarrierKind = iota
	// BarrierTree is a topology-aligned tree barrier.
	BarrierTree
)

// Config configures the OpenMP-style runtime.
type Config struct {
	// Workers is the team size including the master; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Schedule is the loop scheduling policy.
	Schedule Schedule
	// Chunk is the chunk size for Dynamic and Guided; <= 0 selects the
	// OpenMP default (1).
	Chunk int
	// Barrier selects the barrier implementation.
	Barrier BarrierKind
	// LockOSThread locks workers to OS threads.
	LockOSThread bool
	// Name overrides the reported name.
	Name string
}

// DefaultConfig returns a static-scheduled runtime over all processors.
func DefaultConfig() Config {
	return Config{Workers: runtime.GOMAXPROCS(0), Schedule: Static, Chunk: 1, LockOSThread: true}
}

type cmdKind int

const (
	cmdNone cmdKind = iota
	cmdRun
	cmdShutdown
)

type reduceKind int

const (
	reduceNone reduceKind = iota
	reduceScalar
	reduceVec
)

type command struct {
	kind    cmdKind
	n       int
	body    sched.Body
	rbody   sched.ReduceBody
	vbody   sched.VecBody
	reduce  reduceKind
	width   int
	ident   float64
	combine func(a, b float64) float64
	chunker *iterspace.Chunker
	guided  *iterspace.Guided
}

type paddedF64 struct {
	v float64
	_ [120]byte
}

// Runtime is the OpenMP-style loop runtime. It is driven by a single master
// goroutine, like an OpenMP program's initial thread.
type Runtime struct {
	cfg  Config
	name string
	p    int

	team *pool.Team
	bar  barrier.Full

	cmd command

	scalarViews []paddedF64
	vecViews    [][]float64

	counters *trace.Counters
	closed   bool
}

// New creates and starts an OpenMP-style runtime.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 1
	}
	r := &Runtime{
		cfg:         cfg,
		name:        cfg.name(),
		p:           cfg.Workers,
		scalarViews: make([]paddedF64, cfg.Workers),
		vecViews:    make([][]float64, cfg.Workers),
		counters:    trace.New(),
	}
	switch cfg.Barrier {
	case BarrierTree:
		topo := topology.Detect(cfg.Workers)
		r.bar = barrier.NewTree(topo.GroupedTree(4, 4))
	default:
		r.bar = barrier.NewCentralized(cfg.Workers)
	}
	r.team = pool.New(pool.Config{Workers: cfg.Workers, LockOSThread: cfg.LockOSThread, Name: r.name})
	r.team.Start(r.workerLoop)
	return r
}

func (c Config) name() string {
	if c.Name != "" {
		return c.Name
	}
	return "openmp-" + c.Schedule.String()
}

// Name implements sched.Scheduler.
func (r *Runtime) Name() string { return r.name }

// P implements sched.Scheduler.
func (r *Runtime) P() int { return r.p }

// Counters returns the runtime's event counters.
func (r *Runtime) Counters() *trace.Counters { return r.counters }

// workerLoop is run by workers 1..P-1.
func (r *Runtime) workerLoop(w int) {
	for {
		r.bar.Wait(w) // fork barrier
		c := r.cmd
		if c.kind == cmdShutdown {
			return
		}
		r.runShare(w, &c)
		if c.reduce != reduceNone {
			// Reduction construct: an extra barrier episode after which the
			// master aggregates the per-thread results.
			r.bar.Wait(w)
		}
		r.bar.Wait(w) // join barrier
	}
}

// runShare executes worker w's portion of the published loop according to
// the configured schedule.
func (r *Runtime) runShare(w int, c *command) {
	switch c.reduce {
	case reduceScalar:
		acc := c.ident
		r.iterate(w, c, func(begin, end int) {
			acc = c.rbody(w, begin, end, acc)
		})
		r.scalarViews[w].v = acc
	case reduceVec:
		buf := r.vecViews[w]
		for i := range buf {
			buf[i] = 0
		}
		r.iterate(w, c, func(begin, end int) {
			c.vbody(w, begin, end, buf[:c.width])
		})
	default:
		r.iterate(w, c, func(begin, end int) {
			c.body(w, begin, end)
		})
	}
}

// iterate drives the schedule-specific chunk claiming for worker w, invoking
// run for every claimed chunk.
func (r *Runtime) iterate(w int, c *command, run func(begin, end int)) {
	switch r.cfg.Schedule {
	case Dynamic:
		for {
			rng, ok := c.chunker.Next()
			if !ok {
				return
			}
			r.counters.Inc(trace.ChunksClaimed)
			run(rng.Begin, rng.End)
		}
	case Guided:
		for {
			rng, ok := c.guided.Next()
			if !ok {
				return
			}
			r.counters.Inc(trace.ChunksClaimed)
			run(rng.Begin, rng.End)
		}
	default:
		rng := iterspace.Block(c.n, r.p, w)
		if !rng.Empty() {
			run(rng.Begin, rng.End)
		}
	}
}

// runLoop publishes a loop and drives the barrier protocol from the master.
func (r *Runtime) runLoop(c command) {
	if r.closed {
		panic("omp: runtime used after Close")
	}
	r.counters.Inc(trace.LoopsScheduled)
	switch r.cfg.Schedule {
	case Dynamic:
		c.chunker = iterspace.NewChunker(c.n, r.cfg.Chunk)
	case Guided:
		c.guided = iterspace.NewGuided(c.n, r.p, r.cfg.Chunk)
	}
	if r.p == 1 {
		r.cmd = c
		r.runShare(0, &c)
		if c.reduce == reduceScalar {
			r.foldScalar(&c)
		}
		if c.reduce == reduceVec {
			r.foldVec(&c)
		}
		return
	}
	r.cmd = c
	r.counters.Inc(trace.ForkPhases)
	r.counters.Inc(trace.BarrierEpisodes)
	r.bar.Wait(0) // fork barrier
	r.runShare(0, &c)
	if c.reduce != reduceNone {
		// Reduction barrier, then the master folds the per-thread views in
		// worker order.
		r.counters.Inc(trace.BarrierEpisodes)
		r.bar.Wait(0)
		if c.reduce == reduceScalar {
			r.foldScalar(&c)
		} else {
			r.foldVec(&c)
		}
	}
	r.counters.Inc(trace.JoinPhases)
	r.counters.Inc(trace.BarrierEpisodes)
	r.bar.Wait(0) // join barrier
}

func (r *Runtime) foldScalar(c *command) {
	acc := r.scalarViews[0].v
	for w := 1; w < r.p; w++ {
		acc = c.combine(acc, r.scalarViews[w].v)
		r.counters.Inc(trace.Reductions)
	}
	r.scalarViews[0].v = acc
}

func (r *Runtime) foldVec(c *command) {
	for w := 1; w < r.p; w++ {
		sched.SumVec(r.vecViews[0][:c.width], r.vecViews[w][:c.width])
		r.counters.Inc(trace.Reductions)
	}
}

// For implements sched.Scheduler.
func (r *Runtime) For(n int, body sched.Body) {
	if n <= 0 {
		return
	}
	r.runLoop(command{kind: cmdRun, n: n, body: body})
}

// ForReduce implements sched.Scheduler.
func (r *Runtime) ForReduce(n int, identity float64, combine func(a, b float64) float64, body sched.ReduceBody) float64 {
	if n <= 0 {
		return identity
	}
	c := command{kind: cmdRun, n: n, rbody: body, reduce: reduceScalar, ident: identity, combine: combine}
	r.runLoop(c)
	return r.scalarViews[0].v
}

// ForReduceVec implements sched.Scheduler.
func (r *Runtime) ForReduceVec(n, width int, body sched.VecBody) []float64 {
	out := make([]float64, width)
	if n <= 0 || width <= 0 {
		return out
	}
	r.ensureVecViews(width)
	c := command{kind: cmdRun, n: n, vbody: body, reduce: reduceVec, width: width}
	r.runLoop(c)
	copy(out, r.vecViews[0][:width])
	return out
}

func (r *Runtime) ensureVecViews(width int) {
	if len(r.vecViews[0]) >= width {
		return
	}
	for w := range r.vecViews {
		r.vecViews[w] = make([]float64, width)
	}
}

// Close shuts the team down. Idempotent.
func (r *Runtime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.p > 1 {
		r.cmd = command{kind: cmdShutdown}
		r.bar.Wait(0)
	}
	r.team.Wait()
}

var _ sched.Scheduler = (*Runtime)(nil)
