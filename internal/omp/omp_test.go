package omp

import (
	"runtime"
	"sync/atomic"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/schedtest"
	"loopsched/internal/trace"
)

func counts() []int { return schedtest.WorkerCounts(runtime.GOMAXPROCS(0)) }

func TestConformanceStatic(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, Schedule: Static, LockOSThread: false})
	})
}

func TestConformanceDynamic(t *testing.T) {
	schedtest.RunCommutative(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, Schedule: Dynamic, Chunk: 4, LockOSThread: false})
	})
}

func TestConformanceGuided(t *testing.T) {
	schedtest.RunCommutative(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, Schedule: Guided, Chunk: 2, LockOSThread: false})
	})
}

func TestConformanceTreeBarrier(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, Schedule: Static, Barrier: BarrierTree, LockOSThread: false})
	})
}

func TestNames(t *testing.T) {
	cases := map[Schedule]string{Static: "openmp-static", Dynamic: "openmp-dynamic", Guided: "openmp-guided"}
	for s, want := range cases {
		r := New(Config{Workers: 1, Schedule: s, LockOSThread: false})
		if r.Name() != want {
			t.Errorf("Name() = %q, want %q", r.Name(), want)
		}
		r.Close()
	}
	r := New(Config{Workers: 1, Name: "custom", LockOSThread: false})
	if r.Name() != "custom" {
		t.Errorf("custom name not honoured: %q", r.Name())
	}
	r.Close()
}

func TestStaticLoopUsesTwoBarrierEpisodes(t *testing.T) {
	p := 4
	if runtime.GOMAXPROCS(0) < p {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 2 {
		t.Skip("needs 2 workers")
	}
	r := New(Config{Workers: p, Schedule: Static, LockOSThread: false})
	defer r.Close()
	r.Counters().Reset()
	r.For(100, func(w, b, e int) {})
	if got := r.Counters().Get(trace.BarrierEpisodes); got != 2 {
		t.Errorf("plain static loop used %d barrier episodes, want 2 (fork + join)", got)
	}
}

func TestReducingLoopUsesThreeBarrierEpisodes(t *testing.T) {
	// The paper: "The Intel OpenMP runtime implements reductions on top of a
	// barrier-like construct, which effectively introduces an additional
	// barrier" — three episodes per reducing loop versus two half-barriers
	// in the fine-grain runtime.
	p := 4
	if runtime.GOMAXPROCS(0) < p {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 2 {
		t.Skip("needs 2 workers")
	}
	r := New(Config{Workers: p, Schedule: Static, LockOSThread: false})
	defer r.Close()
	r.Counters().Reset()
	r.ForReduce(100, 0, func(a, b float64) float64 { return a + b },
		func(w, b, e int, acc float64) float64 { return acc + float64(e-b) })
	if got := r.Counters().Get(trace.BarrierEpisodes); got != 3 {
		t.Errorf("reducing loop used %d barrier episodes, want 3", got)
	}
	if got := r.Counters().Get(trace.Reductions); got != int64(p-1) {
		t.Errorf("reducing loop performed %d combines, want %d", got, p-1)
	}
}

func TestDynamicClaimsAllChunks(t *testing.T) {
	p := 3
	if runtime.GOMAXPROCS(0) < p {
		p = runtime.GOMAXPROCS(0)
	}
	r := New(Config{Workers: p, Schedule: Dynamic, Chunk: 7, LockOSThread: false})
	defer r.Close()
	n := 1000
	r.Counters().Reset()
	var covered int64
	r.For(n, func(w, b, e int) { atomic.AddInt64(&covered, int64(e-b)) })
	if covered != int64(n) {
		t.Fatalf("dynamic schedule covered %d of %d iterations", covered, n)
	}
	wantChunks := int64((n + 6) / 7)
	if got := r.Counters().Get(trace.ChunksClaimed); got != wantChunks {
		t.Errorf("claimed %d chunks, want %d", got, wantChunks)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	r := New(Config{Workers: 2, Schedule: Guided, Chunk: 1, LockOSThread: false})
	defer r.Close()
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var sizes []int
	r.For(10000, func(w, b, e int) {
		<-mu
		sizes = append(sizes, e-b)
		mu <- struct{}{}
	})
	if len(sizes) < 2 {
		t.Fatalf("guided produced %d chunks", len(sizes))
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 10000 {
		t.Errorf("guided covered %d iterations, want 10000", total)
	}
	// The largest chunk must exceed the smallest: guided chunks decay.
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max <= min {
		t.Errorf("guided chunk sizes do not decay: min=%d max=%d", min, max)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers <= 0 || cfg.Schedule != Static || cfg.Chunk != 1 || !cfg.LockOSThread {
		t.Errorf("unexpected default config: %+v", cfg)
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Errorf("Schedule.String() broken")
	}
	if Schedule(99).String() == "" {
		t.Errorf("unknown schedule should still format")
	}
}

func TestCloseIdempotentAndPanicsAfterUse(t *testing.T) {
	r := New(Config{Workers: 2, LockOSThread: false})
	r.For(10, func(w, b, e int) {})
	r.Close()
	r.Close()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on use after Close")
		}
	}()
	r.For(10, func(w, b, e int) {})
}
