package cilk

import (
	"sync/atomic"
)

// deque is a Chase–Lev work-stealing deque of *task. The owning worker
// pushes and pops at the bottom without synchronisation against itself;
// thieves steal from the top with a compare-and-swap. The circular buffer
// grows geometrically and old buffers are retained by the garbage collector
// until no thief can reference them, which sidesteps the memory reclamation
// problem of the original C algorithm.
type deque struct {
	top    atomic.Int64
	_      [120]byte
	bottom atomic.Int64
	_      [120]byte
	buf    atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask  int64
	tasks []atomic.Pointer[task]
}

func newDequeBuf(capacity int64) *dequeBuf {
	if capacity < 8 {
		capacity = 8
	}
	// Round up to a power of two.
	c := int64(8)
	for c < capacity {
		c <<= 1
	}
	return &dequeBuf{mask: c - 1, tasks: make([]atomic.Pointer[task], c)}
}

func (b *dequeBuf) get(i int64) *task    { return b.tasks[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *task) { b.tasks[i&b.mask].Store(t) }
func (b *dequeBuf) grow(top, bottom int64) *dequeBuf {
	nb := newDequeBuf((b.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		nb.put(i, b.get(i))
	}
	return nb
}

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newDequeBuf(64))
	return d
}

// pushBottom adds a task at the bottom (owner only).
func (d *deque) pushBottom(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp > buf.mask {
		buf = buf.grow(tp, b)
		d.buf.Store(buf)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes and returns the most recently pushed task (owner only),
// or nil if the deque is empty or the last task was lost to a thief.
func (d *deque) popBottom() *task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if b < tp {
		// Empty: restore bottom.
		d.bottom.Store(tp)
		return nil
	}
	t := buf.get(b)
	if b > tp {
		return t
	}
	// Single element: race with thieves via CAS on top.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil // lost the race
	}
	d.bottom.Store(tp + 1)
	return t
}

// steal removes and returns the oldest task (any thief), or nil if the deque
// is empty or the steal raced with another thief or the owner.
func (d *deque) steal() *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	buf := d.buf.Load()
	t := buf.get(tp)
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil
	}
	return t
}

// size returns an instantaneous estimate of the number of queued tasks.
func (d *deque) size() int64 {
	s := d.bottom.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}
