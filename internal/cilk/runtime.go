// Package cilk implements a Cilk-style work-stealing runtime used as the
// second baseline of the paper: random work stealing over Chase–Lev deques,
// recursive divide-and-conquer parallel loops (cilk_for), a blocking
// spawn/sync pair, and reducer hyperobjects with lazily created views.
//
// Relative to the fine-grain half-barrier scheduler (internal/core), every
// parallel loop here pays for task allocation, deque traffic, steal attempts
// and — for reducing loops — per-task view creation and merging, which is
// exactly the overhead the paper's Table 1 attributes to Cilk (a burden an
// order of magnitude above the fine-grain scheduler's).
package cilk

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"loopsched/internal/pool"
	"loopsched/internal/sched"
	"loopsched/internal/spin"
	"loopsched/internal/trace"
)

// task is a unit of stealable work. fn runs the task on whichever worker
// claims it; done is set (with release semantics) when the task and all of
// its transitively spawned children have completed.
type task struct {
	fn   func(w *workerCtx)
	done atomic.Uint32
}

// workerCtx is the per-worker state of the runtime.
type workerCtx struct {
	id  int
	rt  *Runtime
	dq  *deque
	rng *rand.Rand
}

// Config configures the Cilk-style runtime.
type Config struct {
	// Workers is the number of workers including the master; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Grain is the minimum number of iterations per leaf task. <= 0 selects
	// the cilk_for default, max(1, n/(8·P)), per loop.
	Grain int
	// LockOSThread locks workers to OS threads.
	LockOSThread bool
	// Name overrides the reported name.
	Name string
}

// DefaultConfig returns the default Cilk-style configuration.
func DefaultConfig() Config {
	return Config{Workers: runtime.GOMAXPROCS(0), LockOSThread: true}
}

// Runtime is the Cilk-style work-stealing runtime. A single master goroutine
// drives it; workers 1..P-1 scavenge for stolen work while a parallel region
// is active and wait for the next region otherwise.
type Runtime struct {
	cfg  Config
	name string
	p    int

	team    *pool.Team
	workers []*workerCtx

	// regionEpoch is incremented by the master to wake the workers for a new
	// parallel region; regionDone is set when the region's root task has
	// completed and workers should go back to waiting.
	regionEpoch atomic.Uint64
	regionDone  atomic.Uint32
	shutdown    atomic.Uint32

	counters *trace.Counters
	closed   bool
}

// New creates and starts a Cilk-style runtime.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	name := cfg.Name
	if name == "" {
		name = "cilk"
	}
	rt := &Runtime{cfg: cfg, name: name, p: cfg.Workers, counters: trace.New()}
	rt.workers = make([]*workerCtx, cfg.Workers)
	for i := range rt.workers {
		rt.workers[i] = &workerCtx{id: i, rt: rt, dq: newDeque(), rng: rand.New(rand.NewSource(int64(i)*2654435761 + 1))}
	}
	rt.team = pool.New(pool.Config{Workers: cfg.Workers, LockOSThread: cfg.LockOSThread, Name: name})
	rt.team.Start(rt.workerLoop)
	return rt
}

// Name implements sched.Scheduler.
func (rt *Runtime) Name() string { return rt.name }

// P implements sched.Scheduler.
func (rt *Runtime) P() int { return rt.p }

// Counters returns the runtime's event counters.
func (rt *Runtime) Counters() *trace.Counters { return rt.counters }

// workerLoop is run by workers 1..P-1: wait for a region, scavenge until it
// ends, repeat.
func (rt *Runtime) workerLoop(id int) {
	w := rt.workers[id]
	var seen uint64
	for {
		// Wait for the next parallel region (or shutdown).
		spin.Wait(func() bool {
			return rt.shutdown.Load() == 1 || rt.regionEpoch.Load() > seen
		})
		if rt.shutdown.Load() == 1 {
			return
		}
		seen = rt.regionEpoch.Load()
		rt.scavenge(w)
	}
}

// scavenge repeatedly steals and executes tasks until the current region is
// declared done.
func (rt *Runtime) scavenge(w *workerCtx) {
	var backoff spin.Backoff
	for rt.regionDone.Load() == 0 {
		if t := rt.findWork(w); t != nil {
			backoff.Reset()
			rt.runTask(w, t)
			continue
		}
		backoff.Pause()
	}
}

// findWork returns a task from the worker's own deque or a random victim's.
func (rt *Runtime) findWork(w *workerCtx) *task {
	if t := w.dq.popBottom(); t != nil {
		return t
	}
	// Random stealing: a bounded number of attempts per call so callers can
	// interleave other polling.
	for attempt := 0; attempt < 2*rt.p; attempt++ {
		victim := w.rng.Intn(rt.p)
		if victim == w.id {
			continue
		}
		if t := rt.workers[victim].dq.steal(); t != nil {
			rt.counters.Inc(trace.Steals)
			return t
		}
		rt.counters.Inc(trace.FailedSteals)
	}
	return nil
}

// runTask executes a task and marks it done.
func (rt *Runtime) runTask(w *workerCtx, t *task) {
	t.fn(w)
	t.done.Store(1)
}

// spawn pushes a child task onto the worker's deque, making it available to
// thieves.
func (rt *Runtime) spawn(w *workerCtx, t *task) {
	rt.counters.Inc(trace.Spawns)
	w.dq.pushBottom(t)
}

// sync waits for a previously spawned task: if it is still in the worker's
// own deque it is executed inline (the common, un-stolen case); otherwise
// the worker keeps itself busy stealing other work until the thief finishes
// the task.
func (rt *Runtime) sync(w *workerCtx, t *task) {
	if got := w.dq.popBottom(); got != nil {
		// LIFO discipline guarantees the popped task is the one being
		// synced: everything pushed after it has already been popped or
		// executed by the nested calls between spawn and sync.
		if got != t {
			// Defensive: execute whatever we popped, then keep waiting.
			rt.runTask(w, got)
		} else {
			rt.runTask(w, t)
			return
		}
	}
	// The task was stolen (or we executed an interloper): help out until it
	// completes.
	var backoff spin.Backoff
	for t.done.Load() == 0 {
		if other := rt.findWork(w); other != nil {
			backoff.Reset()
			rt.runTask(w, other)
			continue
		}
		backoff.Pause()
	}
}

// runRegion runs root on the master worker as the root of a parallel region,
// waking the other workers to steal from it, and returns when root (and all
// of its descendants) have completed.
func (rt *Runtime) runRegion(root func(w *workerCtx)) {
	if rt.closed {
		panic("cilk: runtime used after Close")
	}
	rt.counters.Inc(trace.LoopsScheduled)
	master := rt.workers[0]
	if rt.p == 1 {
		root(master)
		return
	}
	rt.regionDone.Store(0)
	rt.regionEpoch.Add(1)
	root(master)
	rt.regionDone.Store(1)
	// Drain: the master's sync calls have already guaranteed the region's
	// task graph is complete; workers notice regionDone and park themselves.
}

// Close shuts down the runtime. Idempotent.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	rt.regionDone.Store(1)
	rt.shutdown.Store(1)
	rt.team.Wait()
}

var _ sched.Scheduler = (*Runtime)(nil)

// grainFor returns the leaf grain size for a loop of n iterations, following
// the cilk_for default of max(1, n/(8·P)) unless overridden in the config.
func (rt *Runtime) grainFor(n int) int {
	if rt.cfg.Grain > 0 {
		return rt.cfg.Grain
	}
	g := n / (8 * rt.p)
	if g < 1 {
		g = 1
	}
	return g
}

// String implements fmt.Stringer.
func (rt *Runtime) String() string {
	return fmt.Sprintf("cilk{p=%d}", rt.p)
}
