package cilk

import (
	"loopsched/internal/iterspace"
	"loopsched/internal/sched"
	"loopsched/internal/trace"
)

// For implements sched.Scheduler: a cilk_for style loop that recursively
// bisects the iteration space down to the grain size, spawning the right
// half at each level so thieves can pick it up.
func (rt *Runtime) For(n int, body sched.Body) {
	if n <= 0 {
		return
	}
	grain := rt.grainFor(n)
	rt.runRegion(func(w *workerCtx) {
		rt.forRec(w, iterspace.Range{Begin: 0, End: n}, grain, body)
	})
}

// forRec is the divide-and-conquer loop skeleton.
func (rt *Runtime) forRec(w *workerCtx, r iterspace.Range, grain int, body sched.Body) {
	if r.Len() <= grain {
		body(w.id, r.Begin, r.End)
		return
	}
	left, right := r.Split()
	child := &task{fn: func(tw *workerCtx) {
		rt.forRec(tw, right, grain, body)
	}}
	rt.spawn(w, child)
	rt.forRec(w, left, grain, body)
	rt.sync(w, child)
}

// ForReduce implements sched.Scheduler. The baseline Cilk reduction model is
// reproduced: every spawned subtask gets its own freshly created view
// (counted as a view creation), and views are merged pairwise at every sync
// — a number of combine operations proportional to the number of leaf tasks,
// "significantly higher" than the P-1 the fine-grain runtime performs.
func (rt *Runtime) ForReduce(n int, identity float64, combine func(a, b float64) float64, body sched.ReduceBody) float64 {
	if n <= 0 {
		return identity
	}
	grain := rt.grainFor(n)
	var result float64
	rt.runRegion(func(w *workerCtx) {
		result = rt.forReduceRec(w, iterspace.Range{Begin: 0, End: n}, grain, identity, combine, body)
	})
	return result
}

// reduceTask carries the stolen half's view.
type reduceTask struct {
	t     task
	value float64
}

func (rt *Runtime) forReduceRec(w *workerCtx, r iterspace.Range, grain int, identity float64, combine func(a, b float64) float64, body sched.ReduceBody) float64 {
	if r.Len() <= grain {
		return body(w.id, r.Begin, r.End, identity)
	}
	left, right := r.Split()
	// A fresh view for the spawned half, created at spawn time — the lazy
	// view creation of the baseline runtime.
	child := &reduceTask{}
	rt.counters.Inc(trace.ViewsCreated)
	child.t.fn = func(tw *workerCtx) {
		child.value = rt.forReduceRec(tw, right, grain, identity, combine, body)
	}
	rt.spawn(w, &child.t)
	leftVal := rt.forReduceRec(w, left, grain, identity, combine, body)
	rt.sync(w, &child.t)
	rt.counters.Inc(trace.Reductions)
	return combine(leftVal, child.value)
}

// ForReduceVec implements sched.Scheduler: like ForReduce but reducing
// element-wise into a vector of width float64s. Each spawned subtask
// allocates its own vector view.
func (rt *Runtime) ForReduceVec(n, width int, body sched.VecBody) []float64 {
	out := make([]float64, width)
	if n <= 0 || width <= 0 {
		return out
	}
	grain := rt.grainFor(n)
	rt.runRegion(func(w *workerCtx) {
		rt.forReduceVecRec(w, iterspace.Range{Begin: 0, End: n}, grain, width, body, out)
	})
	return out
}

type vecTask struct {
	t     task
	value []float64
}

func (rt *Runtime) forReduceVecRec(w *workerCtx, r iterspace.Range, grain, width int, body sched.VecBody, acc []float64) {
	if r.Len() <= grain {
		body(w.id, r.Begin, r.End, acc)
		return
	}
	left, right := r.Split()
	child := &vecTask{value: make([]float64, width)}
	rt.counters.Inc(trace.ViewsCreated)
	child.t.fn = func(tw *workerCtx) {
		rt.forReduceVecRec(tw, right, grain, width, body, child.value)
	}
	rt.spawn(w, &child.t)
	rt.forReduceVecRec(w, left, grain, width, body, acc)
	rt.sync(w, &child.t)
	rt.counters.Inc(trace.Reductions)
	sched.SumVec(acc, child.value)
}
