package cilk

import (
	"sync"

	"loopsched/internal/reduce"
	"loopsched/internal/trace"
)

// Reducer is a Cilk-style reducer hyperobject: a value with an associative
// (possibly non-commutative) combine operation whose per-strand views are
// created lazily on first access and merged by the runtime. This type models
// the *baseline* Cilk reducer interface the paper starts from; the
// fine-grain runtime instead allocates its views statically at loop start
// and merges them inside the join half-barrier (see internal/core and the
// public loop package).
//
// The Reducer here creates one view per worker per parallel region on first
// access (guarded by a mutex, as the baseline runtime's view lookup is a
// hash-map access on every reducer operation) and merges the views in worker
// order when Get is called after the region.
type Reducer[T any] struct {
	rt *Runtime
	op reduce.Op[T]

	mu      sync.Mutex
	views   map[int]*T
	ordered []int
}

// NewReducer creates a reducer hyperobject bound to the runtime.
func NewReducer[T any](rt *Runtime, op reduce.Op[T]) *Reducer[T] {
	return &Reducer[T]{rt: rt, op: op, views: make(map[int]*T)}
}

// View returns worker w's current view, creating it lazily on first access.
// The lookup cost (a lock plus a map access) is paid on every call, which is
// the overhead the statically allocated views of the fine-grain runtime
// avoid.
func (r *Reducer[T]) View(w int) *T {
	r.mu.Lock()
	v, ok := r.views[w]
	if !ok {
		val := r.op.Identity()
		v = &val
		r.views[w] = v
		r.ordered = append(r.ordered, w)
		r.rt.counters.Inc(trace.ViewsCreated)
	}
	r.mu.Unlock()
	return v
}

// Update folds x into worker w's view.
func (r *Reducer[T]) Update(w int, x T) {
	v := r.View(w)
	*v = r.op.Combine(*v, x)
}

// Get merges all views in increasing worker order, resets the reducer and
// returns the merged value. It must be called outside a parallel region.
func (r *Reducer[T]) Get() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Merge in worker-index order: with the runtime's left-to-right loop
	// decomposition this preserves the reducer's sequential semantics for
	// the common case where each worker's view covers a contiguous range.
	insertionSort(r.ordered)
	acc := r.op.Identity()
	for _, w := range r.ordered {
		acc = r.op.Combine(acc, *r.views[w])
		r.rt.counters.Inc(trace.Reductions)
	}
	r.views = make(map[int]*T)
	r.ordered = nil
	return acc
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
