package cilk

import (
	"runtime"
	"sync/atomic"
	"testing"

	"loopsched/internal/reduce"
	"loopsched/internal/sched"
	"loopsched/internal/schedtest"
	"loopsched/internal/trace"
)

func counts() []int { return schedtest.WorkerCounts(runtime.GOMAXPROCS(0)) }

func TestConformance(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, LockOSThread: false})
	})
}

func TestConformanceCoarseGrain(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, Grain: 128, LockOSThread: false})
	})
}

func TestStealsHappenUnderLoad(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		t.Skip("needs at least 2 workers")
	}
	if p > 8 {
		p = 8
	}
	rt := New(Config{Workers: p, LockOSThread: false})
	defer rt.Close()
	rt.Counters().Reset()
	// A loop with enough unbalanced work per iteration that thieves get a
	// chance to participate.
	var sink atomic.Int64
	for rep := 0; rep < 20 && rt.Counters().Get(trace.Steals) == 0; rep++ {
		rt.For(10000, func(w, begin, end int) {
			local := int64(0)
			for i := begin; i < end; i++ {
				local += int64(i % 7)
			}
			sink.Add(local)
		})
	}
	if rt.Counters().Get(trace.Steals) == 0 {
		t.Errorf("no steals observed across repeated unbalanced loops; work stealing appears inert")
	}
	if rt.Counters().Get(trace.Spawns) == 0 {
		t.Errorf("no spawns recorded")
	}
}

func TestReduceViewsExceedPMinus1(t *testing.T) {
	// The paper contrasts baseline Cilk ("operations may be significantly
	// higher") with the fine-grain runtime's exactly P-1 combines. The
	// divide-and-conquer reduction creates one view per spawned subtask, so
	// with the default grain (n / 8P) the combine count is roughly 8·P, far
	// above P-1.
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	if p < 2 {
		t.Skip("needs at least 2 workers")
	}
	rt := New(Config{Workers: p, LockOSThread: false})
	defer rt.Close()
	rt.Counters().Reset()
	n := 100000
	got := rt.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
		func(w, b, e int, acc float64) float64 { return acc + float64(e-b) })
	if int(got) != n {
		t.Fatalf("reduce = %v, want %d", got, n)
	}
	reductions := rt.Counters().Get(trace.Reductions)
	if reductions <= int64(p-1) {
		t.Errorf("baseline Cilk performed %d combines, expected significantly more than P-1=%d", reductions, p-1)
	}
	if views := rt.Counters().Get(trace.ViewsCreated); views != reductions {
		t.Errorf("views created (%d) != combines (%d); every spawned subtask should own a view", views, reductions)
	}
}

func TestGrainDefault(t *testing.T) {
	rt := New(Config{Workers: 4, LockOSThread: false})
	defer rt.Close()
	if g := rt.grainFor(32 * 8 * 4); g != 32 {
		t.Errorf("default grain for n=1024, p=4: got %d, want 32", g)
	}
	if g := rt.grainFor(1); g != 1 {
		t.Errorf("grain must be at least 1, got %d", g)
	}
	rt2 := New(Config{Workers: 4, Grain: 100, LockOSThread: false})
	defer rt2.Close()
	if g := rt2.grainFor(100000); g != 100 {
		t.Errorf("explicit grain not honoured: %d", g)
	}
}

func TestDequeSequential(t *testing.T) {
	d := newDeque()
	if d.popBottom() != nil || d.steal() != nil {
		t.Fatalf("empty deque returned a task")
	}
	tasks := make([]*task, 100)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBottom(tasks[i])
	}
	if d.size() != 100 {
		t.Errorf("size = %d, want 100", d.size())
	}
	// LIFO from the bottom.
	for i := 99; i >= 50; i-- {
		if got := d.popBottom(); got != tasks[i] {
			t.Fatalf("popBottom returned wrong task at %d", i)
		}
	}
	// FIFO from the top.
	for i := 0; i < 50; i++ {
		if got := d.steal(); got != tasks[i] {
			t.Fatalf("steal returned wrong task at %d", i)
		}
	}
	if d.popBottom() != nil || d.steal() != nil {
		t.Errorf("deque should be empty")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	const n = 10000 // forces several buffer growths from the initial 64
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBottom(tasks[i])
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.popBottom(); got != tasks[i] {
			t.Fatalf("after growth, popBottom mismatch at %d", i)
		}
	}
}

func TestDequeConcurrentStealers(t *testing.T) {
	d := newDeque()
	const n = 50000
	for i := 0; i < n; i++ {
		d.pushBottom(&task{})
	}
	thieves := 4
	var stolen atomic.Int64
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		go func() {
			for {
				if t := d.steal(); t != nil {
					stolen.Add(1)
				} else if d.size() == 0 {
					break
				}
			}
			done <- struct{}{}
		}()
	}
	var popped int64
	for d.size() > 0 {
		if t := d.popBottom(); t != nil {
			popped++
		}
	}
	for i := 0; i < thieves; i++ {
		<-done
	}
	if got := stolen.Load() + popped; got != n {
		t.Errorf("claimed %d tasks (stolen %d, popped %d), want exactly %d", got, stolen.Load(), popped, n)
	}
}

func TestReducerHyperobject(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 4 {
		p = 4
	}
	rt := New(Config{Workers: p, LockOSThread: false})
	defer rt.Close()

	r := NewReducer(rt, reduce.Sum[float64]())
	n := 10000
	rt.For(n, func(w, begin, end int) {
		for i := begin; i < end; i++ {
			r.Update(w, float64(i))
		}
	})
	got := r.Get()
	want := float64(n) * float64(n-1) / 2
	if got != want {
		t.Errorf("reducer sum = %v, want %v", got, want)
	}
	// After Get the reducer is reset.
	if again := r.Get(); again != 0 {
		t.Errorf("reducer not reset after Get: %v", again)
	}
}

func TestReducerListOrder(t *testing.T) {
	// With a single worker the list reducer must reproduce sequential order
	// exactly (baseline Cilk guarantees this; with multiple workers our
	// simplified model merges per-worker views in worker order, which
	// preserves order only for contiguous per-worker chunks, so the test
	// pins the single-worker contract).
	rt := New(Config{Workers: 1, LockOSThread: false})
	defer rt.Close()
	r := NewReducer(rt, reduce.Append[int]())
	n := 100
	rt.For(n, func(w, begin, end int) {
		for i := begin; i < end; i++ {
			r.Update(w, []int{i})
		}
	})
	got := r.Get()
	if len(got) != n {
		t.Fatalf("list reducer length %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("list reducer order violated at %d: %v", i, v)
		}
	}
}

func TestRuntimeStringAndClose(t *testing.T) {
	rt := New(Config{Workers: 2, LockOSThread: false})
	if rt.String() == "" || rt.Name() != "cilk" || rt.P() != 2 {
		t.Errorf("metadata wrong: %q %q %d", rt.String(), rt.Name(), rt.P())
	}
	rt.Close()
	rt.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on use after Close")
		}
	}()
	rt.For(10, func(w, b, e int) {})
}
