package linreg

import (
	"math"
	"runtime"
	"testing"

	"loopsched/internal/cilk"
	"loopsched/internal/core"
	"loopsched/internal/omp"
	"loopsched/internal/sched"
)

func TestGenerateIsDeterministicAndLinear(t *testing.T) {
	a := Generate(10000)
	b := Generate(10000)
	if len(a.Points) != 10000 {
		t.Fatalf("generated %d points", len(a.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("generation is not deterministic at %d", i)
		}
	}
	st := a.Sequential()
	res, err := st.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// The generator draws around y = 0.25x + 30 with small noise.
	if math.Abs(res.Slope-0.25) > 0.05 {
		t.Errorf("slope = %v, want ~0.25", res.Slope)
	}
	if math.Abs(res.Intercept-30) > 5 {
		t.Errorf("intercept = %v, want ~30", res.Intercept)
	}
	if res.R2 < 0.8 {
		t.Errorf("R2 = %v", res.R2)
	}
}

func TestStatsAddAndSolveErrors(t *testing.T) {
	s := Stats{SX: 1, SY: 2, SXX: 3, SYY: 4, SXY: 5, N: 6}
	sum := s.Add(s)
	if sum.N != 12 || sum.SXY != 10 {
		t.Errorf("Add = %+v", sum)
	}
	if _, err := (Stats{N: 1}).Solve(); err == nil {
		t.Errorf("accepted N=1")
	}
	if _, err := (Stats{N: 3, SX: 3, SXX: 3}).Solve(); err == nil {
		t.Errorf("accepted degenerate x (all equal)")
	}
}

func TestParallelRuntimesMatchSequential(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	data := Generate(200000)
	want := data.Sequential()

	runtimes := []sched.Scheduler{
		core.New(core.Config{Workers: p, LockOSThread: false}),
		core.New(core.Config{Workers: p, Mode: core.ModeFull, LockOSThread: false}),
		omp.New(omp.Config{Workers: p, Schedule: omp.Static, LockOSThread: false}),
		cilk.New(cilk.Config{Workers: p, LockOSThread: false}),
	}
	for _, rt := range runtimes {
		got, err := data.Run(rt)
		if err != nil {
			t.Fatal(err)
		}
		check := func(name string, g, w float64) {
			tol := 1e-9 * (1 + math.Abs(w))
			if math.Abs(g-w) > tol {
				t.Errorf("%s: %s = %v, want %v", rt.Name(), name, g, w)
			}
		}
		check("N", got.N, want.N)
		check("SX", got.SX, want.SX)
		check("SY", got.SY, want.SY)
		check("SXX", got.SXX, want.SXX)
		check("SYY", got.SYY, want.SYY)
		check("SXY", got.SXY, want.SXY)
		rt.Close()
	}
}

func TestRunChunkedMatchesRun(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 4 {
		p = 4
	}
	data := Generate(100000)
	s := core.New(core.Config{Workers: p, LockOSThread: false})
	defer s.Close()
	whole, err := data.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := data.RunChunked(s, 7777)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(whole.SXY-chunked.SXY) > 1e-6*math.Abs(whole.SXY) || whole.N != chunked.N {
		t.Errorf("chunked stats differ: %+v vs %+v", whole, chunked)
	}
	// Chunk larger than the dataset falls back to a single loop.
	big, err := data.RunChunked(s, len(data.Points)+5)
	if err != nil || big.N != whole.N {
		t.Errorf("oversized chunk: %+v %v", big, err)
	}
}

func TestEmptyDatasetErrors(t *testing.T) {
	var d Dataset
	s := sched.NewSequential()
	if _, err := d.Run(s); err == nil {
		t.Errorf("accepted an empty dataset")
	}
	if _, err := d.RunChunked(s, 10); err == nil {
		t.Errorf("accepted an empty dataset (chunked)")
	}
}

func TestSolveKnownLine(t *testing.T) {
	// Exact points on y = 2x + 1.
	var st Stats
	for x := 0; x < 10; x++ {
		y := 2*float64(x) + 1
		st.SX += float64(x)
		st.SY += y
		st.SXX += float64(x) * float64(x)
		st.SYY += y * y
		st.SXY += float64(x) * y
		st.N++
	}
	res, err := st.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Slope-2) > 1e-9 || math.Abs(res.Intercept-1) > 1e-9 || math.Abs(res.R2-1) > 1e-9 {
		t.Errorf("Solve = %+v", res)
	}
}
