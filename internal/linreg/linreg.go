// Package linreg implements the Phoenix++ linear_regression workload used
// in Figure 3 of the paper: a single pass over a large array of (x, y)
// byte pairs accumulating the statistics Σx, Σy, Σxx, Σyy, Σxy and the point
// count, from which the least-squares line is computed. The entire workload
// is one big reduction, so its parallel efficiency is governed by the
// runtime's reduction implementation — per-worker views merged in the join
// half-barrier (fine-grain), an extra reduction barrier (OpenMP) or per-task
// lazily allocated views (Cilk).
package linreg

import (
	"errors"
	"math"

	"loopsched/internal/phoenix"
	"loopsched/internal/sched"
)

// Point is one sample: Phoenix++ stores the medium input as byte-valued
// coordinates (two bytes per point, ~50 MB for ~26 M points).
type Point struct {
	X, Y uint8
}

// Dataset is the input array.
type Dataset struct {
	Points []Point
}

// Indices of the accumulated statistics in the reduction vector.
const (
	idxSX = iota
	idxSY
	idxSXX
	idxSYY
	idxSXY
	idxN
	numStats
)

// Stats are the accumulated sums of the regression.
type Stats struct {
	SX, SY, SXX, SYY, SXY float64
	N                     float64
}

// Result is the fitted line and correlation.
type Result struct {
	Slope, Intercept, R2 float64
}

// PaperMediumPoints approximates the Phoenix++ "medium" input size for
// linear_regression (a ~50 MB file of 2-byte points).
const PaperMediumPoints = 25 * 1024 * 1024

// Generate builds a synthetic dataset of n points around the line
// y = 0.25·x + 30 with deterministic pseudo-noise, clamped to byte range —
// the same statistical shape as the Phoenix++ key files.
func Generate(n int) Dataset {
	pts := make([]Point, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range pts {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x := uint8(state)
		noise := int(int8(uint8(state >> 8)))
		y := int(float64(x)*0.25) + 30 + noise/16
		if y < 0 {
			y = 0
		}
		if y > 255 {
			y = 255
		}
		pts[i] = Point{X: x, Y: uint8(y)}
	}
	return Dataset{Points: pts}
}

// Job returns the Phoenix-style array job for the dataset.
func (d Dataset) Job() phoenix.ArrayJob {
	pts := d.Points
	return phoenix.ArrayJob{
		NumKeys: numStats,
		Map: func(w, begin, end int, emit []float64) {
			var sx, sy, sxx, syy, sxy, n float64
			for i := begin; i < end; i++ {
				x := float64(pts[i].X)
				y := float64(pts[i].Y)
				sx += x
				sy += y
				sxx += x * x
				syy += y * y
				sxy += x * y
				n++
			}
			emit[idxSX] += sx
			emit[idxSY] += sy
			emit[idxSXX] += sxx
			emit[idxSYY] += syy
			emit[idxSXY] += sxy
			emit[idxN] += n
		},
	}
}

// Run computes the regression statistics over the dataset using the given
// scheduler (a single reducing parallel loop).
func (d Dataset) Run(s sched.Scheduler) (Stats, error) {
	if len(d.Points) == 0 {
		return Stats{}, errors.New("linreg: empty dataset")
	}
	vec, err := d.Job().Run(s, len(d.Points))
	if err != nil {
		return Stats{}, err
	}
	return statsFromVec(vec), nil
}

// RunChunked computes the same statistics but issues the reduction as many
// smaller loops of chunk points each (the fine-grain variant the paper uses
// to stress scheduling overhead: the total work is identical, the number of
// scheduled loops grows as the chunk shrinks).
func (d Dataset) RunChunked(s sched.Scheduler, chunk int) (Stats, error) {
	if len(d.Points) == 0 {
		return Stats{}, errors.New("linreg: empty dataset")
	}
	if chunk <= 0 || chunk >= len(d.Points) {
		return d.Run(s)
	}
	job := d.Job()
	var total Stats
	for begin := 0; begin < len(d.Points); begin += chunk {
		end := begin + chunk
		if end > len(d.Points) {
			end = len(d.Points)
		}
		sub := phoenix.ArrayJob{
			NumKeys: numStats,
			Map: func(w, b, e int, emit []float64) {
				job.Map(w, begin+b, begin+e, emit)
			},
		}
		vec, err := sub.Run(s, end-begin)
		if err != nil {
			return Stats{}, err
		}
		total = total.Add(statsFromVec(vec))
	}
	return total, nil
}

// Sequential computes the statistics on the calling goroutine; it is the
// speedup baseline and the correctness oracle.
func (d Dataset) Sequential() Stats {
	var emit [numStats]float64
	d.Job().Map(0, 0, len(d.Points), emit[:])
	return statsFromVec(emit[:])
}

func statsFromVec(v []float64) Stats {
	return Stats{SX: v[idxSX], SY: v[idxSY], SXX: v[idxSXX], SYY: v[idxSYY], SXY: v[idxSXY], N: v[idxN]}
}

// Add combines two partial statistics.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SX: s.SX + o.SX, SY: s.SY + o.SY,
		SXX: s.SXX + o.SXX, SYY: s.SYY + o.SYY, SXY: s.SXY + o.SXY,
		N: s.N + o.N,
	}
}

// Solve returns the least-squares line and R² for the accumulated
// statistics.
func (s Stats) Solve() (Result, error) {
	if s.N < 2 {
		return Result{}, errors.New("linreg: need at least two points")
	}
	den := s.N*s.SXX - s.SX*s.SX
	if den == 0 {
		return Result{}, errors.New("linreg: degenerate x values")
	}
	slope := (s.N*s.SXY - s.SX*s.SY) / den
	intercept := (s.SY - slope*s.SX) / s.N
	// R² from the correlation coefficient.
	denY := s.N*s.SYY - s.SY*s.SY
	r2 := 1.0
	if denY > 0 {
		r := (s.N*s.SXY - s.SX*s.SY) / math.Sqrt(den*denY)
		r2 = r * r
	}
	return Result{Slope: slope, Intercept: intercept, R2: r2}, nil
}
