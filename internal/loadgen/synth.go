package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SynthConfig parameterizes trace synthesis. The op stream is a pure
// function of the config (most importantly Seed): the same config always
// synthesizes the byte-identical trace.
type SynthConfig struct {
	// Seed seeds every draw.
	Seed int64
	// Profile selects the arrival and policy shape; see Profiles. Empty
	// selects "mixed".
	Profile string
	// Ops is the number of requests; <= 0 selects 256.
	Ops int
	// DurationMs is the trace span in trace-time milliseconds; <= 0
	// selects 10000.
	DurationMs float64
	// Tenants is the number of regular tenant accounts (t0..tN-1); <= 0
	// selects 4. Adversarial profiles add a "spammer" account on top.
	Tenants int
	// Sizes is the job-size distribution; the zero value selects
	// DefaultSizes.
	Sizes SizeDist
}

// Profiles lists the synthesizable traffic shapes:
//
//   - steady:      Poisson-ish arrivals at a constant rate, scalar jobs,
//     heavy-tailed sizes — the null hypothesis.
//   - diurnal:     one full sinusoidal "day" over the trace: rate swings
//     ±80% around the mean, so the runtime sees both idle troughs and
//     saturated peaks.
//   - flashcrowd:  steady background with an 8x burst over a tenth of the
//     trace — the convoy shape that elastic scheduling exists for.
//   - adversarial: steady traffic plus a "spammer" tenant contributing a
//     third of all ops as tight-deadline, high-priority, no-wait jobs —
//     the admission-control and circuit-breaker stressor.
//   - mixed:       diurnal arrivals, a flash crowd, the spammer, pipeline
//     stage graphs and batched fan-outs all at once — the full production
//     shape, and the default.
func Profiles() []string {
	return []string{"steady", "diurnal", "flashcrowd", "adversarial", "mixed"}
}

// profile capability flags.
type profileShape struct {
	diurnal     bool
	flash       bool
	adversarial bool
	pipelines   bool
	batches     bool
}

var profileShapes = map[string]profileShape{
	"steady":      {},
	"diurnal":     {diurnal: true},
	"flashcrowd":  {flash: true},
	"adversarial": {adversarial: true},
	"mixed":       {diurnal: true, flash: true, adversarial: true, pipelines: true, batches: true},
}

// synthWorkloads is the workload mix of synthesized scalar ops: the
// calibrated spin family and the four numeric kernels, weighted towards
// the kernels so real memory-bound and reduction-heavy loops dominate.
var synthWorkloads = []string{
	"mpdata", "grid", "linreg", "mapreduce",
	"mpdata", "grid", "linreg", "mapreduce",
	"spin", "sum", "spinsum",
}

// pipelineSpecs are the stage graphs mixed-profile traces submit: fan-out/
// fan-in DAGs over the served workloads (widths and sizes kept small — a
// pipeline op costs width·stages jobs).
var pipelineSpecs = []string{
	"mpdata:2048,grid:1024:3,sum:512",
	"linreg:4096,mapreduce:1024:2",
	"spin:1024,mpdata:2048:2,linreg:1024",
}

func (c *SynthConfig) normalize() error {
	if c.Profile == "" {
		c.Profile = "mixed"
	}
	if _, ok := profileShapes[c.Profile]; !ok {
		return fmt.Errorf("loadgen: unknown profile %q (known: %v)", c.Profile, Profiles())
	}
	if c.Ops <= 0 {
		c.Ops = 256
	}
	if c.DurationMs <= 0 {
		c.DurationMs = 10000
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Sizes == (SizeDist{}) {
		c.Sizes = DefaultSizes()
	}
	return nil
}

// rate returns the profile's relative arrival intensity at trace time t in
// [0, 1); the absolute rate is normalized away by sampling a fixed op
// count from the density.
func (s profileShape) rate(t float64) float64 {
	r := 1.0
	if s.diurnal {
		// One full day per trace: trough at the start and end, peak in the
		// middle, swinging ±80% around the mean.
		r *= 1 + 0.8*math.Sin(2*math.Pi*t-math.Pi/2)
	}
	if s.flash && t >= 0.4 && t < 0.5 {
		r *= 8
	}
	if r < 0.05 {
		r = 0.05
	}
	return r
}

// Synthesize builds a trace from the config. Arrival times are sampled
// from the profile's intensity curve by rejection, sizes from the bounded
// Pareto, tenants/priorities/deadlines from the policy model; adversarial
// profiles route a third of the ops through the spammer account with
// tight deadlines and NoWait.
func Synthesize(cfg SynthConfig) (Trace, error) {
	if err := cfg.normalize(); err != nil {
		return Trace{}, err
	}
	shape := profileShapes[cfg.Profile]
	rng := rand.New(rand.NewSource(cfg.Seed))

	tenants := make([]string, cfg.Tenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("t%d", i)
	}
	policy := Policy{
		Tenants:         tenants,
		TenantPercent:   100, // served traffic always names its tenant
		PriorityPercent: 25,
		MinPriority:     -1,
		MaxPriority:     2,
		DeadlinePercent: 15,
		MaxDeadlineMs:   int(cfg.DurationMs / 4),
	}

	// Arrival times: rejection-sample the intensity curve, then sort. The
	// curve's maximum bounds the acceptance test; 8x flash on a 1.8 diurnal
	// peak caps at 14.4.
	const rateMax = 14.4
	times := make([]float64, cfg.Ops)
	for i := range times {
		for {
			t := rng.Float64()
			if rng.Float64()*rateMax <= shape.rate(t) {
				times[i] = t * cfg.DurationMs
				break
			}
		}
	}
	sort.Float64s(times)

	ops := make([]Op, 0, cfg.Ops)
	for _, at := range times {
		op := Op{AtMs: at}
		if shape.adversarial && rng.Intn(3) == 0 {
			// The spammer: tight deadlines on every job, fail-fast, high
			// priority — deliberately hostile to its SLO so feasibility
			// shedding and breakers have something to catch.
			op.Tenant = "spammer"
			op.Workload = synthWorkloads[rng.Intn(len(synthWorkloads))]
			op.N = cfg.Sizes.Draw(rng)
			op.DeadlineMs = 1 + rng.Intn(5)
			op.Priority = 3
			op.NoWait = rng.Intn(2) == 0
			ops = append(ops, op)
			continue
		}
		draw := policy.Draw(rng)
		op.Tenant = draw.Tenant
		op.Priority = draw.Priority
		op.DeadlineMs = draw.DeadlineMs
		switch {
		case shape.pipelines && rng.Intn(10) == 0:
			op.Pipeline = pipelineSpecs[rng.Intn(len(pipelineSpecs))]
		default:
			op.Workload = synthWorkloads[rng.Intn(len(synthWorkloads))]
			op.N = cfg.Sizes.Draw(rng)
			if rng.Intn(5) == 0 {
				op.Jobs = 2 + rng.Intn(7)
				if shape.batches && rng.Intn(2) == 0 {
					op.Batch = true
				}
			}
		}
		ops = append(ops, op)
	}
	return Trace{
		Meta: Meta{Version: traceVersion, Profile: cfg.Profile, Seed: cfg.Seed, Ops: len(ops)},
		Ops:  ops,
	}, nil
}
