package loadgen

import (
	"math"
	"math/rand"
)

// model.go holds the seeded distributions of the traffic model. They are
// shared with internal/schedtest's invariant harness — the op streams that
// verify the runtime and the traffic that loads it draw tenants, priorities,
// deadlines and job sizes from the same model.

// Policy draws the scheduling-policy dimensions of one op: which tenant
// account it charges, its priority class, and whether (and how tightly) it
// carries a deadline. All draws are pure functions of the supplied rng, so
// a seeded stream replays exactly.
type Policy struct {
	// Tenants are the account names ops draw from; TenantPercent is the
	// chance an op names one at all (the rest use the default account).
	Tenants       []string
	TenantPercent int
	// PriorityPercent is the chance an op sets a priority, drawn uniformly
	// from [MinPriority, MaxPriority].
	PriorityPercent          int
	MinPriority, MaxPriority int
	// DeadlinePercent is the chance an op carries a deadline, drawn
	// uniformly from [1, MaxDeadlineMs] milliseconds.
	DeadlinePercent int
	MaxDeadlineMs   int
}

// DefaultPolicy returns the policy mix the schedtest invariant harness has
// always used: half the ops name one of three shared accounts, a third set
// a priority in -1..3, an eighth carry a 1-50ms deadline.
func DefaultPolicy() Policy {
	return Policy{
		Tenants:         []string{"acct-a", "acct-b", "acct-c"},
		TenantPercent:   50,
		PriorityPercent: 33,
		MinPriority:     -1,
		MaxPriority:     3,
		DeadlinePercent: 12,
		MaxDeadlineMs:   50,
	}
}

// PolicyDraw is one op's drawn policy. DeadlineMs is 0 when the op carries
// no deadline (callers convert a non-zero value to an absolute time at
// submission).
type PolicyDraw struct {
	Tenant     string
	Priority   int
	DeadlineMs int
}

// Draw samples one op's policy from the rng.
func (p Policy) Draw(rng *rand.Rand) PolicyDraw {
	var d PolicyDraw
	if len(p.Tenants) > 0 && rng.Intn(100) < p.TenantPercent {
		d.Tenant = p.Tenants[rng.Intn(len(p.Tenants))]
	}
	if p.MaxPriority > p.MinPriority && rng.Intn(100) < p.PriorityPercent {
		d.Priority = p.MinPriority + rng.Intn(p.MaxPriority-p.MinPriority+1)
	}
	if p.MaxDeadlineMs > 0 && rng.Intn(100) < p.DeadlinePercent {
		d.DeadlineMs = 1 + rng.Intn(p.MaxDeadlineMs)
	}
	return d
}

// SizeDist is a bounded-Pareto job-size distribution: most jobs are small,
// a heavy tail is large — the shape that makes convoy and straggler
// pathologies (and the elastic scheduling that kills them) visible.
type SizeDist struct {
	// Min and Max bound the drawn size (inclusive).
	Min, Max int
	// Alpha is the Pareto tail exponent; smaller is heavier. <= 0 selects
	// 1.3 (heavy enough that the top percentile dominates total work).
	Alpha float64
}

// DefaultSizes returns the size distribution of the synthesized profiles:
// 256..65536 iterations with a 1.3 tail.
func DefaultSizes() SizeDist { return SizeDist{Min: 256, Max: 1 << 16, Alpha: 1.3} }

// Draw samples one job size.
func (d SizeDist) Draw(rng *rand.Rand) int {
	min, max := d.Min, d.Max
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 1.3
	}
	// Inverse-CDF of a Pareto truncated to [min, max]: u is uniform in
	// (0, 1]; 1-u avoids the u=0 pole while keeping the draw seeded.
	u := 1 - rng.Float64()
	lo := math.Pow(float64(min), -alpha)
	hi := math.Pow(float64(max), -alpha)
	x := math.Pow(lo-u*(lo-hi), -1/alpha)
	n := int(x)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}
