// Package loadgen is the trace-driven load generator behind cmd/loadgen: a
// deterministic traffic model (seeded synthesis of diurnal curves, flash
// crowds, heavy-tailed job sizes, adversarial deadline-spamming tenants and
// mixed pipeline+scalar traffic), a JSONL trace format for record/replay —
// any regression reproduces from a trace file — and an open-/closed-loop
// HTTP runner that drives a live loopd and accounts goodput, latency
// quantiles and shed ratios per tenant.
//
// The traffic model is the promotion of internal/schedtest's seeded
// op-stream generator from invariant harness to first-class workload
// description: schedtest draws its policy and size fields from this
// package's distributions, so the invariant streams and the served traffic
// stay one model.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Op is one trace record: a single /run request issued at a point in trace
// time. Exactly one of Workload or Pipeline is set. Field order is the
// serialization order; WriteTrace output is byte-reproducible for a given
// op stream.
type Op struct {
	// AtMs is the request's arrival offset from the trace start, in
	// milliseconds of trace time (the runner divides by its speed factor).
	AtMs float64 `json:"at_ms"`
	// Tenant is the fair-share account charged; empty selects the default.
	Tenant string `json:"tenant,omitempty"`
	// Workload names a registered job workload (see bench.JobWorkloads).
	Workload string `json:"workload,omitempty"`
	// Pipeline is a loopd pipeline spec (workload[:n[:width]],...),
	// submitted instead of a plain workload when set.
	Pipeline string `json:"pipeline,omitempty"`
	// N is the per-job iteration count; <= 0 lets the server default.
	N int `json:"n,omitempty"`
	// Jobs is the fan-out within the request; <= 1 means one job.
	Jobs int `json:"jobs,omitempty"`
	// Batch admits the fan-out through one SubmitBatch call.
	Batch bool `json:"batch,omitempty"`
	// Priority is the strict admission priority class.
	Priority int `json:"prio,omitempty"`
	// DeadlineMs asks for completion within this many milliseconds.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// NoWait fails fast instead of blocking when the queue is full.
	NoWait bool `json:"nowait,omitempty"`
}

// Meta is the header line of a trace file.
type Meta struct {
	// Version identifies the trace schema; ReadTrace rejects versions it
	// does not understand.
	Version int `json:"trace_version"`
	// Profile and Seed record how a synthesized trace was produced (for
	// provenance only; replay never re-synthesizes).
	Profile string `json:"profile,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Ops is the record count, a truncation check for replay.
	Ops int `json:"ops"`
}

// Trace is a recorded or synthesized op stream.
type Trace struct {
	Meta Meta
	Ops  []Op
}

// DurationMs returns the arrival offset of the last op (0 for an empty
// trace).
func (tr Trace) DurationMs() float64 {
	if len(tr.Ops) == 0 {
		return 0
	}
	return tr.Ops[len(tr.Ops)-1].AtMs
}

// traceVersion is the schema version WriteTrace emits.
const traceVersion = 1

// WriteTrace serializes the trace as JSONL: one meta header line followed
// by one op per line. The encoding is deterministic — the same op stream
// produces byte-identical output — so recorded traces diff cleanly and
// synthesis determinism is testable at the byte level.
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	meta := tr.Meta
	meta.Version = traceVersion
	meta.Ops = len(tr.Ops)
	line, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	bw.Write(line)
	bw.WriteByte('\n')
	for i := range tr.Ops {
		line, err := json.Marshal(&tr.Ops[i])
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace. The meta header is optional (a bare op
// stream replays fine) but when present its version and op count must
// match; ops must arrive in non-decreasing AtMs order.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawMeta := false
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if !sawMeta && lineNo == 1 && bytes.Contains(line, []byte("trace_version")) {
			if err := json.Unmarshal(line, &tr.Meta); err != nil {
				return tr, fmt.Errorf("loadgen: trace line %d: bad meta: %w", lineNo, err)
			}
			if tr.Meta.Version != traceVersion {
				return tr, fmt.Errorf("loadgen: trace version %d not supported (want %d)", tr.Meta.Version, traceVersion)
			}
			sawMeta = true
			continue
		}
		var op Op
		if err := json.Unmarshal(line, &op); err != nil {
			return tr, fmt.Errorf("loadgen: trace line %d: %w", lineNo, err)
		}
		if err := op.validate(); err != nil {
			return tr, fmt.Errorf("loadgen: trace line %d: %w", lineNo, err)
		}
		if n := len(tr.Ops); n > 0 && op.AtMs < tr.Ops[n-1].AtMs {
			return tr, fmt.Errorf("loadgen: trace line %d: at_ms %.3f before previous %.3f (trace must be time-ordered)",
				lineNo, op.AtMs, tr.Ops[n-1].AtMs)
		}
		tr.Ops = append(tr.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return tr, err
	}
	if sawMeta && tr.Meta.Ops != len(tr.Ops) {
		return tr, fmt.Errorf("loadgen: trace truncated: meta declares %d ops, found %d", tr.Meta.Ops, len(tr.Ops))
	}
	tr.Meta.Ops = len(tr.Ops)
	return tr, nil
}

// validate rejects records no loopd could serve, so a bad trace fails at
// load time with a line number instead of mid-replay as protocol errors.
func (op *Op) validate() error {
	if op.AtMs < 0 {
		return fmt.Errorf("negative at_ms %g", op.AtMs)
	}
	if (op.Workload == "") == (op.Pipeline == "") {
		return fmt.Errorf("exactly one of workload and pipeline must be set (workload=%q pipeline=%q)", op.Workload, op.Pipeline)
	}
	if op.Pipeline != "" && (op.Jobs > 1 || op.Batch) {
		return fmt.Errorf("pipeline op cannot set jobs or batch")
	}
	if op.N < 0 || op.Jobs < 0 || op.DeadlineMs < 0 {
		return fmt.Errorf("negative n, jobs or deadline_ms")
	}
	if strings.ContainsAny(op.Tenant, " \t\n") {
		return fmt.Errorf("tenant %q contains whitespace", op.Tenant)
	}
	return nil
}
