package loadgen

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// synthBytes synthesizes a trace and returns its serialized form.
func synthBytes(t *testing.T, cfg SynthConfig) []byte {
	t.Helper()
	tr, err := Synthesize(cfg)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestSynthesizeDeterministic pins the acceptance bar: the same seed and
// config must synthesize the byte-identical trace file, for every profile.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, profile := range Profiles() {
		cfg := SynthConfig{Seed: 42, Profile: profile, Ops: 200}
		a := synthBytes(t, cfg)
		b := synthBytes(t, cfg)
		if !bytes.Equal(a, b) {
			t.Errorf("profile %s: two syntheses with seed 42 differ", profile)
		}
		c := synthBytes(t, SynthConfig{Seed: 43, Profile: profile, Ops: 200})
		if bytes.Equal(a, c) {
			t.Errorf("profile %s: seeds 42 and 43 synthesized identical traces", profile)
		}
	}
}

// TestTraceRoundTrip pins record→replay fidelity: writing a synthesized
// trace and reading it back must reproduce the identical op stream.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Synthesize(SynthConfig{Seed: 7, Profile: "mixed", Ops: 300})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("record→replay changed the trace:\n wrote meta %+v (%d ops)\n read  meta %+v (%d ops)",
			tr.Meta, len(tr.Ops), got.Meta, len(got.Ops))
	}
}

func TestSynthesizeProfiles(t *testing.T) {
	// Adversarial profiles must produce spammer traffic with tight deadlines;
	// mixed must produce pipelines; every op must validate and arrive in order.
	for _, profile := range []string{"adversarial", "mixed"} {
		tr, err := Synthesize(SynthConfig{Seed: 1, Profile: profile, Ops: 400})
		if err != nil {
			t.Fatalf("Synthesize(%s): %v", profile, err)
		}
		spam, pipes := 0, 0
		last := -1.0
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if err := op.validate(); err != nil {
				t.Fatalf("%s op %d: %v", profile, i, err)
			}
			if op.AtMs < last {
				t.Fatalf("%s op %d: out of order", profile, i)
			}
			last = op.AtMs
			if op.Tenant == "spammer" {
				spam++
				if op.DeadlineMs <= 0 || op.DeadlineMs > 5 {
					t.Errorf("%s op %d: spammer deadline %dms, want 1..5", profile, i, op.DeadlineMs)
				}
			}
			if op.Pipeline != "" {
				pipes++
			}
		}
		if spam == 0 {
			t.Errorf("%s: no spammer ops in 400", profile)
		}
		if profile == "mixed" && pipes == 0 {
			t.Errorf("mixed: no pipeline ops in 400")
		}
	}
}

func TestSynthesizeUnknownProfile(t *testing.T) {
	if _, err := Synthesize(SynthConfig{Profile: "nope"}); err == nil {
		t.Fatal("Synthesize accepted unknown profile")
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"unordered":     `{"at_ms":5,"workload":"spin"}` + "\n" + `{"at_ms":1,"workload":"spin"}`,
		"both":          `{"at_ms":0,"workload":"spin","pipeline":"spin:1"}`,
		"neither":       `{"at_ms":0}`,
		"negative":      `{"at_ms":0,"workload":"spin","n":-1}`,
		"badversion":    `{"trace_version":99,"ops":0}`,
		"truncated":     `{"trace_version":1,"ops":2}` + "\n" + `{"at_ms":0,"workload":"spin"}`,
		"pipelinebatch": `{"at_ms":0,"pipeline":"spin:1","batch":true}`,
	}
	for name, text := range cases {
		if _, err := ReadTrace(bytes.NewReader([]byte(text))); err == nil {
			t.Errorf("%s: ReadTrace accepted bad trace", name)
		}
	}
	// Comments, blank lines and a bare op stream (no meta) are all fine.
	ok := "# comment\n\n" + `{"at_ms":0,"workload":"spin"}` + "\n"
	tr, err := ReadTrace(bytes.NewReader([]byte(ok)))
	if err != nil || len(tr.Ops) != 1 {
		t.Errorf("bare op stream: got %d ops, err %v", len(tr.Ops), err)
	}
}

// TestCommittedTraces guards the traces CI replays: a format change that
// orphans them must fail here, not in the smoke job.
func TestCommittedTraces(t *testing.T) {
	for _, name := range []string{"smoke.jsonl", "adversarial.jsonl", "bench.jsonl"} {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := ReadTrace(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tr.Ops) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

// runCapture replays tr against a stub server and returns the per-tenant
// request-body sequences plus the report.
func runCapture(t *testing.T, tr Trace, mode string, status func(i int) int) (map[string][]string, *Report) {
	t.Helper()
	var mu sync.Mutex
	seq := map[string][]string{}
	var n int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.ParseForm()
		mu.Lock()
		i := n
		n++
		tenant := r.FormValue("tenant")
		seq[tenant] = append(seq[tenant], r.Form.Encode())
		mu.Unlock()
		code := status(i)
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", code)
			return
		}
		w.Write([]byte(`{"jobs":1,"wall_seconds":0.001,"results":[{"result":1}]}`))
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), tr, RunConfig{
		BaseURL: srv.URL, Mode: mode, Speed: 1000, // compress 10s of trace time to 10ms
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return seq, rep
}

// TestRunDeterministicStream pins the other acceptance bar: two replays of
// the same trace submit the identical op stream. In closed mode each
// tenant's requests arrive in trace order, so the per-tenant sequences match
// exactly; in open mode concurrent arrivals race at the server, so the
// guarantee is the request set per tenant.
func TestRunDeterministicStream(t *testing.T) {
	tr, err := Synthesize(SynthConfig{Seed: 11, Profile: "mixed", Ops: 120})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	okAll := func(int) int { return http.StatusOK }
	for _, mode := range []string{"open", "closed"} {
		a, repA := runCapture(t, tr, mode, okAll)
		b, repB := runCapture(t, tr, mode, okAll)
		if mode == "open" {
			for _, seq := range a {
				sort.Strings(seq)
			}
			for _, seq := range b {
				sort.Strings(seq)
			}
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %s: two replays submitted different per-tenant streams", mode)
		}
		if repA.Ops != len(tr.Ops) || repA.Total.OK != len(tr.Ops) || repA.Total.TransportErrors != 0 {
			t.Errorf("mode %s: report %+v, want %d ops all OK", mode, repA.Total, len(tr.Ops))
		}
		if repB.Total.OK != repA.Total.OK {
			t.Errorf("mode %s: OK counts differ across replays", mode)
		}
	}
}

// TestRunAccounting checks outcome classification: 429/503 count as shed
// (never protocol errors), and per-tenant rows sum to the total.
func TestRunAccounting(t *testing.T) {
	tr, err := Synthesize(SynthConfig{Seed: 3, Profile: "steady", Ops: 90})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// Every third request is shed, alternating breaker and backlog.
	_, rep := runCapture(t, tr, "open", func(i int) int {
		switch i % 6 {
		case 2:
			return http.StatusTooManyRequests
		case 5:
			return http.StatusServiceUnavailable
		default:
			return http.StatusOK
		}
	})
	if rep.Total.Shed != 30 || rep.Total.OK != 60 || rep.Total.ProtocolErrors != 0 {
		t.Fatalf("total = %+v, want 60 OK / 30 shed / 0 protocol", rep.Total)
	}
	if got := rep.Total.ShedRatio; got != float64(30)/90 {
		t.Errorf("shed ratio = %v, want 1/3", got)
	}
	var ops, ok, shed int
	for _, name := range rep.TenantNames() {
		tt := rep.Tenants[name]
		ops += tt.Ops
		ok += tt.OK
		shed += tt.Shed
	}
	if ops != 90 || ok != 60 || shed != 30 {
		t.Errorf("tenant rows sum to %d/%d/%d, want 90/60/30", ops, ok, shed)
	}
	if rep.Total.GoodputRPS <= 0 {
		t.Errorf("goodput = %v, want > 0", rep.Total.GoodputRPS)
	}
	if rep.Total.LatencyP50Ms <= 0 || rep.Total.LatencyP99Ms < rep.Total.LatencyP50Ms {
		t.Errorf("latency quantiles p50=%v p99=%v malformed", rep.Total.LatencyP50Ms, rep.Total.LatencyP99Ms)
	}
}

// TestRunCountsJobErrors checks that job-level errors inside 200 bodies are
// surfaced (a shed inside a batch is not silent goodput).
func TestRunCountsJobErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"jobs":2,"wall_seconds":0.001,"results":[{"result":1},{"error":"deadline infeasible"}]}`))
	}))
	defer srv.Close()
	tr := Trace{Ops: []Op{{Workload: "spin", N: 16}, {Workload: "spin", N: 16}}}
	rep, err := Run(context.Background(), tr, RunConfig{BaseURL: srv.URL, Speed: 1000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Total.JobErrors != 2 {
		t.Fatalf("job errors = %d, want 2", rep.Total.JobErrors)
	}
}

func TestOpFormValues(t *testing.T) {
	op := Op{Workload: "mpdata", N: 512, Jobs: 3, Batch: true, Tenant: "t1",
		Priority: -1, DeadlineMs: 20, NoWait: true}
	got := op.FormValues().Encode()
	want := "batch=1&deadline_ms=20&jobs=3&n=512&nowait=1&prio=-1&tenant=t1&workload=mpdata"
	if got != want {
		t.Errorf("FormValues = %q, want %q", got, want)
	}
	pipe := Op{Pipeline: "spin:64,sum:32:2", Tenant: "t2"}
	got = pipe.FormValues().Encode()
	want = "pipeline=spin%3A64%2Csum%3A32%3A2&tenant=t2"
	if got != want {
		t.Errorf("pipeline FormValues = %q, want %q", got, want)
	}
}

// TestPacerDoesNotAllocatePerWait pins the fix for the per-op time.After in
// the arrival loops: after the lazy first timer, pacing an op must not
// allocate. A regression back to time.After costs one timer allocation per
// replayed request.
func TestPacerDoesNotAllocatePerWait(t *testing.T) {
	ctx := context.Background()
	var p pacer
	if err := p.wait(ctx, time.Microsecond); err != nil { // lazy first timer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.wait(ctx, 10*time.Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("pacer.wait allocates %.1f objects per op, want 0", allocs)
	}
}

// TestPacerHonorsCancellation: a pending wait must unblock on context
// cancellation and return the context's error, and the pacer must stay
// reusable afterwards.
func TestPacerHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var p pacer
	done := make(chan error, 1)
	go func() { done <- p.wait(ctx, time.Hour) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("wait under cancellation = %v, want context.Canceled", err)
	}
	if err := p.wait(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("reuse after cancellation: %v", err)
	}
	if err := p.wait(context.Background(), -time.Second); err != nil {
		t.Fatalf("non-positive wait: %v", err)
	}
}
