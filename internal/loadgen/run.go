package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loopsched/internal/stats"
)

// RunConfig parameterizes a trace replay against a live loopd.
type RunConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil selects a dedicated client with a
	// generous per-request timeout.
	Client *http.Client
	// Mode is the arrival control law:
	//
	//   - "open":   every op fires at its trace time regardless of earlier
	//     responses (bounded by MaxInflight) — arrivals don't slow down when
	//     the server does, so queueing delay is visible. The default.
	//   - "closed": each tenant replays its ops in order, never more than
	//     one outstanding — a session model where users wait for responses.
	Mode string
	// Speed divides trace time: 2 replays a trace twice as fast; <= 0
	// selects 1.
	Speed float64
	// MaxInflight caps concurrent requests in open mode; <= 0 selects 256.
	MaxInflight int
	// OnResult, when set, observes every op's outcome as it completes
	// (concurrently in open mode).
	OnResult func(i int, op Op, res OpResult)
}

// OpResult is one op's observed outcome.
type OpResult struct {
	// Status is the HTTP status code (0 on transport error).
	Status int
	// Err is the transport error, if the request never got a response.
	Err error
	// LatencyMs is the client-observed request latency.
	LatencyMs float64
	// JobErrors counts job-level errors reported inside a 200 body.
	JobErrors int
}

// TenantReport aggregates one tenant's outcomes over a replay.
type TenantReport struct {
	Ops             int     `json:"ops"`
	OK              int     `json:"ok"`
	Shed            int     `json:"shed"`
	ProtocolErrors  int     `json:"protocol_errors"`
	TransportErrors int     `json:"transport_errors"`
	JobErrors       int     `json:"job_errors"`
	GoodputRPS      float64 `json:"goodput_rps"`
	ShedRatio       float64 `json:"shed_ratio"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP95Ms    float64 `json:"latency_p95_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`

	latencies []float64
}

// Report is the outcome of one replay: totals plus a per-tenant breakdown.
// Its JSON form flattens cleanly for benchcmp metric paths
// (e.g. "total.goodput_rps", "tenants.spammer.shed_ratio").
type Report struct {
	Profile     string                  `json:"profile,omitempty"`
	Mode        string                  `json:"mode"`
	Speed       float64                 `json:"speed"`
	Ops         int                     `json:"ops"`
	WallSeconds float64                 `json:"wall_seconds"`
	Total       TenantReport            `json:"total"`
	Tenants     map[string]TenantReport `json:"tenants"`
}

// shed reports whether a status code is an intentional overload rejection
// (admission shedding or an open breaker) rather than a protocol error.
func shed(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// pacer sleeps a goroutine until each op's arrival time on one reusable
// timer. The obvious time.After in the pacing loop allocates a fresh timer
// per op — at replay rates that is an allocation (and a live timer until it
// fires) per request, which skews the very latency distributions the runner
// exists to measure. Reset without a drain is safe under the Go 1.23+
// synchronous timer semantics: after Stop or a receive, the channel never
// holds a stale tick.
type pacer struct {
	timer *time.Timer
}

// wait blocks until d elapses or ctx is done, returning ctx.Err in the
// latter case. d <= 0 returns immediately.
func (p *pacer) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if p.timer == nil {
		p.timer = time.NewTimer(d)
	} else {
		p.timer.Reset(d)
	}
	select {
	case <-p.timer.C:
		return nil
	case <-ctx.Done():
		p.timer.Stop()
		return ctx.Err()
	}
}

// FormValues renders the op as /run request parameters. url.Values.Encode
// sorts keys, so the rendering is deterministic: the same op always
// produces the same request body.
func (op *Op) FormValues() url.Values {
	v := url.Values{}
	if op.Pipeline != "" {
		v.Set("pipeline", op.Pipeline)
	} else {
		v.Set("workload", op.Workload)
		if op.Jobs > 1 {
			v.Set("jobs", strconv.Itoa(op.Jobs))
		}
		if op.Batch {
			v.Set("batch", "1")
		}
	}
	if op.N > 0 {
		v.Set("n", strconv.Itoa(op.N))
	}
	if op.Tenant != "" {
		v.Set("tenant", op.Tenant)
	}
	if op.Priority != 0 {
		v.Set("prio", strconv.Itoa(op.Priority))
	}
	if op.DeadlineMs > 0 {
		v.Set("deadline_ms", strconv.Itoa(op.DeadlineMs))
	}
	if op.NoWait {
		v.Set("nowait", "1")
	}
	return v
}

// runBody is the slice of a /run response the runner inspects: job-level
// error strings inside an otherwise successful response.
type runBody struct {
	Results []struct {
		Error string `json:"error,omitempty"`
	} `json:"results"`
	Pipeline []struct {
		Results []struct {
			Error string `json:"error,omitempty"`
		} `json:"results"`
	} `json:"pipeline"`
}

// issue sends one op and classifies the outcome.
func issue(ctx context.Context, client *http.Client, base string, op *Op) OpResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/run",
		strings.NewReader(op.FormValues().Encode()))
	if err != nil {
		return OpResult{Err: err}
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	start := time.Now()
	resp, err := client.Do(req)
	lat := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return OpResult{Err: err, LatencyMs: lat}
	}
	defer resp.Body.Close()
	res := OpResult{Status: resp.StatusCode, LatencyMs: lat}
	if resp.StatusCode == http.StatusOK {
		var body runBody
		if json.NewDecoder(resp.Body).Decode(&body) == nil {
			for _, r := range body.Results {
				if r.Error != "" {
					res.JobErrors++
				}
			}
			for _, st := range body.Pipeline {
				for _, r := range st.Results {
					if r.Error != "" {
						res.JobErrors++
					}
				}
			}
		}
	}
	io.Copy(io.Discard, resp.Body)
	return res
}

// Run replays the trace against cfg.BaseURL and aggregates a Report. The
// request stream is a pure function of the trace: op order per tenant and
// every request body are deterministic (wall-clock latencies, of course,
// are not).
func Run(ctx context.Context, tr Trace, cfg RunConfig) (*Report, error) {
	if cfg.Mode == "" {
		cfg.Mode = "open"
	}
	if cfg.Mode != "open" && cfg.Mode != "closed" {
		return nil, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", cfg.Mode)
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}

	type outcome struct {
		op  *Op
		res OpResult
	}
	outcomes := make([]outcome, len(tr.Ops))
	var mu sync.Mutex // serializes OnResult
	record := func(i int, res OpResult) {
		outcomes[i] = outcome{op: &tr.Ops[i], res: res}
		if cfg.OnResult != nil {
			mu.Lock()
			cfg.OnResult(i, tr.Ops[i], res)
			mu.Unlock()
		}
	}

	start := time.Now()
	due := func(op *Op) time.Time {
		return start.Add(time.Duration(op.AtMs / cfg.Speed * float64(time.Millisecond)))
	}

	var wg sync.WaitGroup
	switch cfg.Mode {
	case "open":
		sem := make(chan struct{}, cfg.MaxInflight)
		var pace pacer
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if err := pace.wait(ctx, time.Until(due(op))); err != nil {
				return nil, err
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			wg.Add(1)
			go func(i int, op *Op) {
				defer wg.Done()
				defer func() { <-sem }()
				record(i, issue(ctx, client, cfg.BaseURL, op))
			}(i, op)
		}
	case "closed":
		// One ordered session per tenant: an op waits for both its arrival
		// time and its tenant's previous response.
		byTenant := map[string][]int{}
		for i := range tr.Ops {
			t := tr.Ops[i].Tenant
			byTenant[t] = append(byTenant[t], i)
		}
		for _, idxs := range byTenant {
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				var pace pacer
				for _, i := range idxs {
					op := &tr.Ops[i]
					if pace.wait(ctx, time.Until(due(op))) != nil {
						return
					}
					record(i, issue(ctx, client, cfg.BaseURL, op))
				}
			}(idxs)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()

	rep := &Report{
		Profile:     tr.Meta.Profile,
		Mode:        cfg.Mode,
		Speed:       cfg.Speed,
		Ops:         len(tr.Ops),
		WallSeconds: wall,
		Tenants:     map[string]TenantReport{},
	}
	add := func(t *TenantReport, o outcome) {
		t.Ops++
		switch {
		case o.res.Err != nil:
			t.TransportErrors++
		case o.res.Status == http.StatusOK:
			t.OK++
			t.JobErrors += o.res.JobErrors
			t.latencies = append(t.latencies, o.res.LatencyMs)
		case shed(o.res.Status):
			t.Shed++
		default:
			t.ProtocolErrors++
		}
	}
	for _, o := range outcomes {
		if o.op == nil {
			continue // ctx cancelled mid-replay in closed mode
		}
		name := o.op.Tenant
		if name == "" {
			name = "default"
		}
		tt := rep.Tenants[name]
		add(&tt, o)
		rep.Tenants[name] = tt
		add(&rep.Total, o)
	}
	finish := func(t *TenantReport) {
		if wall > 0 {
			t.GoodputRPS = float64(t.OK) / wall
		}
		if t.Ops > 0 {
			t.ShedRatio = float64(t.Shed) / float64(t.Ops)
		}
		if len(t.latencies) > 0 {
			qs := stats.Quantiles(t.latencies, 0.50, 0.95, 0.99)
			t.LatencyP50Ms, t.LatencyP95Ms, t.LatencyP99Ms = qs[0], qs[1], qs[2]
		}
		t.latencies = nil
	}
	finish(&rep.Total)
	for name, tt := range rep.Tenants {
		finish(&tt)
		rep.Tenants[name] = tt
	}
	return rep, nil
}

// TenantNames returns the report's tenant keys, sorted.
func (r *Report) TenantNames() []string {
	names := make([]string, 0, len(r.Tenants))
	for n := range r.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
