// Package reduce provides the reduction abstractions shared by the
// schedulers: a monoid-style operation descriptor, typed convenience
// constructors, and per-worker view sets that are allocated statically at
// the start of a loop (the paper's optimisation over Cilk's lazily created
// hyperobject views).
//
// The operations are treated as associative but not necessarily commutative:
// all combine orders used by the schedulers fold views in increasing worker
// index order, which — with block-partitioned iteration spaces — equals
// iteration order, preserving the Cilk reducer contract.
package reduce

// Op describes a reduction over values of type T: an identity element and an
// associative combine function. Combine must not retain its arguments.
type Op[T any] struct {
	// Identity returns a fresh identity (neutral) element.
	Identity func() T
	// Combine folds right into left and returns the result. It must be
	// associative; it need not be commutative.
	Combine func(left, right T) T
}

// Sum returns the addition reduction over a numeric type.
func Sum[T int | int32 | int64 | float32 | float64]() Op[T] {
	return Op[T]{
		Identity: func() T { var z T; return z },
		Combine:  func(a, b T) T { return a + b },
	}
}

// Prod returns the multiplication reduction over a numeric type.
func Prod[T int | int32 | int64 | float32 | float64]() Op[T] {
	return Op[T]{
		Identity: func() T { return 1 },
		Combine:  func(a, b T) T { return a * b },
	}
}

// Max returns the maximum reduction with the given smallest-possible value
// as identity.
func Max[T int | int32 | int64 | float32 | float64](lowest T) Op[T] {
	return Op[T]{
		Identity: func() T { return lowest },
		Combine: func(a, b T) T {
			if a >= b {
				return a
			}
			return b
		},
	}
}

// Min returns the minimum reduction with the given largest-possible value as
// identity.
func Min[T int | int32 | int64 | float32 | float64](highest T) Op[T] {
	return Op[T]{
		Identity: func() T { return highest },
		Combine: func(a, b T) T {
			if a <= b {
				return a
			}
			return b
		},
	}
}

// Append returns the slice-concatenation reduction — the canonical
// non-commutative reducer (Cilk's list-append reducer). It is used by tests
// to verify that every scheduler preserves iteration order in its combines.
func Append[T any]() Op[[]T] {
	return Op[[]T]{
		Identity: func() []T { return nil },
		Combine:  func(a, b []T) []T { return append(a, b...) },
	}
}

// Views is a statically allocated set of per-worker partial results for one
// reduction. The fine-grain scheduler allocates Views once per loop (or
// reuses a cached set) instead of creating views lazily on first touch the
// way the baseline Cilk runtime does.
//
// Each view is padded to its own cache-line group to avoid false sharing
// between workers updating adjacent views.
type Views[T any] struct {
	op    Op[T]
	views []paddedView[T]
}

const viewPad = 128

type paddedView[T any] struct {
	v T
	_ [viewPad]byte
}

// NewViews allocates views for p workers, each initialised to the identity.
func NewViews[T any](op Op[T], p int) *Views[T] {
	vs := &Views[T]{op: op, views: make([]paddedView[T], p)}
	vs.Reset()
	return vs
}

// Reset reinitialises every view to the identity so the set can be reused by
// the next loop without reallocation.
func (vs *Views[T]) Reset() {
	for i := range vs.views {
		vs.views[i].v = vs.op.Identity()
	}
}

// P returns the number of views.
func (vs *Views[T]) P() int { return len(vs.views) }

// Get returns the current value of worker w's view.
func (vs *Views[T]) Get(w int) T { return vs.views[w].v }

// Set overwrites worker w's view.
func (vs *Views[T]) Set(w int, v T) { vs.views[w].v = v }

// Update folds a value produced by worker w into its view (view ⊕ v).
func (vs *Views[T]) Update(w int, v T) {
	vs.views[w].v = vs.op.Combine(vs.views[w].v, v)
}

// CombineInto folds worker `from`'s view into worker `into`'s view and
// resets `from` to the identity. This is the operation invoked from the join
// half-barrier while climbing the tree: exactly P-1 invocations fold all
// views into the root's.
func (vs *Views[T]) CombineInto(into, from int) {
	vs.views[into].v = vs.op.Combine(vs.views[into].v, vs.views[from].v)
	vs.views[from].v = vs.op.Identity()
}

// Fold sequentially folds all views, in increasing worker order, into a
// single value and resets the views. It is the fallback used by schedulers
// that do not merge the reduction into their synchronisation (OpenMP-style
// separate reduction pass).
func (vs *Views[T]) Fold() T {
	acc := vs.op.Identity()
	for i := range vs.views {
		acc = vs.op.Combine(acc, vs.views[i].v)
		vs.views[i].v = vs.op.Identity()
	}
	return acc
}

// Root returns the root view value (worker 0's view) without resetting it;
// used after a combining join where all other views have already been folded
// in and reset.
func (vs *Views[T]) Root() T { return vs.views[0].v }
