package reduce

import (
	"testing"
	"testing/quick"
)

func TestSumProdMaxMin(t *testing.T) {
	s := Sum[int]()
	if s.Identity() != 0 || s.Combine(3, 4) != 7 {
		t.Errorf("Sum misbehaves")
	}
	p := Prod[float64]()
	if p.Identity() != 1 || p.Combine(3, 4) != 12 {
		t.Errorf("Prod misbehaves")
	}
	mx := Max[int](-1 << 62)
	if mx.Combine(3, 9) != 9 || mx.Combine(9, 3) != 9 || mx.Identity() != -1<<62 {
		t.Errorf("Max misbehaves")
	}
	mn := Min[int](1 << 62)
	if mn.Combine(3, 9) != 3 || mn.Combine(9, 3) != 3 {
		t.Errorf("Min misbehaves")
	}
}

func TestAppendIsOrdered(t *testing.T) {
	op := Append[int]()
	got := op.Combine(op.Combine(op.Identity(), []int{1, 2}), []int{3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Append fold = %v", got)
	}
}

func TestViewsLifecycle(t *testing.T) {
	vs := NewViews(Sum[float64](), 4)
	if vs.P() != 4 {
		t.Fatalf("P = %d", vs.P())
	}
	for w := 0; w < 4; w++ {
		if vs.Get(w) != 0 {
			t.Errorf("view %d not initialised to identity", w)
		}
		vs.Update(w, float64(w+1))
	}
	vs.CombineInto(0, 1)
	if vs.Get(0) != 3 || vs.Get(1) != 0 {
		t.Errorf("CombineInto: got %v and %v", vs.Get(0), vs.Get(1))
	}
	total := vs.Fold()
	if total != 10 { // 1+2+3+4
		t.Errorf("Fold = %v, want 10", total)
	}
	for w := 0; w < 4; w++ {
		if vs.Get(w) != 0 {
			t.Errorf("Fold did not reset view %d", w)
		}
	}
	vs.Set(2, 42)
	if vs.Get(2) != 42 {
		t.Errorf("Set failed")
	}
	if vs.Root() != 0 {
		t.Errorf("Root should read view 0")
	}
	vs.Reset()
	if vs.Get(2) != 0 {
		t.Errorf("Reset failed")
	}
}

func TestViewsOrderedFold(t *testing.T) {
	vs := NewViews(Append[int](), 3)
	vs.Update(0, []int{0})
	vs.Update(1, []int{1})
	vs.Update(2, []int{2})
	// Tree-style pairwise combination in worker order.
	vs.CombineInto(1, 2)
	vs.CombineInto(0, 1)
	got := vs.Root()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("ordered fold = %v", got)
	}
}

func TestPropertyFoldEqualsSequentialSum(t *testing.T) {
	f := func(vals []int32, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		vs := NewViews(Sum[int64](), p)
		var want int64
		for i, v := range vals {
			vs.Update(i%p, int64(v))
			want += int64(v)
		}
		return vs.Fold() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCombineIntoConservesSum(t *testing.T) {
	f := func(vals []int16, aRaw, bRaw uint8) bool {
		const p = 6
		vs := NewViews(Sum[int64](), p)
		var want int64
		for i, v := range vals {
			vs.Update(i%p, int64(v))
			want += int64(v)
		}
		a := int(aRaw) % p
		b := int(bRaw) % p
		if a != b {
			vs.CombineInto(a, b)
		}
		return vs.Fold() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
