package core

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"loopsched/internal/sched"
	"loopsched/internal/trace"
)

// testConfigs enumerates the scheduler variants exercised by every test.
func testConfigs(p int) []Config {
	return []Config{
		{Workers: p, Barrier: BarrierTree, Mode: ModeHalf, LockOSThread: false},
		{Workers: p, Barrier: BarrierCentralized, Mode: ModeHalf, LockOSThread: false},
		{Workers: p, Barrier: BarrierTree, Mode: ModeFull, LockOSThread: false},
		{Workers: p, Barrier: BarrierCentralized, Mode: ModeFull, LockOSThread: false},
	}
}

func workerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1, 2, 3, 4, 7, 8}
	var out []int
	for _, c := range counts {
		if c <= max {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func TestForCoversAllIterations(t *testing.T) {
	for _, p := range workerCounts() {
		for _, cfg := range testConfigs(p) {
			s := New(cfg)
			for _, n := range []int{0, 1, 2, 5, 17, 100, 1001, 4096} {
				marks := make([]int32, n)
				s.For(n, func(w, begin, end int) {
					for i := begin; i < end; i++ {
						atomic.AddInt32(&marks[i], 1)
					}
				})
				for i, m := range marks {
					if m != 1 {
						t.Fatalf("%s p=%d n=%d: iteration %d executed %d times", s.Name(), p, n, i, m)
					}
				}
			}
			s.Close()
		}
	}
}

func TestForWorkerIDsAreDistinctAndInRange(t *testing.T) {
	for _, p := range workerCounts() {
		cfg := Config{Workers: p, Barrier: BarrierTree, Mode: ModeHalf, LockOSThread: false}
		s := New(cfg)
		n := 16 * p
		seen := make([]int32, p)
		s.For(n, func(w, begin, end int) {
			if w < 0 || w >= p {
				t.Errorf("worker id %d out of range [0,%d)", w, p)
				return
			}
			atomic.AddInt32(&seen[w], 1)
		})
		var active int
		for _, c := range seen {
			if c > 1 {
				t.Errorf("worker invoked %d times in one loop, want at most 1", c)
			}
			if c > 0 {
				active++
			}
		}
		if active == 0 {
			t.Errorf("no workers participated")
		}
		s.Close()
	}
}

func TestForReduceSum(t *testing.T) {
	for _, p := range workerCounts() {
		for _, cfg := range testConfigs(p) {
			s := New(cfg)
			for _, n := range []int{1, 2, 13, 100, 1000, 12345} {
				got := s.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
					func(w, begin, end int, acc float64) float64 {
						for i := begin; i < end; i++ {
							acc += float64(i)
						}
						return acc
					})
				want := float64(n) * float64(n-1) / 2
				if got != want {
					t.Fatalf("%s p=%d n=%d: sum = %v, want %v", s.Name(), p, n, got, want)
				}
			}
			s.Close()
		}
	}
}

func TestForReduceNonCommutativeOrder(t *testing.T) {
	// The reducer contract the paper preserves: partial results are combined
	// in iteration order. Two associative, non-commutative operations make
	// order violations observable with scalar views:
	//
	//   "last"  — combine(a,b)=b: the fold's result is the final operand,
	//             which must be the last worker's partial (its block ends at n);
	//   "first" — combine(a,b)= a unless a is the identity: the result is
	//             the first non-identity operand, which must be worker 0's
	//             partial (its block starts at 0).
	for _, p := range workerCounts() {
		for _, cfg := range testConfigs(p) {
			s := New(cfg)
			n := 97

			last := s.ForReduce(n, -1, func(a, b float64) float64 { return b },
				func(w, begin, end int, acc float64) float64 { return float64(end) })
			if last != float64(n) {
				t.Fatalf("%s p=%d: 'last' fold = %v, want %v (iteration order violated)", s.Name(), p, last, float64(n))
			}

			const ident = -1
			first := s.ForReduce(n, ident, func(a, b float64) float64 {
				if a != ident {
					return a
				}
				return b
			}, func(w, begin, end int, acc float64) float64 { return float64(begin) })
			if first != 0 {
				t.Fatalf("%s p=%d: 'first' fold = %v, want 0 (iteration order violated)", s.Name(), p, first)
			}
			s.Close()
		}
	}
}

func TestForReduceVec(t *testing.T) {
	for _, p := range workerCounts() {
		for _, cfg := range testConfigs(p) {
			s := New(cfg)
			n := 1000
			got := s.ForReduceVec(n, 3, func(w, begin, end int, acc []float64) {
				for i := begin; i < end; i++ {
					acc[0] += 1
					acc[1] += float64(i)
					acc[2] += float64(i) * float64(i)
				}
			})
			wantCount := float64(n)
			wantSum := float64(n) * float64(n-1) / 2
			var wantSq float64
			for i := 0; i < n; i++ {
				wantSq += float64(i) * float64(i)
			}
			if got[0] != wantCount || got[1] != wantSum || math.Abs(got[2]-wantSq) > 1e-6 {
				t.Fatalf("%s p=%d: vec reduce = %v, want [%v %v %v]", s.Name(), p, got, wantCount, wantSum, wantSq)
			}
			s.Close()
		}
	}
}

func TestManyConsecutiveLoops(t *testing.T) {
	// Stress the episode logic: many back-to-back loops, alternating plain
	// and reducing, must not deadlock or corrupt results.
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	for _, cfg := range testConfigs(p) {
		s := New(cfg)
		var total int64
		for it := 0; it < 300; it++ {
			n := 1 + (it*37)%200
			if it%2 == 0 {
				var local int64
				s.For(n, func(w, begin, end int) {
					atomic.AddInt64(&local, int64(end-begin))
				})
				total += local
			} else {
				got := s.ForReduce(n, 0, func(a, b float64) float64 { return a + b },
					func(w, begin, end int, acc float64) float64 { return acc + float64(end-begin) })
				if int(got) != n {
					t.Fatalf("%s iter %d: count = %v, want %d", s.Name(), it, got, n)
				}
			}
		}
		_ = total
		s.Close()
	}
}

func TestExactlyPMinus1Reductions(t *testing.T) {
	// The paper's claim: the fine-grain runtime performs exactly P-1
	// reduction operations per reducing loop.
	for _, p := range workerCounts() {
		if p < 2 {
			continue
		}
		cfg := Config{Workers: p, Barrier: BarrierTree, Mode: ModeHalf, LockOSThread: false}
		s := New(cfg)
		s.Counters().Reset()
		loops := 10
		for i := 0; i < loops; i++ {
			s.ForReduce(1000, 0, func(a, b float64) float64 { return a + b },
				func(w, begin, end int, acc float64) float64 { return acc + float64(end-begin) })
		}
		got := s.Counters().Get(trace.Reductions)
		want := int64(loops * (p - 1))
		if got != want {
			t.Errorf("p=%d: %d reductions over %d loops, want exactly %d", p, got, loops, want)
		}
		s.Close()
	}
}

func TestHalfBarrierDoesNotUseFullBarrier(t *testing.T) {
	p := 4
	if runtime.GOMAXPROCS(0) < 4 {
		p = runtime.GOMAXPROCS(0)
	}
	s := New(Config{Workers: p, Barrier: BarrierTree, Mode: ModeHalf, LockOSThread: false})
	defer s.Close()
	s.Counters().Reset()
	s.For(100, func(w, begin, end int) {})
	if got := s.Counters().Get(trace.BarrierEpisodes); got != 0 {
		t.Errorf("half-barrier mode executed %d full-barrier episodes, want 0", got)
	}
	if got := s.Counters().Get(trace.ForkPhases); got != 1 {
		t.Errorf("fork phases = %d, want 1", got)
	}
	if got := s.Counters().Get(trace.JoinPhases); got != 1 {
		t.Errorf("join phases = %d, want 1", got)
	}
}

func TestFullBarrierModeUsesTwoBarriers(t *testing.T) {
	p := 4
	if runtime.GOMAXPROCS(0) < 4 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 2 {
		t.Skip("needs at least 2 workers")
	}
	s := New(Config{Workers: p, Barrier: BarrierTree, Mode: ModeFull, LockOSThread: false})
	defer s.Close()
	s.Counters().Reset()
	s.For(100, func(w, begin, end int) {})
	if got := s.Counters().Get(trace.BarrierEpisodes); got != 2 {
		t.Errorf("full-barrier mode executed %d barrier episodes, want 2", got)
	}
}

func TestCloseIsIdempotentAndUseAfterClosePanics(t *testing.T) {
	s := New(Config{Workers: 2, LockOSThread: false})
	s.For(10, func(w, b, e int) {})
	s.Close()
	s.Close()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on use after Close")
		}
	}()
	s.For(10, func(w, b, e int) {})
}

func TestSchedulerNames(t *testing.T) {
	cases := map[string]Config{
		"fine-grain-tree":              {Barrier: BarrierTree, Mode: ModeHalf},
		"fine-grain-centralized":       {Barrier: BarrierCentralized, Mode: ModeHalf},
		"fine-grain-tree-full-barrier": {Barrier: BarrierTree, Mode: ModeFull},
	}
	for want, cfg := range cases {
		if got := cfg.defaultName(); got != want {
			t.Errorf("defaultName(%+v) = %q, want %q", cfg, got, want)
		}
	}
	cfg := Config{Name: "custom"}
	if got := cfg.defaultName(); got != "custom" {
		t.Errorf("explicit name not honoured: %q", got)
	}
}

func TestPropertyReduceMatchesSequential(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 6 {
		p = 6
	}
	s := New(Config{Workers: p, Barrier: BarrierTree, Mode: ModeHalf, LockOSThread: false})
	defer s.Close()
	seq := sched.NewSequential()

	f := func(raw []float64) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		// Clamp magnitudes so that floating-point reassociation across the
		// parallel fold stays within a tight tolerance of the sequential sum
		// (addition is associative only approximately).
		vals := make([]float64, n)
		for i, v := range raw {
			vals[i] = math.Remainder(v, 1000)
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
		}
		body := func(w, begin, end int, acc float64) float64 {
			for i := begin; i < end; i++ {
				acc += vals[i]
			}
			return acc
		}
		combine := func(a, b float64) float64 { return a + b }
		got := s.ForReduce(n, 0, combine, body)
		want := seq.ForReduce(n, 0, combine, body)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyForEquivalentToSequentialMap(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 6 {
		p = 6
	}
	s := New(Config{Workers: p, Barrier: BarrierCentralized, Mode: ModeHalf, LockOSThread: false})
	defer s.Close()

	f := func(vals []int32) bool {
		n := len(vals)
		out := make([]int64, n)
		s.For(n, func(w, begin, end int) {
			for i := begin; i < end; i++ {
				out[i] = int64(vals[i]) * 3
			}
		})
		for i := range vals {
			if out[i] != int64(vals[i])*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSingleWorkerFastPath(t *testing.T) {
	s := New(Config{Workers: 1, LockOSThread: false})
	defer s.Close()
	var count int
	s.For(100, func(w, begin, end int) {
		if w != 0 {
			t.Errorf("worker id %d on single-worker scheduler", w)
		}
		count += end - begin
	})
	if count != 100 {
		t.Errorf("executed %d iterations, want 100", count)
	}
	got := s.ForReduce(50, 1, func(a, b float64) float64 { return a * b },
		func(w, begin, end int, acc float64) float64 { return acc })
	if got != 1 {
		t.Errorf("identity-only reduce = %v, want 1", got)
	}
}

func TestEmptyLoopsAreNoOps(t *testing.T) {
	s := New(Config{Workers: 2, LockOSThread: false})
	defer s.Close()
	called := false
	s.For(0, func(w, b, e int) { called = true })
	s.For(-5, func(w, b, e int) { called = true })
	if called {
		t.Errorf("body called for empty loop")
	}
	if got := s.ForReduce(0, 7, func(a, b float64) float64 { return a + b }, nil); got != 7 {
		t.Errorf("empty reduce = %v, want identity 7", got)
	}
	v := s.ForReduceVec(0, 3, nil)
	if len(v) != 3 || v[0] != 0 || v[1] != 0 || v[2] != 0 {
		t.Errorf("empty vec reduce = %v, want zeros", v)
	}
}
