package core

import (
	"fmt"
	"runtime"

	"loopsched/internal/topology"
)

// BarrierKind selects the synchronisation substrate of the scheduler.
type BarrierKind int

// Barrier kinds.
const (
	// BarrierTree uses a topology-aligned tree barrier (the paper's choice).
	BarrierTree BarrierKind = iota
	// BarrierCentralized uses a single-counter centralized barrier
	// ("fine-grain centralized" in Table 1).
	BarrierCentralized
)

// String implements fmt.Stringer.
func (k BarrierKind) String() string {
	switch k {
	case BarrierTree:
		return "tree"
	case BarrierCentralized:
		return "centralized"
	default:
		return fmt.Sprintf("BarrierKind(%d)", int(k))
	}
}

// Mode selects between the half-barrier pattern and the conventional
// full-barrier pattern (the "fine-grain tree with full-barrier" ablation).
type Mode int

// Modes.
const (
	// ModeHalf uses one release wave at the fork and one join wave at the
	// join: the paper's half-barrier pattern.
	ModeHalf Mode = iota
	// ModeFull uses a full barrier at the fork and a full barrier at the
	// join, i.e. it re-inserts the redundant phases.
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHalf:
		return "half-barrier"
	case ModeFull:
		return "full-barrier"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures the fine-grain scheduler.
type Config struct {
	// Workers is the team size P including the master; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Barrier selects the synchronisation substrate.
	Barrier BarrierKind
	// Mode selects half- versus full-barrier synchronisation.
	Mode Mode
	// InnerFanout and OuterFanout tune the tree shape (children per node
	// within a topology group and across group roots). Values < 2 pick the
	// defaults (4 and 4).
	InnerFanout int
	OuterFanout int
	// GroupSize overrides the number of workers assumed to share a cache
	// domain when building the tree; <= 0 uses the topology default.
	GroupSize int
	// LockOSThread locks worker goroutines to OS threads (default true via
	// DefaultConfig). Tests that create many schedulers disable it.
	LockOSThread bool
	// Name overrides the scheduler's reported name.
	Name string
}

// DefaultConfig returns the paper's default configuration: a tree
// half-barrier scheduler over all available processors.
func DefaultConfig() Config {
	return Config{
		Workers:      runtime.GOMAXPROCS(0),
		Barrier:      BarrierTree,
		Mode:         ModeHalf,
		InnerFanout:  4,
		OuterFanout:  4,
		LockOSThread: true,
	}
}

// normalize fills in defaults and returns the worker count and topology.
func (c *Config) normalize() (int, topology.Topology) {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.InnerFanout < 2 {
		c.InnerFanout = 4
	}
	if c.OuterFanout < 2 {
		c.OuterFanout = 4
	}
	var topo topology.Topology
	if c.GroupSize > 0 {
		topo = topology.New(c.Workers, c.GroupSize)
	} else {
		topo = topology.Detect(c.Workers)
	}
	return c.Workers, topo
}

// defaultName derives the benchmark-facing name of a configuration.
func (c Config) defaultName() string {
	if c.Name != "" {
		return c.Name
	}
	switch {
	case c.Barrier == BarrierTree && c.Mode == ModeHalf:
		return "fine-grain-tree"
	case c.Barrier == BarrierCentralized && c.Mode == ModeHalf:
		return "fine-grain-centralized"
	case c.Barrier == BarrierTree && c.Mode == ModeFull:
		return "fine-grain-tree-full-barrier"
	default:
		return "fine-grain-centralized-full-barrier"
	}
}
