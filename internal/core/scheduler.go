package core

import (
	"loopsched/internal/barrier"
	"loopsched/internal/iterspace"
	"loopsched/internal/pool"
	"loopsched/internal/sched"
	"loopsched/internal/trace"
)

// cmdKind distinguishes the commands the master publishes to the workers.
type cmdKind int

const (
	cmdNone cmdKind = iota
	cmdRun
	cmdShutdown
)

// reduceKind distinguishes the reduction folded into the join wave.
type reduceKind int

const (
	reduceNone reduceKind = iota
	reduceScalar
	reduceVec
	reduceCustom
)

// command is the work description the master publishes at the fork. It is
// written by the master strictly before the fork-side synchronisation and
// read by the workers strictly after it, so plain (non-atomic) fields are
// safe: the barrier's atomics provide the happens-before edge.
type command struct {
	kind    cmdKind
	n       int
	body    sched.Body
	rbody   sched.ReduceBody
	vbody   sched.VecBody
	reduce  reduceKind
	width   int
	ident   float64
	combine func(a, b float64) float64
	// custom is the caller-supplied view-combining function for
	// ForCombine: custom(into, from) folds worker `from`'s view (owned by
	// the caller) into worker `into`'s.
	custom func(into, from int)
}

// paddedF64 is a per-worker scalar reduction view on its own cache line.
type paddedF64 struct {
	v float64
	_ [120]byte
}

// Scheduler is the fine-grain half-barrier loop scheduler. Create one with
// New, run loops with For / ForReduce / ForReduceVec from a single master
// goroutine, and release the workers with Close. A Scheduler's methods are
// not safe for concurrent use by multiple masters: like the runtimes in the
// paper, the team belongs to one master.
type Scheduler struct {
	cfg  Config
	name string
	p    int

	team *pool.Team

	// Synchronisation substrate. half is used in ModeHalf; full (plus
	// fullCombine when available) in ModeFull. Both point at the same
	// underlying barrier object.
	half        barrier.HalfPair
	full        barrier.Full
	fullCombine interface {
		WaitCombine(w int, combine func(into, from int))
	}

	cmd command

	// Reduction views, owned one per worker and padded against false
	// sharing. vecViews are (re)allocated when the requested width grows.
	scalarViews []paddedF64
	vecViews    [][]float64

	counters *trace.Counters
	closed   bool
}

// New creates and starts a fine-grain scheduler with the given
// configuration. The calling goroutine becomes the master (worker 0).
func New(cfg Config) *Scheduler {
	p, topo := cfg.normalize()
	s := &Scheduler{
		cfg:         cfg,
		name:        cfg.defaultName(),
		p:           p,
		scalarViews: make([]paddedF64, p),
		vecViews:    make([][]float64, p),
		counters:    trace.New(),
	}
	switch cfg.Barrier {
	case BarrierCentralized:
		b := barrier.NewCentralized(p)
		s.half, s.full = b, b
	default:
		shape := topo.GroupedTree(cfg.InnerFanout, cfg.OuterFanout)
		t := barrier.NewTree(shape)
		s.half, s.full, s.fullCombine = t, t, t
	}
	s.team = pool.New(pool.Config{Workers: p, LockOSThread: cfg.LockOSThread, Name: s.name})
	s.team.Start(s.workerLoop)
	return s
}

// NewDefault creates a scheduler with DefaultConfig.
func NewDefault() *Scheduler { return New(DefaultConfig()) }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// P implements sched.Scheduler.
func (s *Scheduler) P() int { return s.p }

// Counters returns the scheduler's event counters (never nil).
func (s *Scheduler) Counters() *trace.Counters { return s.counters }

// Config returns the configuration the scheduler was built with (after
// normalisation).
func (s *Scheduler) Config() Config { return s.cfg }

// workerLoop is the body run by workers 1..P-1. Each iteration waits for the
// master's fork signal, executes the worker's static share of the published
// loop, and announces completion through the join-side synchronisation.
func (s *Scheduler) workerLoop(w int) {
	for {
		// Fork side: in half mode this is a pure release wave (no waiting
		// for siblings); in full mode it is a complete barrier.
		if s.cfg.Mode == ModeHalf {
			s.half.Release(w)
		} else {
			s.full.Wait(w)
		}
		c := s.cmd
		if c.kind == cmdShutdown {
			return
		}
		s.runShare(w, &c)
		s.joinWorker(w, &c)
	}
}

// runShare executes worker w's static block of the published loop and, for
// reducing loops, deposits the partial result in the worker's view.
func (s *Scheduler) runShare(w int, c *command) {
	r := iterspace.Block(c.n, s.p, w)
	switch c.reduce {
	case reduceScalar:
		acc := c.ident
		if !r.Empty() {
			acc = c.rbody(w, r.Begin, r.End, acc)
		}
		s.scalarViews[w].v = acc
	case reduceVec:
		// Zero only the active width: the retained view may be much wider
		// after an earlier wide ForReduceVec, and the join wave only ever
		// reads buf[:width].
		buf := s.vecViews[w][:c.width]
		for i := range buf {
			buf[i] = 0
		}
		if !r.Empty() {
			c.vbody(w, r.Begin, r.End, buf)
		}
	default:
		if !r.Empty() {
			c.body(w, r.Begin, r.End)
		}
	}
}

// combineScalar folds worker `from`'s scalar view into worker `into`'s, in
// the order guaranteed by the join wave (increasing worker index).
func (s *Scheduler) combineScalar(into, from int) {
	s.scalarViews[into].v = s.cmd.combine(s.scalarViews[into].v, s.scalarViews[from].v)
	s.counters.Inc(trace.Reductions)
}

// combineVec folds worker `from`'s vector view into worker `into`'s.
func (s *Scheduler) combineVec(into, from int) {
	sched.SumVec(s.vecViews[into][:s.cmd.width], s.vecViews[from][:s.cmd.width])
	s.counters.Inc(trace.Reductions)
}

// combineCustom invokes the caller-supplied view fold.
func (s *Scheduler) combineCustom(into, from int) {
	s.cmd.custom(into, from)
	s.counters.Inc(trace.Reductions)
}

// joinWorker performs the join-side synchronisation for a non-master worker.
func (s *Scheduler) joinWorker(w int, c *command) {
	cb := s.combineFor(c)
	switch {
	case s.cfg.Mode == ModeHalf && cb != nil:
		s.half.JoinCombine(w, cb)
	case s.cfg.Mode == ModeHalf:
		s.half.Join(w)
	case cb != nil && s.fullCombine != nil:
		s.fullCombine.WaitCombine(w, cb)
	default:
		s.full.Wait(w)
	}
}

// combineFor selects the join-wave combine callback for a command, or nil
// for loops without a reduction.
func (s *Scheduler) combineFor(c *command) func(into, from int) {
	switch c.reduce {
	case reduceScalar:
		return s.combineScalar
	case reduceVec:
		return s.combineVec
	case reduceCustom:
		return s.combineCustom
	default:
		return nil
	}
}

// fork publishes the command and performs the master's fork-side
// synchronisation.
func (s *Scheduler) fork(c command) {
	s.cmd = c
	s.counters.Inc(trace.ForkPhases)
	if s.cfg.Mode == ModeHalf {
		s.half.Release(0)
	} else {
		s.full.Wait(0)
		s.counters.Inc(trace.BarrierEpisodes)
	}
}

// joinMaster performs the master's join-side synchronisation and returns
// once every worker has completed its share.
func (s *Scheduler) joinMaster(c *command) {
	s.counters.Inc(trace.JoinPhases)
	cb := s.combineFor(c)
	switch {
	case s.cfg.Mode == ModeHalf && cb != nil:
		s.half.JoinCombine(0, cb)
	case s.cfg.Mode == ModeHalf:
		s.half.Join(0)
	case cb != nil && s.fullCombine != nil:
		s.fullCombine.WaitCombine(0, cb)
		s.counters.Inc(trace.BarrierEpisodes)
	default:
		s.full.Wait(0)
		s.counters.Inc(trace.BarrierEpisodes)
		// Barrier without a combining join (centralized, full mode): fold
		// the views serially after the barrier, in worker order. The barrier
		// provides the happens-before edge for the view writes.
		if cb != nil {
			for w := 1; w < s.p; w++ {
				cb(0, w)
			}
		}
	}
}

// runLoop publishes a loop, executes the master's share and waits for the
// workers. Single-worker schedulers bypass synchronisation entirely but still
// count one (degenerate) fork and join phase, so the structural counters the
// tests and ablations rely on are independent of the machine size.
func (s *Scheduler) runLoop(c command) {
	s.mustOpen()
	s.counters.Inc(trace.LoopsScheduled)
	if s.p == 1 {
		s.cmd = c
		s.counters.Inc(trace.ForkPhases)
		s.runShare(0, &c)
		s.counters.Inc(trace.JoinPhases)
		return
	}
	s.fork(c)
	s.runShare(0, &c)
	s.joinMaster(&c)
}

// For implements sched.Scheduler: it executes body over [0, n) with static
// block partitioning, one contiguous block per worker.
func (s *Scheduler) For(n int, body sched.Body) {
	if n <= 0 {
		return
	}
	s.runLoop(command{kind: cmdRun, n: n, body: body})
}

// ForReduce implements sched.Scheduler: a reducing loop whose per-worker
// partial results are folded into the join wave (half mode) or the join
// barrier (full mode), using exactly P-1 combine operations in worker order.
func (s *Scheduler) ForReduce(n int, identity float64, combine func(a, b float64) float64, body sched.ReduceBody) float64 {
	if n <= 0 {
		return identity
	}
	c := command{kind: cmdRun, n: n, rbody: body, reduce: reduceScalar, ident: identity, combine: combine}
	s.runLoop(c)
	return s.scalarViews[0].v
}

// ForReduceVec implements sched.Scheduler: a loop reducing element-wise into
// a vector of `width` float64s.
func (s *Scheduler) ForReduceVec(n, width int, body sched.VecBody) []float64 {
	out := make([]float64, width)
	if n <= 0 || width <= 0 {
		return out
	}
	s.ensureVecViews(width)
	c := command{kind: cmdRun, n: n, vbody: body, reduce: reduceVec, width: width}
	s.runLoop(c)
	copy(out, s.vecViews[0][:width])
	return out
}

// ForCombine executes body over [0, n) with static block partitioning and,
// during the join wave, folds caller-owned per-worker views in iteration
// order by invoking combine(into, from) exactly P-1 times. It is the
// building block for reductions over arbitrary (non-float64) view types —
// the statically allocated Cilk-reducer replacement exposed by the public
// loop package — while keeping the reduction merged into the half-barrier.
//
// The caller must ensure body(w, ...) only writes worker w's view and that
// combine(into, from) only touches those two views; the join wave provides
// the required happens-before edges.
func (s *Scheduler) ForCombine(n int, body sched.Body, combine func(into, from int)) {
	if n <= 0 {
		return
	}
	if combine == nil {
		s.For(n, body)
		return
	}
	s.runLoop(command{kind: cmdRun, n: n, body: body, reduce: reduceCustom, custom: combine})
}

// ensureVecViews grows the per-worker vector views to at least width
// elements. Master-only; called before the fork, so workers never observe a
// partially grown view.
func (s *Scheduler) ensureVecViews(width int) {
	if len(s.vecViews[0]) >= width {
		return
	}
	for w := range s.vecViews {
		s.vecViews[w] = make([]float64, width)
	}
}

// Close shuts the team down: the workers are released from their wait loops
// and their goroutines exit. Close is idempotent.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.p > 1 {
		s.cmd = command{kind: cmdShutdown}
		if s.cfg.Mode == ModeHalf {
			s.half.Release(0)
		} else {
			s.full.Wait(0)
		}
	}
	s.team.Wait()
}

func (s *Scheduler) mustOpen() {
	if s.closed {
		panic("core: scheduler used after Close")
	}
}

var _ sched.Scheduler = (*Scheduler)(nil)
