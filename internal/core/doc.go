// Package core implements the paper's primary contribution: a fine-grain
// parallel-loop scheduler built on the half-barrier pattern.
//
// # The half-barrier pattern
//
// A statically scheduled parallel loop conventionally performs four steps:
// the master (1) divides the iteration range among the workers, (2) sends
// the work descriptions to them, (3) the workers execute their shares, and
// (4) the master waits for completion and folds partial reduction results.
// Steps 2 and 4 are conventionally implemented with full barriers — a fork
// barrier and a join barrier, each with a join phase and a release phase.
//
// Because every worker is dedicated to a single master and sits idle between
// loops, two of those four phases are redundant:
//
//   - the join phase of the fork barrier (workers need not wait for each
//     other before starting; they only need the master's release), and
//   - the release phase of the join barrier (the master need not acknowledge
//     the workers' completion; they go back to waiting for the next fork).
//
// What remains is one release wave at the fork and one join wave at the
// join: a single barrier's worth of synchronisation per loop — the
// half-barrier pattern. This package composes the two halves from the
// primitives in internal/barrier, over a Mellor-Crummey/Scott style tree
// tuned to the machine topology (or a centralized barrier, for the ablation
// in Table 1 of the paper).
//
// # Reductions
//
// For loops with reduction variables the scheduler allocates per-worker
// views statically at the start of the loop and folds them pairwise inside
// the join wave of the tree, as the arrivals climb towards the master:
// exactly P-1 combine operations, in increasing worker-index order (which
// equals iteration order under block partitioning), so non-commutative
// reductions remain correct. The Intel OpenMP baseline, by contrast,
// executes an additional barrier-like construct to aggregate per-thread
// results — three full barriers per reducing loop versus two half-barriers
// here (see internal/omp).
//
// # Variants
//
// The scheduler exposes the ablation axes of Table 1 as configuration:
// BarrierTree vs BarrierCentralized, and ModeHalf vs ModeFull (the latter
// re-inserting the redundant phases so the only variable is the pattern
// itself).
package core
