package bench

import (
	"math"
	"runtime"

	"loopsched/internal/linreg"
	"loopsched/internal/sched"
	"loopsched/internal/stats"
)

// LinregOptions configures the Figure 3 experiment.
type LinregOptions struct {
	// Points is the dataset size; <= 0 selects 4 M points (the paper's
	// "medium" input is ~26 M; the default keeps the default benchmark run
	// short — pass linreg.PaperMediumPoints for the full-size run).
	Points int
	// ChunkPoints splits the reduction into loops of this many points, the
	// way Phoenix++ splits its input into cache-sized map tasks — which is
	// what makes the workload fine-grain and scheduler-bound. <= 0 selects
	// 32768 points (64 KiB of input per task, the Phoenix++ default);
	// negative values force a single loop over the whole dataset.
	ChunkPoints int
	// Reps is the number of timed repetitions (minimum kept); <= 0 selects 3.
	Reps int
	// ThreadCounts are the worker counts of the x axis; empty selects
	// DefaultThreadCounts.
	ThreadCounts []int
	// Baseline and FineGrain name the two schedulers compared in a panel;
	// empty values select the Cilk panel ("cilk" vs "fine-grain-tree").
	Baseline, FineGrain string
}

func (o *LinregOptions) normalize() {
	if o.Points <= 0 {
		o.Points = 4 << 20
	}
	if o.ChunkPoints == 0 {
		o.ChunkPoints = 32768
	}
	if o.ChunkPoints < 0 {
		o.ChunkPoints = 0
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.ThreadCounts) == 0 {
		o.ThreadCounts = DefaultThreadCounts(runtime.GOMAXPROCS(0))
	}
	if o.Baseline == "" {
		o.Baseline = "cilk"
	}
	if o.FineGrain == "" {
		o.FineGrain = "fine-grain-tree"
	}
}

// LinregResult holds one panel of Figure 3: the speedup curves of the
// baseline runtime and the fine-grain runtime on the same dataset.
type LinregResult struct {
	Points            int
	SequentialSeconds float64
	Baseline          ScalingSeries
	FineGrain         ScalingSeries
	// BestSpeedupOverBaseline is max over thread counts of
	// fine-grain speedup / baseline speedup (the paper reports 2.8× best
	// case).
	BestSpeedupOverBaseline float64
	// Fit is the regression result (for sanity checks; all runtimes must
	// agree with the sequential oracle).
	Fit linreg.Result
}

// RunLinreg reproduces one panel of Figure 3 (panel (a) with the default
// Cilk baseline, panel (b) when Baseline is an OpenMP schedule).
func RunLinreg(opt LinregOptions) (LinregResult, error) {
	opt.normalize()
	data := linreg.Generate(opt.Points)

	res := LinregResult{Points: opt.Points}

	// Sequential baseline and oracle.
	seqStats := data.Sequential()
	fit, err := seqStats.Solve()
	if err != nil {
		return res, err
	}
	res.Fit = fit
	seq := sched.NewSequential()
	seqTimes := stats.Timer(opt.Reps, true, func() {
		if opt.ChunkPoints > 0 {
			_, _ = data.RunChunked(seq, opt.ChunkPoints)
		} else {
			_, _ = data.Run(seq)
		}
	})
	res.SequentialSeconds = stats.MinDuration(seqTimes).Seconds()

	run := func(name string) (ScalingSeries, error) {
		series := ScalingSeries{Scheduler: name}
		for _, p := range opt.ThreadCounts {
			s, err := NewScheduler(name, p)
			if err != nil {
				return series, err
			}
			times := stats.Timer(opt.Reps, true, func() {
				if opt.ChunkPoints > 0 {
					_, _ = data.RunChunked(s, opt.ChunkPoints)
				} else {
					_, _ = data.Run(s)
				}
			})
			s.Close()
			secs := stats.MinDuration(times).Seconds()
			series.Points = append(series.Points, ScalingPoint{
				Threads: p,
				Seconds: secs,
				Speedup: res.SequentialSeconds / secs,
			})
		}
		return series, nil
	}

	if res.Baseline, err = run(opt.Baseline); err != nil {
		return res, err
	}
	if res.FineGrain, err = run(opt.FineGrain); err != nil {
		return res, err
	}

	for i := range res.FineGrain.Points {
		if i < len(res.Baseline.Points) && res.Baseline.Points[i].Speedup > 0 {
			ratio := res.FineGrain.Points[i].Speedup / res.Baseline.Points[i].Speedup
			if ratio > res.BestSpeedupOverBaseline {
				res.BestSpeedupOverBaseline = ratio
			}
		}
	}
	return res, nil
}

// VerifyLinreg checks that the named scheduler computes the same regression
// as the sequential oracle on a small dataset, returning the largest
// relative error across the accumulated statistics.
func VerifyLinreg(name string, points int) (float64, error) {
	if points <= 0 {
		points = 1 << 18
	}
	data := linreg.Generate(points)
	want := data.Sequential()
	s, err := NewScheduler(name, 0)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	got, err := data.Run(s)
	if err != nil {
		return 0, err
	}
	rel := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a)
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	errs := []float64{
		rel(got.SX, want.SX), rel(got.SY, want.SY), rel(got.SXX, want.SXX),
		rel(got.SYY, want.SYY), rel(got.SXY, want.SXY), rel(got.N, want.N),
	}
	max := 0.0
	for _, e := range errs {
		if e > max {
			max = e
		}
	}
	return max, nil
}
