package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/stats"
	"loopsched/internal/workload"
)

// OverloadOptions configures the overload-protection scenario: closed-loop
// deadline-carrying streams drive one jobs scheduler at capacity and at twice
// capacity with the admission-control layer armed (bounded-wait admission,
// feasibility shedding), then a well-behaved tenant shares the scheduler with
// an abusive deadline-spamming tenant under per-tenant circuit breakers. The
// scenario measures what overload protection is for: goodput (deadline-hit
// completions per second) that survives 2x offered load, submit waits that
// stay bounded by MaxWait, zero admitted-to-miss infeasible jobs, and an
// in-SLO tenant whose tail latency is preserved behind the abuser's open
// breaker.
type OverloadOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS minus two (floored
	// at 2, capped at 16) — the load generators need CPU of their own, as in
	// the fair-share scenario.
	Workers int
	// Streams is the closed-loop submitter count at single capacity; the
	// overload phase doubles it. <= 0 selects Workers.
	Streams int
	// Window is each stream's in-flight job window; <= 0 selects 4.
	Window int
	// N is the per-job iteration count; <= 0 selects 2048.
	N int
	// IterNs is the target per-iteration cost; <= 0 selects 150.
	IterNs float64
	// Duration is the measurement window per phase; <= 0 selects 500ms. A
	// quarter of it is prepended as warmup so the run-time estimate the
	// feasibility check consumes is warm before anything is measured.
	Duration time.Duration
	// QueueDepth bounds the admission queue; <= 0 selects 4 x Workers.
	QueueDepth int
	// MaxWait bounds blocking for an admission slot; <= 0 selects 10ms.
	MaxWait time.Duration
	// Deadline is the well-behaved streams' per-job deadline budget;
	// <= 0 selects 50ms (generous at capacity, tight enough to measure
	// goodput honestly).
	Deadline time.Duration
	// BreakerBurnRate and BreakerCooldown arm the breaker phase;
	// <= 0 select 2.0 and 400ms (a long cooldown: the abuser never stops
	// spamming, so frequent half-open probes would just re-admit its
	// hopeless jobs into the well-behaved tenant's tail).
	BreakerBurnRate float64
	BreakerCooldown time.Duration
	// Reps is how many times the breaker isolated/mixed pair is repeated;
	// the reported p99s are the medians across repetitions (a single p99
	// sample on a small or shared machine is dominated by scheduler noise).
	// <= 0 selects 3.
	Reps int
}

func (o *OverloadOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) - 2
		if o.Workers > 16 {
			o.Workers = 16
		}
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.Streams <= 0 {
		o.Streams = o.Workers
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.N <= 0 {
		o.N = 2048
	}
	if o.IterNs <= 0 {
		o.IterNs = 150
	}
	if o.Duration <= 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 10 * time.Millisecond
	}
	if o.Deadline <= 0 {
		o.Deadline = 50 * time.Millisecond
	}
	if o.BreakerBurnRate <= 0 {
		o.BreakerBurnRate = 2
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 400 * time.Millisecond
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
}

// OverloadPhaseResult is the outcome of one load phase.
type OverloadPhaseResult struct {
	Streams         int     `json:"streams"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Admitted, Completed and DeadlineHits count jobs inside the window;
	// goodput is DeadlineHits per second — completions that missed their
	// deadline serve nobody.
	Admitted             int64   `json:"admitted"`
	Completed            int64   `json:"completed"`
	DeadlineHits         int64   `json:"deadline_hits"`
	GoodputJobsPerSecond float64 `json:"goodput_jobs_per_second"`
	P50Seconds           float64 `json:"p50_seconds"`
	P95Seconds           float64 `json:"p95_seconds"`
	P99Seconds           float64 `json:"p99_seconds"`
	// Shed counts by cause, client-observed inside the window; ShedFraction
	// is sheds over offered (admitted + shed).
	ShedTotal      int64   `json:"shed_total"`
	InfeasibleShed int64   `json:"infeasible_shed"`
	BackloggedShed int64   `json:"backlogged_shed"`
	ShedFraction   float64 `json:"shed_fraction"`
	// MaxSubmitWaitSeconds is the longest any Submit call blocked: the
	// bounded-wait contract says it never exceeds MaxWait by more than
	// scheduler jitter.
	MaxSubmitWaitSeconds float64 `json:"max_submit_wait_seconds"`
	// InfeasibleProbes/InfeasibleAdmits: jobs submitted with a deadline that
	// cannot be met (1ns of slack) after warmup. Every one must be shed at
	// intake; an admit here is a job accepted only to miss.
	InfeasibleProbes int64 `json:"infeasible_probes"`
	InfeasibleAdmits int64 `json:"infeasible_admits"`
}

// OverloadBreakerResult is the outcome of the breaker-isolation phase pair.
type OverloadBreakerResult struct {
	// IsolatedP99Seconds is the well-behaved tenant's p99 running alone;
	// MixedP99Seconds is its p99 sharing the scheduler with the abusive
	// tenant under armed breakers. GoodP99Ratio is isolated over mixed: 1.0
	// means the breaker fully preserved the tenant's tail, below 0.9 means
	// the abuser still leaked more than 11% extra tail latency through.
	IsolatedP99Seconds float64 `json:"isolated_p99_seconds"`
	MixedP99Seconds    float64 `json:"mixed_p99_seconds"`
	GoodP99Ratio       float64 `json:"good_p99_ratio"`
	GoodJobsIsolated   int64   `json:"good_jobs_isolated"`
	GoodJobsMixed      int64   `json:"good_jobs_mixed"`
	// AbusiveShed counts the abuser's submissions shed by its open breaker
	// inside the window; BreakerOpened records that the breaker tripped.
	AbusiveShed   int64 `json:"abusive_shed"`
	BreakerOpened bool  `json:"breaker_opened"`
}

// OverloadReport is the machine-readable scenario outcome, serialised to
// BENCH_overload.json.
type OverloadReport struct {
	Workers        int                   `json:"workers"`
	QueueDepth     int                   `json:"queue_depth"`
	MaxWaitSeconds float64               `json:"max_wait_seconds"`
	Baseline       OverloadPhaseResult   `json:"baseline"`
	Overload       OverloadPhaseResult   `json:"overload"`
	Breaker        OverloadBreakerResult `json:"breaker"`
	// GoodputRatio is overload goodput over baseline goodput: the acceptance
	// criterion asks for >= 0.9 (shedding keeps the scheduler serving at
	// capacity instead of queuing itself to death).
	GoodputRatio float64 `json:"goodput_ratio"`
}

const (
	overloadGoodTenant    = "steady"
	overloadAbusiveTenant = "spammer"
)

// overloadStream describes one tenant's closed-loop submitter group in a
// phase.
type overloadStream struct {
	tenant string
	count  int           // concurrent submitters
	window int           // in-flight jobs per submitter
	budget time.Duration // per-job deadline budget (0 = no deadline)
	noWait bool          // fail fast instead of blocking MaxWait
	record bool          // collect this tenant's latencies and goodput
}

// overloadPhaseStats is the raw client-side accounting of one phase run.
type overloadPhaseStats struct {
	admitted, completed, hits       atomic.Int64
	infeasible, backlogged, breaker atomic.Int64
	probes, probeAdmits             atomic.Int64
	maxWaitNanos                    atomic.Int64
	latMu                           sync.Mutex
	lats                            []float64
	abusiveShed                     atomic.Int64
	durationSeconds                 float64
}

func atomicMaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// runOverloadPhase drives the streams against a fresh scheduler built from
// cfg for warmup + Duration and returns the client-side accounting. With
// probes set, a side stream submits deliberately infeasible jobs (1ns of
// deadline slack) after warmup and records whether any were admitted.
func runOverloadPhase(cfg jobs.Config, opt OverloadOptions, streams []overloadStream, probes bool) (*overloadPhaseStats, error) {
	s := jobs.New(cfg)
	ps := &overloadPhaseStats{}
	work := calibrated(opt.IterNs)
	want := float64(opt.N)
	base := jobs.Request{
		N:           opt.N,
		Label:       "overload",
		Commutative: true,
		Combine:     func(a, b float64) float64 { return a + b },
		RBody: func(w, lo, hi int, acc float64) float64 {
			workload.Consume(work.Run(lo, hi))
			return acc + float64(hi-lo)
		},
	}

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		firstErr  atomic.Value
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err)
		stop.Store(true)
	}
	type inflight struct {
		j        *jobs.Job
		start    time.Time
		deadline time.Time
	}
	var wg sync.WaitGroup
	runStream := func(spec overloadStream) {
		defer wg.Done()
		window := make([]inflight, 0, spec.window)
		settle := func(f inflight) bool {
			v, err := f.j.Wait()
			done := time.Now()
			if err != nil {
				fail(err)
				return false
			}
			if v != want {
				fail(fmt.Errorf("bench: overload %s job returned %v, want %v", spec.tenant, v, want))
				return false
			}
			if measuring.Load() {
				ps.completed.Add(1)
				hit := f.deadline.IsZero() || !done.After(f.deadline)
				if spec.record {
					if hit {
						ps.hits.Add(1)
					}
					ps.latMu.Lock()
					ps.lats = append(ps.lats, done.Sub(f.start).Seconds())
					ps.latMu.Unlock()
				}
			}
			return true
		}
		for !stop.Load() {
			r := base
			r.Tenant = spec.tenant
			r.NoWait = spec.noWait
			var deadline time.Time
			if spec.budget > 0 {
				deadline = time.Now().Add(spec.budget)
				r.Deadline = deadline
			}
			submitStart := time.Now()
			j, err := s.Submit(r)
			atomicMaxInt64(&ps.maxWaitNanos, time.Since(submitStart).Nanoseconds())
			if err != nil {
				switch {
				case errors.Is(err, jobs.ErrInfeasible):
					if measuring.Load() {
						ps.infeasible.Add(1)
					}
				case errors.Is(err, jobs.ErrBacklogged):
					if measuring.Load() {
						ps.backlogged.Add(1)
					}
				case errors.Is(err, jobs.ErrBreakerOpen):
					if measuring.Load() {
						ps.breaker.Add(1)
						if spec.tenant == overloadAbusiveTenant {
							ps.abusiveShed.Add(1)
						}
					}
				default:
					fail(err)
					return
				}
				// Back off as the rejection suggests. Backlog/infeasible
				// hints are capped low so a shedding phase still re-offers
				// load often enough to measure; an open breaker's hint is
				// honored in full — hammering it anyway would burn the CPU
				// the breaker just freed for the well-behaved tenant (and is
				// exactly what a compliant client would not do).
				delay, _ := jobs.SuggestedRetry(err)
				limit := 2 * time.Millisecond
				if errors.Is(err, jobs.ErrBreakerOpen) {
					limit = opt.BreakerCooldown
				}
				if delay <= 0 || delay > limit {
					delay = limit
				}
				time.Sleep(delay)
				continue
			}
			if measuring.Load() {
				ps.admitted.Add(1)
			}
			window = append(window, inflight{j, submitStart, deadline})
			if len(window) < spec.window {
				continue
			}
			var f inflight
			f, window = window[0], window[1:]
			if !settle(f) {
				return
			}
		}
		for _, f := range window {
			if !settle(f) {
				return
			}
		}
	}
	for _, spec := range streams {
		for i := 0; i < spec.count; i++ {
			wg.Add(1)
			go runStream(spec)
		}
	}
	if probes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(opt.Duration / 50)
			defer ticker.Stop()
			for !stop.Load() {
				<-ticker.C
				// Warmup feeds the run-time estimate; probe only once the
				// feasibility check has data, and only count measured ones.
				if !measuring.Load() {
					continue
				}
				r := base
				r.Tenant = overloadGoodTenant
				r.Deadline = time.Now().Add(time.Nanosecond)
				j, err := s.Submit(r)
				ps.probes.Add(1)
				if err != nil {
					if !errors.Is(err, jobs.ErrInfeasible) {
						// A full queue may backlog the probe before the
						// feasibility check ever sees it; that is still a
						// shed, not an admit.
						if !errors.Is(err, jobs.ErrBacklogged) && !errors.Is(err, jobs.ErrBreakerOpen) {
							fail(err)
							return
						}
					}
					continue
				}
				ps.probeAdmits.Add(1)
				if _, err := j.Wait(); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	time.Sleep(opt.Duration / 4) // warmup: queues fill, run-time estimate warms
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opt.Duration)
	measuring.Store(false)
	ps.durationSeconds = time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	s.Close()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ps, err
	}
	return ps, nil
}

// phaseResult folds raw phase stats into the reported form.
func (ps *overloadPhaseStats) result(streams int) OverloadPhaseResult {
	res := OverloadPhaseResult{
		Streams:          streams,
		DurationSeconds:  ps.durationSeconds,
		Admitted:         ps.admitted.Load(),
		Completed:        ps.completed.Load(),
		DeadlineHits:     ps.hits.Load(),
		InfeasibleShed:   ps.infeasible.Load(),
		BackloggedShed:   ps.backlogged.Load(),
		InfeasibleProbes: ps.probes.Load(),
		InfeasibleAdmits: ps.probeAdmits.Load(),
	}
	res.ShedTotal = res.InfeasibleShed + res.BackloggedShed + ps.breaker.Load()
	if offered := res.Admitted + res.ShedTotal; offered > 0 {
		res.ShedFraction = float64(res.ShedTotal) / float64(offered)
	}
	if res.DurationSeconds > 0 {
		res.GoodputJobsPerSecond = float64(res.DeadlineHits) / res.DurationSeconds
	}
	res.MaxSubmitWaitSeconds = time.Duration(ps.maxWaitNanos.Load()).Seconds()
	if len(ps.lats) > 0 {
		q := stats.Quantiles(ps.lats, 0.5, 0.95, 0.99)
		res.P50Seconds, res.P95Seconds, res.P99Seconds = q[0], q[1], q[2]
	}
	return res
}

// RunOverload runs the full scenario: baseline capacity, 2x overload with
// shedding armed, and the breaker isolation pair. Jobs are verified
// reductions; a wrong answer fails the run.
func RunOverload(opt OverloadOptions) (OverloadReport, error) {
	opt.normalize()
	rep := OverloadReport{
		Workers:        opt.Workers,
		QueueDepth:     opt.QueueDepth,
		MaxWaitSeconds: opt.MaxWait.Seconds(),
	}
	shedCfg := jobs.Config{
		Workers:        opt.Workers,
		QueueDepth:     opt.QueueDepth,
		MaxWait:        opt.MaxWait,
		ShedInfeasible: true,
		LockOSThread:   LockThreads,
		Name:           "overload",
	}

	// Phase 1: single capacity, admission control armed but quiescent.
	good := overloadStream{
		tenant: overloadGoodTenant, count: opt.Streams, window: opt.Window,
		budget: opt.Deadline, record: true,
	}
	ps, err := runOverloadPhase(shedCfg, opt, []overloadStream{good}, false)
	if err != nil {
		return rep, err
	}
	rep.Baseline = ps.result(opt.Streams)

	// Phase 2: twice the offered load, half of it failing fast with NoWait,
	// plus the infeasible probe stream. Shedding must keep goodput at the
	// baseline level and every probe out of the queue.
	double := good
	double.count = opt.Streams
	noWait := good
	noWait.count = opt.Streams
	noWait.noWait = true
	ps, err = runOverloadPhase(shedCfg, opt, []overloadStream{double, noWait}, true)
	if err != nil {
		return rep, err
	}
	rep.Overload = ps.result(2 * opt.Streams)
	if rep.Baseline.GoodputJobsPerSecond > 0 {
		rep.GoodputRatio = rep.Overload.GoodputJobsPerSecond / rep.Baseline.GoodputJobsPerSecond
	}

	// Phase 3: breaker isolation. The abusive tenant floods with deadlines
	// it can never hit (admitted — feasibility shedding is off here so the
	// breaker, not the feasibility check, is the protection under test),
	// burning its SLO until the breaker opens and sheds it at intake. The
	// well-behaved tenant's p99 is compared to a run where it has the
	// scheduler to itself.
	breakerCfg := jobs.Config{
		Workers:         opt.Workers,
		QueueDepth:      opt.QueueDepth,
		MaxWait:         opt.MaxWait,
		BreakerBurnRate: opt.BreakerBurnRate,
		BreakerCooldown: opt.BreakerCooldown,
		LockOSThread:    LockThreads,
		Name:            "overload-breaker",
	}
	steady := overloadStream{
		tenant: overloadGoodTenant, count: (opt.Streams + 1) / 2, window: 2,
		budget: opt.Deadline, record: true,
	}
	abusive := overloadStream{
		tenant: overloadAbusiveTenant, count: 2 * opt.Streams, window: opt.Window,
		budget: time.Microsecond,
	}
	// The pair is repeated and the median p99 of each side reported: one
	// p99 sample per side would make the ratio a coin flip on a small or
	// shared machine (the phases run back to back, so ambient noise hits
	// both sides roughly equally across repetitions).
	isoP99s := make([]float64, 0, opt.Reps)
	mixedP99s := make([]float64, 0, opt.Reps)
	for rep_ := 0; rep_ < opt.Reps; rep_++ {
		ps, err = runOverloadPhase(breakerCfg, opt, []overloadStream{steady}, false)
		if err != nil {
			return rep, err
		}
		iso := ps.result(steady.count)
		isoP99s = append(isoP99s, iso.P99Seconds)
		rep.Breaker.GoodJobsIsolated += iso.Completed

		ps, err = runOverloadPhase(breakerCfg, opt, []overloadStream{steady, abusive}, false)
		if err != nil {
			return rep, err
		}
		mixed := ps.result(steady.count)
		mixedP99s = append(mixedP99s, mixed.P99Seconds)
		rep.Breaker.GoodJobsMixed += mixed.Completed
		rep.Breaker.AbusiveShed += ps.abusiveShed.Load()
	}
	rep.Breaker.IsolatedP99Seconds = median(isoP99s)
	rep.Breaker.MixedP99Seconds = median(mixedP99s)
	rep.Breaker.BreakerOpened = rep.Breaker.AbusiveShed > 0
	if rep.Breaker.MixedP99Seconds > 0 {
		rep.Breaker.GoodP99Ratio = rep.Breaker.IsolatedP99Seconds / rep.Breaker.MixedP99Seconds
	}
	return rep, nil
}

// median returns the middle value of xs (the mean of the middle two for an
// even count); 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// WriteOverload renders the report as a table.
func WriteOverload(w io.Writer, rep OverloadReport) error {
	fmt.Fprintf(w, "Overload protection scenario: %d workers, queue %d, max wait %.0fms\n",
		rep.Workers, rep.QueueDepth, rep.MaxWaitSeconds*1e3)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tstreams\tgoodput (jobs/s)\tp99 (ms)\tshed %\tmax submit wait (ms)\tinfeasible admits")
	row := func(name string, r OverloadPhaseResult) {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.3f\t%.1f\t%.3f\t%d/%d\n",
			name, r.Streams, r.GoodputJobsPerSecond, r.P99Seconds*1e3,
			r.ShedFraction*100, r.MaxSubmitWaitSeconds*1e3, r.InfeasibleAdmits, r.InfeasibleProbes)
	}
	row("baseline", rep.Baseline)
	row("overload", rep.Overload)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ngoodput at 2x offered load: %.2fx baseline\n", rep.GoodputRatio)
	fmt.Fprintf(w, "breaker isolation: good-tenant p99 %.3fms isolated vs %.3fms mixed (ratio %.2f); abusive submissions shed: %d (breaker opened: %v)\n",
		rep.Breaker.IsolatedP99Seconds*1e3, rep.Breaker.MixedP99Seconds*1e3,
		rep.Breaker.GoodP99Ratio, rep.Breaker.AbusiveShed, rep.Breaker.BreakerOpened)
	return nil
}

// WriteOverloadJSON writes the report to path as indented JSON (the
// BENCH_overload.json artifact).
func WriteOverloadJSON(path string, rep OverloadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
