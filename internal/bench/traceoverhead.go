package bench

// traceoverhead.go measures what lifecycle tracing costs the runtime: the
// fairshare scenario (admission-policy-bound, one scheduler) and the
// shardburst scenario (dispatcher-bound, sharded pool) each run untraced and
// traced — tracer wired in, one live subscriber draining the event feed, the
// realistic worst case for the hot-path hooks — and the report records the
// throughput ratio. The acceptance budgets: tracing off is free (the hooks
// are a nil check), tracing on stays within a few percent.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"loopsched/internal/trace"
)

// TraceOverheadOptions configures the trace-overhead comparison.
type TraceOverheadOptions struct {
	// Reps is the number of runs per configuration; the best (highest
	// jobs/s) run of each is compared, which filters scheduler-independent
	// noise (GC, machine load) out of the ratio. <= 0 selects 5: the
	// shardburst scenario is short enough that best-of-3 still carries
	// percent-level noise into the overhead fraction.
	Reps int
	// FairShare and ShardBurst are the underlying scenarios' options; their
	// Tracer fields are overwritten per configuration.
	FairShare  FairShareOptions
	ShardBurst ShardBurstOptions
}

func (o *TraceOverheadOptions) normalize() {
	if o.Reps <= 0 {
		o.Reps = 5
	}
}

// TraceOverheadScenario is the off-vs-on outcome of one scenario.
type TraceOverheadScenario struct {
	Name string `json:"name"`
	// OffJobsPerSecond and OnJobsPerSecond are the best-of-reps throughputs
	// with tracing off and on.
	OffJobsPerSecond float64 `json:"off_jobs_per_second"`
	OnJobsPerSecond  float64 `json:"on_jobs_per_second"`
	// OverheadFraction is 1 - on/off: 0.03 means tracing cost 3% of the
	// untraced throughput (negative means the traced run won the noise).
	OverheadFraction float64 `json:"overhead_fraction"`
	// EventsTotal and DroppedTotal are the traced runs' tracer accounting,
	// summed over reps (drops mean the draining subscriber fell behind).
	EventsTotal  int64 `json:"events_total"`
	DroppedTotal int64 `json:"dropped_total"`
}

// TraceOverheadReport is the machine-readable outcome, serialised to
// BENCH_traceoverhead.json so the tracing cost is tracked across PRs.
type TraceOverheadReport struct {
	Reps      int                     `json:"reps"`
	Scenarios []TraceOverheadScenario `json:"scenarios"`
	// MaxOverheadFraction is the worst scenario's overhead: the number the
	// acceptance budget is asserted against.
	MaxOverheadFraction float64 `json:"max_overhead_fraction"`
}

// drainTracer subscribes to tr and discards events until the returned stop
// function runs: the traced configurations pay for real deliveries, not just
// for emission into the void.
func drainTracer(tr *trace.Tracer) (stop func()) {
	sub := tr.Subscribe(1<<14, "", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-sub.Events():
			case <-done:
				return
			}
		}
	}()
	return func() {
		done <- struct{}{}
		<-done
		sub.Close()
	}
}

// runTraceOverheadScenario runs one scenario Reps times per configuration
// and fills the off/on throughputs and the overhead fraction.
func runTraceOverheadScenario(name string, reps int, run func(tr *trace.Tracer) (float64, error)) (TraceOverheadScenario, error) {
	sc := TraceOverheadScenario{Name: name}
	for rep := 0; rep < reps; rep++ {
		jps, err := run(nil)
		if err != nil {
			return sc, fmt.Errorf("bench: %s untraced rep %d: %w", name, rep, err)
		}
		if jps > sc.OffJobsPerSecond {
			sc.OffJobsPerSecond = jps
		}
	}
	for rep := 0; rep < reps; rep++ {
		tr := trace.NewTracer(1024)
		stop := drainTracer(tr)
		jps, err := run(tr)
		stop()
		if err != nil {
			return sc, fmt.Errorf("bench: %s traced rep %d: %w", name, rep, err)
		}
		st := tr.Stats()
		sc.EventsTotal += st.EventsTotal
		sc.DroppedTotal += st.DroppedTotal
		if jps > sc.OnJobsPerSecond {
			sc.OnJobsPerSecond = jps
		}
	}
	if sc.OffJobsPerSecond > 0 {
		sc.OverheadFraction = 1 - sc.OnJobsPerSecond/sc.OffJobsPerSecond
	}
	return sc, nil
}

// RunTraceOverhead runs the comparison on both scenarios.
func RunTraceOverhead(opt TraceOverheadOptions) (TraceOverheadReport, error) {
	opt.normalize()
	rep := TraceOverheadReport{Reps: opt.Reps}

	fair, err := runTraceOverheadScenario("fairshare", opt.Reps, func(tr *trace.Tracer) (float64, error) {
		o := opt.FairShare
		o.Tracer = tr
		res, err := RunFairShare(o)
		return res.JobsPerSecond, err
	})
	if err != nil {
		return rep, err
	}
	rep.Scenarios = append(rep.Scenarios, fair)

	burst, err := runTraceOverheadScenario("shardburst", opt.Reps, func(tr *trace.Tracer) (float64, error) {
		o := opt.ShardBurst
		o.Tracer = tr
		res, err := RunShardBurst(o)
		return res.JobsPerSecond, err
	})
	if err != nil {
		return rep, err
	}
	rep.Scenarios = append(rep.Scenarios, burst)

	for _, sc := range rep.Scenarios {
		if sc.OverheadFraction > rep.MaxOverheadFraction {
			rep.MaxOverheadFraction = sc.OverheadFraction
		}
	}
	return rep, nil
}

// WriteTraceOverhead renders the comparison as a table.
func WriteTraceOverhead(w io.Writer, rep TraceOverheadReport) error {
	fmt.Fprintf(w, "Lifecycle-tracing overhead (best of %d reps per configuration, traced runs drained by a live subscriber)\n", rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\toff jobs/s\ton jobs/s\toverhead\tevents\tdropped")
	for _, sc := range rep.Scenarios {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f%%\t%d\t%d\n",
			sc.Name, sc.OffJobsPerSecond, sc.OnJobsPerSecond, sc.OverheadFraction*100,
			sc.EventsTotal, sc.DroppedTotal)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nworst-case tracing overhead: %.2f%% of untraced throughput\n", rep.MaxOverheadFraction*100)
	return nil
}

// WriteTraceOverheadJSON writes the report to path as indented JSON (the
// BENCH_traceoverhead.json artifact).
func WriteTraceOverheadJSON(path string, rep TraceOverheadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// quickTraceOverheadOptions is the smoke-run configuration shared by the
// scenario registry and the test suite.
func quickTraceOverheadOptions() TraceOverheadOptions {
	return TraceOverheadOptions{
		Reps:       2,
		FairShare:  FairShareOptions{Workers: 4, Duration: 200 * time.Millisecond, N: 1024},
		ShardBurst: ShardBurstOptions{Workers: 4, Shards: 2, Tenants: 8, JobsPerTenant: 10, N: 256},
	}
}
