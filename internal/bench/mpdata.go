package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"loopsched/internal/grid"
	"loopsched/internal/mpdata"
	"loopsched/internal/sched"
	"loopsched/internal/stats"
)

// MPDATAOptions configures the Figure 2 experiment.
type MPDATAOptions struct {
	// Steps is the number of MPDATA time steps per measurement; <= 0
	// selects 50.
	Steps int
	// Reps is the number of timed repetitions (minimum kept); <= 0 selects 3.
	Reps int
	// ThreadCounts are the worker counts of the x axis; empty selects
	// DefaultThreadCounts.
	ThreadCounts []int
	// Corrective is the number of MPDATA corrective passes; <= 0 selects 1.
	Corrective int
	// Rows/Cols/Edges override the grid; zero values select the paper's
	// 5568-point, 16399-edge grid.
	Rows, Cols, Edges int
	// Schedulers are the runtimes of the left panel; empty selects the
	// paper's pair {fine-grain-tree, openmp-static}.
	Schedulers []string
}

func (o *MPDATAOptions) normalize() {
	if o.Steps <= 0 {
		o.Steps = 50
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.ThreadCounts) == 0 {
		o.ThreadCounts = DefaultThreadCounts(runtime.GOMAXPROCS(0))
	}
	if o.Corrective <= 0 {
		o.Corrective = 1
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = []string{"fine-grain-tree", "openmp-static"}
	}
}

// ScalingPoint is one point of a speedup-vs-threads series.
type ScalingPoint struct {
	Threads int
	// Seconds is the measured wall-clock time of the workload.
	Seconds float64
	// Speedup is sequential time / parallel time.
	Speedup float64
}

// ScalingSeries is a named speedup curve.
type ScalingSeries struct {
	Scheduler string
	Points    []ScalingPoint
}

// MPDATAResult holds both panels of Figure 2: the per-scheduler speedup
// curves (left) and the ratio of the fine-grain scheduler over the OpenMP
// baseline (right).
type MPDATAResult struct {
	GridPoints, GridEdges int
	Steps                 int
	SequentialSeconds     float64
	Series                []ScalingSeries
	// Ratio[i] is Series[0].Speedup / Series[1].Speedup at the same thread
	// count (fine-grain over OpenMP), expressed as a multiplicative factor.
	Ratio []ScalingPoint
}

// RunMPDATA reproduces Figure 2.
func RunMPDATA(opt MPDATAOptions) (MPDATAResult, error) {
	opt.normalize()

	var g *grid.Grid
	var err error
	if opt.Rows > 0 && opt.Cols > 0 {
		g, err = grid.NewTriangulated(opt.Rows, opt.Cols, opt.Edges)
	} else {
		g, err = grid.NewPaperGrid()
	}
	if err != nil {
		return MPDATAResult{}, err
	}

	base, err := mpdata.New(g, mpdata.Config{Corrective: opt.Corrective})
	if err != nil {
		return MPDATAResult{}, err
	}

	res := MPDATAResult{GridPoints: g.NumPoints, GridEdges: g.NumEdges(), Steps: opt.Steps}

	// Sequential baseline.
	seq := sched.NewSequential()
	res.SequentialSeconds = timeMPDATA(base, seq, opt)

	for _, name := range opt.Schedulers {
		series := ScalingSeries{Scheduler: name}
		for _, p := range opt.ThreadCounts {
			s, err := NewScheduler(name, p)
			if err != nil {
				return res, err
			}
			secs := timeMPDATA(base, s, opt)
			s.Close()
			series.Points = append(series.Points, ScalingPoint{
				Threads: p,
				Seconds: secs,
				Speedup: res.SequentialSeconds / secs,
			})
		}
		res.Series = append(res.Series, series)
	}

	if len(res.Series) >= 2 {
		a, b := res.Series[0], res.Series[1]
		for i := range a.Points {
			if i < len(b.Points) && b.Points[i].Speedup > 0 {
				res.Ratio = append(res.Ratio, ScalingPoint{
					Threads: a.Points[i].Threads,
					Speedup: a.Points[i].Speedup / b.Points[i].Speedup,
				})
			}
		}
	}
	return res, nil
}

// timeMPDATA measures the wall-clock seconds of opt.Steps time steps from a
// clone of the base solver under the given scheduler.
func timeMPDATA(base *mpdata.Solver, s sched.Scheduler, opt MPDATAOptions) float64 {
	durations := stats.Timer(opt.Reps, true, func() {
		solver := base.Clone()
		solver.Run(s, opt.Steps)
	})
	return stats.MinDuration(durations).Seconds()
}

// VerifyMPDATA runs a short simulation under the named scheduler and the
// sequential oracle and returns the maximum absolute field difference and
// the relative mass error; used by integration tests and by the cmd tool's
// -verify flag.
func VerifyMPDATA(name string, steps int) (maxDiff, massErr float64, err error) {
	g, err := grid.NewPaperGrid()
	if err != nil {
		return 0, 0, err
	}
	base, err := mpdata.New(g, mpdata.Config{Corrective: 1})
	if err != nil {
		return 0, 0, err
	}
	seqSolver := base.Clone()
	parSolver := base.Clone()

	seq := sched.NewSequential()
	s, err := NewScheduler(name, 0)
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()

	mass0 := seqSolver.Mass(seq)
	seqSolver.Run(seq, steps)
	parSolver.Run(s, steps)

	for i := range seqSolver.Psi {
		d := math.Abs(seqSolver.Psi[i] - parSolver.Psi[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	mass1 := parSolver.Mass(s)
	if mass0 != 0 {
		massErr = math.Abs(mass1-mass0) / math.Abs(mass0)
	}
	return maxDiff, massErr, nil
}

// LoopDuration estimates the average duration of a single parallel loop in
// the MPDATA step under the given scheduler — the quantity that makes MPDATA
// a fine-grain workload (a few microseconds per loop on the paper's grid).
func LoopDuration(name string, steps int) (time.Duration, error) {
	g, err := grid.NewPaperGrid()
	if err != nil {
		return 0, err
	}
	solver, err := mpdata.New(g, mpdata.Config{Corrective: 1})
	if err != nil {
		return 0, err
	}
	s, err := NewScheduler(name, 0)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	start := time.Now()
	solver.Run(s, steps)
	elapsed := time.Since(start)
	loops := steps * solver.LoopsPerStep()
	if loops == 0 {
		return 0, fmt.Errorf("bench: no loops executed")
	}
	return elapsed / time.Duration(loops), nil
}
