package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestManifestLoads pins the committed manifest: it must parse, validate,
// and register the benches CI depends on — including the trace-replay bench
// over the HTTP front-end.
func TestManifestLoads(t *testing.T) {
	m, err := LoadManifest("manifest.json")
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if m.Threshold <= 0 {
		t.Fatalf("threshold = %v", m.Threshold)
	}
	byName := map[string]*ManifestEntry{}
	for i := range m.Entries {
		e := &m.Entries[i]
		byName[e.Name] = e
		// Every probe dir and every file argument must exist in this
		// checkout — a renamed cmd or moved trace must fail here.
		if _, err := os.Stat(filepath.Join("..", "..", e.Dir)); err != nil {
			t.Errorf("entry %s: dir %s: %v", e.Name, e.Dir, err)
		}
		for _, arg := range e.Command("/dev/null") {
			if filepath.Ext(arg) == ".jsonl" {
				if _, err := os.Stat(filepath.Join("..", "..", arg)); err != nil {
					t.Errorf("entry %s: trace %s: %v", e.Name, arg, err)
				}
			}
		}
	}
	for _, want := range []string{"shardburst", "pipeline", "fairshare", "traceoverhead", "submitpath", "overload", "traceload"} {
		if byName[want] == nil {
			t.Errorf("entry %q missing from manifest", want)
		}
	}
	if e := byName["traceload"]; e != nil {
		if e.OutFile(".head") != "BENCH_traceload.head.json" {
			t.Errorf("traceload OutFile(.head) = %q", e.OutFile(".head"))
		}
		argv := e.Command("BENCH_traceload.json")
		found := false
		for _, a := range argv {
			if a == "BENCH_traceload.json" {
				found = true
			}
		}
		if !found {
			t.Errorf("traceload Command did not substitute {out}: %v", argv)
		}
	}
}

// TestManifestValidation exercises the rejection paths with synthetic
// manifests.
func TestManifestValidation(t *testing.T) {
	write := func(t *testing.T, text string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "m.json")
		if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ok := `{"threshold":0.25,"entries":[{"name":"a","dir":"cmd/a","cmd":"go run ./cmd/a -json {out}","out":"BENCH_a.json","title":"a","metrics":["x:higher"]}]}`
	if _, err := LoadManifest(write(t, ok)); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := map[string]string{
		"no threshold": `{"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":["x:higher"]}]}`,
		"no entries":   `{"threshold":0.25,"entries":[]}`,
		"no out slot":  `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x","out":"BENCH_a.json","metrics":["x:higher"]}]}`,
		"bad metric":   `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":["x:sideways"]}]}`,
		"no metrics":   `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":[]}]}`,
		"dup name":     `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":["x:higher"]},{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_b.json","metrics":["x:higher"]}]}`,
		"dup out":      `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":["x:higher"]},{"name":"b","dir":"d","cmd":"x {out}","out":"BENCH_a.json","metrics":["x:higher"]}]}`,
		"out not json": `{"threshold":0.25,"entries":[{"name":"a","dir":"d","cmd":"x {out}","out":"BENCH_a.txt","metrics":["x:higher"]}]}`,
	}
	for name, text := range bad {
		if _, err := LoadManifest(write(t, text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
