package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Manifest is the declarative description of the repo's benchmark fleet —
// the single place a bench registers for PR-time base-vs-head comparison
// and the push-to-main perf trajectory. cmd/benchcmp -manifest drives it:
// one driver runs every entry (head checkout, base worktree, or trajectory)
// and compares the reports, instead of CI carrying one copy-pasted YAML
// block per bench.
type Manifest struct {
	// Threshold is the default allowed fractional degradation per metric.
	Threshold float64 `json:"threshold"`
	// Entries are the registered benches.
	Entries []ManifestEntry `json:"entries"`
}

// ManifestEntry is one registered benchmark.
type ManifestEntry struct {
	// Name identifies the entry (unique; used in logs and skip notes).
	Name string `json:"name"`
	// Dir is a path that must exist for the entry to run — the bench's
	// command directory. On a base commit that predates the bench, the
	// runner skips the entry instead of failing.
	Dir string `json:"dir"`
	// Cmd is the bench invocation. It is whitespace-split (no shell); the
	// literal {out} is replaced by the report path.
	Cmd string `json:"cmd"`
	// Out is the canonical report name, e.g. "BENCH_shardburst.json";
	// role suffixes splice in before the extension (BENCH_shardburst.head.json).
	Out string `json:"out"`
	// Title heads the entry's comparison table in the step summary.
	Title string `json:"title"`
	// Metrics are the compared paths, in ParseMetricSpec form
	// ("path:higher|lower[:trace]").
	Metrics []string `json:"metrics"`
	// Threshold overrides the manifest default when > 0.
	Threshold float64 `json:"threshold,omitempty"`
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("bench: manifest %s: %w", path, err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("bench: manifest %s: %w", path, err)
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	if m.Threshold <= 0 {
		return fmt.Errorf("threshold must be > 0")
	}
	if len(m.Entries) == 0 {
		return fmt.Errorf("no entries")
	}
	names := map[string]bool{}
	outs := map[string]bool{}
	for i := range m.Entries {
		e := &m.Entries[i]
		switch {
		case e.Name == "":
			return fmt.Errorf("entry %d: no name", i)
		case names[e.Name]:
			return fmt.Errorf("entry %q: duplicate name", e.Name)
		case e.Dir == "":
			return fmt.Errorf("entry %q: no dir", e.Name)
		case e.Cmd == "":
			return fmt.Errorf("entry %q: no cmd", e.Name)
		case !strings.Contains(e.Cmd, "{out}"):
			return fmt.Errorf("entry %q: cmd has no {out} placeholder", e.Name)
		case !strings.HasSuffix(e.Out, ".json"):
			return fmt.Errorf("entry %q: out %q must end in .json", e.Name, e.Out)
		case outs[e.Out]:
			return fmt.Errorf("entry %q: duplicate out %q", e.Name, e.Out)
		case len(e.Metrics) == 0:
			return fmt.Errorf("entry %q: no metrics", e.Name)
		}
		names[e.Name] = true
		outs[e.Out] = true
		if _, err := e.MetricSpecs(); err != nil {
			return fmt.Errorf("entry %q: %w", e.Name, err)
		}
	}
	return nil
}

// MetricSpecs parses the entry's metric strings.
func (e *ManifestEntry) MetricSpecs() ([]MetricSpec, error) {
	specs := make([]MetricSpec, 0, len(e.Metrics))
	for _, s := range e.Metrics {
		spec, err := ParseMetricSpec(s)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// OutFile returns the report name for a role suffix: OutFile(".head") on
// out "BENCH_x.json" is "BENCH_x.head.json"; an empty suffix returns the
// canonical trajectory name.
func (e *ManifestEntry) OutFile(suffix string) string {
	return strings.TrimSuffix(e.Out, ".json") + suffix + ".json"
}

// Command renders the entry's argv for a given report path. Cmd is split on
// whitespace — manifest commands take simple arguments, not shell syntax.
func (e *ManifestEntry) Command(outPath string) []string {
	fields := strings.Fields(e.Cmd)
	argv := make([]string, len(fields))
	for i, f := range fields {
		argv[i] = strings.ReplaceAll(f, "{out}", outPath)
	}
	return argv
}

// EntryThreshold resolves an entry's comparison threshold against the
// manifest default.
func (m *Manifest) EntryThreshold(e *ManifestEntry) float64 {
	if e.Threshold > 0 {
		return e.Threshold
	}
	return m.Threshold
}
