package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteTable1 renders the burden rows in the layout of the paper's Table 1,
// adding the paper's own numbers and the fit diagnostics for comparison.
func WriteTable1(w io.Writer, rows []BurdenResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1. Characterizing scheduler burden")
	fmt.Fprintln(tw, "scheduler\td (us)\tpaper d (us)\td intercept (us)\teff. P\tR2\tbreak-even (us)")
	for _, r := range rows {
		paper := "-"
		if r.PaperBurdenUs > 0 {
			paper = fmt.Sprintf("%.2f", r.PaperBurdenUs)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%.2f\t%.1f\t%.3f\t%.2f\n",
			r.Scheduler, r.BurdenUs(), paper, r.Fit.DIntercept*1e6, r.Fit.EffectiveP, r.Fit.R2, r.Fit.BreakEven()*1e6)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Headline ratios reported in the paper's abstract: fine-grain vs
	// OpenMP static and vs Cilk.
	byName := make(map[string]BurdenResult, len(rows))
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	fg, okFG := byName["fine-grain-tree"]
	om, okOM := byName["openmp-static"]
	ck, okCK := byName["cilk"]
	if okFG && okOM && fg.Fit.D > 0 {
		fmt.Fprintf(w, "\nfine-grain vs OpenMP static: %.0f%% lower burden (fitted d), %.0f%% lower (intercept)  [paper: 43%% lower]\n",
			100*(1-fg.Fit.D/om.Fit.D), 100*(1-safeRatio(fg.Fit.DIntercept, om.Fit.DIntercept)))
	}
	if okFG && okCK && fg.Fit.D > 0 {
		fmt.Fprintf(w, "fine-grain vs Cilk: %.1fx lower burden (fitted d), %.1fx lower (intercept)  [paper: 12.1x lower]\n",
			ck.Fit.D/fg.Fit.D, safeRatio(ck.Fit.DIntercept, fg.Fit.DIntercept))
	}
	return nil
}

// safeRatio returns a/b, or 0 when b is zero.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteSweep renders the raw granularity sweep behind one Table 1 row.
func WriteSweep(w io.Writer, r BurdenResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sweep for %s (P=%d)\n", r.Scheduler, r.Workers)
	fmt.Fprintln(tw, "iterations\tseq (us)\tpar (us)\tspeedup\tmodel speedup")
	for _, p := range r.Sweep {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.N, p.SeqNs/1e3, p.ParNs/1e3, p.Speedup, r.Fit.Model(p.SeqNs*1e-9))
	}
	return tw.Flush()
}

// WriteMPDATA renders both panels of Figure 2 as aligned series.
func WriteMPDATA(w io.Writer, res MPDATAResult) error {
	fmt.Fprintf(w, "Figure 2. MPDATA (grid: %d points, %d edges, %d steps; sequential %.3fs)\n",
		res.GridPoints, res.GridEdges, res.Steps, res.SequentialSeconds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "threads"
	for _, s := range res.Series {
		header += "\t" + s.Scheduler
	}
	if len(res.Ratio) > 0 {
		header += "\tfine-grain / openmp"
	}
	fmt.Fprintln(tw, header)
	nPoints := 0
	if len(res.Series) > 0 {
		nPoints = len(res.Series[0].Points)
	}
	for i := 0; i < nPoints; i++ {
		line := fmt.Sprintf("%d", res.Series[0].Points[i].Threads)
		for _, s := range res.Series {
			if i < len(s.Points) {
				line += fmt.Sprintf("\t%.2f", s.Points[i].Speedup)
			} else {
				line += "\t-"
			}
		}
		if i < len(res.Ratio) {
			line += fmt.Sprintf("\t%.2f", res.Ratio[i].Speedup)
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if n := len(res.Ratio); n > 0 {
		last := res.Ratio[n-1]
		fmt.Fprintf(w, "\nfine-grain over OpenMP at %d threads: %+.0f%% (paper: up to +22%% at 48 threads)\n",
			last.Threads, 100*(last.Speedup-1))
	}
	return nil
}

// WriteLinreg renders one panel of Figure 3.
func WriteLinreg(w io.Writer, res LinregResult, panel string) error {
	fmt.Fprintf(w, "Figure 3%s. Linear regression (%d points, sequential %.3fs, fit y=%.3fx%+.2f R2=%.3f)\n",
		panel, res.Points, res.SequentialSeconds, res.Fit.Slope, res.Fit.Intercept, res.Fit.R2)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "threads\t%s\t%s\tratio\n", res.Baseline.Scheduler, res.FineGrain.Scheduler)
	for i := range res.Baseline.Points {
		ratio := "-"
		if i < len(res.FineGrain.Points) && res.Baseline.Points[i].Speedup > 0 {
			ratio = fmt.Sprintf("%.2f", res.FineGrain.Points[i].Speedup/res.Baseline.Points[i].Speedup)
		}
		fgSpeed := "-"
		if i < len(res.FineGrain.Points) {
			fgSpeed = fmt.Sprintf("%.2f", res.FineGrain.Points[i].Speedup)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%s\t%s\n",
			res.Baseline.Points[i].Threads, res.Baseline.Points[i].Speedup, fgSpeed, ratio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbest fine-grain speedup over %s: %.2fx (paper best case: 2.8x)\n",
		res.Baseline.Scheduler, res.BestSpeedupOverBaseline)
	return nil
}

// WriteMultitenant renders the multi-tenant throughput scenario: aggregate
// job and iteration throughput of many concurrent tenants sharing one worker
// team, with the scheduler's latency percentiles.
func WriteMultitenant(w io.Writer, res MultitenantResult) error {
	fmt.Fprintf(w, "Multi-tenant job throughput (%d tenants x %d-iteration %q jobs on %d shared workers)\n",
		res.Tenants, res.Iterations, res.Workload, res.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "jobs\twall (s)\tjobs/s\titer/s\tlat p50\tlat p95\tlat p99")
	fmt.Fprintf(tw, "%d\t%.3f\t%.1f\t%.3g\t%s\t%s\t%s\n",
		res.JobsTotal, res.WallSeconds, res.JobsPerSecond, res.IterationsPerSecond,
		res.Stats.LatencyP50, res.Stats.LatencyP95, res.Stats.LatencyP99)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncompleted %d jobs (%d canceled), %d iterations total, no full barrier paid by any job\n",
		res.Stats.Completed, res.Stats.Canceled, res.Stats.IterationsDone)
	return nil
}

// Markdown helpers used by EXPERIMENTS.md generation in the cmd tools.

// Table1Markdown renders the burden rows as a GitHub-flavoured markdown table.
func Table1Markdown(rows []BurdenResult) string {
	var b strings.Builder
	b.WriteString("| scheduler | measured d (µs) | paper d (µs) |\n|---|---|---|\n")
	for _, r := range rows {
		paper := "—"
		if r.PaperBurdenUs > 0 {
			paper = fmt.Sprintf("%.2f", r.PaperBurdenUs)
		}
		fmt.Fprintf(&b, "| %s | %.2f | %s |\n", r.Scheduler, r.BurdenUs(), paper)
	}
	return b.String()
}
