package bench

// kernels.go promotes the seed's numeric kernels — the workloads the paper's
// fine-grain loop scheduling was designed for — to first-class served job
// workloads, so cmd/loopd and the trace-driven load generator exercise real
// memory-bound and reduction-heavy loops, not just calibrated spins:
//
//   - mpdata:    the MPDATA donor-cell edge loop (Figure 2): an upwind flux
//                computation per edge of the paper-sized unstructured grid —
//                two indirect loads and a branch per iteration;
//   - grid:      the MPDATA point loop: a CSR divergence gather over each
//                point's incident edges — irregular, variable-degree,
//                memory-bound;
//   - linreg:    the Phoenix++ linear_regression map phase (Figure 3): a
//                streaming 6-statistic reduction over byte-valued points;
//   - mapreduce: a Phoenix++ array-container histogram: byte inputs binned
//                into a dense key space with a sum combiner.
//
// Each workload wraps the real kernel packages (internal/mpdata,
// internal/grid, internal/linreg, internal/phoenix) over shared immutable
// state built once on first request. The request's N indexes the kernel's
// iteration space modulo its natural size, so any n works and repeated jobs
// re-walk the same arrays (a served kernel is cache-warm, like a resident
// model). All four are commutative scalar reductions, so they exercise the
// elastic arrival-order fold path and /run reports a meaningful result.

import (
	"fmt"
	"sync"

	"loopsched/internal/grid"
	"loopsched/internal/jobs"
	"loopsched/internal/linreg"
	"loopsched/internal/mpdata"
	"loopsched/internal/phoenix"
	"loopsched/internal/sched"
)

// kernelState is the shared immutable input of the kernel workloads, built
// once on first use (loopd startup and spin-only traffic never pay for it).
type kernelState struct {
	g   *grid.Grid
	psi []float64 // advected field after a few developed MPDATA steps
	vn  []float64 // prescribed edge velocities (uniform wind · edge normal)

	pts  linreg.Dataset
	ljob phoenix.ArrayJob

	histData []byte
	hist     phoenix.ArrayJob
}

const (
	// linregPoints is the served dataset size (~512 KiB of 2-byte points):
	// large enough to stream through cache levels, small enough for CI.
	linregPoints = 1 << 18
	// histBytes is the histogram input size; histKeys its dense key space.
	histBytes = 1 << 20
	histKeys  = 64
)

var (
	kernelOnce sync.Once
	kernels    kernelState
)

func kernelInput() *kernelState {
	kernelOnce.Do(func() {
		g, err := grid.NewPaperGrid()
		if err != nil {
			panic(fmt.Sprintf("bench: paper grid: %v", err))
		}
		kernels.g = g
		// A uniform wind dotted with each edge's scaled normal gives the
		// donor-cell pass deterministic, physically shaped velocities from
		// exported geometry alone.
		kernels.vn = make([]float64, g.NumEdges())
		for e := range kernels.vn {
			kernels.vn[e] = 0.8*g.EdgeNX[e] + 0.6*g.EdgeNY[e]
		}
		// Develop the field with a few real solver steps so the served edge
		// loop runs over MPDATA state, not the synthetic initial condition.
		solver, err := mpdata.New(g, mpdata.Config{})
		if err != nil {
			panic(fmt.Sprintf("bench: mpdata solver: %v", err))
		}
		seq := sched.NewSequential()
		solver.Run(seq, 4)
		seq.Close()
		kernels.psi = append([]float64(nil), solver.Psi...)

		kernels.pts = linreg.Generate(linregPoints)
		kernels.ljob = kernels.pts.Job()

		kernels.histData = make([]byte, histBytes)
		state := uint64(0x243f6a8885a308d3)
		for i := range kernels.histData {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			kernels.histData[i] = byte(state)
		}
		data := kernels.histData
		kernels.hist = phoenix.ArrayJob{
			NumKeys: histKeys,
			Map: func(w, begin, end int, emit []float64) {
				for i := begin; i < end; i++ {
					emit[int(data[i])&(histKeys-1)]++
				}
			},
		}
	})
	return &kernels
}

// mapWrapped applies an ArrayJob's map function over the virtual range
// [lo, hi) folded modulo size onto the job's natural input, chunk by
// contiguous chunk.
func mapWrapped(job phoenix.ArrayJob, w, lo, hi, size int, emit []float64) {
	for lo < hi {
		b := lo % size
		e := b + (hi - lo)
		if e > size {
			e = size
		}
		job.Map(w, b, e, emit)
		lo += e - b
	}
}

func init() {
	// mpdata: the donor-cell upwind edge loop of the MPDATA pass, over the
	// paper-sized grid (16399 edges) and a developed field. The result is
	// the total transported mass rate Σ|flux| over the requested range.
	jobWorkloads["mpdata"] = func(p JobParams) jobs.Request {
		ks := kernelInput()
		g, psi, vn := ks.g, ks.psi, ks.vn
		edges := g.NumEdges()
		return jobs.Request{
			N:           p.N,
			Label:       "mpdata",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					e := i % edges
					v := vn[e]
					var flux float64
					if v >= 0 {
						flux = v * psi[g.EdgeFrom[e]]
					} else {
						flux = v * psi[g.EdgeTo[e]]
					}
					if flux < 0 {
						flux = -flux
					}
					acc += flux
				}
				return acc
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	}

	// grid: the MPDATA point loop — a CSR gather over each point's incident
	// edges (variable degree, irregular indices). The result is the sum of
	// squared flux divergences.
	jobWorkloads["grid"] = func(p JobParams) jobs.Request {
		ks := kernelInput()
		g, psi, vn := ks.g, ks.psi, ks.vn
		points := g.NumPoints
		return jobs.Request{
			N:           p.N,
			Label:       "grid",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					pt := i % points
					div := 0.0
					for _, ei := range g.IncidentEdges[g.IncidentStart[pt]:g.IncidentStart[pt+1]] {
						v := vn[ei]
						var flux float64
						if v >= 0 {
							flux = v * psi[g.EdgeFrom[ei]]
						} else {
							flux = v * psi[g.EdgeTo[ei]]
						}
						if int(g.EdgeFrom[ei]) == pt {
							div += flux
						} else {
							div -= flux
						}
					}
					acc += div * div / g.Area[pt]
				}
				return acc
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	}

	// linreg: the Phoenix++ linear_regression map phase — each chunk folds
	// its points into the six regression statistics through the real
	// ArrayJob container, reduced to the sum of all statistics.
	jobWorkloads["linreg"] = func(p JobParams) jobs.Request {
		ks := kernelInput()
		job := ks.ljob
		size := len(ks.pts.Points)
		return jobs.Request{
			N:           p.N,
			Label:       "linreg",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				emit := make([]float64, job.NumKeys)
				mapWrapped(job, w, lo, hi, size, emit)
				for _, v := range emit {
					acc += v
				}
				return acc
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	}

	// mapreduce: a Phoenix++ array-container histogram over pseudo-random
	// bytes, reduced to the bucket-weighted count Σ_k (k+1)·hist[k] — a
	// closed iteration-determined result (each input byte contributes its
	// bucket index plus one).
	jobWorkloads["mapreduce"] = func(p JobParams) jobs.Request {
		ks := kernelInput()
		job := ks.hist
		size := len(ks.histData)
		return jobs.Request{
			N:           p.N,
			Label:       "mapreduce",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				emit := make([]float64, job.NumKeys)
				mapWrapped(job, w, lo, hi, size, emit)
				for k, v := range emit {
					acc += float64(k+1) * v
				}
				return acc
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	}
}
