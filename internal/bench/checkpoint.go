// checkpoint.go is the checkpoint/resume overhead scenario: the same job
// fleet is run three times — on a plain scheduler, on a scheduler writing
// durable checkpoints to a file-backed WAL, and on the durable scheduler
// with every job suspended and resumed once mid-flight — so the cost of the
// durability layer (the acceptance bar: <= 5% makespan overhead when nobody
// suspends) and of a checkpointed pause itself are both visible as ratios.
// A fourth measurement times raw WAL appends, the per-snapshot write cost.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/trace"
)

// CheckpointOptions configures the checkpoint/resume overhead scenario.
type CheckpointOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS minus two, floored
	// at 2 and capped at 16 (the suspend controllers need CPU of their own).
	Workers int
	// Jobs is the fleet size per phase; <= 0 selects 64.
	Jobs int
	// N is the per-job iteration count; <= 0 selects 4096.
	N int
	// IterNs is the target per-iteration cost; <= 0 selects 150.
	IterNs float64
	// Grain is the self-scheduling chunk size; <= 0 keeps the heuristic.
	Grain int
	// Reps repeats every phase; the reported makespans are medians (a single
	// makespan on a shared machine is dominated by scheduler noise). <= 0
	// selects 3.
	Reps int
	// PutRecords is how many raw WAL appends the write-cost measurement
	// times; <= 0 selects 4096.
	PutRecords int
}

func (o *CheckpointOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) - 2
		if o.Workers > 16 {
			o.Workers = 16
		}
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.Jobs <= 0 {
		o.Jobs = 64
	}
	if o.N <= 0 {
		o.N = 4096
	}
	if o.IterNs <= 0 {
		o.IterNs = 150
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.PutRecords <= 0 {
		o.PutRecords = 4096
	}
}

// CheckpointPhaseResult is one phase's median outcome.
type CheckpointPhaseResult struct {
	MakespanSeconds  float64 `json:"makespan_seconds"`
	JobsPerSecond    float64 `json:"jobs_per_second"`
	CheckpointWrites int64   `json:"checkpoint_writes"`
	Resumes          int64   `json:"resumes"`
}

// CheckpointReport is the scenario outcome; the ratios are the metrics
// tracked across PRs (see internal/bench/manifest.json).
type CheckpointReport struct {
	Workers int `json:"workers"`
	Jobs    int `json:"jobs"`
	N       int `json:"n"`
	// Baseline runs without a checkpoint store; Durable attaches a
	// file-backed store (every submission writes its snapshot, completions
	// delete it); SuspendResume additionally parks and re-admits every job
	// once mid-flight.
	Baseline      CheckpointPhaseResult `json:"baseline"`
	Durable       CheckpointPhaseResult `json:"durable"`
	SuspendResume CheckpointPhaseResult `json:"suspend_resume"`
	// StoreOverheadRatio is durable makespan over baseline makespan — both
	// best-of-reps, see medianPhase — and the acceptance criterion asks for
	// <= 1.05 (checkpointing an uninterrupted fleet costs at most 5%).
	StoreOverheadRatio float64 `json:"store_overhead_ratio"`
	// SuspendResumeOverheadRatio is the suspend/resume makespan over
	// baseline (best-of-reps): what one checkpointed pause per job costs
	// end to end.
	SuspendResumeOverheadRatio float64 `json:"suspend_resume_overhead_ratio"`
	// CheckpointWriteNs is the raw WAL append cost per snapshot.
	CheckpointWriteNs float64 `json:"checkpoint_write_ns"`
}

// runCheckpointPhase runs one fleet to completion and reports its makespan.
// With a store, every request carries a durable checkpoint template; with
// churn, a controller suspends each job once and resumes it as soon as it
// parks.
func runCheckpointPhase(opt CheckpointOptions, store jobs.CheckpointStore, churn bool) (CheckpointPhaseResult, error) {
	var tracer *trace.Tracer
	if store != nil {
		// Durable checkpoints need tracer-assigned job ids, exactly as in
		// the serving daemon (loopd forces tracing on with -checkpoint-dir).
		tracer = trace.NewTracer(0)
	}
	s := jobs.New(jobs.Config{
		Workers:      opt.Workers,
		LockOSThread: LockThreads,
		Tracer:       tracer,
		Checkpoints:  store,
	})
	defer s.Close()

	params := JobParams{N: opt.N, IterNs: opt.IterNs, Grain: opt.Grain}
	rawParams, err := json.Marshal(params)
	if err != nil {
		return CheckpointPhaseResult{}, err
	}

	start := time.Now()
	handles := make([]*jobs.Job, opt.Jobs)
	for i := range handles {
		req, err := NewJobRequest("spinsum", params)
		if err != nil {
			return CheckpointPhaseResult{}, err
		}
		if store != nil {
			req.Checkpoint = &jobs.Checkpoint{Workload: "spinsum", Params: rawParams}
		}
		j, err := s.Submit(req)
		if err != nil {
			return CheckpointPhaseResult{}, err
		}
		handles[i] = j
		if churn {
			// Suspend right on the heels of the submit, where it always
			// lands: the job is either still pending (parks instantly) or has
			// just started (parks at its first chunk-wave boundary) — it
			// cannot have drained all N iterations in the microseconds since
			// Submit. Suspending later would race the workers: on a wide
			// machine the fleet finishes faster than a churn loop can walk it.
			j.Suspend()
		}
	}
	if churn {
		// Resume the whole parked fleet. Resume spins briefly per job: a
		// suspend posted to a running job only parks it at the next wave
		// boundary, slightly after Suspend returned.
		for _, j := range handles {
			for !j.Resume() {
				select {
				case <-j.Done():
					goto next // finished before its park landed
				default:
					runtime.Gosched()
				}
			}
		next:
		}
	}
	want := float64(opt.N)
	for i, j := range handles {
		v, err := j.Wait()
		if err != nil {
			return CheckpointPhaseResult{}, fmt.Errorf("job %d: %w", i, err)
		}
		if v != want {
			return CheckpointPhaseResult{}, fmt.Errorf("job %d: reduction %v, want %v (chunk lost or doubled across a pause)", i, v, want)
		}
	}
	makespan := time.Since(start).Seconds()

	st := s.Stats()
	return CheckpointPhaseResult{
		MakespanSeconds:  makespan,
		JobsPerSecond:    float64(opt.Jobs) / makespan,
		CheckpointWrites: st.CheckpointWrites,
		Resumes:          st.ResumedTotal,
	}, nil
}

// medianPhase repeats a phase and returns the rep with the median makespan
// (the reported, representative figure) plus the minimum makespan across
// reps. The overhead ratios compare minima: on a shared machine scheduler
// noise is strictly additive, so best-of-reps is the closest observable to
// the true cost of each configuration, while a median-vs-median ratio of
// ~25ms fleets swings by more than the 5% band being asserted.
func medianPhase(opt CheckpointOptions, run func() (CheckpointPhaseResult, error)) (CheckpointPhaseResult, float64, error) {
	results := make([]CheckpointPhaseResult, 0, opt.Reps)
	for r := 0; r < opt.Reps; r++ {
		res, err := run()
		if err != nil {
			return CheckpointPhaseResult{}, 0, err
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].MakespanSeconds < results[j].MakespanSeconds
	})
	return results[len(results)/2], results[0].MakespanSeconds, nil
}

// RunCheckpoint runs the scenario: baseline, durable and suspend/resume
// fleets (medians over Reps), plus the raw WAL append cost.
func RunCheckpoint(opt CheckpointOptions) (CheckpointReport, error) {
	opt.normalize()
	rep := CheckpointReport{Workers: opt.Workers, Jobs: opt.Jobs, N: opt.N}

	var err error
	var baseBest, durBest, churnBest float64
	if rep.Baseline, baseBest, err = medianPhase(opt, func() (CheckpointPhaseResult, error) {
		return runCheckpointPhase(opt, nil, false)
	}); err != nil {
		return rep, fmt.Errorf("baseline phase: %w", err)
	}

	durablePhase := func(churn bool) (CheckpointPhaseResult, error) {
		dir, err := os.MkdirTemp("", "ckptbench")
		if err != nil {
			return CheckpointPhaseResult{}, err
		}
		defer os.RemoveAll(dir)
		store, err := jobs.OpenFileStore(dir)
		if err != nil {
			return CheckpointPhaseResult{}, err
		}
		defer store.Close()
		return runCheckpointPhase(opt, store, churn)
	}
	if rep.Durable, durBest, err = medianPhase(opt, func() (CheckpointPhaseResult, error) {
		return durablePhase(false)
	}); err != nil {
		return rep, fmt.Errorf("durable phase: %w", err)
	}
	if rep.SuspendResume, churnBest, err = medianPhase(opt, func() (CheckpointPhaseResult, error) {
		return durablePhase(true)
	}); err != nil {
		return rep, fmt.Errorf("suspend/resume phase: %w", err)
	}
	if baseBest > 0 {
		rep.StoreOverheadRatio = durBest / baseBest
		rep.SuspendResumeOverheadRatio = churnBest / baseBest
	}

	if rep.CheckpointWriteNs, err = checkpointWriteCost(opt); err != nil {
		return rep, fmt.Errorf("write-cost phase: %w", err)
	}
	return rep, nil
}

// checkpointWriteCost times raw WAL appends: one Put per distinct job id,
// the exact write a submission or a park performs.
func checkpointWriteCost(opt CheckpointOptions) (float64, error) {
	dir, err := os.MkdirTemp("", "ckptbench-wal")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	store, err := jobs.OpenFileStore(dir)
	if err != nil {
		return 0, err
	}
	defer store.Close()

	cp := jobs.Checkpoint{
		Workload: "spinsum",
		Params:   json.RawMessage(`{"N":4096,"IterNs":150}`),
		Tenant:   "bench", N: opt.N, Commutative: true,
	}
	start := time.Now()
	for i := 0; i < opt.PutRecords; i++ {
		cp.JobID = uint64(i + 1)
		cp.Cursor = i
		if err := store.Put(cp); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(opt.PutRecords), nil
}

// WriteCheckpointBench renders the report as a human-readable table.
func WriteCheckpointBench(w io.Writer, rep CheckpointReport) error {
	fmt.Fprintf(w, "Checkpoint/resume overhead scenario: %d workers, %d jobs x %d iterations\n",
		rep.Workers, rep.Jobs, rep.N)
	row := func(name string, r CheckpointPhaseResult) {
		fmt.Fprintf(w, "%-16s makespan %8.3fms  %7.0f jobs/s  %5d checkpoint writes  %4d resumes\n",
			name, r.MakespanSeconds*1e3, r.JobsPerSecond, r.CheckpointWrites, r.Resumes)
	}
	row("baseline", rep.Baseline)
	row("durable", rep.Durable)
	row("suspend+resume", rep.SuspendResume)
	fmt.Fprintf(w, "\nstore overhead: %.3fx baseline (acceptance <= 1.05); one pause per job: %.3fx\n",
		rep.StoreOverheadRatio, rep.SuspendResumeOverheadRatio)
	fmt.Fprintf(w, "raw WAL append: %.0f ns per snapshot\n", rep.CheckpointWriteNs)
	return nil
}

// WriteCheckpointBenchJSON writes the machine-readable artifact tracked by
// the bench manifest.
func WriteCheckpointBenchJSON(path string, rep CheckpointReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
