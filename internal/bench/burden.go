package bench

import (
	"fmt"
	"runtime"
	"time"

	"loopsched/internal/amdahl"
	"loopsched/internal/sched"
	"loopsched/internal/stats"
	"loopsched/internal/workload"
)

// BurdenOptions configures the Table 1 micro-benchmark. The sweep holds the
// loop's iteration count fixed (so the number of scheduling events per loop
// is constant) and varies the per-iteration work, spanning sequential loop
// durations from MinTotal to MaxTotal — "varying the amount of work in the
// parallel loop", as the paper puts it.
type BurdenOptions struct {
	// Workers is the worker count P used in the Amdahl model; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Iterations is the fixed iteration count of the swept loops; <= 0
	// selects 4096 (the order of the paper's MPDATA loops).
	Iterations int
	// MinTotal and MaxTotal bound the sequential duration of the swept
	// loops; zero values select 20 µs .. 20 ms.
	MinTotal, MaxTotal time.Duration
	// Points is the number of sweep points; <= 0 selects 14.
	Points int
	// Reps is the number of timed repetitions per point (the minimum is
	// kept); <= 0 selects 5.
	Reps int
	// InnerReps multiplies the number of loop launches per timed repetition
	// for very short loops so each measurement is at least ~200 µs of wall
	// clock; <= 0 derives it automatically.
	InnerReps int
}

func (o *BurdenOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Iterations <= 0 {
		o.Iterations = 4096
	}
	if o.MinTotal <= 0 {
		o.MinTotal = 20 * time.Microsecond
	}
	if o.MaxTotal <= 0 {
		o.MaxTotal = 20 * time.Millisecond
	}
	if o.Points <= 0 {
		o.Points = 14
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
}

// SweepPoint is one measurement of the granularity sweep.
type SweepPoint struct {
	// N is the iteration count of the loop.
	N int
	// IterNs is the calibrated per-iteration cost of this point's body, ns.
	IterNs float64
	// SeqNs is the measured sequential duration of the loop body, ns.
	SeqNs float64
	// ParNs is the measured parallel duration under the scheduler, ns.
	ParNs float64
	// Speedup is SeqNs / ParNs.
	Speedup float64
}

// BurdenResult is one row of Table 1 plus its underlying sweep.
type BurdenResult struct {
	Scheduler string
	Workers   int
	Fit       amdahl.Fit
	Sweep     []SweepPoint
	// PaperBurdenUs is the paper's measurement for this row (0 if the row
	// has no counterpart in the paper).
	PaperBurdenUs float64
}

// BurdenUs returns the estimated burden in microseconds.
func (r BurdenResult) BurdenUs() float64 { return r.Fit.D * 1e6 }

// MeasureBurden runs the granularity sweep for one scheduler and fits the
// Amdahl burden model, reproducing one row of Table 1.
func MeasureBurden(name string, opt BurdenOptions) (BurdenResult, error) {
	opt.normalize()
	s, err := NewScheduler(name, opt.Workers)
	if err != nil {
		return BurdenResult{}, err
	}
	defer s.Close()

	sweep := workload.NewCostSweep(opt.Iterations, opt.MinTotal, opt.MaxTotal, opt.Points)
	res := BurdenResult{Scheduler: name, Workers: s.P(), PaperBurdenUs: PaperBurdens[name]}

	var fitPoints []amdahl.Point
	for _, work := range sweep.Works {
		pt := measurePoint(s, work, sweep.Iterations, opt)
		res.Sweep = append(res.Sweep, pt)
		fitPoints = append(fitPoints, amdahl.Point{T: pt.SeqNs * 1e-9, S: pt.Speedup})
	}
	fit, err := amdahl.FitBurden(fitPoints, s.P())
	if err != nil {
		return res, fmt.Errorf("bench: fitting burden for %s: %w", name, err)
	}
	res.Fit = fit
	return res, nil
}

// measurePoint times one sweep point: the sequential loop body and the same
// loop dispatched through the scheduler.
func measurePoint(s sched.Scheduler, work workload.Work, n int, opt BurdenOptions) SweepPoint {
	inner := opt.InnerReps
	if inner <= 0 {
		// Aim for >= ~1 ms of measured work per repetition so that the very
		// fine-grain points (tens of µs) are not dominated by timer and
		// run-to-run noise — their residuals feed straight into the burden
		// estimate.
		target := time.Millisecond
		est := work.SequentialNs(n)
		inner = int(float64(target.Nanoseconds())/est) + 1
		if inner > 5000 {
			inner = 5000
		}
	}

	body := func(w, begin, end int) {
		workload.Consume(work.Run(begin, end))
	}

	seq := stats.Timer(opt.Reps, true, func() {
		for r := 0; r < inner; r++ {
			workload.Sink += work.Run(0, n)
		}
	})
	par := stats.Timer(opt.Reps, true, func() {
		for r := 0; r < inner; r++ {
			s.For(n, body)
		}
	})

	seqNs := float64(stats.MinDuration(seq).Nanoseconds()) / float64(inner)
	parNs := float64(stats.MinDuration(par).Nanoseconds()) / float64(inner)
	if parNs <= 0 {
		parNs = 1
	}
	return SweepPoint{N: n, IterNs: work.NsPerIter, SeqNs: seqNs, ParNs: parNs, Speedup: seqNs / parNs}
}

// Table1 runs the burden micro-benchmark for every scheduler in the paper's
// Table 1 and returns the rows in the paper's order.
func Table1(opt BurdenOptions) ([]BurdenResult, error) {
	var rows []BurdenResult
	for _, name := range Table1Schedulers() {
		r, err := MeasureBurden(name, opt)
		if err != nil {
			return rows, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}
