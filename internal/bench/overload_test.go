package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestOverloadScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("overload scenario runs for over a second; skipped in -short")
	}
	rep, err := RunOverload(OverloadOptions{
		Workers: 2, Streams: 2, N: 512, Duration: 120 * time.Millisecond, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Completed <= 0 || rep.Overload.Completed <= 0 {
		t.Fatalf("phases served no work: baseline %+v overload %+v", rep.Baseline, rep.Overload)
	}
	if rep.Breaker.GoodJobsIsolated <= 0 || rep.Breaker.GoodJobsMixed <= 0 {
		t.Fatalf("breaker phases served no good-tenant work: %+v", rep.Breaker)
	}
	// The infeasible probes are the heart of the admitted-to-miss check:
	// with shedding armed and a warm run-time estimate, not one may be
	// admitted — regardless of machine speed.
	if rep.Overload.InfeasibleProbes <= 0 {
		t.Error("overload phase submitted no infeasible probes")
	}
	if rep.Overload.InfeasibleAdmits != 0 {
		t.Errorf("%d/%d infeasible probes were admitted, want 0",
			rep.Overload.InfeasibleAdmits, rep.Overload.InfeasibleProbes)
	}
	var buf bytes.Buffer
	if err := WriteOverload(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty report")
	}
	// The JSON artifact round-trips with the stable field names benchcmp
	// compares (goodput_ratio, the per-phase goodput, the breaker ratio).
	path := filepath.Join(t.TempDir(), "BENCH_overload.json")
	if err := WriteOverloadJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"baseline", "overload", "breaker", "goodput_ratio"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("artifact missing %q:\n%s", key, data)
		}
	}
}

func TestOverloadAcceptance(t *testing.T) {
	// The acceptance criteria: under 2x offered load with shedding armed,
	// (a) goodput stays >= 0.9x the single-capacity baseline, (b) no
	// submission blocks meaningfully past MaxWait, (c) zero infeasible
	// jobs are admitted only to miss, and (d) a well-behaved tenant behind
	// an abusive tenant's open breaker keeps >= 0.9x its isolated p99.
	// Asserted only with OVERLOAD_STRICT=1 on a quiet multi-core machine
	// (tail latencies on a 1-2 core box measure OS scheduling, not the
	// admission policy); report-only otherwise.
	if os.Getenv("OVERLOAD_STRICT") == "" {
		t.Skip("set OVERLOAD_STRICT=1 to assert the goodput/bounded-wait/breaker-isolation criteria (needs a quiet multi-core machine)")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS = %d < 4: the overload regime needs headroom for the load generators", runtime.GOMAXPROCS(0))
	}
	opt := OverloadOptions{Duration: time.Second, Reps: 5}
	rep, err := RunOverload(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("goodput %.0f -> %.0f jobs/s (ratio %.2f); overload shed %.1f%%, max submit wait %.2fms; breaker p99 %.3fms iso vs %.3fms mixed (ratio %.2f), abusive shed %d",
		rep.Baseline.GoodputJobsPerSecond, rep.Overload.GoodputJobsPerSecond, rep.GoodputRatio,
		rep.Overload.ShedFraction*100, rep.Overload.MaxSubmitWaitSeconds*1e3,
		rep.Breaker.IsolatedP99Seconds*1e3, rep.Breaker.MixedP99Seconds*1e3,
		rep.Breaker.GoodP99Ratio, rep.Breaker.AbusiveShed)
	if rep.GoodputRatio < 0.9 {
		t.Errorf("goodput at 2x offered load is %.2fx baseline, want >= 0.9x", rep.GoodputRatio)
	}
	// MaxWait plus generous scheduler jitter: the bound is about not
	// parking handlers for seconds, not about microsecond precision.
	maxWait := time.Duration(rep.Overload.MaxSubmitWaitSeconds * float64(time.Second))
	if limit := time.Duration(rep.MaxWaitSeconds*float64(time.Second)) + 100*time.Millisecond; maxWait > limit {
		t.Errorf("a Submit blocked %v, want <= MaxWait + jitter (%v)", maxWait, limit)
	}
	if rep.Overload.InfeasibleAdmits != 0 {
		t.Errorf("%d infeasible jobs admitted only to miss, want 0", rep.Overload.InfeasibleAdmits)
	}
	if !rep.Breaker.BreakerOpened {
		t.Error("the abusive tenant's breaker never opened")
	}
	if rep.Breaker.GoodP99Ratio < 0.9 {
		t.Errorf("well-behaved tenant kept only %.2fx of its isolated p99 behind the open breaker, want >= 0.9x",
			rep.Breaker.GoodP99Ratio)
	}
}
