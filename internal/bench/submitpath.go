package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/stats"
)

// SubmitPathOptions configures the submit-path micro-benchmark: one
// submitter drives minimal jobs (N = 1, one worker) through the full
// Sharded -> fair queue -> dispatch -> worker spine, one at a time, so the
// measured quantities are pure runtime overhead — the cost of handing one
// job to one idle worker — rather than loop-body throughput.
type SubmitPathOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS capped at 8 (the
	// handoff path does not get faster with more idle workers).
	Workers int
	// Shards is the sharded configuration; <= 0 selects 1 (the submit path
	// still routes through Sharded, so the router cost is included).
	Shards int
	// Jobs is the number of measured submissions; <= 0 selects 20000.
	Jobs int
	// Warmup is the number of unmeasured priming submissions (pool warmup,
	// freelist priming); <= 0 selects 2000.
	Warmup int
	// Batch is the SubmitBatch size of the batched phase; <= 0 selects 64.
	// The batched phase is skipped when Jobs < Batch.
	Batch int
	// N is the per-job iteration count; <= 0 selects 1 (the pure-handoff
	// regime: the body is a timestamp store, nothing else).
	N int
}

func (o *SubmitPathOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = 20000
	}
	if o.Warmup <= 0 {
		o.Warmup = 2000
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.N <= 0 {
		o.N = 1
	}
}

// SubmitPathResult is the machine-readable outcome, serialised to
// BENCH_submitpath.json. NsPerSubmit is the latency of the Submit call
// itself; the dispatch percentiles measure submission to first body
// execution (the handoff latency through the queue, the dispatcher and the
// worker wake); AllocsPerSubmit is the heap-allocation count of one whole
// submit -> dispatch -> run -> complete -> wait cycle, averaged over the
// measured window (the refactor target is 0).
type SubmitPathResult struct {
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	Jobs    int `json:"jobs"`

	NsPerSubmit     float64 `json:"ns_per_submit"`
	AllocsPerSubmit float64 `json:"allocs_per_submit"`

	DispatchP50Ns float64 `json:"dispatch_p50_ns"`
	DispatchP95Ns float64 `json:"dispatch_p95_ns"`
	DispatchP99Ns float64 `json:"dispatch_p99_ns"`

	// Batched intake: the amortized per-job cost of SubmitBatch admitting
	// Batch jobs under one routing decision and one queue-lock acquisition.
	// Zero when the batched phase was skipped.
	BatchSize            int     `json:"batch_size"`
	BatchNsPerSubmit     float64 `json:"batch_ns_per_submit"`
	BatchAllocsPerSubmit float64 `json:"batch_allocs_per_submit"`

	WallSeconds float64 `json:"wall_seconds"`
}

// RunSubmitPath runs the submit-path micro-benchmark.
func RunSubmitPath(opt SubmitPathOptions) (SubmitPathResult, error) {
	opt.normalize()
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{
			Workers:      opt.Workers,
			LockOSThread: LockThreads,
			Name:         "submitpath",
		},
		Shards: opt.Shards,
	})
	defer p.Close()
	res := SubmitPathResult{
		Workers: p.P(),
		Shards:  p.Shards(),
		Jobs:    opt.Jobs,
	}

	// The body is a single timestamp store: bodyAt is written by the worker
	// strictly before the job completes and read strictly after Wait, so the
	// plain (non-atomic) variable is properly ordered. One job is in flight
	// at a time.
	var bodyAt time.Time
	req := jobs.Request{
		N:          opt.N,
		MaxWorkers: 1,
		Grain:      opt.N,
		Label:      "submitpath",
		Body: func(w, low, high int) {
			bodyAt = time.Now()
		},
	}

	for i := 0; i < opt.Warmup; i++ {
		j, err := p.Submit(req)
		if err != nil {
			return res, err
		}
		if _, err := j.Wait(); err != nil {
			return res, err
		}
		j.Release()
	}

	dispatch := make([]float64, opt.Jobs)
	var ms0, ms1 runtime.MemStats
	start := time.Now()
	runtime.ReadMemStats(&ms0)
	var submitTotal time.Duration
	for i := 0; i < opt.Jobs; i++ {
		t0 := time.Now()
		j, err := p.Submit(req)
		if err != nil {
			return res, err
		}
		submitTotal += time.Since(t0)
		if _, err := j.Wait(); err != nil {
			return res, err
		}
		dispatch[i] = float64(bodyAt.Sub(t0))
		j.Release()
	}
	runtime.ReadMemStats(&ms1)
	res.WallSeconds = time.Since(start).Seconds()
	res.NsPerSubmit = float64(submitTotal.Nanoseconds()) / float64(opt.Jobs)
	res.AllocsPerSubmit = float64(ms1.Mallocs-ms0.Mallocs) / float64(opt.Jobs)
	sort.Float64s(dispatch)
	q := stats.Quantiles(dispatch, 0.5, 0.95, 0.99)
	res.DispatchP50Ns, res.DispatchP95Ns, res.DispatchP99Ns = q[0], q[1], q[2]

	if err := runSubmitBatchPhase(p, req, opt, &res); err != nil {
		return res, err
	}
	return res, nil
}

// runSubmitBatchPhase measures the amortized per-job cost of batched intake:
// SubmitBatch admits Batch jobs under one routing decision and one queue-lock
// acquisition, then the round waits for and releases every member. The body
// is a no-op — batch members run concurrently, so the timestamp probe of the
// single-submit phase would race; only admission cost and allocations are
// measured here.
func runSubmitBatchPhase(p *jobs.Sharded, req jobs.Request, opt SubmitPathOptions, res *SubmitPathResult) error {
	rounds := opt.Jobs / opt.Batch
	if rounds == 0 {
		return nil
	}
	req.Body = func(w, low, high int) {}
	reqs := make([]jobs.Request, opt.Batch)
	for i := range reqs {
		reqs[i] = req
	}
	out := make([]*jobs.Job, opt.Batch)

	round := func() error {
		t0 := time.Now()
		err := p.SubmitBatch(reqs, out)
		submit := time.Since(t0)
		if err != nil {
			return err
		}
		res.BatchNsPerSubmit += float64(submit.Nanoseconds())
		for _, j := range out {
			if _, err := j.Wait(); err != nil {
				return err
			}
			j.Release()
		}
		return nil
	}

	warmRounds := opt.Warmup / opt.Batch
	if warmRounds == 0 {
		warmRounds = 1
	}
	res.BatchNsPerSubmit = 0
	for i := 0; i < warmRounds; i++ {
		if err := round(); err != nil {
			return err
		}
	}

	res.BatchNsPerSubmit = 0
	res.BatchSize = opt.Batch
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < rounds; i++ {
		if err := round(); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&ms1)
	jobsRun := rounds * opt.Batch
	res.BatchNsPerSubmit /= float64(jobsRun)
	res.BatchAllocsPerSubmit = float64(ms1.Mallocs-ms0.Mallocs) / float64(jobsRun)
	return nil
}

// WriteSubmitPath renders the result as a table.
func WriteSubmitPath(w io.Writer, res SubmitPathResult) error {
	fmt.Fprintf(w, "Submit-path overhead: %d jobs (N=1, one worker each) through %d shard(s) on %d workers\n",
		res.Jobs, res.Shards, res.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	fmt.Fprintf(tw, "ns/submit\t%.0f\n", res.NsPerSubmit)
	fmt.Fprintf(tw, "allocs/submit\t%.2f\n", res.AllocsPerSubmit)
	fmt.Fprintf(tw, "dispatch p50\t%.1fµs\n", res.DispatchP50Ns/1e3)
	fmt.Fprintf(tw, "dispatch p95\t%.1fµs\n", res.DispatchP95Ns/1e3)
	fmt.Fprintf(tw, "dispatch p99\t%.1fµs\n", res.DispatchP99Ns/1e3)
	if res.BatchSize > 0 {
		fmt.Fprintf(tw, "batch(%d) ns/submit\t%.0f\n", res.BatchSize, res.BatchNsPerSubmit)
		fmt.Fprintf(tw, "batch(%d) allocs/submit\t%.2f\n", res.BatchSize, res.BatchAllocsPerSubmit)
	}
	return tw.Flush()
}

// WriteSubmitPathJSON writes the result to path as indented JSON (the
// BENCH_submitpath.json artifact).
func WriteSubmitPathJSON(path string, res SubmitPathResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
