package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/stats"
)

// BurstOptions configures the convoy scenario: one big job grabs the whole
// team, then a burst of small tenants arrives a moment later. With rigid
// sub-teams the burst convoys behind the big job's full run time; elastic
// sub-teams peel workers off the big job chunk-by-chunk and serve the burst
// immediately.
type BurstOptions struct {
	// Workers is the shared team size; <= 0 selects GOMAXPROCS (capped at 8
	// so the scenario stays meaningful on huge machines).
	Workers int
	// BigN is the iteration count of the convoy-inducing job; <= 0 selects
	// 8192.
	BigN int
	// BurstJobs is the number of small tenants arriving after the big job;
	// <= 0 selects 8.
	BurstJobs int
	// BurstN is the per-burst-job iteration count; <= 0 selects 256.
	BurstN int
	// IterNs is the target per-iteration cost of the big job; <= 0 selects
	// 2000 (a few-µs-per-chunk busy loop).
	IterNs float64
	// DisableElastic freezes sub-teams at admission (the pre-elastic
	// scheduler) for comparison.
	DisableElastic bool
}

func (o *BurstOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.BigN <= 0 {
		o.BigN = 8192
	}
	if o.BurstJobs <= 0 {
		o.BurstJobs = 8
	}
	if o.BurstN <= 0 {
		o.BurstN = 256
	}
	if o.IterNs <= 0 {
		o.IterNs = 2000
	}
}

// BurstResult is the outcome of one burst run.
type BurstResult struct {
	Elastic   bool
	Workers   int
	BurstJobs int
	// BigSeconds is the big job's end-to-end latency.
	BigSeconds float64
	// BurstP50/P95/Max are latency quantiles (submission to completion) over
	// the burst tenants — the convoy signature.
	BurstP50 float64
	BurstP95 float64
	BurstMax float64
	Grown    int64
	Peeled   int64
}

// RunBurst runs the convoy scenario once and reports the burst tenants'
// latency distribution. The burst jobs are verified reductions; a wrong
// answer fails the run.
func RunBurst(opt BurstOptions) (BurstResult, error) {
	opt.normalize()
	s := jobs.New(jobs.Config{
		Workers:        opt.Workers,
		DisableElastic: opt.DisableElastic,
		LockOSThread:   LockThreads,
		Name:           "burst",
	})
	defer s.Close()
	res := BurstResult{Elastic: !opt.DisableElastic, Workers: s.P(), BurstJobs: opt.BurstJobs}

	bigReq, err := NewJobRequest("spin", JobParams{N: opt.BigN, IterNs: opt.IterNs})
	if err != nil {
		return res, err
	}
	bigStart := time.Now()
	big, err := s.Submit(bigReq)
	if err != nil {
		return res, err
	}
	// Let the big job be admitted (and, rigidly, grab the whole team)
	// before the burst arrives.
	for big.State() == jobs.Pending {
		time.Sleep(50 * time.Microsecond)
	}

	// Each tenant's latency is captured by its own waiter goroutine the
	// moment its job completes; waiting sequentially would inflate every
	// sample to the slowest earlier tenant's completion time.
	burst := make([]*jobs.Job, opt.BurstJobs)
	lats := make([]float64, opt.BurstJobs)
	errs := make([]error, opt.BurstJobs)
	vals := make([]float64, opt.BurstJobs)
	var wg sync.WaitGroup
	for i := range burst {
		req, err := NewJobRequest("sum", JobParams{N: opt.BurstN})
		if err != nil {
			return res, err
		}
		start := time.Now()
		if burst[i], err = s.Submit(req); err != nil {
			return res, err
		}
		wg.Add(1)
		go func(i int, start time.Time) {
			defer wg.Done()
			vals[i], errs[i] = burst[i].Wait()
			lats[i] = time.Since(start).Seconds()
		}(i, start)
	}
	wg.Wait()
	want := float64(opt.BurstN) * float64(opt.BurstN-1) / 2
	for i := range burst {
		if errs[i] != nil {
			return res, errs[i]
		}
		if vals[i] != want {
			return res, fmt.Errorf("bench: burst job %d returned %v, want %v", i, vals[i], want)
		}
	}
	if _, err := big.Wait(); err != nil {
		return res, err
	}
	res.BigSeconds = time.Since(bigStart).Seconds()
	sort.Float64s(lats)
	q := stats.Quantiles(lats, 0.5, 0.95)
	res.BurstP50, res.BurstP95 = q[0], q[1]
	res.BurstMax = lats[len(lats)-1]
	st := s.Stats()
	res.Grown, res.Peeled = st.Grown, st.Peeled
	return res, nil
}

// RunBurstComparison runs the burst scenario with elastic sub-teams on and
// off, same options otherwise — the flag-gated convoy comparison.
func RunBurstComparison(opt BurstOptions) (elastic, rigid BurstResult, err error) {
	opt.DisableElastic = true
	if rigid, err = RunBurst(opt); err != nil {
		return
	}
	opt.DisableElastic = false
	elastic, err = RunBurst(opt)
	return
}

// WriteBurst renders the elastic-vs-rigid convoy comparison.
func WriteBurst(w io.Writer, elastic, rigid BurstResult) error {
	fmt.Fprintf(w, "Burst-after-big-job (convoy) scenario: %d burst tenants behind one big job on %d shared workers\n",
		elastic.BurstJobs, elastic.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sub-teams\tburst p50 (ms)\tburst p95 (ms)\tburst max (ms)\tbig job (ms)\tgrown\tpeeled")
	row := func(name string, r BurstResult) {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%d\t%d\n",
			name, r.BurstP50*1e3, r.BurstP95*1e3, r.BurstMax*1e3, r.BigSeconds*1e3, r.Grown, r.Peeled)
	}
	row("rigid", rigid)
	row("elastic", elastic)
	if err := tw.Flush(); err != nil {
		return err
	}
	if rigid.BurstP95 > 0 {
		fmt.Fprintf(w, "\nelastic burst p95 is %.1fx lower than rigid\n", rigid.BurstP95/elastic.BurstP95)
	}
	return nil
}

// SkewOptions configures the straggler scenario: a single tenant runs jobs
// whose per-iteration cost grows linearly across the iteration space. Static
// blocks leave k-1 sub-workers idle behind the top block; chunked
// self-scheduling balances the skew.
type SkewOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS capped at 8.
	Workers int
	// N is the per-job iteration count; <= 0 selects 8192.
	N int
	// Jobs is the number of back-to-back skewed jobs; <= 0 selects 5.
	Jobs int
	// IterNs is the base per-iteration cost; <= 0 selects 500.
	IterNs float64
	// Grain overrides the self-scheduling chunk size; <= 0 uses the
	// scheduler heuristic.
	Grain int
	// DisableElastic uses rigid static blocks for comparison.
	DisableElastic bool
}

func (o *SkewOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.N <= 0 {
		o.N = 8192
	}
	if o.Jobs <= 0 {
		o.Jobs = 5
	}
	if o.IterNs <= 0 {
		o.IterNs = 500
	}
}

// SkewResult is the outcome of one skew run.
type SkewResult struct {
	Elastic bool
	Workers int
	Jobs    int
	// MeanSeconds is the mean per-job run time (admission to completion).
	MeanSeconds float64
	// TotalSeconds is the end-to-end duration of all jobs.
	TotalSeconds float64
}

// RunSkew runs the straggler scenario once.
func RunSkew(opt SkewOptions) (SkewResult, error) {
	opt.normalize()
	s := jobs.New(jobs.Config{
		Workers:        opt.Workers,
		DisableElastic: opt.DisableElastic,
		LockOSThread:   LockThreads,
		Name:           "skew",
	})
	defer s.Close()
	res := SkewResult{Elastic: !opt.DisableElastic, Workers: s.P(), Jobs: opt.Jobs}
	start := time.Now()
	for i := 0; i < opt.Jobs; i++ {
		req, err := NewJobRequest("spinskew", JobParams{N: opt.N, IterNs: opt.IterNs, Grain: opt.Grain})
		if err != nil {
			return res, err
		}
		j, err := s.Submit(req)
		if err != nil {
			return res, err
		}
		if _, err := j.Wait(); err != nil {
			return res, err
		}
	}
	res.TotalSeconds = time.Since(start).Seconds()
	res.MeanSeconds = res.TotalSeconds / float64(opt.Jobs)
	return res, nil
}

// RunSkewComparison runs the skew scenario elastically and rigidly.
func RunSkewComparison(opt SkewOptions) (elastic, rigid SkewResult, err error) {
	opt.DisableElastic = true
	if rigid, err = RunSkew(opt); err != nil {
		return
	}
	opt.DisableElastic = false
	elastic, err = RunSkew(opt)
	return
}

// WriteSkew renders the elastic-vs-rigid straggler comparison.
func WriteSkew(w io.Writer, elastic, rigid SkewResult) error {
	fmt.Fprintf(w, "Skewed-body (straggler) scenario: %d jobs of linearly skewed work on %d workers\n",
		elastic.Jobs, elastic.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sub-teams\tmean job (ms)\ttotal (ms)")
	fmt.Fprintf(tw, "rigid\t%.2f\t%.2f\n", rigid.MeanSeconds*1e3, rigid.TotalSeconds*1e3)
	fmt.Fprintf(tw, "elastic\t%.2f\t%.2f\n", elastic.MeanSeconds*1e3, elastic.TotalSeconds*1e3)
	if err := tw.Flush(); err != nil {
		return err
	}
	if elastic.MeanSeconds > 0 {
		fmt.Fprintf(w, "\nelastic mean job time is %.2fx rigid's\n", elastic.MeanSeconds/rigid.MeanSeconds)
	}
	return nil
}
