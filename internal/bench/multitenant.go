package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/workload"
)

// calCache memoizes workload.Calibrate per target ns/iteration, so building
// a job request is allocation-only on the serving hot path: cmd/loopd builds
// one request per submitted job, and without the cache every HTTP job would
// re-run the calibration probe.
var calCache sync.Map // float64 target ns -> workload.Work

// calibrated returns the calibrated work for the target per-iteration cost,
// measuring at most once per distinct target.
func calibrated(targetNs float64) workload.Work {
	if w, ok := calCache.Load(targetNs); ok {
		return w.(workload.Work)
	}
	w := workload.Calibrate(targetNs)
	calCache.Store(targetNs, w)
	return w
}

// JobParams parameterizes a named job workload.
type JobParams struct {
	// N is the iteration count; <= 0 selects 4096 (the order of the paper's
	// MPDATA loops).
	N int
	// IterNs is the target per-iteration cost in nanoseconds for calibrated
	// workloads; <= 0 selects 100.
	IterNs float64
	// MaxWorkers caps the job's sub-team; <= 0 leaves it to the scheduler.
	MaxWorkers int
	// Grain is the minimum iterations per worker; <= 0 leaves the default.
	Grain int
}

func (p *JobParams) normalize() {
	if p.N <= 0 {
		p.N = 4096
	}
	if p.IterNs <= 0 {
		p.IterNs = 100
	}
}

// jobWorkloads maps workload names to request builders. These are the named
// workloads cmd/loopd serves and the multitenant scenario drives.
var jobWorkloads = map[string]func(p JobParams) jobs.Request{
	// spin: a calibrated busy-work loop, the body of the Table 1 burden
	// micro-benchmark.
	"spin": func(p JobParams) jobs.Request {
		work := calibrated(p.IterNs)
		return jobs.Request{
			N:     p.N,
			Label: "spin",
			Body: func(w, lo, hi int) {
				workload.Consume(work.Run(lo, hi))
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	},
	// spinskew: busy work whose per-iteration cost grows linearly across the
	// iteration space (the last iteration costs ~8x the first). Under static
	// block partitioning the top block dominates and k-1 sub-workers idle
	// behind one straggler; chunked self-scheduling balances it.
	"spinskew": func(p JobParams) jobs.Request {
		work := calibrated(p.IterNs)
		n := p.N
		return jobs.Request{
			N:     n,
			Label: "spinskew",
			Body: func(w, lo, hi int) {
				var acc uint64
				for i := lo; i < hi; i++ {
					for rep := 0; rep <= 7*i/n; rep++ {
						acc += work.Iter(i)
					}
				}
				workload.Consume(acc)
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	},
	// sum: the canonical reducing loop (sum of the iteration index), whose
	// result the caller can verify as n(n-1)/2. Integer-valued and
	// commutative, so the elastic arrival-order fold stays bit-exact.
	"sum": func(p JobParams) jobs.Request {
		return jobs.Request{
			N:           p.N,
			Label:       "sum",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				for i := lo; i < hi; i++ {
					acc += float64(i)
				}
				return acc
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	},
	// spinsum: calibrated busy work folded into a scalar reduction — the
	// shape of the map-reduce kernels of Figure 3, with a checkable result.
	"spinsum": func(p JobParams) jobs.Request {
		work := calibrated(p.IterNs)
		return jobs.Request{
			N:           p.N,
			Label:       "spinsum",
			Commutative: true,
			Combine:     func(a, b float64) float64 { return a + b },
			RBody: func(w, lo, hi int, acc float64) float64 {
				workload.Consume(work.Run(lo, hi))
				return acc + float64(hi-lo)
			},
			MaxWorkers: p.MaxWorkers,
			Grain:      p.Grain,
		}
	},
}

// JobWorkloads returns the registered job workload names in sorted order.
func JobWorkloads() []string {
	out := make([]string, 0, len(jobWorkloads))
	for name := range jobWorkloads {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ErrUnknownWorkload reports a job workload name with no registration;
// serving layers match it with errors.Is to answer with the known names.
var ErrUnknownWorkload = errors.New("unknown job workload")

// NewJobRequest builds the named job workload with the given parameters.
func NewJobRequest(name string, p JobParams) (jobs.Request, error) {
	f, ok := jobWorkloads[name]
	if !ok {
		return jobs.Request{}, fmt.Errorf("bench: %w %q (known: %v)", ErrUnknownWorkload, name, JobWorkloads())
	}
	p.normalize()
	return f(p), nil
}

// MultitenantOptions configures the multi-tenant throughput scenario: many
// concurrent tenants submit parallel-loop jobs to one shared worker team.
type MultitenantOptions struct {
	// Workers is the shared team size; <= 0 selects GOMAXPROCS.
	Workers int
	// Tenants is the number of concurrent submitters; <= 0 selects 8.
	Tenants int
	// JobsPerTenant is the number of jobs each tenant submits back to back
	// (submit, wait, repeat — the request/response shape of a serving
	// system); <= 0 selects 20.
	JobsPerTenant int
	// Workload is the job workload name; empty selects "spinsum".
	Workload string
	// Params parameterizes each job.
	Params JobParams
	// MaxWorkersPerJob caps every job's sub-team; <= 0 leaves no cap.
	MaxWorkersPerJob int
	// QueueDepth bounds the admission queue; <= 0 selects the default.
	QueueDepth int
	// DisableElastic freezes sub-teams at admission (rigid static blocks),
	// for comparing against the elastic scheduler.
	DisableElastic bool
}

func (o *MultitenantOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Tenants <= 0 {
		o.Tenants = 8
	}
	if o.JobsPerTenant <= 0 {
		o.JobsPerTenant = 20
	}
	if o.Workload == "" {
		o.Workload = "spinsum"
	}
	o.Params.normalize()
}

// MultitenantResult is the aggregate outcome of the scenario.
type MultitenantResult struct {
	Workers   int
	Tenants   int
	JobsTotal int
	Workload  string
	// Iterations is the per-job iteration count.
	Iterations int
	// WallSeconds is the end-to-end duration of the whole run.
	WallSeconds float64
	// JobsPerSecond is the aggregate job throughput.
	JobsPerSecond float64
	// IterationsPerSecond is the aggregate loop-iteration throughput.
	IterationsPerSecond float64
	// Stats is the scheduler's final snapshot (queue drained).
	Stats jobs.Stats
}

// RunMultitenant drives Tenants concurrent job streams through one shared
// jobs scheduler and reports aggregate throughput. Reducing workloads are
// verified against their closed-form results; a wrong answer fails the run.
func RunMultitenant(opt MultitenantOptions) (MultitenantResult, error) {
	opt.normalize()
	if _, err := NewJobRequest(opt.Workload, opt.Params); err != nil {
		return MultitenantResult{}, err
	}
	s := jobs.New(jobs.Config{
		Workers:          opt.Workers,
		MaxWorkersPerJob: opt.MaxWorkersPerJob,
		QueueDepth:       opt.QueueDepth,
		DisableElastic:   opt.DisableElastic,
		LockOSThread:     LockThreads,
		Name:             "multitenant",
	})
	res := MultitenantResult{
		Workers:    s.P(),
		Tenants:    opt.Tenants,
		JobsTotal:  opt.Tenants * opt.JobsPerTenant,
		Workload:   opt.Workload,
		Iterations: opt.Params.N,
	}

	var wg sync.WaitGroup
	errs := make(chan error, opt.Tenants)
	start := time.Now()
	for t := 0; t < opt.Tenants; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opt.JobsPerTenant; i++ {
				req, err := NewJobRequest(opt.Workload, opt.Params)
				if err != nil {
					errs <- err
					return
				}
				j, err := s.Submit(req)
				if err != nil {
					errs <- err
					return
				}
				v, err := j.Wait()
				if err != nil {
					errs <- err
					return
				}
				if want, ok := expectedResult(opt.Workload, opt.Params.N); ok && v != want {
					errs <- fmt.Errorf("bench: %s job returned %v, want %v", opt.Workload, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	close(errs)
	for err := range errs {
		s.Close()
		return res, err
	}
	res.Stats = s.Stats()
	s.Close()
	if res.WallSeconds > 0 {
		res.JobsPerSecond = float64(res.JobsTotal) / res.WallSeconds
		res.IterationsPerSecond = float64(res.JobsTotal) * float64(opt.Params.N) / res.WallSeconds
	}
	return res, nil
}

// expectedResult returns the closed-form result of a reducing workload, when
// it has one.
func expectedResult(workload string, n int) (float64, bool) {
	switch workload {
	case "sum":
		return float64(n) * float64(n-1) / 2, true
	case "spinsum":
		return float64(n), true
	default:
		return 0, false
	}
}
