package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareFailsOnSyntheticTwoTimesSlowdown(t *testing.T) {
	// The CI criterion: a synthetic 2x throughput slowdown between base and
	// head must be flagged as a regression at any sane threshold.
	base, err := FlattenJSON([]byte(`{"sharded": {"jobs_per_second": 1000}, "p95": 0.010}`))
	if err != nil {
		t.Fatal(err)
	}
	head, err := FlattenJSON([]byte(`{"sharded": {"jobs_per_second": 500}, "p95": 0.020}`))
	if err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{
		{Path: "sharded.jobs_per_second", HigherIsBetter: true},
		{Path: "p95", HigherIsBetter: false},
	}
	cs, regressed := CompareReports(base, head, specs, 0.20)
	if !regressed {
		t.Fatal("2x slowdown not flagged as a regression at a 20% threshold")
	}
	for _, c := range cs {
		if !c.Regression {
			t.Errorf("%s: delta %+.0f%% not marked as regression", c.Metric, c.Delta*100)
		}
	}

	// The inverse direction is an improvement, not a regression.
	if _, regressed := CompareReports(head, base, specs, 0.20); regressed {
		t.Error("2x speedup flagged as a regression")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string]float64{"jobs_per_second": 1000}
	head := map[string]float64{"jobs_per_second": 950} // 5% down, 10% allowed
	cs, regressed := CompareReports(base, head, []MetricSpec{{Path: "jobs_per_second", HigherIsBetter: true}}, 0.10)
	if regressed || cs[0].Regression {
		t.Errorf("5%% degradation flagged at a 10%% threshold: %+v", cs[0])
	}
}

func TestCompareMissingMetricIsReportedNotFailed(t *testing.T) {
	base := map[string]float64{}
	head := map[string]float64{"new_metric": 1}
	cs, regressed := CompareReports(base, head, []MetricSpec{{Path: "new_metric", HigherIsBetter: true}}, 0.10)
	if regressed {
		t.Error("missing base metric counted as a regression")
	}
	if !cs[0].Missing {
		t.Error("missing base metric not marked Missing")
	}
}

func TestCompareBenchFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	headPath := filepath.Join(dir, "head.json")
	if err := os.WriteFile(basePath, []byte(`{"throughput_speedup": 2.0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(headPath, []byte(`{"throughput_speedup": 0.9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{{Path: "throughput_speedup", HigherIsBetter: true}}
	cs, regressed, err := CompareBenchFiles(basePath, headPath, specs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("55% speedup loss not flagged at a 25% threshold")
	}
	var sb strings.Builder
	if err := WriteComparison(&sb, "test", cs, 0.25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "regression") || !strings.Contains(sb.String(), "| metric |") {
		t.Errorf("markdown table missing expected content:\n%s", sb.String())
	}
}

func TestCompareMissingBaseFileIsReportedNotFailed(t *testing.T) {
	// BENCH_fairshare.json is new on its first trajectory run: the base
	// commit has no such file at all. benchcmp must report every metric as
	// missing and exit cleanly instead of erroring (or worse) — same
	// contract as a single missing metric path.
	dir := t.TempDir()
	headPath := filepath.Join(dir, "head.json")
	if err := os.WriteFile(headPath, []byte(`{"high_prio_p95_speedup": 3.0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{
		{Path: "high_prio_p95_speedup", HigherIsBetter: true},
		{Path: "fair_share_error", HigherIsBetter: false},
	}
	for _, missingSide := range []string{"base", "head"} {
		base, head := filepath.Join(dir, "does-not-exist.json"), headPath
		if missingSide == "head" {
			base, head = headPath, filepath.Join(dir, "does-not-exist.json")
		}
		cs, regressed, err := CompareBenchFiles(base, head, specs, 0.25)
		if err != nil {
			t.Fatalf("missing %s file: err = %v, want graceful report", missingSide, err)
		}
		if regressed {
			t.Errorf("missing %s file counted as a regression", missingSide)
		}
		if len(cs) != len(specs) {
			t.Fatalf("missing %s file: %d comparisons, want %d", missingSide, len(cs), len(specs))
		}
		for _, c := range cs {
			if !c.Missing {
				t.Errorf("missing %s file: metric %s not marked Missing", missingSide, c.Metric)
			}
		}
		var sb strings.Builder
		if err := WriteComparison(&sb, "test", cs, 0.25); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "missing in base or head") || strings.Contains(sb.String(), "**regression**") {
			t.Errorf("missing-%s table wrong:\n%s", missingSide, sb.String())
		}
	}
	// A file that exists but is not JSON is still a hard error.
	badPath := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(badPath, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CompareBenchFiles(badPath, headPath, specs, 0.25); err == nil {
		t.Error("corrupt base file accepted")
	}
}

func TestParseMetricSpec(t *testing.T) {
	if s, err := ParseMetricSpec("a.b:higher"); err != nil || !s.HigherIsBetter || s.Path != "a.b" || s.TraceOnly {
		t.Errorf("a.b:higher -> %+v, %v", s, err)
	}
	if s, err := ParseMetricSpec("p95:lower"); err != nil || s.HigherIsBetter || s.TraceOnly {
		t.Errorf("p95:lower -> %+v, %v", s, err)
	}
	if s, err := ParseMetricSpec("overhead_fraction:lower:trace"); err != nil || s.HigherIsBetter || !s.TraceOnly {
		t.Errorf("overhead_fraction:lower:trace -> %+v, %v", s, err)
	}
	if s, err := ParseMetricSpec("on_jps:higher:trace"); err != nil || !s.HigherIsBetter || !s.TraceOnly {
		t.Errorf("on_jps:higher:trace -> %+v, %v", s, err)
	}
	for _, bad := range []string{"", "a.b", "a.b:sideways", ":higher", "a.b:higher:sideways", "a.b:trace"} {
		if _, err := ParseMetricSpec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCompareTraceOnlyRegressionsAreSeparate(t *testing.T) {
	// A tracing-only slowdown must not trip the baseline regression gate,
	// must be visible through TraceRegressed, and must get its own grouping
	// in the markdown summary.
	base := map[string]float64{"off_jps": 1000, "on_jps": 990}
	head := map[string]float64{"off_jps": 1000, "on_jps": 500}
	specs := []MetricSpec{
		{Path: "off_jps", HigherIsBetter: true},
		{Path: "on_jps", HigherIsBetter: true, TraceOnly: true},
	}
	cs, regressed := CompareReports(base, head, specs, 0.20)
	if regressed {
		t.Error("tracing-only slowdown tripped the baseline regression gate")
	}
	if !TraceRegressed(cs) {
		t.Error("tracing-only slowdown not reported by TraceRegressed")
	}
	if !cs[1].Regression || !cs[1].TraceOnly {
		t.Errorf("on_jps comparison not marked as trace-only regression: %+v", cs[1])
	}
	var sb strings.Builder
	if err := WriteComparison(&sb, "test", cs, 0.20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "**trace-only regression**") || !strings.Contains(out, "Tracing-only regressions") {
		t.Errorf("trace-only regression not rendered in its own grouping:\n%s", out)
	}

	// A baseline regression on the same specs still trips the baseline gate
	// and is rendered as a plain regression, not a trace-only one.
	head["off_jps"] = 400
	cs, regressed = CompareReports(base, head, specs, 0.20)
	if !regressed {
		t.Error("baseline slowdown not flagged")
	}
	sb.Reset()
	if err := WriteComparison(&sb, "test", cs, 0.20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| `off_jps` | 1000 | 400 | -60.0% | **regression**") {
		t.Errorf("baseline regression row missing:\n%s", sb.String())
	}

	// Missing trace-only metrics never count as regressions of either class.
	mcs := MissingComparisons(specs)
	if TraceRegressed(mcs) {
		t.Error("missing trace-only metric counted as a trace regression")
	}
	if !mcs[1].TraceOnly {
		t.Error("MissingComparisons dropped the TraceOnly mark")
	}
}

func TestCompareZeroBaseIsGuarded(t *testing.T) {
	// A zero base value makes the relative delta a division by zero; the
	// comparison must come back marked ZeroBase with a finite Delta and no
	// regression verdict, instead of leaking NaN/Inf into the step summary.
	base := map[string]float64{"p99": 0}
	head := map[string]float64{"p99": 0.5}
	specs := []MetricSpec{{Path: "p99", HigherIsBetter: false}}
	cs, regressed := CompareReports(base, head, specs, 0.25)
	if regressed || cs[0].Regression {
		t.Errorf("0 -> 0.5 classified as a regression despite the zero base: %+v", cs[0])
	}
	if !cs[0].ZeroBase {
		t.Errorf("ZeroBase not set on a 0 -> 0.5 comparison: %+v", cs[0])
	}
	if math.IsNaN(cs[0].Delta) || math.IsInf(cs[0].Delta, 0) {
		t.Errorf("Delta = %v, want finite on a zero base", cs[0].Delta)
	}

	// The step summary renders it as new/zero-base, never as a percentage.
	var sb strings.Builder
	if err := WriteComparison(&sb, "zero base", cs, 0.25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "new/zero-base metric") {
		t.Errorf("zero-base row not rendered as new/zero-base metric:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "Inf") || strings.Contains(sb.String(), "NaN") {
		t.Errorf("Inf/NaN leaked into the rendered table:\n%s", sb.String())
	}

	// Zero to zero is genuinely no change: not ZeroBase, delta 0, ok.
	if cs, regressed := CompareReports(base, map[string]float64{"p99": 0}, specs, 0.25); regressed || cs[0].Delta != 0 || cs[0].ZeroBase {
		t.Errorf("0 -> 0 flagged: %+v", cs[0])
	}
}
