// Package bench is the experiment harness: it constructs the schedulers
// under test by name, runs the paper's three experiments (the burden
// micro-benchmark of Table 1, the MPDATA scaling study of Figure 2 and the
// map-reduce study of Figure 3) and formats their results as the tables and
// series the paper reports.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"loopsched/internal/cilk"
	"loopsched/internal/core"
	"loopsched/internal/hybrid"
	"loopsched/internal/omp"
	"loopsched/internal/sched"
)

// Factory builds a scheduler with p workers.
type Factory func(p int) sched.Scheduler

// LockThreads controls whether benchmark-constructed schedulers lock their
// workers to OS threads. It defaults to true (benchmark fidelity); the test
// suite turns it off because it creates and destroys many teams.
var LockThreads = true

// registry maps scheduler names to factories.
var registry = map[string]Factory{
	"sequential": func(p int) sched.Scheduler { return sched.NewSequential() },
	"fine-grain-tree": func(p int) sched.Scheduler {
		return core.New(core.Config{Workers: p, Barrier: core.BarrierTree, Mode: core.ModeHalf, LockOSThread: LockThreads})
	},
	"fine-grain-centralized": func(p int) sched.Scheduler {
		return core.New(core.Config{Workers: p, Barrier: core.BarrierCentralized, Mode: core.ModeHalf, LockOSThread: LockThreads})
	},
	"fine-grain-tree-full-barrier": func(p int) sched.Scheduler {
		return core.New(core.Config{Workers: p, Barrier: core.BarrierTree, Mode: core.ModeFull, LockOSThread: LockThreads})
	},
	"openmp-static": func(p int) sched.Scheduler {
		return omp.New(omp.Config{Workers: p, Schedule: omp.Static, LockOSThread: LockThreads})
	},
	"openmp-dynamic": func(p int) sched.Scheduler {
		return omp.New(omp.Config{Workers: p, Schedule: omp.Dynamic, Chunk: 1, LockOSThread: LockThreads})
	},
	"openmp-guided": func(p int) sched.Scheduler {
		return omp.New(omp.Config{Workers: p, Schedule: omp.Guided, Chunk: 1, LockOSThread: LockThreads})
	},
	"cilk": func(p int) sched.Scheduler {
		return cilk.New(cilk.Config{Workers: p, LockOSThread: LockThreads})
	},
	"hybrid": func(p int) sched.Scheduler {
		return hybrid.New(hybrid.Config{Workers: p, LockOSThread: LockThreads})
	},
}

// Names returns the registered scheduler names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewScheduler builds the named scheduler with p workers (p <= 0 selects
// GOMAXPROCS).
func NewScheduler(name string, p int) (sched.Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown scheduler %q (known: %v)", name, Names())
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return f(p), nil
}

// Scenario is a named experiment runnable with small default options; it
// writes its report through the package's report path. The cmd tools expose
// richer per-scenario flags; scenarios exist so that callers (cmd/loopd, the
// test suite, quick smoke runs) can trigger any experiment by name.
type Scenario func(w io.Writer) error

// scenarios maps scenario names to quick-run implementations.
var scenarios = map[string]Scenario{
	"table1": func(w io.Writer) error {
		rows, err := Table1(BurdenOptions{Points: 6, Reps: 2, MaxTotal: 2 * time.Millisecond})
		if err != nil {
			return err
		}
		return WriteTable1(w, rows)
	},
	"mpdata": func(w io.Writer) error {
		res, err := RunMPDATA(MPDATAOptions{Steps: 3, Reps: 1, Rows: 20, Cols: 20, ThreadCounts: shortThreadCounts()})
		if err != nil {
			return err
		}
		return WriteMPDATA(w, res)
	},
	"linreg": func(w io.Writer) error {
		res, err := RunLinreg(LinregOptions{Points: 1 << 16, Reps: 1, ThreadCounts: shortThreadCounts()})
		if err != nil {
			return err
		}
		return WriteLinreg(w, res, "a")
	},
	"ablation": func(w io.Writer) error {
		opt := AblationOptions{LoopIters: 64, IterNs: 50, Loops: 20, Reps: 1, Fanouts: []int{2, 4}}
		rows, err := RunAblation(opt)
		if err != nil {
			return err
		}
		return WriteAblation(w, rows, opt)
	},
	"multitenant": func(w io.Writer) error {
		res, err := RunMultitenant(MultitenantOptions{Tenants: 8, JobsPerTenant: 10, Params: JobParams{N: 2048}})
		if err != nil {
			return err
		}
		return WriteMultitenant(w, res)
	},
	"burst": func(w io.Writer) error {
		elastic, rigid, err := RunBurstComparison(BurstOptions{Workers: 4, BigN: 4096, BurstJobs: 8, BurstN: 256, IterNs: 1500})
		if err != nil {
			return err
		}
		return WriteBurst(w, elastic, rigid)
	},
	"skew": func(w io.Writer) error {
		elastic, rigid, err := RunSkewComparison(SkewOptions{Workers: 4, N: 4096, Jobs: 3, IterNs: 300})
		if err != nil {
			return err
		}
		return WriteSkew(w, elastic, rigid)
	},
	"shardburst": func(w io.Writer) error {
		rep, err := RunShardBurstComparison(ShardBurstOptions{
			Workers: 4, Shards: 2, Tenants: 8, JobsPerTenant: 10, N: 256,
		})
		if err != nil {
			return err
		}
		return WriteShardBurst(w, rep)
	},
	"fairshare": func(w io.Writer) error {
		rep, err := RunFairShareComparison(FairShareOptions{
			Workers: 4, Duration: 250 * time.Millisecond, N: 1024,
		})
		if err != nil {
			return err
		}
		return WriteFairShare(w, rep)
	},
	"overload": func(w io.Writer) error {
		rep, err := RunOverload(OverloadOptions{
			Workers: 4, Duration: 200 * time.Millisecond, N: 1024,
		})
		if err != nil {
			return err
		}
		return WriteOverload(w, rep)
	},
	"traceoverhead": func(w io.Writer) error {
		rep, err := RunTraceOverhead(quickTraceOverheadOptions())
		if err != nil {
			return err
		}
		return WriteTraceOverhead(w, rep)
	},
	"submitpath": func(w io.Writer) error {
		res, err := RunSubmitPath(SubmitPathOptions{Workers: 2, Jobs: 2000, Warmup: 200})
		if err != nil {
			return err
		}
		return WriteSubmitPath(w, res)
	},
	"pipeline": func(w io.Writer) error {
		rep, err := RunPipelineComparison(PipelineOptions{
			Workers: 4, Shards: 2, Chains: 4, Stages: 2, FanOut: 2, N: 1024, Rounds: 2,
		})
		if err != nil {
			return err
		}
		return WritePipeline(w, rep)
	},
}

// shortThreadCounts returns {1} on a single-processor machine and {1, 2}
// otherwise: the axis of a smoke-run scaling scenario.
func shortThreadCounts() []int {
	if runtime.GOMAXPROCS(0) < 2 {
		return []int{1}
	}
	return []int{1, 2}
}

// ScenarioNames returns the registered scenario names in sorted order.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RunScenario runs the named scenario with its quick default options,
// writing the report to w.
func RunScenario(name string, w io.Writer) error {
	f, ok := scenarios[name]
	if !ok {
		return fmt.Errorf("bench: unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	return f(w)
}

// Table1Schedulers returns the scheduler names of the rows of Table 1, in
// the paper's order.
func Table1Schedulers() []string {
	return []string{
		"fine-grain-tree",
		"fine-grain-centralized",
		"fine-grain-tree-full-barrier",
		"openmp-static",
		"openmp-dynamic",
		"cilk",
	}
}

// PaperBurdens maps Table 1 rows to the burdens (µs) measured in the paper
// on a 48-core Xeon E7-4860 v2, for side-by-side reporting.
var PaperBurdens = map[string]float64{
	"fine-grain-tree":              5.67,
	"fine-grain-centralized":       7.55,
	"fine-grain-tree-full-barrier": 12.00,
	"openmp-static":                8.12,
	"openmp-dynamic":               31.94,
	"cilk":                         68.80,
}

// DefaultThreadCounts returns the thread counts used by the scaling figures:
// 1, 2, 4, ... up to the machine size (and the paper's 48 if the machine is
// that large).
func DefaultThreadCounts(max int) []int {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	out = append(out, max)
	return out
}
