package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// compare.go is the benchstat-style comparison layer behind cmd/benchcmp:
// it flattens two BENCH_*.json reports into dotted numeric paths, compares
// the metrics a spec selects, and classifies each delta against a
// regression threshold. CI runs it on the base and head artifacts of a PR
// and posts the table as a step summary.

// MetricSpec selects one metric of a flattened report for comparison.
type MetricSpec struct {
	// Path is the dotted JSON path, e.g. "sharded.jobs_per_second".
	Path string
	// HigherIsBetter orients the regression test: throughput metrics set
	// it, latency/overhead metrics leave it false.
	HigherIsBetter bool
	// TraceOnly marks a metric that only moves when lifecycle tracing is
	// enabled (the traced throughputs and overhead fraction of
	// BENCH_traceoverhead.json). A degradation there means the tracing
	// hot path got more expensive, not that the scheduler itself slowed
	// down, so it is flagged separately from baseline regressions.
	TraceOnly bool
}

// ParseMetricSpec parses the cmd/benchcmp flag form "path:higher" or
// "path:lower", with an optional ":trace" suffix ("path:lower:trace")
// marking the metric as tracing-only.
func ParseMetricSpec(s string) (MetricSpec, error) {
	path, rest, ok := strings.Cut(s, ":")
	if !ok || path == "" {
		return MetricSpec{}, fmt.Errorf("bench: metric spec %q: want path:higher or path:lower (optionally :trace)", s)
	}
	dir, qualifier, hasQualifier := strings.Cut(rest, ":")
	spec := MetricSpec{Path: path}
	switch dir {
	case "higher":
		spec.HigherIsBetter = true
	case "lower":
		spec.HigherIsBetter = false
	default:
		return MetricSpec{}, fmt.Errorf("bench: metric spec %q: direction %q is not higher or lower", s, dir)
	}
	if hasQualifier {
		if qualifier != "trace" {
			return MetricSpec{}, fmt.Errorf("bench: metric spec %q: qualifier %q is not trace", s, qualifier)
		}
		spec.TraceOnly = true
	}
	return spec, nil
}

// Comparison is the outcome for one metric.
type Comparison struct {
	Metric string
	// Base and Head are the two values; Missing is set when either report
	// lacks the path (a renamed metric or an older base), which is reported
	// but never counted as a regression.
	Base, Head float64
	Missing    bool
	// ZeroBase is set when the base value is zero but the head value is not:
	// the relative delta would be a division by zero (rendered as NaN/Inf in
	// the step summary), so the metric is reported as new/zero-base and never
	// classified — a metric that only just started moving has no trend to
	// regress against.
	ZeroBase bool
	// Delta is the relative change head vs base, as a fraction of base
	// (0.10 = +10%). Oriented so that positive is always an improvement and
	// negative a degradation, whatever the metric's direction.
	Delta float64
	// Regression is set when the degradation exceeds the threshold.
	Regression bool
	// TraceOnly is carried over from the spec: a regression here is a
	// tracing-cost regression, reported in its own grouping and gated by
	// its own benchcmp flag rather than the baseline -fail gate.
	TraceOnly bool
}

// FlattenJSON decodes a JSON document and flattens every numeric leaf into
// a dotted-path map; array elements use the index as the path segment.
func FlattenJSON(data []byte) (map[string]float64, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, vv := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, vv)
			}
		case []any:
			for i, vv := range x {
				walk(prefix+"."+strconv.Itoa(i), vv)
			}
		case float64:
			out[prefix] = x
		}
	}
	walk("", doc)
	return out, nil
}

// CompareReports compares the selected metrics of two flattened reports
// against a fractional regression threshold (0.10 = 10% degradation
// allowed). It returns one Comparison per spec, in spec order, and whether
// any baseline (non-TraceOnly) metric regressed beyond the threshold;
// tracing-only regressions are marked on the comparisons and queried with
// TraceRegressed, so the two classes gate independently.
func CompareReports(base, head map[string]float64, specs []MetricSpec, threshold float64) ([]Comparison, bool) {
	out := make([]Comparison, 0, len(specs))
	anyRegression := false
	for _, spec := range specs {
		c := Comparison{Metric: spec.Path, TraceOnly: spec.TraceOnly}
		b, okB := base[spec.Path]
		h, okH := head[spec.Path]
		c.Base, c.Head = b, h
		if !okB || !okH {
			c.Missing = true
			out = append(out, c)
			continue
		}
		switch {
		case b != 0:
			c.Delta = (h - b) / b
			if !spec.HigherIsBetter {
				c.Delta = -c.Delta
			}
		case h != 0:
			// Zero baseline: the relative delta is a division by zero. An
			// Inf/NaN here used to leak straight into the markdown table (and
			// flip the regression gate on metrics that merely started being
			// measured), so the comparison is marked ZeroBase and left out of
			// the classification instead.
			c.ZeroBase = true
		}
		if c.Delta < -threshold {
			c.Regression = true
			if !c.TraceOnly {
				anyRegression = true
			}
		}
		out = append(out, c)
	}
	return out, anyRegression
}

// TraceRegressed reports whether any tracing-only metric regressed. It is
// the trace-cost counterpart of CompareReports' baseline-regression result,
// gated by cmd/benchcmp's -fail-trace instead of -fail.
func TraceRegressed(cs []Comparison) bool {
	for _, c := range cs {
		if c.Regression && c.TraceOnly {
			return true
		}
	}
	return false
}

// MissingComparisons returns one all-missing Comparison per spec: the shape
// CompareBenchFiles degrades to when a whole report file is absent, and the
// shape callers should render when they detect the absence themselves.
func MissingComparisons(specs []MetricSpec) []Comparison {
	out := make([]Comparison, 0, len(specs))
	for _, spec := range specs {
		out = append(out, Comparison{Metric: spec.Path, Missing: true, TraceOnly: spec.TraceOnly})
	}
	return out
}

// CompareBenchFiles loads two BENCH_*.json files and compares them; see
// CompareReports. A report file that does not exist — a base commit that
// predates the benchmark, e.g. the first trajectory run after a new
// BENCH_*.json is introduced — is not an error: every metric is reported as
// missing and nothing counts as a regression, mirroring how a single
// missing metric path is handled. A file that exists but does not parse is
// still an error.
func CompareBenchFiles(basePath, headPath string, specs []MetricSpec, threshold float64) ([]Comparison, bool, error) {
	baseData, err := os.ReadFile(basePath)
	if os.IsNotExist(err) {
		return MissingComparisons(specs), false, nil
	}
	if err != nil {
		return nil, false, err
	}
	headData, err := os.ReadFile(headPath)
	if os.IsNotExist(err) {
		return MissingComparisons(specs), false, nil
	}
	if err != nil {
		return nil, false, err
	}
	base, err := FlattenJSON(baseData)
	if err != nil {
		return nil, false, fmt.Errorf("bench: %s: %w", basePath, err)
	}
	head, err := FlattenJSON(headData)
	if err != nil {
		return nil, false, fmt.Errorf("bench: %s: %w", headPath, err)
	}
	cs, reg := CompareReports(base, head, specs, threshold)
	return cs, reg, nil
}

// WriteComparison renders the comparisons as a GitHub-flavoured markdown
// table (the shape $GITHUB_STEP_SUMMARY renders), titled with the report
// name. Tracing-only regressions get their own verdict label and a
// separate summary line below the table, so a reviewer can tell a
// tracing-cost slip from a baseline scheduler slowdown at a glance.
func WriteComparison(w io.Writer, title string, cs []Comparison, threshold float64) error {
	fmt.Fprintf(w, "### %s\n\n", title)
	fmt.Fprintf(w, "| metric | base | head | delta | verdict |\n|---|---:|---:|---:|---|\n")
	var traceRegressed []string
	for _, c := range cs {
		if c.Missing {
			fmt.Fprintf(w, "| `%s` | — | — | — | missing in base or head (new benchmark?) — not a regression |\n", c.Metric)
			continue
		}
		if c.ZeroBase {
			fmt.Fprintf(w, "| `%s` | %.4g | %.4g | — | new/zero-base metric — not compared |\n", c.Metric, c.Base, c.Head)
			continue
		}
		verdict := "ok"
		switch {
		case c.Regression && c.TraceOnly:
			verdict = fmt.Sprintf("**trace-only regression** (> %.0f%% worse with tracing on)", threshold*100)
			traceRegressed = append(traceRegressed, c.Metric)
		case c.Regression:
			verdict = fmt.Sprintf("**regression** (> %.0f%% worse)", threshold*100)
		case c.Delta > threshold:
			verdict = "improvement"
		}
		fmt.Fprintf(w, "| `%s` | %.4g | %.4g | %+.1f%% | %s |\n", c.Metric, c.Base, c.Head, c.Delta*100, verdict)
	}
	fmt.Fprintln(w)
	if len(traceRegressed) > 0 {
		fmt.Fprintf(w, "Tracing-only regressions (lifecycle-tracing cost grew; baseline throughput unaffected): `%s`\n\n",
			strings.Join(traceRegressed, "`, `"))
	}
	return nil
}

// SortedPaths returns the flattened paths in sorted order (for -list).
func SortedPaths(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
