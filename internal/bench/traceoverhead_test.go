package bench

import (
	"io"
	"os"
	"testing"
	"time"
)

// TestTraceOverheadSmoke verifies the comparison machinery on a tiny
// configuration: both scenarios run in both configurations, the traced runs
// emit events, and the report is internally consistent. The overhead budget
// itself is asserted separately under TRACE_STRICT.
func TestTraceOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	opt := TraceOverheadOptions{
		Reps:       1,
		FairShare:  FairShareOptions{Workers: 2, Streams: 2, Duration: 80 * time.Millisecond, N: 512},
		ShardBurst: ShardBurstOptions{Workers: 2, Shards: 2, Tenants: 4, JobsPerTenant: 5, N: 256},
	}
	rep, err := RunTraceOverhead(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("%d scenarios, want 2", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.OffJobsPerSecond <= 0 || sc.OnJobsPerSecond <= 0 {
			t.Errorf("%s: zero throughput (off=%g on=%g)", sc.Name, sc.OffJobsPerSecond, sc.OnJobsPerSecond)
		}
		if sc.EventsTotal == 0 {
			t.Errorf("%s: traced runs emitted no events", sc.Name)
		}
		if rep.MaxOverheadFraction < sc.OverheadFraction {
			t.Errorf("max overhead %g below %s's %g", rep.MaxOverheadFraction, sc.Name, sc.OverheadFraction)
		}
	}
	if err := WriteTraceOverhead(io.Discard, rep); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOverheadBudget is the acceptance criterion: with tracing on and a
// live subscriber draining the feed, both scenarios stay within 5% of their
// untraced throughput. Asserted only with TRACE_STRICT=1 (set on capable CI
// runners): on small or loaded machines the ratio is dominated by noise.
func TestTraceOverheadBudget(t *testing.T) {
	if os.Getenv("TRACE_STRICT") == "" {
		t.Skip("set TRACE_STRICT=1 to assert the <=5% tracing-overhead criterion (needs a quiet multi-core machine)")
	}
	rep, err := RunTraceOverhead(TraceOverheadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = WriteTraceOverhead(os.Stderr, rep)
	const budget = 0.05
	for _, sc := range rep.Scenarios {
		if sc.OverheadFraction > budget {
			t.Errorf("%s: tracing overhead %.2f%% exceeds the %.0f%% budget",
				sc.Name, sc.OverheadFraction*100, budget*100)
		}
	}
}
