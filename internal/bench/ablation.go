package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"loopsched/internal/core"
	"loopsched/internal/sched"
	"loopsched/internal/stats"
	"loopsched/internal/workload"
)

// AblationOptions configures the design-choice ablation study (not a table
// in the paper, but the axes its Section 2 argues about: half vs. full
// barrier, tree vs. centralized barrier, tree fan-out, merged vs. separate
// reduction).
type AblationOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS.
	Workers int
	// LoopIters and IterNs define the fine-grain loop used as the probe;
	// defaults: 256 iterations of ~100 ns (a ~25 µs loop).
	LoopIters int
	IterNs    float64
	// Loops is the number of loop launches per timed repetition; <= 0
	// selects 200.
	Loops int
	// Reps is the number of repetitions (minimum kept); <= 0 selects 5.
	Reps int
	// Fanouts are the tree fan-outs swept; empty selects {2,4,8,16}.
	Fanouts []int
}

func (o *AblationOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LoopIters <= 0 {
		o.LoopIters = 256
	}
	if o.IterNs <= 0 {
		o.IterNs = 100
	}
	if o.Loops <= 0 {
		o.Loops = 200
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{2, 4, 8, 16}
	}
}

// AblationRow is one measured configuration.
type AblationRow struct {
	Name string
	// LoopUs is the average cost of one parallel-loop launch (µs),
	// including the loop body.
	LoopUs float64
	// ReduceLoopUs is the same for a reducing loop.
	ReduceLoopUs float64
}

// RunAblation measures the design-choice variants.
func RunAblation(opt AblationOptions) ([]AblationRow, error) {
	opt.normalize()
	work := workload.Calibrate(opt.IterNs)

	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"tree half-barrier (default)", core.Config{Workers: opt.Workers, Barrier: core.BarrierTree, Mode: core.ModeHalf}},
		{"tree full-barrier", core.Config{Workers: opt.Workers, Barrier: core.BarrierTree, Mode: core.ModeFull}},
		{"centralized half-barrier", core.Config{Workers: opt.Workers, Barrier: core.BarrierCentralized, Mode: core.ModeHalf}},
		{"centralized full-barrier", core.Config{Workers: opt.Workers, Barrier: core.BarrierCentralized, Mode: core.ModeFull}},
	}
	for _, f := range opt.Fanouts {
		variants = append(variants, variant{
			fmt.Sprintf("tree half-barrier, fan-out %d", f),
			core.Config{Workers: opt.Workers, Barrier: core.BarrierTree, Mode: core.ModeHalf, InnerFanout: f, OuterFanout: f,
				Name: fmt.Sprintf("fine-grain-tree-fanout%d", f)},
		})
	}

	var rows []AblationRow
	for _, v := range variants {
		cfg := v.cfg
		cfg.LockOSThread = LockThreads
		s := core.New(cfg)
		rows = append(rows, AblationRow{
			Name:         v.name,
			LoopUs:       measureLoopCost(s, work, opt),
			ReduceLoopUs: measureReduceLoopCost(s, work, opt),
		})
		s.Close()
	}
	return rows, nil
}

func measureLoopCost(s sched.Scheduler, work workload.Work, opt AblationOptions) float64 {
	body := func(w, begin, end int) { workload.Consume(work.Run(begin, end)) }
	ds := stats.Timer(opt.Reps, true, func() {
		for i := 0; i < opt.Loops; i++ {
			s.For(opt.LoopIters, body)
		}
	})
	return float64(stats.MinDuration(ds).Nanoseconds()) / float64(opt.Loops) / 1e3
}

func measureReduceLoopCost(s sched.Scheduler, work workload.Work, opt AblationOptions) float64 {
	body := func(w, begin, end int, acc float64) float64 {
		workload.Consume(work.Run(begin, end))
		return acc + float64(end-begin)
	}
	ds := stats.Timer(opt.Reps, true, func() {
		for i := 0; i < opt.Loops; i++ {
			_ = s.ForReduce(opt.LoopIters, 0, func(a, b float64) float64 { return a + b }, body)
		}
	})
	return float64(stats.MinDuration(ds).Nanoseconds()) / float64(opt.Loops) / 1e3
}

// WriteAblation renders the ablation rows.
func WriteAblation(w io.Writer, rows []AblationRow, opt AblationOptions) error {
	opt.normalize()
	fmt.Fprintf(w, "Ablation: %d-iteration loop of ~%.0f ns/iter on %d workers (cost per loop launch)\n",
		opt.LoopIters, opt.IterNs, opt.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tplain loop (us)\treducing loop (us)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Name, r.LoopUs, r.ReduceLoopUs)
	}
	return tw.Flush()
}

// Elapsed is a tiny helper for the cmd tools' progress output.
func Elapsed(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }
