package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint scenario runs three fleets; skipped in -short")
	}
	rep, err := RunCheckpoint(CheckpointOptions{
		Workers: 2, Jobs: 16, N: 1024, Reps: 1, PutRecords: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.JobsPerSecond <= 0 || rep.Durable.JobsPerSecond <= 0 {
		t.Fatalf("phases served no work: baseline %+v durable %+v", rep.Baseline, rep.Durable)
	}
	// The durable fleet checkpoints every submission; the churn fleet also
	// writes a park record per job and must resume every one of them — the
	// phase itself fails if any reduction comes back partial or doubled.
	if rep.Durable.CheckpointWrites < int64(rep.Jobs) {
		t.Errorf("durable phase wrote %d checkpoints for %d jobs", rep.Durable.CheckpointWrites, rep.Jobs)
	}
	if rep.SuspendResume.Resumes != int64(rep.Jobs) {
		t.Errorf("suspend/resume phase resumed %d of %d jobs", rep.SuspendResume.Resumes, rep.Jobs)
	}
	if rep.CheckpointWriteNs <= 0 {
		t.Error("write-cost phase measured nothing")
	}
	var buf bytes.Buffer
	if err := WriteCheckpointBench(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty report")
	}
	// The JSON artifact round-trips with the stable field names benchcmp
	// compares (the overhead ratios and the per-phase throughput).
	path := filepath.Join(t.TempDir(), "BENCH_checkpoint.json")
	if err := WriteCheckpointBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"baseline", "durable", "suspend_resume", "store_overhead_ratio", "checkpoint_write_ns"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("artifact missing %q:\n%s", key, data)
		}
	}
}

func TestCheckpointAcceptance(t *testing.T) {
	// The acceptance criterion: writing durable checkpoints for a fleet
	// nobody suspends costs at most 5% of makespan, and the churn phase
	// suspends and resumes every single job with byte-identical reductions
	// (the phase errors out otherwise). Asserted only with
	// CHECKPOINT_STRICT=1 on a quiet machine — a 5% makespan band on a
	// noisy shared runner measures the neighbours, not the WAL.
	if os.Getenv("CHECKPOINT_STRICT") == "" {
		t.Skip("set CHECKPOINT_STRICT=1 to assert the <= 5% durability-overhead criterion (needs a quiet machine)")
	}
	// Longer fleets than the default: at the default ~25ms makespan the
	// run-to-run scheduler noise is the same order as the 5% band, while the
	// actual WAL cost (one ~3µs append per job) is far below it.
	rep, err := RunCheckpoint(CheckpointOptions{N: 16384, Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_ = WriteCheckpointBench(&buf, rep)
	t.Logf("\n%s", buf.String())
	if rep.StoreOverheadRatio > 1.05 {
		t.Errorf("store overhead %.3fx baseline, want <= 1.05x", rep.StoreOverheadRatio)
	}
	if rep.SuspendResume.Resumes != int64(rep.Jobs) {
		t.Errorf("churn phase resumed %d of %d jobs, want all", rep.SuspendResume.Resumes, rep.Jobs)
	}
}
