package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/stats"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// FairShareOptions configures the weighted-fair scheduling scenario: two
// tenants with unequal weights saturate one jobs scheduler with identical
// calibrated spin jobs, while a sparse stream of high-priority
// deadline-carrying jobs is injected through the *light* tenant (the worst
// case for a FIFO: its urgent jobs queue behind everyone's backlog). The
// same workload runs with the weighted-fair policy and with the FIFO
// baseline (Config.DisableFair); the policy is the only variable.
type FairShareOptions struct {
	// Workers is the team size; <= 0 selects GOMAXPROCS minus two (floored
	// at 2, capped at 16): the scenario measures the admission policy, so
	// the load-generating streams must keep some CPU of their own — with
	// the workers saturating every processor, the generators starve, the
	// faster-served tenant's backlog dries out at exactly the admission
	// instants, and the measured ratio collapses toward 1 regardless of the
	// policy.
	Workers int
	// WeightA and WeightB are the two tenants' fair-share weights; <= 0
	// selects 3 and 1 (the canonical 3:1 split).
	WeightA, WeightB int
	// Streams is the number of submitters per tenant; <= 0 selects
	// 2 x Workers.
	Streams int
	// Window is each stream's in-flight job window: a stream keeps Window
	// jobs submitted at once, replacing the oldest as it completes, so a
	// tenant's backlog survives submitter wake-up latency (load generators
	// compete with the saturated workers for CPU; with a single job in
	// flight per stream, the *faster-served* tenant's queue would run dry
	// waiting for its submitters to wake, collapsing the measured ratio
	// toward 1). <= 0 selects 8.
	Window int
	// N is the per-job iteration count; <= 0 selects 2048.
	N int
	// IterNs is the target per-iteration cost; <= 0 selects 150.
	IterNs float64
	// Duration is the measurement window; <= 0 selects 600ms. A quarter of
	// it is prepended as warmup so admission reaches steady state first.
	Duration time.Duration
	// HighPrioEvery is the injection period of the high-priority jobs;
	// <= 0 selects Duration/25 (enough samples for a p95).
	HighPrioEvery time.Duration
	// DisableFair runs the FIFO baseline instead of the policy.
	DisableFair bool
	// Tracer, when set, runs the scheduler with lifecycle tracing on (the
	// trace-overhead scenario measures the cost); nil runs untraced.
	Tracer *trace.Tracer
}

func (o *FairShareOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) - 2
		if o.Workers > 16 {
			o.Workers = 16
		}
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.WeightA <= 0 {
		o.WeightA = 3
	}
	if o.WeightB <= 0 {
		o.WeightB = 1
	}
	if o.Streams <= 0 {
		o.Streams = 2 * o.Workers
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.N <= 0 {
		o.N = 2048
	}
	if o.IterNs <= 0 {
		o.IterNs = 150
	}
	if o.Duration <= 0 {
		o.Duration = 600 * time.Millisecond
	}
	if o.HighPrioEvery <= 0 {
		o.HighPrioEvery = o.Duration / 25
	}
}

// FairShareResult is the outcome of one fair-share run.
type FairShareResult struct {
	// Policy is "wfq" (weighted fair queuing) or "fifo".
	Policy          string  `json:"policy"`
	Workers         int     `json:"workers"`
	WeightA         int     `json:"weight_a"`
	WeightB         int     `json:"weight_b"`
	DurationSeconds float64 `json:"duration_seconds"`
	// JobsA/ItersA and JobsB/ItersB are the tenants' served jobs and
	// iterations during the measurement window.
	JobsA  int64 `json:"jobs_a"`
	JobsB  int64 `json:"jobs_b"`
	ItersA int64 `json:"iters_a"`
	ItersB int64 `json:"iters_b"`
	// ShareRatio is the achieved served-work ratio ItersA/ItersB; under the
	// policy it should approach WeightA/WeightB, under FIFO roughly 1.
	ShareRatio float64 `json:"share_ratio"`
	// JobsPerSecond is the aggregate throughput during the window (both
	// tenants plus the high-priority stream).
	JobsPerSecond float64 `json:"jobs_per_second"`
	// HighPrio latency quantiles (submission to completion, seconds) over
	// the high-priority jobs submitted inside the window.
	HighPrioJobs int     `json:"high_prio_jobs"`
	HighPrioP50  float64 `json:"high_prio_p50_seconds"`
	HighPrioP95  float64 `json:"high_prio_p95_seconds"`
	HighPrioP99  float64 `json:"high_prio_p99_seconds"`
	// Preempted and DeadlineMissed are the scheduler's policy counters over
	// the whole run (zero under FIFO).
	Preempted      int64 `json:"preempted_total"`
	DeadlineMissed int64 `json:"deadline_missed_total"`
}

const (
	fairTenantA = "gold"
	fairTenantB = "bronze"
)

// RunFairShare runs the scenario once. Jobs are verified reductions; a
// wrong answer fails the run.
func RunFairShare(opt FairShareOptions) (FairShareResult, error) {
	opt.normalize()
	s := jobs.New(jobs.Config{
		Workers: opt.Workers,
		TenantWeights: map[string]int{
			fairTenantA: opt.WeightA,
			fairTenantB: opt.WeightB,
		},
		DisableFair:  opt.DisableFair,
		LockOSThread: LockThreads,
		Tracer:       opt.Tracer,
		Name:         "fairshare",
	})
	res := FairShareResult{
		Policy:  "wfq",
		Workers: s.P(),
		WeightA: opt.WeightA,
		WeightB: opt.WeightB,
	}
	if opt.DisableFair {
		res.Policy = "fifo"
	}
	work := calibrated(opt.IterNs)
	want := float64(opt.N)
	req := jobs.Request{
		N:           opt.N,
		Label:       "fairshare",
		Commutative: true,
		Combine:     func(a, b float64) float64 { return a + b },
		RBody: func(w, lo, hi int, acc float64) float64 {
			workload.Consume(work.Run(lo, hi))
			return acc + float64(hi-lo)
		},
	}

	var (
		measuring    atomic.Bool
		stop         atomic.Bool
		jobsA, jobsB atomic.Int64
		totalJobs    atomic.Int64
		firstErr     atomic.Value
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err)
		stop.Store(true)
	}
	var wg sync.WaitGroup
	stream := func(tenant string, jobs_ *atomic.Int64) {
		defer wg.Done()
		r := req
		r.Tenant = tenant
		inflight := make([]*jobs.Job, 0, opt.Window)
		settle := func(j *jobs.Job) bool {
			v, err := j.Wait()
			if err != nil {
				fail(err)
				return false
			}
			if v != want {
				fail(fmt.Errorf("bench: fairshare %s job returned %v, want %v", tenant, v, want))
				return false
			}
			if measuring.Load() {
				jobs_.Add(1)
				totalJobs.Add(1)
			}
			return true
		}
		for !stop.Load() {
			j, err := s.Submit(r)
			if err != nil {
				fail(err)
				break
			}
			inflight = append(inflight, j)
			if len(inflight) < opt.Window {
				continue
			}
			j, inflight = inflight[0], inflight[1:]
			if !settle(j) {
				break
			}
		}
		for _, j := range inflight {
			settle(j)
		}
	}
	for i := 0; i < opt.Streams; i++ {
		wg.Add(2)
		go stream(fairTenantA, &jobsA)
		go stream(fairTenantB, &jobsB)
	}

	// High-priority injector: sparse urgent jobs through the light tenant —
	// exactly the jobs a FIFO parks behind both tenants' full backlogs.
	var hpLats []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opt.HighPrioEvery)
		defer ticker.Stop()
		for !stop.Load() {
			<-ticker.C
			r := req
			r.Tenant = fairTenantB
			r.Priority = 9
			r.Deadline = time.Now().Add(opt.HighPrioEvery)
			inWindow := measuring.Load()
			start := time.Now()
			j, err := s.Submit(r)
			if err != nil {
				fail(err)
				return
			}
			v, err := j.Wait()
			if err != nil {
				fail(err)
				return
			}
			if v != want {
				fail(fmt.Errorf("bench: fairshare high-prio job returned %v, want %v", v, want))
				return
			}
			if inWindow && measuring.Load() {
				hpLats = append(hpLats, time.Since(start).Seconds())
				totalJobs.Add(1)
			}
		}
	}()

	time.Sleep(opt.Duration / 4) // warmup: queues fill, calibration settles
	stA := s.Stats().Tenants
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opt.Duration)
	measuring.Store(false)
	res.DurationSeconds = time.Since(start).Seconds()
	stB := s.Stats().Tenants
	stop.Store(true)
	wg.Wait()
	finalStats := s.Stats()
	s.Close()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return res, err
	}

	// Served work over the window from the scheduler's own tenant accounts
	// (the difference of two snapshots), so the measurement matches what the
	// tenant-labelled metrics report; client-side job counts cross-check it.
	res.ItersA = stB[fairTenantA].IterationsDone - stA[fairTenantA].IterationsDone
	res.ItersB = stB[fairTenantB].IterationsDone - stA[fairTenantB].IterationsDone
	res.JobsA, res.JobsB = jobsA.Load(), jobsB.Load()
	if res.ItersB > 0 {
		res.ShareRatio = float64(res.ItersA) / float64(res.ItersB)
	}
	if res.DurationSeconds > 0 {
		res.JobsPerSecond = float64(totalJobs.Load()) / res.DurationSeconds
	}
	res.HighPrioJobs = len(hpLats)
	if len(hpLats) > 0 {
		q := stats.Quantiles(hpLats, 0.5, 0.95, 0.99)
		res.HighPrioP50, res.HighPrioP95, res.HighPrioP99 = q[0], q[1], q[2]
	}
	res.Preempted = finalStats.Preempted
	res.DeadlineMissed = finalStats.DeadlineMissed
	return res, nil
}

// FairShareReport is the machine-readable outcome of the policy-vs-FIFO
// comparison, serialised to BENCH_fairshare.json so the fairness trajectory
// is tracked across PRs.
type FairShareReport struct {
	Workers int `json:"workers"`
	// TargetRatio is the configured WeightA/WeightB.
	TargetRatio float64         `json:"target_ratio"`
	Fair        FairShareResult `json:"fair"`
	FIFO        FairShareResult `json:"fifo"`
	// FairShareError is |Fair.ShareRatio - TargetRatio| / TargetRatio: the
	// acceptance criterion asks for <= 0.15 under saturation.
	FairShareError float64 `json:"fair_share_error"`
	// FIFOShareError is the same distance for the baseline (expected large:
	// FIFO converges to the submission ratio, ~1:1).
	FIFOShareError float64 `json:"fifo_share_error"`
	// HighPrioP95Speedup is FIFO p95 over policy p95 for the high-priority
	// stream; the acceptance criterion asks for >= 2.
	HighPrioP95Speedup float64 `json:"high_prio_p95_speedup"`
}

// RunFairShareComparison runs the scenario under the weighted-fair policy
// and under the FIFO baseline, same options otherwise.
func RunFairShareComparison(opt FairShareOptions) (FairShareReport, error) {
	opt.normalize()
	rep := FairShareReport{
		Workers:     opt.Workers,
		TargetRatio: float64(opt.WeightA) / float64(opt.WeightB),
	}
	fair := opt
	fair.DisableFair = false
	var err error
	if rep.Fair, err = RunFairShare(fair); err != nil {
		return rep, err
	}
	fifo := opt
	fifo.DisableFair = true
	if rep.FIFO, err = RunFairShare(fifo); err != nil {
		return rep, err
	}
	shareErr := func(r FairShareResult) float64 {
		if r.ShareRatio == 0 {
			return 1
		}
		e := (r.ShareRatio - rep.TargetRatio) / rep.TargetRatio
		if e < 0 {
			e = -e
		}
		return e
	}
	rep.FairShareError = shareErr(rep.Fair)
	rep.FIFOShareError = shareErr(rep.FIFO)
	if rep.Fair.HighPrioP95 > 0 {
		rep.HighPrioP95Speedup = rep.FIFO.HighPrioP95 / rep.Fair.HighPrioP95
	}
	return rep, nil
}

// WriteFairShare renders the comparison as a table.
func WriteFairShare(w io.Writer, rep FairShareReport) error {
	fmt.Fprintf(w, "Weighted-fair scheduling scenario: 2 tenants at %d:%d on %d workers, WFQ+preemption vs FIFO\n",
		rep.Fair.WeightA, rep.Fair.WeightB, rep.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tshare A:B\ttarget\tjobs/s\thp p50 (ms)\thp p95 (ms)\tpreempted\tdeadline missed")
	row := func(r FairShareResult) {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.0f\t%.3f\t%.3f\t%d\t%d\n",
			r.Policy, r.ShareRatio, rep.TargetRatio, r.JobsPerSecond,
			r.HighPrioP50*1e3, r.HighPrioP95*1e3, r.Preempted, r.DeadlineMissed)
	}
	row(rep.Fair)
	row(rep.FIFO)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nachieved share within %.1f%% of target (FIFO: %.1f%%); high-priority p95 %.2fx lower than FIFO\n",
		rep.FairShareError*100, rep.FIFOShareError*100, rep.HighPrioP95Speedup)
	return nil
}

// WriteFairShareJSON writes the comparison report to path as indented JSON
// (the BENCH_fairshare.json artifact).
func WriteFairShareJSON(path string, rep FairShareReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
