package bench

import (
	"io"
	"os"
	"testing"
)

func TestPipelineScenarioSmoke(t *testing.T) {
	// Correctness smoke of both submission modes on a tiny graph: every
	// chain's verified sink must be exact, and the DAG mode must exercise
	// the dependency machinery (released > 0) while the await baseline must
	// not.
	rep, err := RunPipelineComparison(PipelineOptions{
		Workers: 2, Shards: 2, Chains: 2, Stages: 2, FanOut: 2, N: 512, Rounds: 1, IterNs: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dag.Released == 0 {
		t.Error("DAG mode released no dependents: the stage graph was not dependency-submitted")
	}
	if rep.Await.Released != 0 {
		t.Errorf("await mode released %d dependents, want 0 (it must not use dependency edges)", rep.Await.Released)
	}
	if rep.Dag.JobsTotal != rep.Await.JobsTotal || rep.Dag.JobsTotal != 2*(1+2*2+1) {
		t.Errorf("jobs_total = %d/%d, want %d", rep.Dag.JobsTotal, rep.Await.JobsTotal, 2*(1+2*2+1))
	}
	if err := WritePipeline(io.Discard, rep); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineScenarioRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick scenario; skipped under -short")
	}
	if err := RunScenario("pipeline", io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineOverheadAcceptance(t *testing.T) {
	// The PR acceptance criterion: submitting a stage graph as runtime
	// dependencies costs at most 5% makespan versus the client awaiting
	// each stage — in practice the DAG should win, because the release
	// happens inside the completing join wave instead of bouncing through
	// a client goroutine. Asserted only when PIPELINE_STRICT=1: on small or
	// oversubscribed boxes the comparison is noise.
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	if os.Getenv("PIPELINE_STRICT") == "" {
		t.Skip("set PIPELINE_STRICT=1 to assert the <=5% overhead criterion (needs a quiet multi-core machine)")
	}
	var best float64 = 1e9
	for attempt := 0; attempt < 3; attempt++ {
		rep, err := RunPipelineComparison(PipelineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OverheadPercent < best {
			best = rep.OverheadPercent
		}
		if best <= 5 {
			t.Logf("DAG submission overhead %+.2f%% vs await-each-stage (speedup %.2fx)", rep.OverheadPercent, rep.Speedup)
			return
		}
	}
	t.Fatalf("DAG submission overhead %+.2f%%, want <= 5%%", best)
}
