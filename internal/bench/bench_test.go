package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func init() {
	// The harness tests create and destroy many small teams; locking every
	// worker to an OS thread is unnecessary there.
	LockThreads = false
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		s, err := NewScheduler(name, 2)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		var total atomic.Int64
		s.For(100, func(w, b, e int) { total.Add(int64(e - b)) })
		if total.Load() != 100 {
			t.Errorf("%s covered %d of 100 iterations", name, total.Load())
		}
		s.Close()
	}
	if _, err := NewScheduler("no-such-runtime", 2); err == nil {
		t.Errorf("unknown scheduler accepted")
	}
}

func TestTable1SchedulersAreRegistered(t *testing.T) {
	for _, name := range Table1Schedulers() {
		if _, ok := registry[name]; !ok {
			t.Errorf("Table 1 row %q is not in the registry", name)
		}
		if _, ok := PaperBurdens[name]; !ok {
			t.Errorf("Table 1 row %q has no paper burden recorded", name)
		}
	}
	if len(Table1Schedulers()) != 6 {
		t.Errorf("Table 1 must have 6 rows")
	}
}

func TestDefaultThreadCounts(t *testing.T) {
	got := DefaultThreadCounts(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("DefaultThreadCounts(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultThreadCounts(8) = %v", got)
		}
	}
	got = DefaultThreadCounts(12)
	if got[len(got)-1] != 12 {
		t.Errorf("machine size missing from %v", got)
	}
	if got := DefaultThreadCounts(0); len(got) == 0 {
		t.Errorf("empty counts for default machine")
	}
}

func TestMeasureBurdenSmall(t *testing.T) {
	opt := BurdenOptions{
		Workers:    4,
		Iterations: 512,
		MinTotal:   10 * time.Microsecond,
		MaxTotal:   400 * time.Microsecond,
		Points:     5,
		Reps:       1,
	}
	res, err := MeasureBurden("fine-grain-tree", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "fine-grain-tree" || len(res.Sweep) < 3 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Fit.D < 0 {
		t.Errorf("negative burden %v", res.Fit.D)
	}
	if res.BurdenUs() != res.Fit.D*1e6 {
		t.Errorf("BurdenUs inconsistent")
	}
	if res.PaperBurdenUs != 5.67 {
		t.Errorf("paper burden not attached: %v", res.PaperBurdenUs)
	}
	var buf bytes.Buffer
	if err := WriteSweep(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fine-grain-tree") {
		t.Errorf("sweep report missing scheduler name")
	}
}

func TestMeasureBurdenUnknownScheduler(t *testing.T) {
	if _, err := MeasureBurden("bogus", BurdenOptions{}); err == nil {
		t.Errorf("unknown scheduler accepted")
	}
}

func TestWriteTable1(t *testing.T) {
	rows := []BurdenResult{
		{Scheduler: "fine-grain-tree", Workers: 48, PaperBurdenUs: 5.67},
		{Scheduler: "openmp-static", Workers: 48, PaperBurdenUs: 8.12},
		{Scheduler: "cilk", Workers: 48, PaperBurdenUs: 68.8},
	}
	rows[0].Fit.D, rows[0].Fit.P = 6e-6, 48
	rows[1].Fit.D, rows[1].Fit.P = 10e-6, 48
	rows[2].Fit.D, rows[2].Fit.P = 70e-6, 48
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "fine-grain-tree", "openmp-static", "cilk", "paper: 43%", "paper: 12.1x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 report missing %q:\n%s", want, out)
		}
	}
	md := Table1Markdown(rows)
	if !strings.Contains(md, "| fine-grain-tree |") {
		t.Errorf("markdown table malformed:\n%s", md)
	}
}

func TestRunMPDATASmall(t *testing.T) {
	opt := MPDATAOptions{
		Steps:        3,
		Reps:         1,
		ThreadCounts: []int{1, 2},
		Rows:         10,
		Cols:         10,
		Schedulers:   []string{"fine-grain-tree", "openmp-static"},
	}
	res, err := RunMPDATA(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.GridPoints != 100 || len(res.Series) != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %s has %d points", s.Scheduler, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 || p.Speedup <= 0 {
				t.Errorf("series %s: bad point %+v", s.Scheduler, p)
			}
		}
	}
	if len(res.Ratio) != 2 {
		t.Errorf("ratio series has %d points", len(res.Ratio))
	}
	var buf bytes.Buffer
	if err := WriteMPDATA(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Errorf("missing Figure 2 header")
	}
}

func TestVerifyMPDATA(t *testing.T) {
	maxDiff, massErr, err := VerifyMPDATA("fine-grain-tree", 3)
	if err != nil {
		t.Fatal(err)
	}
	if maxDiff > 1e-12 {
		t.Errorf("parallel MPDATA diverges from sequential by %v", maxDiff)
	}
	if massErr > 1e-12 {
		t.Errorf("mass error %v", massErr)
	}
}

func TestLoopDuration(t *testing.T) {
	d, err := LoopDuration("fine-grain-tree", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("loop duration %v", d)
	}
}

func TestRunLinregSmall(t *testing.T) {
	opt := LinregOptions{
		Points:       1 << 16,
		Reps:         1,
		ThreadCounts: []int{1, 2},
		Baseline:     "cilk",
		FineGrain:    "fine-grain-tree",
	}
	res, err := RunLinreg(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baseline.Points) != 2 || len(res.FineGrain.Points) != 2 {
		t.Fatalf("unexpected series lengths: %+v", res)
	}
	if res.BestSpeedupOverBaseline <= 0 {
		t.Errorf("best speedup ratio %v", res.BestSpeedupOverBaseline)
	}
	if res.Fit.Slope == 0 {
		t.Errorf("regression fit missing")
	}
	var buf bytes.Buffer
	if err := WriteLinreg(&buf, res, "a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3a") {
		t.Errorf("missing Figure 3a header")
	}
}

func TestVerifyLinreg(t *testing.T) {
	for _, name := range []string{"fine-grain-tree", "openmp-static", "cilk"} {
		rel, err := VerifyLinreg(name, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 1e-9 {
			t.Errorf("%s: relative error %v", name, rel)
		}
	}
}

func TestRunMultitenantSmall(t *testing.T) {
	opt := MultitenantOptions{
		Workers:       4,
		Tenants:       8,
		JobsPerTenant: 5,
		Workload:      "sum",
		Params:        JobParams{N: 1000},
	}
	res, err := RunMultitenant(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsTotal != 40 || res.Workload != "sum" {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.WallSeconds <= 0 || res.JobsPerSecond <= 0 || res.IterationsPerSecond <= 0 {
		t.Errorf("non-positive throughput: %+v", res)
	}
	if res.Stats.Completed != 40 {
		t.Errorf("completed = %d, want 40", res.Stats.Completed)
	}
	if res.Stats.IterationsDone != 40*1000 {
		t.Errorf("iterations = %d", res.Stats.IterationsDone)
	}
	var buf bytes.Buffer
	if err := WriteMultitenant(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Multi-tenant", "jobs/s", "lat p99"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("multitenant report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestBurstElasticBeatsRigidP95(t *testing.T) {
	// The convoy acceptance criterion: on the burst-after-big-job scenario,
	// elastic sub-teams must yield lower burst p95 latency than the rigid
	// (pre-elastic) scheduler, with reduction results still exact (RunBurst
	// verifies every burst job's closed-form sum). Timing comparisons are
	// retried a few times to ride out noisy CI machines; the gap is
	// structural (a full static block vs one chunk), so a genuine regression
	// fails every attempt.
	if testing.Short() {
		t.Skip("timing comparison; run without -short (tier-1)")
	}
	opt := BurstOptions{Workers: 4, BigN: 8192, BurstJobs: 8, BurstN: 256, IterNs: 4000}
	var lastElastic, lastRigid BurstResult
	for attempt := 0; attempt < 3; attempt++ {
		elastic, rigid, err := RunBurstComparison(opt)
		if err != nil {
			t.Fatal(err)
		}
		lastElastic, lastRigid = elastic, rigid
		// An attempt counts only when the p95 improved AND the sub-teams
		// visibly resized: which elastic mechanism serves the burst depends
		// on the machine's scheduling (workers peel off the big job, or
		// idle workers grow onto the under-provisioned tenants), and on a
		// badly oversubscribed box the big job can occasionally finish
		// before the burst even lands — retry those runs.
		if elastic.BurstP95 < rigid.BurstP95 && elastic.Peeled+elastic.Grown >= 1 {
			var buf bytes.Buffer
			if err := WriteBurst(&buf, elastic, rigid); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"convoy", "rigid", "elastic"} {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("burst report missing %q:\n%s", want, buf.String())
				}
			}
			return
		}
		t.Logf("attempt %d: elastic p95 %.3fms (grown %d, peeled %d) vs rigid p95 %.3fms; retrying",
			attempt, elastic.BurstP95*1e3, elastic.Grown, elastic.Peeled, rigid.BurstP95*1e3)
	}
	t.Fatalf("elastic burst p95 %.3fms did not beat rigid %.3fms (with a visible resize) in 3 attempts",
		lastElastic.BurstP95*1e3, lastRigid.BurstP95*1e3)
}

func TestSkewComparisonRuns(t *testing.T) {
	elastic, rigid, err := RunSkewComparison(SkewOptions{Workers: 4, N: 2048, Jobs: 2, IterNs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if elastic.MeanSeconds <= 0 || rigid.MeanSeconds <= 0 {
		t.Fatalf("non-positive run times: elastic %+v rigid %+v", elastic, rigid)
	}
	var buf bytes.Buffer
	if err := WriteSkew(&buf, elastic, rigid); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "straggler") {
		t.Errorf("skew report:\n%s", buf.String())
	}
}

func TestCalibratedWorkloadCache(t *testing.T) {
	// Building the same workload twice must reuse the calibrated work: the
	// serving daemon builds one request per HTTP job.
	a := calibrated(123)
	b := calibrated(123)
	if a != b {
		t.Errorf("calibrated(123) not cached: %+v vs %+v", a, b)
	}
	if a.UnitsPerIter < 1 || a.NsPerIter <= 0 {
		t.Errorf("implausible calibration: %+v", a)
	}
}

func TestJobWorkloadRegistry(t *testing.T) {
	names := JobWorkloads()
	if len(names) < 3 {
		t.Fatalf("job workload registry too small: %v", names)
	}
	for _, name := range names {
		req, err := NewJobRequest(name, JobParams{N: 100})
		if err != nil {
			t.Fatalf("NewJobRequest(%q): %v", name, err)
		}
		if req.N != 100 {
			t.Errorf("%s: N = %d", name, req.N)
		}
		if req.Body == nil && req.RBody == nil {
			t.Errorf("%s: request has no body", name)
		}
	}
	if _, err := NewJobRequest("no-such-workload", JobParams{}); err == nil {
		t.Errorf("unknown workload accepted")
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 13 {
		t.Fatalf("scenario registry: %v", names)
	}
	for _, want := range []string{"table1", "mpdata", "linreg", "ablation", "multitenant", "burst", "skew", "shardburst", "pipeline", "fairshare", "traceoverhead", "submitpath", "overload"} {
		if _, ok := scenarios[want]; !ok {
			t.Errorf("scenario %q not registered", want)
		}
	}
	if err := RunScenario("bogus", &bytes.Buffer{}); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	// The multitenant scenario is cheap enough to smoke-run here.
	var buf bytes.Buffer
	if err := RunScenario("multitenant", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Multi-tenant") {
		t.Errorf("scenario report:\n%s", buf.String())
	}
}

func TestRunAblationSmall(t *testing.T) {
	opt := AblationOptions{Workers: 2, LoopIters: 64, IterNs: 50, Loops: 10, Reps: 1, Fanouts: []int{2}}
	rows, err := RunAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 4 base variants + 1 fan-out
		t.Fatalf("got %d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.LoopUs <= 0 || r.ReduceLoopUs <= 0 {
			t.Errorf("row %q has non-positive measurements: %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, rows, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Errorf("missing ablation header")
	}
	if Elapsed(time.Now()) == "" {
		t.Errorf("Elapsed returned empty string")
	}
}

func TestRunShardBurstSmall(t *testing.T) {
	rep, err := RunShardBurstComparison(ShardBurstOptions{
		Workers: 4, Shards: 2, Tenants: 4, JobsPerTenant: 6, N: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Single.Shards != 1 || rep.Sharded.Shards != 2 {
		t.Fatalf("shard counts: single %d, sharded %d", rep.Single.Shards, rep.Sharded.Shards)
	}
	for _, r := range []ShardBurstResult{rep.Single, rep.Sharded} {
		if r.JobsTotal != 24 || r.Workers != 4 {
			t.Errorf("unexpected result shape: %+v", r)
		}
		if r.WallSeconds <= 0 || r.JobsPerSecond <= 0 || r.IterationsPerSecond <= 0 {
			t.Errorf("non-positive throughput: %+v", r)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("implausible latency quantiles: %+v", r)
		}
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
	var buf bytes.Buffer
	if err := WriteShardBurst(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sharded-pool", "jobs/s", "stolen", "throughput"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("shardburst report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestShardBurstJSONRoundTrip(t *testing.T) {
	// The machine-readable artifact must serialise with stable field names
	// and parse back: CI archives BENCH_shardburst.json per run to track the
	// perf trajectory.
	rep, err := RunShardBurstComparison(ShardBurstOptions{
		Workers: 2, Shards: 2, Tenants: 2, JobsPerTenant: 4, N: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_shardburst.json")
	if err := WriteShardBurstJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardBurstReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, data)
	}
	if back.Sharded.JobsPerSecond != rep.Sharded.JobsPerSecond || back.Workers != rep.Workers {
		t.Errorf("round trip changed the report: %+v vs %+v", back, rep)
	}
	for _, want := range []string{"throughput_speedup", "latency_p95_seconds", "jobs_per_second", "stolen_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing stable field %q:\n%s", want, data)
		}
	}
}

func TestShardBurstAcceptance(t *testing.T) {
	// The PR acceptance criterion — n-shard aggregate throughput >= 1.5x the
	// 1-shard configuration — holds in the dispatcher-bound regime on
	// machines with enough parallelism. It is asserted only when
	// SHARDBURST_STRICT=1 (set on capable CI runners): on small or
	// oversubscribed boxes the single dispatcher is not the bottleneck and
	// the ratio is noise.
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	if os.Getenv("SHARDBURST_STRICT") == "" {
		t.Skip("set SHARDBURST_STRICT=1 to assert the 1.5x throughput criterion (needs a dedicated 8+ core machine)")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("only %d procs; the criterion is defined for 8+ core runners", runtime.GOMAXPROCS(0))
	}
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		rep, err := RunShardBurstComparison(ShardBurstOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Speedup > best {
			best = rep.Speedup
		}
		if best >= 1.5 {
			t.Logf("sharded throughput %.2fx single-shard (stolen %d, lent %d)",
				rep.Speedup, rep.Sharded.Stolen, rep.Sharded.Lent)
			return
		}
	}
	t.Fatalf("sharded throughput only %.2fx single-shard, want >= 1.5x", best)
}
