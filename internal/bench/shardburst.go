package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/stats"
	"loopsched/internal/trace"
)

// ShardBurstOptions configures the sharded-throughput scenario: many
// concurrent tenants hammer the pool with small jobs (the dispatcher-bound
// regime a single admission event loop serializes on) mixed with occasional
// big skewed jobs (the burst/skew mix that leaves rigid partitions
// imbalanced). The same workload runs on one shard and on n shards; the
// shard count is the only variable.
type ShardBurstOptions struct {
	// Workers is the total worker count; <= 0 selects GOMAXPROCS capped at
	// 16 so the scenario stays meaningful on huge machines.
	Workers int
	// Shards is the sharded configuration's shard count; <= 0 selects
	// min(4, Workers).
	Shards int
	// Tenants is the number of concurrent submitters; <= 0 selects
	// 4 x Workers (enough contention to expose the admission loop).
	Tenants int
	// JobsPerTenant is the number of jobs each tenant submits back to back;
	// <= 0 selects 30.
	JobsPerTenant int
	// N is the per-job iteration count of the small jobs; <= 0 selects 256
	// (microseconds of work: admission cost is a visible fraction).
	N int
	// BigEvery makes every BigEvery'th job of each tenant a big skewed job
	// of 16N iterations; <= 0 selects 8. Set very large to disable.
	BigEvery int
	// IterNs is the target per-iteration cost; <= 0 selects 200.
	IterNs float64
	// StealInterval and DisableStealing pass through to the sharded pool.
	StealInterval   time.Duration
	DisableStealing bool
	// Tracer, when set, runs the pool with lifecycle tracing on (the
	// trace-overhead scenario measures the cost); nil runs untraced.
	Tracer *trace.Tracer
}

func (o *ShardBurstOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 16 {
			o.Workers = 16
		}
	}
	if o.Shards <= 0 {
		o.Shards = 4
		if o.Shards > o.Workers {
			o.Shards = o.Workers
		}
	}
	if o.Tenants <= 0 {
		o.Tenants = 4 * o.Workers
	}
	if o.JobsPerTenant <= 0 {
		o.JobsPerTenant = 30
	}
	if o.N <= 0 {
		o.N = 256
	}
	if o.BigEvery <= 0 {
		o.BigEvery = 8
	}
	if o.IterNs <= 0 {
		o.IterNs = 200
	}
}

// ShardBurstResult is the outcome of one shard-burst run.
type ShardBurstResult struct {
	Shards    int `json:"shards"`
	Workers   int `json:"workers"`
	Tenants   int `json:"tenants"`
	JobsTotal int `json:"jobs_total"`
	// WallSeconds is the end-to-end duration; JobsPerSecond and
	// IterationsPerSecond the aggregate throughput.
	WallSeconds         float64 `json:"wall_seconds"`
	JobsPerSecond       float64 `json:"jobs_per_second"`
	IterationsPerSecond float64 `json:"iterations_per_second"`
	// P50/P95/P99 are client-side job latencies in seconds (submission to
	// completion, measured by each tenant).
	P50 float64 `json:"latency_p50_seconds"`
	P95 float64 `json:"latency_p95_seconds"`
	P99 float64 `json:"latency_p99_seconds"`
	// Cross-shard traffic and elastic resize counters, summed over shards.
	Stolen int64 `json:"stolen_total"`
	Lent   int64 `json:"lent_total"`
	Grown  int64 `json:"grown_total"`
	Peeled int64 `json:"peeled_total"`
}

// RunShardBurst runs the scenario once on the given shard count. Small jobs
// are verified reductions; a wrong answer fails the run.
func RunShardBurst(opt ShardBurstOptions) (ShardBurstResult, error) {
	opt.normalize()
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{
			Workers:      opt.Workers,
			LockOSThread: LockThreads,
			Tracer:       opt.Tracer,
			Name:         "shardburst",
		},
		Shards:          opt.Shards,
		StealInterval:   opt.StealInterval,
		DisableStealing: opt.DisableStealing,
	})
	res := ShardBurstResult{
		Shards:    p.Shards(),
		Workers:   p.P(),
		Tenants:   opt.Tenants,
		JobsTotal: opt.Tenants * opt.JobsPerTenant,
	}
	smallReq, err := NewJobRequest("sum", JobParams{N: opt.N})
	if err != nil {
		p.Close()
		return res, err
	}
	bigReq, err := NewJobRequest("spinskew", JobParams{N: 16 * opt.N, IterNs: opt.IterNs})
	if err != nil {
		p.Close()
		return res, err
	}
	wantSmall := float64(opt.N) * float64(opt.N-1) / 2

	lats := make([][]float64, opt.Tenants)
	errs := make([]error, opt.Tenants)
	var iters int64
	var itersMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for tnt := 0; tnt < opt.Tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			lats[tnt] = make([]float64, 0, opt.JobsPerTenant)
			var myIters int64
			for i := 0; i < opt.JobsPerTenant; i++ {
				req, n := smallReq, opt.N
				big := (tnt+i)%opt.BigEvery == opt.BigEvery-1
				if big {
					req, n = bigReq, 16*opt.N
				}
				jobStart := time.Now()
				j, err := p.Submit(req)
				if err != nil {
					errs[tnt] = err
					return
				}
				v, err := j.Wait()
				if err != nil {
					errs[tnt] = err
					return
				}
				lats[tnt] = append(lats[tnt], time.Since(jobStart).Seconds())
				if !big && v != wantSmall {
					errs[tnt] = fmt.Errorf("bench: tenant %d job %d returned %v, want %v", tnt, i, v, wantSmall)
					return
				}
				myIters += int64(n)
			}
			itersMu.Lock()
			iters += myIters
			itersMu.Unlock()
		}(tnt)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	st := p.Stats()
	p.Close()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Stolen, res.Lent = st.Total.Stolen, st.Total.Lent
	res.Grown, res.Peeled = st.Total.Grown, st.Total.Peeled
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	q := stats.Quantiles(all, 0.5, 0.95, 0.99)
	res.P50, res.P95, res.P99 = q[0], q[1], q[2]
	if res.WallSeconds > 0 {
		res.JobsPerSecond = float64(res.JobsTotal) / res.WallSeconds
		res.IterationsPerSecond = float64(iters) / res.WallSeconds
	}
	return res, nil
}

// ShardBurstReport is the machine-readable outcome of the 1-shard-vs-n-shard
// comparison, serialised to BENCH_shardburst.json so the perf trajectory is
// tracked across PRs.
type ShardBurstReport struct {
	Workers int              `json:"workers"`
	Single  ShardBurstResult `json:"single_shard"`
	Sharded ShardBurstResult `json:"sharded"`
	// Speedup is sharded jobs/s over single-shard jobs/s.
	Speedup float64 `json:"throughput_speedup"`
	// TailRatio is single-shard p95 latency over sharded p95.
	TailRatio float64 `json:"p95_tail_ratio"`
}

// RunShardBurstComparison runs the scenario on one shard and on opt.Shards
// shards, same options otherwise.
func RunShardBurstComparison(opt ShardBurstOptions) (ShardBurstReport, error) {
	opt.normalize()
	rep := ShardBurstReport{Workers: opt.Workers}
	single := opt
	single.Shards = 1
	var err error
	if rep.Single, err = RunShardBurst(single); err != nil {
		return rep, err
	}
	if rep.Sharded, err = RunShardBurst(opt); err != nil {
		return rep, err
	}
	if rep.Single.JobsPerSecond > 0 {
		rep.Speedup = rep.Sharded.JobsPerSecond / rep.Single.JobsPerSecond
	}
	if rep.Sharded.P95 > 0 {
		rep.TailRatio = rep.Single.P95 / rep.Sharded.P95
	}
	return rep, nil
}

// WriteShardBurst renders the comparison as a table.
func WriteShardBurst(w io.Writer, rep ShardBurstReport) error {
	fmt.Fprintf(w, "Sharded-pool burst/skew scenario: %d tenants x %d jobs on %d workers, 1 vs %d shards\n",
		rep.Single.Tenants, rep.Single.JobsTotal/max(rep.Single.Tenants, 1), rep.Workers, rep.Sharded.Shards)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shards\tjobs/s\titer/s\tp50 (ms)\tp95 (ms)\tp99 (ms)\tstolen\tlent\tgrown\tpeeled")
	row := func(r ShardBurstResult) {
		fmt.Fprintf(tw, "%d\t%.0f\t%.3g\t%.3f\t%.3f\t%.3f\t%d\t%d\t%d\t%d\n",
			r.Shards, r.JobsPerSecond, r.IterationsPerSecond,
			r.P50*1e3, r.P95*1e3, r.P99*1e3, r.Stolen, r.Lent, r.Grown, r.Peeled)
	}
	row(rep.Single)
	row(rep.Sharded)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d-shard throughput is %.2fx the single-shard configuration (p95 tail %.2fx lower)\n",
		rep.Sharded.Shards, rep.Speedup, rep.TailRatio)
	return nil
}

// WriteShardBurstJSON writes the comparison report to path as indented JSON
// (the BENCH_shardburst.json artifact).
func WriteShardBurstJSON(path string, rep ShardBurstReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
