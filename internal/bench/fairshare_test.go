package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestFairShareScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fairshare scenario runs for a few hundred ms; skipped in -short")
	}
	rep, err := RunFairShareComparison(FairShareOptions{
		Workers: 2, Streams: 4, N: 512, Duration: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fair.ItersA <= 0 || rep.Fair.ItersB <= 0 {
		t.Fatalf("policy run served no work: %+v", rep.Fair)
	}
	if rep.FIFO.ItersA <= 0 || rep.FIFO.ItersB <= 0 {
		t.Fatalf("FIFO run served no work: %+v", rep.FIFO)
	}
	if rep.Fair.Policy != "wfq" || rep.FIFO.Policy != "fifo" {
		t.Errorf("policies = %q, %q; want wfq, fifo", rep.Fair.Policy, rep.FIFO.Policy)
	}
	var buf bytes.Buffer
	if err := WriteFairShare(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty report")
	}
	// The JSON artifact round-trips with the stable field names benchcmp
	// compares (fair_share_error, high_prio_p95_speedup).
	path := filepath.Join(t.TempDir(), "BENCH_fairshare.json")
	if err := WriteFairShareJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"target_ratio", "fair", "fifo", "fair_share_error", "high_prio_p95_speedup"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("artifact missing %q:\n%s", key, data)
		}
	}
}

func TestFairShareAcceptance(t *testing.T) {
	// The ISSUE 5 acceptance criterion: under saturation with two tenants
	// at 3:1 weights, the achieved served-work ratio must be within 15% of
	// 3.0 and the high-priority p95 completion latency at least 2x lower
	// than the FIFO baseline. Asserted only with FAIRSHARE_STRICT=1 on an
	// 8+ core machine (small or shared boxes starve the load generators and
	// measure scheduler-independent noise); report-only otherwise.
	if os.Getenv("FAIRSHARE_STRICT") == "" {
		t.Skip("set FAIRSHARE_STRICT=1 to assert the 3:1-within-15% and 2x high-prio criteria (needs a quiet 8+ core machine)")
	}
	if runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("GOMAXPROCS = %d < 8: the saturation regime needs headroom for the load generators", runtime.GOMAXPROCS(0))
	}
	rep, err := RunFairShareComparison(FairShareOptions{Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("share ratio %.3f (target %.1f, error %.1f%%); FIFO ratio %.3f; hp p95 %.3fms vs FIFO %.3fms (%.2fx); preempted %d",
		rep.Fair.ShareRatio, rep.TargetRatio, rep.FairShareError*100, rep.FIFO.ShareRatio,
		rep.Fair.HighPrioP95*1e3, rep.FIFO.HighPrioP95*1e3, rep.HighPrioP95Speedup, rep.Fair.Preempted)
	if rep.FairShareError > 0.15 {
		t.Errorf("achieved share ratio %.3f deviates %.1f%% from the 3:1 target, want <= 15%%",
			rep.Fair.ShareRatio, rep.FairShareError*100)
	}
	if rep.HighPrioP95Speedup < 2 {
		t.Errorf("high-priority p95 only %.2fx lower than FIFO, want >= 2x", rep.HighPrioP95Speedup)
	}
}
