package bench

import (
	"math"
	"testing"

	"loopsched/internal/jobs"
)

// runKernel submits the named kernel workload once and returns its result.
func runKernel(t *testing.T, s *jobs.Scheduler, name string, p JobParams) float64 {
	t.Helper()
	req, err := NewJobRequest(name, p)
	if err != nil {
		t.Fatalf("NewJobRequest(%q): %v", name, err)
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit %q: %v", name, err)
	}
	v, err := j.Wait()
	if err != nil {
		t.Fatalf("wait %q: %v", name, err)
	}
	return v
}

// TestKernelWorkloadsRegistered asserts the four numeric kernels are served
// workloads and produce finite, positive reductions under a real scheduler.
func TestKernelWorkloadsRegistered(t *testing.T) {
	names := JobWorkloads()
	for _, want := range []string{"mpdata", "linreg", "grid", "mapreduce"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("kernel workload %q not registered (have %v)", want, names)
		}
	}

	restore := LockThreads
	LockThreads = false
	defer func() { LockThreads = restore }()
	s := jobs.New(jobs.Config{Workers: 2, Name: "kernels"})
	defer s.Close()
	for _, name := range []string{"mpdata", "linreg", "grid", "mapreduce"} {
		v := runKernel(t, s, name, JobParams{N: 4096})
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%s: result = %v, want a finite positive reduction", name, v)
		}
	}
}

// TestKernelWorkloadsDeterministic replays each kernel twice on one worker
// with a single chunk: identical inputs must reduce to the identical value.
func TestKernelWorkloadsDeterministic(t *testing.T) {
	restore := LockThreads
	LockThreads = false
	defer func() { LockThreads = restore }()
	s := jobs.New(jobs.Config{Workers: 1, Name: "kernels-det"})
	defer s.Close()
	const n = 2048
	p := JobParams{N: n, MaxWorkers: 1, Grain: n}
	for _, name := range []string{"mpdata", "linreg", "grid", "mapreduce"} {
		a := runKernel(t, s, name, p)
		b := runKernel(t, s, name, p)
		if a != b {
			t.Errorf("%s: two single-worker runs differ: %v vs %v", name, a, b)
		}
	}
}

// TestMapreduceClosedForm pins the mapreduce workload to its closed form:
// every input byte contributes its bucket index plus one, and all partial
// sums are integer-valued, so the commutative fold is exact in float64.
func TestMapreduceClosedForm(t *testing.T) {
	restore := LockThreads
	LockThreads = false
	defer func() { LockThreads = restore }()
	ks := kernelInput()
	const n = 10000
	var want float64
	for i := 0; i < n; i++ {
		want += float64(int(ks.histData[i%len(ks.histData)])&(histKeys-1) + 1)
	}
	s := jobs.New(jobs.Config{Workers: 4, Name: "kernels-mr"})
	defer s.Close()
	if got := runKernel(t, s, "mapreduce", JobParams{N: n}); got != want {
		t.Errorf("mapreduce over %d inputs = %v, want %v", n, got, want)
	}
}

// TestLinregClosedForm checks the linreg workload against a sequential fold
// over the same virtual range (all statistics are integer-valued, so the
// parallel commutative fold is exact).
func TestLinregClosedForm(t *testing.T) {
	restore := LockThreads
	LockThreads = false
	defer func() { LockThreads = restore }()
	ks := kernelInput()
	const n = 3000
	emit := make([]float64, ks.ljob.NumKeys)
	mapWrapped(ks.ljob, 0, 0, n, len(ks.pts.Points), emit)
	var want float64
	for _, v := range emit {
		want += v
	}
	s := jobs.New(jobs.Config{Workers: 4, Name: "kernels-lr"})
	defer s.Close()
	if got := runKernel(t, s, "linreg", JobParams{N: n}); got != want {
		t.Errorf("linreg over %d points = %v, want %v", n, got, want)
	}
}
