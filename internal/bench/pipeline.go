package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"loopsched/internal/jobs"
)

// PipelineOptions configures the pipeline scenario: concurrent tenants each
// run a fan-out/fan-in stage graph (source -> FanOut parallel transforms ->
// verified reducing sink), and the same graph executes two ways — submitted
// as one dependency DAG up front, and submitted stage by stage with the
// client awaiting each stage before submitting the next. The makespan delta
// is the cost (or gain) of expressing the stages as runtime dependencies
// instead of client-side joins.
type PipelineOptions struct {
	// Workers is the total worker count; <= 0 selects GOMAXPROCS capped at
	// 16.
	Workers int
	// Shards is the shard count; <= 0 derives it from the topology.
	Shards int
	// Chains is the number of concurrent pipelines; <= 0 selects 2 x
	// Workers.
	Chains int
	// Stages is the number of fan-out stages per pipeline between the
	// source and the sink; <= 0 selects 3.
	Stages int
	// FanOut is the number of parallel jobs per middle stage; <= 0 selects
	// 3.
	FanOut int
	// N is the per-job iteration count; <= 0 selects 2048.
	N int
	// IterNs is the target per-iteration cost of the spin stages; <= 0
	// selects 150.
	IterNs float64
	// Rounds is how many times each tenant repeats its pipeline; <= 0
	// selects 4.
	Rounds int
}

func (o *PipelineOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 16 {
			o.Workers = 16
		}
	}
	if o.Chains <= 0 {
		o.Chains = 2 * o.Workers
	}
	if o.Stages <= 0 {
		o.Stages = 3
	}
	if o.FanOut <= 0 {
		o.FanOut = 3
	}
	if o.N <= 0 {
		o.N = 2048
	}
	if o.IterNs <= 0 {
		o.IterNs = 150
	}
	if o.Rounds <= 0 {
		o.Rounds = 4
	}
}

// PipelineResult is the outcome of running the scenario in one submission
// mode.
type PipelineResult struct {
	Mode      string `json:"mode"` // "dag" or "await"
	Chains    int    `json:"chains"`
	JobsTotal int    `json:"jobs_total"`
	// MakespanSeconds is the end-to-end wall time for all chains.
	MakespanSeconds float64 `json:"makespan_seconds"`
	// JobsPerSecond is the aggregate throughput over all stage jobs.
	JobsPerSecond float64 `json:"jobs_per_second"`
	// Released and DepCanceled are the runtime's dependency counters
	// (always zero in await mode, which uses no dependency edges).
	Released    int64 `json:"released_total"`
	DepCanceled int64 `json:"dep_canceled_total"`
}

// runChain executes one fan-out/fan-in pipeline on p. In dag mode the whole
// stage graph is submitted up front with dependency edges; in await mode the
// client waits for each stage before submitting the next (the baseline the
// DAG submission is measured against). The sink is a verified sum.
func runChain(p *jobs.Sharded, opt PipelineOptions, dag bool, spinReq jobs.Request, wantSink float64) error {
	sinkReq, err := NewJobRequest("sum", JobParams{N: opt.N})
	if err != nil {
		return err
	}
	var prev []*jobs.Job
	submitStage := func(req jobs.Request, width int) ([]*jobs.Job, error) {
		cur := make([]*jobs.Job, 0, width)
		if dag {
			req.After = prev
		}
		for i := 0; i < width; i++ {
			j, err := p.Submit(req)
			if err != nil {
				return nil, err
			}
			cur = append(cur, j)
		}
		if !dag {
			for _, j := range cur {
				if _, err := j.Wait(); err != nil {
					return nil, err
				}
			}
		}
		return cur, nil
	}
	if prev, err = submitStage(spinReq, 1); err != nil { // source
		return err
	}
	for s := 0; s < opt.Stages; s++ {
		if prev, err = submitStage(spinReq, opt.FanOut); err != nil {
			return err
		}
	}
	sink, err := submitStage(sinkReq, 1)
	if err != nil {
		return err
	}
	v, err := sink[0].Wait()
	if err != nil {
		return err
	}
	if v != wantSink {
		return fmt.Errorf("bench: pipeline sink = %v, want %v", v, wantSink)
	}
	return nil
}

// RunPipeline runs the scenario once in the given submission mode.
func RunPipeline(opt PipelineOptions, dag bool) (PipelineResult, error) {
	opt.normalize()
	p := jobs.NewSharded(jobs.ShardedConfig{
		Config: jobs.Config{
			Workers:      opt.Workers,
			LockOSThread: LockThreads,
			Name:         "pipeline",
		},
		Shards: opt.Shards,
	})
	mode := "await"
	if dag {
		mode = "dag"
	}
	jobsPerChain := 1 + opt.Stages*opt.FanOut + 1
	res := PipelineResult{
		Mode:      mode,
		Chains:    opt.Chains,
		JobsTotal: opt.Chains * opt.Rounds * jobsPerChain,
	}
	spinReq, err := NewJobRequest("spin", JobParams{N: opt.N, IterNs: opt.IterNs})
	if err != nil {
		p.Close()
		return res, err
	}
	wantSink := float64(opt.N) * float64(opt.N-1) / 2

	errs := make([]error, opt.Chains)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Chains; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < opt.Rounds; r++ {
				if err := runChain(p, opt, dag, spinReq, wantSink); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	res.MakespanSeconds = time.Since(start).Seconds()
	st := p.Stats()
	p.Close()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Released, res.DepCanceled = st.Total.Released, st.Total.DepCanceled
	if res.MakespanSeconds > 0 {
		res.JobsPerSecond = float64(res.JobsTotal) / res.MakespanSeconds
	}
	return res, nil
}

// PipelineReport is the machine-readable outcome of the dag-vs-await
// comparison, serialised to BENCH_pipeline.json so the perf trajectory is
// tracked across PRs.
type PipelineReport struct {
	Workers int            `json:"workers"`
	Stages  int            `json:"stages"`
	FanOut  int            `json:"fan_out"`
	N       int            `json:"n"`
	Dag     PipelineResult `json:"dag"`
	Await   PipelineResult `json:"await"`
	// OverheadPercent is the DAG makespan relative to the await baseline:
	// positive means the dependency submission was slower, negative faster.
	// The acceptance criterion is <= 5%.
	OverheadPercent float64 `json:"overhead_percent"`
	// Speedup is await makespan over dag makespan (> 1: the DAG won).
	Speedup float64 `json:"makespan_speedup"`
}

// RunPipelineComparison runs the scenario in both submission modes, same
// options.
func RunPipelineComparison(opt PipelineOptions) (PipelineReport, error) {
	opt.normalize()
	rep := PipelineReport{Workers: opt.Workers, Stages: opt.Stages, FanOut: opt.FanOut, N: opt.N}
	var err error
	if rep.Await, err = RunPipeline(opt, false); err != nil {
		return rep, err
	}
	if rep.Dag, err = RunPipeline(opt, true); err != nil {
		return rep, err
	}
	if rep.Await.MakespanSeconds > 0 {
		rep.OverheadPercent = (rep.Dag.MakespanSeconds/rep.Await.MakespanSeconds - 1) * 100
	}
	if rep.Dag.MakespanSeconds > 0 {
		rep.Speedup = rep.Await.MakespanSeconds / rep.Dag.MakespanSeconds
	}
	return rep, nil
}

// WritePipeline renders the comparison as a table.
func WritePipeline(w io.Writer, rep PipelineReport) error {
	fmt.Fprintf(w, "Pipeline scenario: %d chains x (1 + %dx%d + 1) stage jobs of %d iterations on %d workers\n",
		rep.Dag.Chains, rep.Stages, rep.FanOut, rep.N, rep.Workers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tmakespan (ms)\tjobs/s\treleased\tdep-canceled")
	row := func(r PipelineResult) {
		fmt.Fprintf(tw, "%s\t%.3f\t%.0f\t%d\t%d\n",
			r.Mode, r.MakespanSeconds*1e3, r.JobsPerSecond, r.Released, r.DepCanceled)
	}
	row(rep.Await)
	row(rep.Dag)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nDAG submission makespan is %+.2f%% vs awaiting each stage (speedup %.2fx; acceptance: <= 5%% overhead)\n",
		rep.OverheadPercent, rep.Speedup)
	return nil
}

// WritePipelineJSON writes the comparison report to path as indented JSON
// (the BENCH_pipeline.json artifact).
func WritePipelineJSON(path string, rep PipelineReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
