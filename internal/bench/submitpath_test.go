package bench

import (
	"io"
	"os"
	"testing"
)

// TestSubmitPathSmoke verifies the measurement machinery on a tiny
// configuration: both phases run, every metric is populated and internally
// consistent. The zero-alloc and batch-amortization criteria are asserted
// separately under SUBMITPATH_STRICT.
func TestSubmitPathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke test")
	}
	res, err := RunSubmitPath(SubmitPathOptions{Workers: 2, Jobs: 512, Warmup: 64, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.NsPerSubmit <= 0 {
		t.Errorf("ns/submit = %g, want > 0", res.NsPerSubmit)
	}
	if res.DispatchP50Ns <= 0 || res.DispatchP50Ns > res.DispatchP95Ns || res.DispatchP95Ns > res.DispatchP99Ns {
		t.Errorf("dispatch percentiles not ordered: p50=%g p95=%g p99=%g",
			res.DispatchP50Ns, res.DispatchP95Ns, res.DispatchP99Ns)
	}
	if res.BatchSize != 32 || res.BatchNsPerSubmit <= 0 {
		t.Errorf("batched phase did not run: size=%d ns/submit=%g", res.BatchSize, res.BatchNsPerSubmit)
	}
	if err := WriteSubmitPath(io.Discard, res); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitPathAcceptance is the refactor's acceptance criterion: the
// steady-state submit path allocates nothing (pooled jobs, by-value
// handoffs), and batched intake amortizes admission below the single-submit
// cost. Asserted only with SUBMITPATH_STRICT=1 (set on capable CI runners,
// never under -race: the race runtime allocates on paths the production
// build does not).
func TestSubmitPathAcceptance(t *testing.T) {
	if os.Getenv("SUBMITPATH_STRICT") == "" {
		t.Skip("set SUBMITPATH_STRICT=1 to assert the zero-alloc and batch-amortization criteria (needs a quiet machine, non-race build)")
	}
	res, err := RunSubmitPath(SubmitPathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = WriteSubmitPath(os.Stderr, res)
	// The window tolerates a stray background allocation (GC bookkeeping,
	// timer rearms) but not a per-submit one.
	const allocBudget = 0.05
	if res.AllocsPerSubmit > allocBudget {
		t.Errorf("allocs/submit = %g, want <= %g (submit path must not allocate)", res.AllocsPerSubmit, allocBudget)
	}
	if res.BatchAllocsPerSubmit > allocBudget {
		t.Errorf("batch allocs/submit = %g, want <= %g", res.BatchAllocsPerSubmit, allocBudget)
	}
	if res.BatchNsPerSubmit >= res.NsPerSubmit {
		t.Errorf("batch ns/submit = %g not below single-submit %g (batched intake must amortize admission)",
			res.BatchNsPerSubmit, res.NsPerSubmit)
	}
}
