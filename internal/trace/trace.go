// Package trace provides cheap, always-on counters of scheduler events.
// They cost one padded atomic increment per event and are used by the
// ablation benchmarks and the test suite to verify structural claims of the
// paper — for example, that a reducing loop under the fine-grain scheduler
// performs exactly P-1 combine operations, or that the half-barrier
// scheduler executes half as many barrier phases as the full-barrier one.
package trace

import "sync/atomic"

// Event enumerates the counted scheduler events.
type Event int

// Counted events.
const (
	// LoopsScheduled counts parallel loops started.
	LoopsScheduled Event = iota
	// ForkPhases counts fork-side synchronisation phases (release waves or
	// full barriers at the start of a loop).
	ForkPhases
	// JoinPhases counts join-side synchronisation phases.
	JoinPhases
	// BarrierEpisodes counts full-barrier episodes.
	BarrierEpisodes
	// Reductions counts combine operations applied to reduction views.
	Reductions
	// Steals counts successful work-stealing events.
	Steals
	// FailedSteals counts steal attempts that found the victim empty.
	FailedSteals
	// Spawns counts tasks spawned by the work-stealing runtime.
	Spawns
	// ChunksClaimed counts dynamically claimed chunks.
	ChunksClaimed
	// ViewsCreated counts reducer views created lazily.
	ViewsCreated

	numEvents
)

var eventNames = [...]string{
	LoopsScheduled:  "loops",
	ForkPhases:      "fork-phases",
	JoinPhases:      "join-phases",
	BarrierEpisodes: "barrier-episodes",
	Reductions:      "reductions",
	Steals:          "steals",
	FailedSteals:    "failed-steals",
	Spawns:          "spawns",
	ChunksClaimed:   "chunks-claimed",
	ViewsCreated:    "views-created",
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return "unknown"
}

type paddedCounter struct {
	v atomic.Int64
	_ [120]byte
}

// Counters is a set of event counters. The zero value is ready to use; a
// nil *Counters is also valid and counts nothing, so schedulers can be run
// with tracing disabled at zero cost beyond a nil check.
type Counters struct {
	c [numEvents]paddedCounter
}

// New returns a fresh counter set.
func New() *Counters { return &Counters{} }

// Add increments the counter for ev by n. Safe on a nil receiver.
func (t *Counters) Add(ev Event, n int64) {
	if t == nil {
		return
	}
	t.c[ev].v.Add(n)
}

// Inc increments the counter for ev by one. Safe on a nil receiver.
func (t *Counters) Inc(ev Event) { t.Add(ev, 1) }

// Get returns the current value of the counter for ev. A nil receiver
// returns 0.
func (t *Counters) Get(ev Event) int64 {
	if t == nil {
		return 0
	}
	return t.c[ev].v.Load()
}

// Reset zeroes all counters. Safe on a nil receiver.
func (t *Counters) Reset() {
	if t == nil {
		return
	}
	for i := range t.c {
		t.c[i].v.Store(0)
	}
}

// Snapshot returns a map of event name to value for reporting.
func (t *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, int(numEvents))
	for e := Event(0); e < numEvents; e++ {
		out[e.String()] = t.Get(e)
	}
	return out
}
