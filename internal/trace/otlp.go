// otlp.go renders a finished JobTrace as an OTLP-compatible JSON document
// (the protobuf-JSON mapping of opentelemetry-proto's ExportTraceServiceRequest:
// hex-encoded 16-byte trace ids and 8-byte span ids, int64 timestamps encoded
// as decimal strings, attributes as keyed AnyValue wrappers). A future
// OpenTelemetry bridge only needs to forward the document; no OTel dependency
// is taken here.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"
)

// OTLPDocument is the top-level trace export payload.
type OTLPDocument struct {
	ResourceSpans []OTLPResourceSpans `json:"resourceSpans"`
}

// OTLPResourceSpans groups the spans of one resource (one loopd process).
type OTLPResourceSpans struct {
	Resource   OTLPResource     `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// OTLPResource carries resource attributes (service.name).
type OTLPResource struct {
	Attributes []OTLPAttr `json:"attributes,omitempty"`
}

// OTLPScopeSpans groups spans emitted by one instrumentation scope.
type OTLPScopeSpans struct {
	Scope OTLPScope  `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPScope names the instrumentation scope.
type OTLPScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// OTLPSpan is one span in protobuf-JSON shape. SpanKind 1 is SPAN_KIND_INTERNAL.
type OTLPSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []OTLPAttr `json:"attributes,omitempty"`
}

// OTLPAttr is one key/value attribute.
type OTLPAttr struct {
	Key   string       `json:"key"`
	Value OTLPAnyValue `json:"value"`
}

// OTLPAnyValue is the protobuf-JSON AnyValue: exactly one field set.
// Int64 values are encoded as decimal strings per the proto3 JSON mapping.
type OTLPAnyValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
	BoolValue   bool   `json:"boolValue,omitempty"`
}

func strAttr(key, v string) OTLPAttr {
	return OTLPAttr{Key: key, Value: OTLPAnyValue{StringValue: v}}
}

func intAttr(key string, v int64) OTLPAttr {
	return OTLPAttr{Key: key, Value: OTLPAnyValue{IntValue: strconv.FormatInt(v, 10)}}
}

func boolAttr(key string, v bool) OTLPAttr {
	return OTLPAttr{Key: key, Value: OTLPAnyValue{BoolValue: v}}
}

// traceID is the 16-byte hex trace id derived from the job id.
func (jt *JobTrace) traceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[8:], jt.ID)
	return hex.EncodeToString(b[:])
}

// spanID is the 8-byte hex span id for span index idx of this job. Job ids
// stay far below 2^48 in practice, so the (id<<16 | idx) packing is unique.
func (jt *JobTrace) spanID(idx int) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], jt.ID<<16|uint64(idx+1))
	return hex.EncodeToString(b[:])
}

const spanKindInternal = 1

// OTLP renders the trace as an OTLP-compatible span tree:
//
//	job                      submitted → joined/canceled
//	├── blocked              blocked → released        (dependency wait, if any)
//	├── queued               admitted → dispatched     (admission queue wait)
//	└── run                  dispatched → joined
//	    ├── wave             one per participant stint (chunk wave)
//	    └── ...
//
// Open waves (the completing participant records its end just after the join
// wave publishes) fall back to the trace end time. service names the
// resource's service.name attribute.
func (jt *JobTrace) OTLP(service string) OTLPDocument {
	if jt == nil {
		return OTLPDocument{}
	}
	jt.mu.Lock()
	events := append([]StreamEvent(nil), jt.events...)
	waves := append([]Wave(nil), jt.waves...)
	truncated := jt.truncated
	jt.mu.Unlock()

	var submitted, blocked, released, admitted, dispatched, end int64
	outcome := "completed"
	finalShard, initialWorkers, peakWorkers := 0, 0, 0
	recovered := false
	type pause struct {
		start, end int64
		detail     string
	}
	var pauses []pause
	for _, ev := range events {
		switch ev.Type {
		case eventTypeNames[EvSubmitted]:
			submitted = ev.TimeUnixNano
			if ev.Detail == "recovered" {
				recovered = true
			}
		case eventTypeNames[EvSuspended]:
			pauses = append(pauses, pause{start: ev.TimeUnixNano, detail: ev.Detail})
		case eventTypeNames[EvResumed]:
			if n := len(pauses); n > 0 && pauses[n-1].end == 0 {
				pauses[n-1].end = ev.TimeUnixNano
			}
		case eventTypeNames[EvBlocked]:
			blocked = ev.TimeUnixNano
		case eventTypeNames[EvReleased]:
			released = ev.TimeUnixNano
		case eventTypeNames[EvAdmitted]:
			admitted = ev.TimeUnixNano
		case eventTypeNames[EvDispatched]:
			dispatched = ev.TimeUnixNano
			initialWorkers = ev.Workers
		case eventTypeNames[EvJoined]:
			end = ev.TimeUnixNano
			peakWorkers = ev.Workers
		case eventTypeNames[EvCanceled]:
			if end == 0 {
				end = ev.TimeUnixNano
			}
			outcome = "canceled"
		}
		finalShard = ev.Shard
	}
	if len(events) > 0 {
		if submitted == 0 {
			submitted = events[0].TimeUnixNano
		}
		if end == 0 {
			end = events[len(events)-1].TimeUnixNano
		}
	}

	traceID := jt.traceID()
	nano := func(v int64) string { return strconv.FormatInt(v, 10) }

	rootAttrs := []OTLPAttr{
		intAttr("job.id", int64(jt.ID)),
		strAttr("tenant", jt.Tenant),
		intAttr("priority", int64(jt.Priority)),
		intAttr("shard", int64(finalShard)),
		strAttr("outcome", outcome),
	}
	if jt.Label != "" {
		rootAttrs = append(rootAttrs, strAttr("label", jt.Label))
	}
	if peakWorkers > 0 {
		rootAttrs = append(rootAttrs, intAttr("workers.peak", int64(peakWorkers)))
	}
	if truncated > 0 {
		rootAttrs = append(rootAttrs, intAttr("trace.truncated", int64(truncated)))
	}
	if recovered {
		// The job was re-admitted from a checkpoint after a restart; this
		// span tree continues the pre-crash lifecycle under the same id.
		rootAttrs = append(rootAttrs, boolAttr("recovered", true))
	}

	idx := 0
	rootID := jt.spanID(idx)
	spans := []OTLPSpan{{
		TraceID:           traceID,
		SpanID:            rootID,
		Name:              "job",
		Kind:              spanKindInternal,
		StartTimeUnixNano: nano(submitted),
		EndTimeUnixNano:   nano(end),
		Attributes:        rootAttrs,
	}}

	if blocked != 0 {
		idx++
		blockEnd := released
		if blockEnd == 0 {
			blockEnd = end
		}
		spans = append(spans, OTLPSpan{
			TraceID: traceID, SpanID: jt.spanID(idx), ParentSpanID: rootID,
			Name: "blocked", Kind: spanKindInternal,
			StartTimeUnixNano: nano(blocked), EndTimeUnixNano: nano(blockEnd),
		})
	}
	if admitted != 0 {
		idx++
		queueEnd := dispatched
		if queueEnd == 0 {
			queueEnd = end
		}
		spans = append(spans, OTLPSpan{
			TraceID: traceID, SpanID: jt.spanID(idx), ParentSpanID: rootID,
			Name: "queued", Kind: spanKindInternal,
			StartTimeUnixNano: nano(admitted), EndTimeUnixNano: nano(queueEnd),
		})
	}
	if dispatched != 0 {
		idx++
		runID := jt.spanID(idx)
		spans = append(spans, OTLPSpan{
			TraceID: traceID, SpanID: runID, ParentSpanID: rootID,
			Name: "run", Kind: spanKindInternal,
			StartTimeUnixNano: nano(dispatched), EndTimeUnixNano: nano(end),
			Attributes: []OTLPAttr{intAttr("workers.initial", int64(initialWorkers))},
		})
		for _, w := range waves {
			idx++
			waveEnd := w.EndUnixNano
			if waveEnd == 0 {
				waveEnd = end
			}
			attrs := []OTLPAttr{intAttr("shard", int64(w.Shard))}
			if w.Lent {
				attrs = append(attrs, boolAttr("lent", true))
			}
			spans = append(spans, OTLPSpan{
				TraceID: traceID, SpanID: jt.spanID(idx), ParentSpanID: runID,
				Name: "wave", Kind: spanKindInternal,
				StartTimeUnixNano: nano(w.StartUnixNano), EndTimeUnixNano: nano(waveEnd),
				Attributes: attrs,
			})
		}
	}

	// Each checkpointed pause is a child span of the job: the interval from
	// the park to the re-admission (or, for a job torn down while parked, to
	// the trace's end), carrying the cursor watermark it parked at.
	for _, p := range pauses {
		idx++
		pauseEnd := p.end
		if pauseEnd == 0 {
			pauseEnd = end
		}
		var attrs []OTLPAttr
		if c, ok := strings.CutPrefix(p.detail, "cursor="); ok {
			if v, err := strconv.ParseInt(c, 10, 64); err == nil {
				attrs = append(attrs, intAttr("cursor", v))
			}
		}
		spans = append(spans, OTLPSpan{
			TraceID: traceID, SpanID: jt.spanID(idx), ParentSpanID: rootID,
			Name: "suspended", Kind: spanKindInternal,
			StartTimeUnixNano: nano(p.start), EndTimeUnixNano: nano(pauseEnd),
			Attributes: attrs,
		})
	}

	return OTLPDocument{ResourceSpans: []OTLPResourceSpans{{
		Resource: OTLPResource{Attributes: []OTLPAttr{strAttr("service.name", service)}},
		ScopeSpans: []OTLPScopeSpans{{
			Scope: OTLPScope{Name: "loopsched/internal/trace"},
			Spans: spans,
		}},
	}}}
}
