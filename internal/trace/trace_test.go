package trace

import (
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := New()
	c.Inc(Steals)
	c.Add(Reductions, 5)
	if c.Get(Steals) != 1 || c.Get(Reductions) != 5 || c.Get(Spawns) != 0 {
		t.Errorf("counter values wrong: %v", c.Snapshot())
	}
	c.Reset()
	if c.Get(Steals) != 0 || c.Get(Reductions) != 0 {
		t.Errorf("Reset did not clear counters")
	}
}

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.Inc(Steals)
	c.Add(Reductions, 3)
	c.Reset()
	if c.Get(Steals) != 0 {
		t.Errorf("nil counters should read 0")
	}
}

func TestSnapshotAndNames(t *testing.T) {
	c := New()
	c.Inc(LoopsScheduled)
	snap := c.Snapshot()
	if snap["loops"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if len(snap) != int(numEvents) {
		t.Errorf("snapshot has %d entries, want %d", len(snap), numEvents)
	}
	for e := Event(0); e < numEvents; e++ {
		if e.String() == "" || e.String() == "unknown" {
			t.Errorf("event %d has no name", e)
		}
	}
	if Event(250).String() != "unknown" {
		t.Errorf("out-of-range event should be unknown")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc(BarrierEpisodes)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(BarrierEpisodes); got != goroutines*per {
		t.Errorf("lost updates: %d", got)
	}
}
