package trace

import (
	"encoding/json"
	"strconv"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	jt := tr.Begin("tenant", "label", 0)
	if jt != nil {
		t.Fatalf("nil tracer Begin = %v, want nil", jt)
	}
	// All hooks must be no-ops on the nil handle.
	jt.Event(EvSubmitted, 0, 0, "")
	w := jt.WaveStart(0, false)
	if w != -1 {
		t.Fatalf("nil WaveStart = %d, want -1", w)
	}
	jt.WaveEnd(w)
	if jt.Finished() || jt.Events() != nil || jt.Waves() != nil || jt.Truncated() != 0 {
		t.Fatalf("nil JobTrace accessors not inert")
	}
	if got := tr.Stats(); got != (TracerStats{}) {
		t.Fatalf("nil tracer Stats = %+v, want zero", got)
	}
	if tr.Trace(1) != nil {
		t.Fatalf("nil tracer Trace != nil")
	}
	if tr.Subscribe(1, "", 0) != nil {
		t.Fatalf("nil tracer Subscribe != nil")
	}
}

func TestEventOrderAndTerminalFiling(t *testing.T) {
	tr := NewTracer(8)
	jt := tr.Begin("acme", "stage0", 3)
	if jt.ID == 0 {
		t.Fatalf("job id not assigned")
	}
	jt.Event(EvSubmitted, 1, 0, "")
	jt.Event(EvAdmitted, 1, 0, "")
	jt.Event(EvDispatched, 1, 2, "")
	if tr.Trace(jt.ID) != nil {
		t.Fatalf("trace filed before terminal event")
	}
	jt.Event(EvJoined, 1, 4, "")
	got := tr.Trace(jt.ID)
	if got != jt {
		t.Fatalf("Trace(%d) = %v, want the finished trace", jt.ID, got)
	}
	evs := got.Events()
	wantTypes := []string{"submitted", "admitted", "dispatched", "joined"}
	if len(evs) != len(wantTypes) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantTypes))
	}
	var lastSeq uint64
	for i, ev := range evs {
		if ev.Type != wantTypes[i] {
			t.Errorf("event %d type = %q, want %q", i, ev.Type, wantTypes[i])
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Job != jt.ID || ev.Tenant != "acme" || ev.Label != "stage0" || ev.Priority != 3 {
			t.Errorf("event %d identity fields wrong: %+v", i, ev)
		}
	}
	if !got.Finished() {
		t.Fatalf("trace not marked finished")
	}
	if st := tr.Stats(); st.EventsTotal != 4 || st.FinishedTraces != 1 {
		t.Fatalf("tracer stats = %+v, want 4 events / 1 trace", st)
	}
}

func TestSubscribeFilters(t *testing.T) {
	tr := NewTracer(8)
	all := tr.Subscribe(16, "", 0)
	defer all.Close()
	byTenant := tr.Subscribe(16, "beta", 0)
	defer byTenant.Close()

	a := tr.Begin("alpha", "", 0)
	b := tr.Begin("beta", "", 0)
	byJob := tr.Subscribe(16, "", b.ID)
	defer byJob.Close()

	a.Event(EvSubmitted, 0, 0, "")
	b.Event(EvSubmitted, 0, 0, "")
	a.Event(EvJoined, 0, 1, "")
	b.Event(EvJoined, 0, 1, "")

	drain := func(s *Subscription) []StreamEvent {
		var out []StreamEvent
		for {
			select {
			case ev := <-s.Events():
				out = append(out, ev)
			default:
				return out
			}
		}
	}
	if got := drain(all); len(got) != 4 {
		t.Errorf("unfiltered subscriber got %d events, want 4", len(got))
	}
	for _, ev := range drain(byTenant) {
		if ev.Tenant != "beta" {
			t.Errorf("tenant filter leaked event %+v", ev)
		}
	}
	jobEvents := drain(byJob)
	if len(jobEvents) != 2 {
		t.Errorf("job filter got %d events, want 2", len(jobEvents))
	}
	for _, ev := range jobEvents {
		if ev.Job != b.ID {
			t.Errorf("job filter leaked event %+v", ev)
		}
	}
}

func TestSlowSubscriberDropsAndCounts(t *testing.T) {
	tr := NewTracer(8)
	slow := tr.Subscribe(2, "", 0)
	defer slow.Close()
	jt := tr.Begin("t", "", 0)
	for i := 0; i < 10; i++ {
		jt.Event(EvGrown, 0, i, "")
	}
	if got := slow.Dropped(); got != 8 {
		t.Fatalf("Dropped = %d, want 8", got)
	}
	if st := tr.Stats(); st.DroppedTotal != 8 {
		t.Fatalf("tracer DroppedTotal = %d, want 8", st.DroppedTotal)
	}
	// The two buffered events are still readable after Close.
	slow.Close()
	if len(slow.Events()) != 2 {
		t.Fatalf("buffered events lost on close")
	}
}

func TestSubscribeUnsubscribeRace(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jt := tr.Begin("t", "", 0)
			for {
				select {
				case <-stop:
					return
				default:
					jt.Event(EvGrown, 0, 0, "")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := tr.Subscribe(4, "", 0)
		select {
		case <-s.Events():
		default:
		}
		s.Close()
	}
	close(stop)
	wg.Wait()
	if st := tr.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers leaked: %+v", st)
	}
}

func TestCollectorRingEvicts(t *testing.T) {
	tr := NewTracer(2)
	var ids []uint64
	for i := 0; i < 3; i++ {
		jt := tr.Begin("t", "", 0)
		jt.Event(EvJoined, 0, 1, "")
		ids = append(ids, jt.ID)
	}
	if tr.Trace(ids[0]) != nil {
		t.Fatalf("oldest trace not evicted from ring")
	}
	if tr.Trace(ids[1]) == nil || tr.Trace(ids[2]) == nil {
		t.Fatalf("recent traces evicted")
	}
	if st := tr.Stats(); st.FinishedTraces != 2 {
		t.Fatalf("FinishedTraces = %d, want 2", st.FinishedTraces)
	}
}

func TestPerJobCapsCount(t *testing.T) {
	tr := NewTracer(2)
	jt := tr.Begin("t", "", 0)
	for i := 0; i < maxEventsPerJob+5; i++ {
		jt.Event(EvGrown, 0, 0, "")
	}
	if got := len(jt.Events()); got != maxEventsPerJob {
		t.Fatalf("events len = %d, want cap %d", got, maxEventsPerJob)
	}
	for i := 0; i < maxWavesPerJob+3; i++ {
		w := jt.WaveStart(0, false)
		jt.WaveEnd(w)
	}
	if got := len(jt.Waves()); got != maxWavesPerJob {
		t.Fatalf("waves len = %d, want cap %d", got, maxWavesPerJob)
	}
	if got := jt.Truncated(); got != 8 {
		t.Fatalf("Truncated = %d, want 8", got)
	}
}

func TestOTLPSpanTree(t *testing.T) {
	tr := NewTracer(8)
	jt := tr.Begin("acme", "pipeline", 2)
	jt.Event(EvSubmitted, 1, 0, "")
	jt.Event(EvBlocked, 1, 0, "")
	jt.Event(EvReleased, 1, 0, "")
	jt.Event(EvAdmitted, 1, 0, "")
	jt.Event(EvDispatched, 1, 2, "")
	w0 := jt.WaveStart(1, false)
	w1 := jt.WaveStart(2, true)
	jt.WaveEnd(w1)
	jt.Event(EvJoined, 1, 3, "")
	jt.WaveEnd(w0) // completing participant ends its wave after the join

	doc := jt.OTLP("loopd-test")
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected document shape: %+v", doc)
	}
	res := doc.ResourceSpans[0].Resource.Attributes
	if len(res) != 1 || res[0].Key != "service.name" || res[0].Value.StringValue != "loopd-test" {
		t.Fatalf("resource attributes = %+v", res)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	byName := map[string][]OTLPSpan{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
			t.Errorf("span %q id lengths: trace %d span %d", sp.Name, len(sp.TraceID), len(sp.SpanID))
		}
		if _, err := strconv.ParseInt(sp.StartTimeUnixNano, 10, 64); err != nil {
			t.Errorf("span %q start not a decimal string: %q", sp.Name, sp.StartTimeUnixNano)
		}
	}
	for _, name := range []string{"job", "blocked", "queued", "run"} {
		if len(byName[name]) != 1 {
			t.Fatalf("want exactly one %q span, got %d (spans: %+v)", name, len(byName[name]), spans)
		}
	}
	if len(byName["wave"]) != 2 {
		t.Fatalf("want 2 wave spans, got %d", len(byName["wave"]))
	}
	root := byName["job"][0]
	if root.ParentSpanID != "" {
		t.Errorf("root span has a parent: %q", root.ParentSpanID)
	}
	run := byName["run"][0]
	for _, name := range []string{"blocked", "queued", "run"} {
		if byName[name][0].ParentSpanID != root.SpanID {
			t.Errorf("%q span parent = %q, want root %q", name, byName[name][0].ParentSpanID, root.SpanID)
		}
	}
	for _, w := range byName["wave"] {
		if w.ParentSpanID != run.SpanID {
			t.Errorf("wave span parent = %q, want run %q", w.ParentSpanID, run.SpanID)
		}
		if w.EndTimeUnixNano == "0" {
			t.Errorf("open wave did not fall back to trace end time")
		}
	}

	// The document must round-trip through encoding/json (the /trace handler
	// serves it verbatim).
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("marshal OTLP document: %v", err)
	}

	attrs := map[string]OTLPAnyValue{}
	for _, a := range root.Attributes {
		attrs[a.Key] = a.Value
	}
	if attrs["tenant"].StringValue != "acme" || attrs["label"].StringValue != "pipeline" {
		t.Errorf("root identity attributes wrong: %+v", attrs)
	}
	if attrs["workers.peak"].IntValue != "3" {
		t.Errorf("workers.peak = %q, want \"3\"", attrs["workers.peak"].IntValue)
	}
	if attrs["outcome"].StringValue != "completed" {
		t.Errorf("outcome = %q", attrs["outcome"].StringValue)
	}
}

func TestOTLPCanceledOutcome(t *testing.T) {
	tr := NewTracer(2)
	jt := tr.Begin("t", "", 0)
	jt.Event(EvSubmitted, 0, 0, "")
	jt.Event(EvBlocked, 0, 0, "")
	jt.Event(EvCanceled, 0, 0, "upstream")
	doc := jt.OTLP("x")
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	var root *OTLPSpan
	for i := range spans {
		if spans[i].Name == "job" {
			root = &spans[i]
		}
		if spans[i].Name == "run" || spans[i].Name == "queued" {
			t.Errorf("canceled-while-blocked trace grew a %q span", spans[i].Name)
		}
	}
	if root == nil {
		t.Fatal("no root span")
	}
	for _, a := range root.Attributes {
		if a.Key == "outcome" && a.Value.StringValue != "canceled" {
			t.Errorf("outcome = %q, want canceled", a.Value.StringValue)
		}
	}
}
