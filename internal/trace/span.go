// span.go is the lifecycle tracing layer on top of the counters in trace.go:
// per-job traces made of lifecycle events (submitted, admitted, dispatched,
// grown, peeled, preempted, stolen, joined, ...) and per-chunk-wave child
// spans (one per participant stint on the job), exported as OTLP-compatible
// JSON (see otlp.go) through a ring-buffered collector, plus a fan-out of the
// event stream to bounded subscribers that drop-and-count instead of ever
// blocking the scheduler.
//
// The layer is dependency-free and allocation-conscious: with no Tracer
// configured every hook in the jobs runtime is a single nil check, and with
// tracing on the cost per lifecycle transition is one mutex-guarded append on
// the job's own trace plus a non-blocking send per subscriber. Nothing here
// is ever on the per-chunk execution path — waves are recorded per
// participant stint, not per chunk claim.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType enumerates the job lifecycle transitions carried by the stream.
type EventType uint8

// Lifecycle event types, in the order a job normally passes through them.
// submitted always comes first; admitted always precedes dispatched, which
// always precedes joined. blocked/released bracket dependency waits before
// admitted. grown/lent/preempted happen strictly between dispatched and
// joined; peeled may trail joined by a beat (the peeling participant has
// already left the sub-team when it records the event, so the join wave can
// complete concurrently).
const (
	EvSubmitted EventType = iota
	EvBlocked
	EvReleased
	EvAdmitted
	EvDispatched
	EvGrown
	EvLent
	EvPeeled
	EvPreempted
	EvStolen
	EvJoined
	EvCanceled
	// EvShed is terminal like joined/canceled: the submission was rejected
	// by admission control (deadline infeasible, queue backlogged past the
	// bounded wait, or the tenant's circuit breaker open — the Detail names
	// which) and the job never entered a queue.
	EvShed
	// EvSuspended/EvResumed bracket a checkpointed pause: the job left every
	// queue and sub-team with its cursor watermark captured (Detail carries
	// "cursor=<n>"), then re-entered admission from that watermark — possibly
	// in a different process, recovered from a checkpoint store under the
	// same job id.
	EvSuspended
	EvResumed

	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	EvSubmitted:  "submitted",
	EvBlocked:    "blocked",
	EvReleased:   "released",
	EvAdmitted:   "admitted",
	EvDispatched: "dispatched",
	EvGrown:      "grown",
	EvLent:       "lent",
	EvPeeled:     "peeled",
	EvPreempted:  "preempted",
	EvStolen:     "stolen",
	EvJoined:     "joined",
	EvCanceled:   "canceled",
	EvShed:       "shed",
	EvSuspended:  "suspended",
	EvResumed:    "resumed",
}

// String implements fmt.Stringer.
func (e EventType) String() string {
	if int(e) < len(eventTypeNames) {
		return eventTypeNames[e]
	}
	return "unknown"
}

// StreamEvent is one lifecycle transition of one job, as delivered to
// subscribers and serialized on the loopd /events feed. The JSON field names
// are stable.
type StreamEvent struct {
	// Seq is a tracer-wide monotonic sequence number. Causally ordered
	// transitions (submitted before admitted before dispatched before joined)
	// always carry increasing Seq; only genuinely concurrent events (two
	// workers growing at once) may be observed out of Seq order.
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the wall-clock time of the transition.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Type is the EventType name ("submitted", "dispatched", ...).
	Type string `json:"type"`
	// Job is the tracer-assigned job id (also the id under GET /trace/{job}).
	Job uint64 `json:"job"`
	// Tenant and Label identify the job: the tenant account it is charged to
	// and the request's diagnostic label.
	Tenant string `json:"tenant"`
	Label  string `json:"label,omitempty"`
	// Shard is the shard the transition happened on (0 for standalone
	// schedulers). A stolen event carries the thief's shard; Detail names the
	// victim.
	Shard int `json:"shard"`
	// Priority is the job's admission priority class.
	Priority int `json:"priority"`
	// Workers is the transition's worker count: the initial sub-team size for
	// dispatched, the participant count after the change for grown/lent/
	// peeled, the posted shrink target for preempted, and the peak sub-team
	// size for joined. Zero when not meaningful.
	Workers int `json:"workers,omitempty"`
	// Detail carries transition-specific context: "deadline_missed" on a
	// joined event past its deadline, "from=<shard>" on stolen, "upstream" on
	// a cancellation propagated down the dependency graph.
	Detail string `json:"detail,omitempty"`
}

// Per-job caps keeping one pathological job (unbounded elastic churn) from
// growing its trace without limit; overflow is counted, not silently lost.
const (
	maxEventsPerJob = 512
	maxWavesPerJob  = 256
)

// Wave is one participant's chunk-wave on an elastic job — the stint from
// joining the sub-team (release wave, growth, or a cross-shard loan) to
// leaving it (peel or join wave). Rigid jobs record one wave per sub-worker.
type Wave struct {
	// Shard is the shard owning the participating worker — for a lent worker,
	// the lender's shard, not the job's.
	Shard int `json:"shard"`
	// Lent marks a cross-shard loan: the worker belonged to a sibling shard.
	Lent          bool  `json:"lent,omitempty"`
	StartUnixNano int64 `json:"start_unix_nano"`
	// EndUnixNano is zero while the stint is still running (the completing
	// participant records its end just after the join wave publishes the
	// result; exporters fall back to the trace end time).
	EndUnixNano int64 `json:"end_unix_nano"`
}

// JobTrace is one job's trace: identity, the ordered lifecycle events, and
// the per-chunk-wave participant stints. A nil *JobTrace is valid and records
// nothing, so an untraced scheduler pays one nil check per hook.
type JobTrace struct {
	// ID is the tracer-assigned job id; Tenant, Label and Priority are copied
	// from the request. All are immutable after Begin.
	ID       uint64
	Tenant   string
	Label    string
	Priority int

	t *Tracer

	mu        sync.Mutex
	events    []StreamEvent
	waves     []Wave
	truncated int // events and waves dropped past the per-job caps
	finished  bool
}

// Event records one lifecycle transition and publishes it to the tracer's
// subscribers. A joined or canceled event finishes the trace and files it in
// the tracer's collector ring (first terminal event wins). Safe on a nil
// receiver.
func (jt *JobTrace) Event(typ EventType, shard, workers int, detail string) {
	if jt == nil {
		return
	}
	t := jt.t
	ev := StreamEvent{
		Seq:          t.seq.Add(1),
		TimeUnixNano: time.Now().UnixNano(),
		Type:         typ.String(),
		Job:          jt.ID,
		Tenant:       jt.Tenant,
		Label:        jt.Label,
		Shard:        shard,
		Priority:     jt.Priority,
		Workers:      workers,
		Detail:       detail,
	}
	jt.mu.Lock()
	if len(jt.events) < maxEventsPerJob {
		jt.events = append(jt.events, ev)
	} else {
		jt.truncated++
	}
	finish := (typ == EvJoined || typ == EvCanceled || typ == EvShed) && !jt.finished
	if finish {
		jt.finished = true
	}
	jt.mu.Unlock()
	if finish {
		t.col.add(jt)
	}
	t.publish(ev)
}

// WaveStart records the beginning of one participant stint and returns its
// index for WaveEnd. Safe on a nil receiver (returns -1).
func (jt *JobTrace) WaveStart(shard int, lent bool) int {
	if jt == nil {
		return -1
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if len(jt.waves) >= maxWavesPerJob {
		jt.truncated++
		return -1
	}
	jt.waves = append(jt.waves, Wave{Shard: shard, Lent: lent, StartUnixNano: time.Now().UnixNano()})
	return len(jt.waves) - 1
}

// WaveEnd records the end of the stint started as wave i. Safe on a nil
// receiver and on i == -1 (an overflowed WaveStart).
func (jt *JobTrace) WaveEnd(i int) {
	if jt == nil || i < 0 {
		return
	}
	now := time.Now().UnixNano()
	jt.mu.Lock()
	jt.waves[i].EndUnixNano = now
	jt.mu.Unlock()
}

// Events returns a copy of the lifecycle events recorded so far, in record
// order. Safe on a nil receiver (returns nil).
func (jt *JobTrace) Events() []StreamEvent {
	if jt == nil {
		return nil
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return append([]StreamEvent(nil), jt.events...)
}

// Waves returns a copy of the participant stints recorded so far.
func (jt *JobTrace) Waves() []Wave {
	if jt == nil {
		return nil
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return append([]Wave(nil), jt.waves...)
}

// Finished reports whether a terminal event (joined or canceled) has been
// recorded. Safe on a nil receiver.
func (jt *JobTrace) Finished() bool {
	if jt == nil {
		return false
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.finished
}

// Truncated returns the number of events and waves dropped past the per-job
// caps (0 for well-behaved jobs).
func (jt *JobTrace) Truncated() int {
	if jt == nil {
		return 0
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.truncated
}

// Tracer is the lifecycle tracing hub: it assigns job ids, fans the event
// stream out to subscribers, and keeps the most recent finished job traces in
// a ring for span export. All methods are safe for concurrent use; a nil
// *Tracer is valid and does nothing, so schedulers run untraced at the cost
// of a nil check per hook.
type Tracer struct {
	ids     atomic.Uint64
	seq     atomic.Uint64
	dropped atomic.Int64

	subMu sync.RWMutex
	subs  map[*Subscription]struct{}

	col collector
}

// NewTracer creates a tracer whose collector keeps the most recent capacity
// finished job traces (<= 0 selects 1024).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	t := &Tracer{subs: make(map[*Subscription]struct{})}
	t.col.init(capacity)
	return t
}

// Begin starts a job trace: assigns the job id and fixes its identity.
// Safe on a nil receiver (returns nil, and every JobTrace method is nil-safe,
// so hooks need no further guard).
func (t *Tracer) Begin(tenant, label string, priority int) *JobTrace {
	if t == nil {
		return nil
	}
	return &JobTrace{
		ID:       t.ids.Add(1),
		Tenant:   tenant,
		Label:    label,
		Priority: priority,
		t:        t,
		events:   make([]StreamEvent, 0, 8),
	}
}

// BeginAt starts a job trace under a caller-chosen id — the crash-recovery
// path, which re-admits unfinished jobs from a checkpoint store under their
// original ids so /trace/{job} and /events subscribers observe one
// continuous lifecycle across restarts. The internal id counter is advanced
// to at least id, so later Begin calls never collide with a recovered id.
// Safe on a nil receiver.
func (t *Tracer) BeginAt(id uint64, tenant, label string, priority int) *JobTrace {
	if t == nil {
		return nil
	}
	for {
		cur := t.ids.Load()
		if cur >= id || t.ids.CompareAndSwap(cur, id) {
			break
		}
	}
	return &JobTrace{
		ID:       id,
		Tenant:   tenant,
		Label:    label,
		Priority: priority,
		t:        t,
		events:   make([]StreamEvent, 0, 8),
	}
}

// Trace returns the finished trace of the given job id, or nil when the job
// has not finished or its trace was evicted from the ring. Safe on a nil
// receiver.
func (t *Tracer) Trace(id uint64) *JobTrace {
	if t == nil {
		return nil
	}
	return t.col.get(id)
}

// publish fans one event out to every matching subscriber with a non-blocking
// send: a subscriber whose buffer is full loses the event and has its drop
// counter incremented — the scheduler never blocks on a slow consumer.
func (t *Tracer) publish(ev StreamEvent) {
	t.subMu.RLock()
	for s := range t.subs {
		if s.tenant != "" && s.tenant != ev.Tenant {
			continue
		}
		if s.job != 0 && s.job != ev.Job {
			continue
		}
		select {
		case s.c <- ev:
		default:
			s.dropped.Add(1)
			t.dropped.Add(1)
		}
	}
	t.subMu.RUnlock()
}

// TracerStats is a snapshot of the tracer's own accounting.
type TracerStats struct {
	// EventsTotal counts lifecycle events ever emitted; DroppedTotal counts
	// subscriber deliveries lost to full buffers (one event sent to three
	// full subscribers counts three drops).
	EventsTotal  int64 `json:"events_total"`
	DroppedTotal int64 `json:"dropped_total"`
	// Subscribers is the number of live subscriptions; FinishedTraces the
	// number of finished job traces currently held in the collector ring.
	Subscribers    int `json:"subscribers"`
	FinishedTraces int `json:"finished_traces"`
}

// Stats returns the tracer's accounting snapshot. Safe on a nil receiver.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.subMu.RLock()
	subs := len(t.subs)
	t.subMu.RUnlock()
	return TracerStats{
		EventsTotal:    int64(t.seq.Load()),
		DroppedTotal:   t.dropped.Load(),
		Subscribers:    subs,
		FinishedTraces: t.col.len(),
	}
}

// Subscription is one bounded subscriber of the lifecycle event stream,
// optionally filtered by tenant and/or job id.
type Subscription struct {
	c       chan StreamEvent
	t       *Tracer
	tenant  string
	job     uint64
	dropped atomic.Int64
}

// Subscribe registers a subscriber with the given buffer capacity (<= 0
// selects 256). tenant filters to one tenant account ("" passes all); job
// filters to one job id (0 passes all). Safe on a nil receiver (returns nil).
func (t *Tracer) Subscribe(buffer int, tenant string, job uint64) *Subscription {
	if t == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscription{c: make(chan StreamEvent, buffer), t: t, tenant: tenant, job: job}
	t.subMu.Lock()
	t.subs[s] = struct{}{}
	t.subMu.Unlock()
	return s
}

// Events returns the subscriber's channel. The channel is never closed; pair
// the receive with a context or done channel and call Close when finished.
func (s *Subscription) Events() <-chan StreamEvent { return s.c }

// Dropped returns the number of events this subscriber lost to a full buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscriber; no further events are delivered after it
// returns (events already buffered remain readable). Safe to call once.
func (s *Subscription) Close() {
	s.t.subMu.Lock()
	delete(s.t.subs, s)
	s.t.subMu.Unlock()
}

// collector is the ring buffer of finished job traces, indexed by job id.
type collector struct {
	mu   sync.Mutex
	ring []*JobTrace
	byID map[uint64]int
	next int
	n    int
}

func (c *collector) init(capacity int) {
	c.ring = make([]*JobTrace, capacity)
	c.byID = make(map[uint64]int, capacity)
}

func (c *collector) add(jt *JobTrace) {
	c.mu.Lock()
	if old := c.ring[c.next]; old != nil {
		delete(c.byID, old.ID)
	}
	c.ring[c.next] = jt
	c.byID[jt.ID] = c.next
	c.next = (c.next + 1) % len(c.ring)
	if c.n < len(c.ring) {
		c.n++
	}
	c.mu.Unlock()
}

func (c *collector) get(id uint64) *JobTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.byID[id]
	if !ok {
		return nil
	}
	return c.ring[i]
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
