// checkpoint.go is the serving half of checkpoint/resume: the live-job
// registry behind POST /jobs/{job}/suspend and /jobs/{job}/resume, the
// checkpoint template stamped onto durable /run submissions, and the startup
// recovery pass that replays the store and re-admits unfinished jobs under
// their original job ids.
package loopd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"loopsched/internal/bench"
	"loopsched/internal/jobs"
)

// trackJob indexes an in-flight job by trace id for the suspend/resume
// endpoints; untraced jobs (id 0) are not addressable and are skipped.
func (s *Server) trackJob(j *jobs.Job) {
	id := j.TraceID()
	if id == 0 {
		return
	}
	s.liveMu.Lock()
	s.live[id] = j
	s.liveMu.Unlock()
}

// untrackJob retires a finished job from the registry.
func (s *Server) untrackJob(j *jobs.Job) {
	id := j.TraceID()
	if id == 0 {
		return
	}
	s.liveMu.Lock()
	delete(s.live, id)
	s.liveMu.Unlock()
}

// checkpointFor builds the durable-snapshot template of one /run job: the
// workload name plus its encoded parameters, everything recovery needs to
// rebuild the request (closures cannot be persisted). Nil without a store.
func (s *Server) checkpointFor(workload string, params bench.JobParams) *jobs.Checkpoint {
	if s.ckpts == nil {
		return nil
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return nil
	}
	return &jobs.Checkpoint{Workload: workload, Params: raw}
}

// recoverFromStore replays the checkpoint store at startup: every unfinished
// job is re-submitted from its cursor watermark under its original job id,
// in ascending id order so dependency edges (which always point at older
// jobs) can be rebuilt from already-recovered handles. Upstream ids absent
// from the store finished before the crash and gate nothing.
func (s *Server) recoverFromStore() error {
	cps, err := s.ckpts.Load()
	if err != nil {
		return err
	}
	byID := make(map[uint64]*jobs.Job, len(cps))
	for i := range cps {
		cp := cps[i]
		var params bench.JobParams
		if len(cp.Params) > 0 {
			if err := json.Unmarshal(cp.Params, &params); err != nil {
				return fmt.Errorf("checkpoint recovery: job %d params: %w", cp.JobID, err)
			}
		}
		req, err := bench.NewJobRequest(cp.Workload, params)
		if err != nil {
			return fmt.Errorf("checkpoint recovery: job %d: %w", cp.JobID, err)
		}
		req.Label, req.Tenant, req.Priority, req.Deadline = cp.Label, cp.Tenant, cp.Priority, cp.Deadline
		for _, up := range cp.After {
			if uj, ok := byID[up]; ok {
				req.After = append(req.After, uj)
			}
		}
		req.Checkpoint = &cp
		j, err := s.rt.Submit(req)
		if err != nil {
			return fmt.Errorf("checkpoint recovery: job %d: %w", cp.JobID, err)
		}
		byID[cp.JobID] = j
		s.recovered.Add(1)
		s.trackJob(j)
		go func(j *jobs.Job) {
			j.Wait()
			s.untrackJob(j)
		}(j)
	}
	return nil
}

// liveJob resolves the {job} path parameter against the registry. On failure
// it has already written the response: 400 for a malformed id, 404 when
// tracing is off (jobs are not addressable) or the job is not in flight.
func (s *Server) liveJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, uint64, bool) {
	if s.tracer == nil {
		http.Error(w, "job control needs tracing (run loopd with -trace or -checkpoint-dir)", http.StatusNotFound)
		return nil, 0, false
	}
	id, err := strconv.ParseUint(r.PathValue("job"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad job id: %v", err), http.StatusBadRequest)
		return nil, 0, false
	}
	s.liveMu.Lock()
	j := s.live[id]
	s.liveMu.Unlock()
	if j == nil {
		http.Error(w, fmt.Sprintf("job %d is not in flight (completed, never submitted, or submitted untracked)", id), http.StatusNotFound)
		return nil, 0, false
	}
	return j, id, true
}

// jobControlResponse is the JSON body of the suspend/resume endpoints. State
// is the job state observed immediately after the operation; a suspend of a
// running job reports "running" until the quiesce parks it (poll /events or
// re-read via a later call).
type jobControlResponse struct {
	Job   uint64 `json:"job"`
	State string `json:"state"`
}

// handleSuspend parks a queued or running job at its next chunk-wave
// boundary with its progress checkpointed. 409 when the job refuses
// (blocked, terminal, or rigid mid-run).
func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	j, id, ok := s.liveJob(w, r)
	if !ok {
		return
	}
	if !j.Suspend() {
		http.Error(w, fmt.Sprintf("job %d cannot be suspended (state %s)", id, j.State()), http.StatusConflict)
		return
	}
	writeJSON(w, jobControlResponse{Job: id, State: j.State().String()})
}

// handleResume re-admits a suspended job from its checkpointed watermark.
// 409 when the job is not suspended (a quiescing job has not parked yet).
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, id, ok := s.liveJob(w, r)
	if !ok {
		return
	}
	if !j.Resume() {
		http.Error(w, fmt.Sprintf("job %d cannot be resumed (state %s)", id, j.State()), http.StatusConflict)
		return
	}
	writeJSON(w, jobControlResponse{Job: id, State: j.State().String()})
}
