package loopd

// Serving-layer tests for checkpoint/resume: the suspend/resume endpoints
// driven over HTTP mid-flight, crash recovery across a daemon restart on a
// shared -checkpoint-dir, and the /events keepalive heartbeat that keeps
// idle SSE connections alive through proxies.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loopsched/internal/trace"
)

// TestEventsKeepaliveOnIdleStream: an /events subscriber with no traffic
// must still receive periodic ": keepalive" comment frames, so idle
// connections are not reaped by proxy or LB idle timeouts.
func TestEventsKeepaliveOnIdleStream(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 2, EventsKeepalive: 20 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events status %d", resp.StatusCode)
	}
	// No jobs are submitted: every non-blank line on this stream must be the
	// keepalive comment, and at least two must arrive (periodic, not one-shot).
	sc := bufio.NewScanner(resp.Body)
	heartbeats := 0
	for heartbeats < 2 && sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line != ": keepalive" {
			t.Fatalf("idle stream delivered %q, want keepalive comments only", line)
		}
		heartbeats++
	}
	if heartbeats < 2 {
		t.Fatalf("stream ended after %d heartbeats (want 2): %v", heartbeats, sc.Err())
	}
}

// slowRun fires a long-running /run in the background and returns a channel
// carrying the decoded response (or the transport/status error).
func slowRun(t *testing.T, url, query string) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	var rr runResponse
	go func() {
		resp, err := http.Post(url+query, "", nil)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			done <- fmt.Errorf("run status %d: %s", resp.StatusCode, body)
			return
		}
		done <- json.NewDecoder(resp.Body).Decode(&rr)
	}()
	return done
}

// awaitEvent collects the stream until an event of the wanted type arrives
// for the job (job 0: any job), returning that event.
func awaitEvent(t *testing.T, stream *eventStream, typ string, job uint64) trace.StreamEvent {
	t.Helper()
	events := stream.collect(func(evs []trace.StreamEvent) bool {
		for _, ev := range evs {
			if ev.Type == typ && (job == 0 || ev.Job == job) {
				return true
			}
		}
		return false
	})
	for _, ev := range events {
		if ev.Type == typ && (job == 0 || ev.Job == job) {
			return ev
		}
	}
	panic("unreachable")
}

// postJSON posts to a job-control endpoint and decodes the response,
// failing on any non-2xx status.
func postJSON(t *testing.T, url string) jobControlResponse {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	var jc jobControlResponse
	if err := json.NewDecoder(resp.Body).Decode(&jc); err != nil {
		t.Fatal(err)
	}
	return jc
}

// TestSuspendResumeOverHTTP is the serving half of the exactly-once
// acceptance bar: a running job is parked via POST /jobs/{id}/suspend,
// re-admitted via /resume, and the original /run response must carry the
// full (not partial, not doubled) reduction under the same job id.
func TestSuspendResumeOverHTTP(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 2})
	stream := openEvents(t, ts.URL, "")

	const n = 4000
	runDone := slowRun(t, ts.URL, fmt.Sprintf("/run?workload=spinsum&n=%d&iterns=100000&grain=8", n))

	id := awaitEvent(t, stream, "dispatched", 0).Job
	if id == 0 {
		t.Fatal("dispatched event carries job id 0")
	}

	// Park it. The POST returns as soon as the quiesce request is posted;
	// the park itself lands at the next chunk-wave boundary, visible as the
	// "suspended" lifecycle event.
	if jc := postJSON(t, fmt.Sprintf("%s/jobs/%d/suspend", ts.URL, id)); jc.Job != id {
		t.Fatalf("suspend answered for job %d, want %d", jc.Job, id)
	}
	ev := awaitEvent(t, stream, "suspended", id)
	if !strings.HasPrefix(ev.Detail, "cursor=") {
		t.Errorf("suspended event detail %q, want cursor watermark", ev.Detail)
	}

	// Suspend is idempotent on a parked job; resume re-admits it.
	if jc := postJSON(t, fmt.Sprintf("%s/jobs/%d/suspend", ts.URL, id)); jc.State != "suspended" {
		t.Errorf("re-suspend state %q, want suspended", jc.State)
	}
	postJSON(t, fmt.Sprintf("%s/jobs/%d/resume", ts.URL, id))
	awaitEvent(t, stream, "resumed", id)
	awaitEvent(t, stream, "joined", id)

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// One continuous trace under the original id, carrying the pause.
	resp, err := http.Get(fmt.Sprintf("%s/trace/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/%d status %d: %s", id, resp.StatusCode, body)
	}
	// The pause renders as a "suspended" child span carrying the cursor
	// watermark the job parked at.
	for _, want := range []string{`"suspended"`, `"cursor"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("trace of job %d missing %s span data", id, want)
		}
	}
}

// TestJobControlErrorPaths: malformed ids are 400, unknown jobs 404, and a
// resume of a job that is not suspended is 409 Conflict.
func TestJobControlErrorPaths(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 2})
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/jobs/not-a-number/suspend", http.StatusBadRequest},
		{"/jobs/99999/suspend", http.StatusNotFound},
		{"/jobs/99999/resume", http.StatusNotFound},
	} {
		resp, err := http.Post(ts.URL+tc.path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}

	// Without tracing, jobs are not addressable at all.
	plain, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsPlain := httptest.NewServer(plain)
	defer func() {
		tsPlain.Close()
		plain.Close()
	}()
	resp, err := http.Post(tsPlain.URL+"/jobs/1/suspend", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("untraced suspend: status %d, want 404", resp.StatusCode)
	}
}

// TestCheckpointRecoveryAcrossRestart is the crash-recovery acceptance
// shape, in-process: daemon one suspends a mid-flight job to a file-backed
// store and shuts down; daemon two on the same directory must re-admit it
// under its original job id, run it to completion, and leave the store
// empty (a third daemon recovers nothing).
func TestCheckpointRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*Server, *httptest.Server) {
		// CheckpointDir force-enables tracing; no explicit Trace needed.
		srv, err := New(Config{Workers: 2, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv)
	}

	srv1, ts1 := boot()
	stream := openEvents(t, ts1.URL, "")
	runDone := slowRun(t, ts1.URL, "/run?workload=spinsum&n=3000&iterns=100000&tenant=ckpt")
	id := awaitEvent(t, stream, "dispatched", 0).Job
	postJSON(t, fmt.Sprintf("%s/jobs/%d/suspend", ts1.URL, id))
	awaitEvent(t, stream, "suspended", id)

	// "Crash": tear the daemon down with the job parked. Close cancels the
	// suspended job in-process but keeps its durable checkpoint, and the
	// in-flight /run answers (with the job marked canceled) rather than
	// hanging; the WAL on disk is the only survivor.
	// Close the runtime first: it cancels the parked job, which unblocks the
	// in-flight /run handler so the listener can drain its connection.
	stream.close()
	srv1.Close()
	<-runDone // outcome irrelevant: the job was torn down mid-flight
	ts1.Close()

	srv2, ts2 := boot()
	var st statsResponse
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.RecoveredJobs != 1 {
		t.Fatalf("recovered_jobs = %d, want 1", st.RecoveredJobs)
	}

	// The recovered job finishes in the background under its original id:
	// /trace/{id} serves its span tree once joined.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/trace/%d", ts2.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !strings.Contains(string(body), "\"recovered\"") {
				t.Errorf("trace of recovered job %d does not mark recovery", id)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job %d never finished: /trace status %d", id, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts2.Close()
	srv2.Close()

	// Completion deleted the checkpoint: a third boot recovers nothing.
	srv3, ts3 := boot()
	defer func() {
		ts3.Close()
		srv3.Close()
	}()
	resp, err = http.Get(ts3.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.RecoveredJobs != 0 {
		t.Errorf("after completion, third boot recovered %d jobs, want 0", st.RecoveredJobs)
	}
}
