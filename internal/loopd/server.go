// Package loopd implements the HTTP front-end of the loop-serving daemon:
// POST /run over the named bench workloads (including pipelines), GET
// /stats, Prometheus GET /metrics, the SSE /events lifecycle feed and GET
// /trace/{job}. Command loopd wraps it in a flag-parsing main; cmd/loadgen
// embeds it (-selfserve) so trace replays can drive the exact production
// handler over a loopback listener without managing a daemon process.
package loopd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/bench"
	"loopsched/internal/jobs"
	"loopsched/internal/trace"
)

// Config configures the daemon's shared jobs runtime.
type Config struct {
	// Workers is the total worker count across all shards; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Shards partitions the workers into per-topology-domain shards, each
	// with its own dispatcher; <= 0 derives the count from the machine
	// topology (one shard per cache/socket group).
	Shards int
	// StealInterval is the idle shards' sibling re-scan period; <= 0 selects
	// the default.
	StealInterval time.Duration
	// DisableStealing makes the shards fully independent pools behind the
	// router (no cross-shard job stealing or worker lending).
	DisableStealing bool
	// MaxWorkersPerJob caps every job's sub-team; <= 0 means no cap.
	MaxWorkersPerJob int
	// QueueDepth bounds the total admission queue, split across shards
	// (Submit blocks when the target shard's share is full).
	QueueDepth int
	// DefaultGrain is the self-scheduling chunk size for jobs that don't set
	// grain; <= 0 selects the per-job heuristic.
	DefaultGrain int
	// DisableElastic freezes sub-teams at admission (rigid static blocks).
	DisableElastic bool
	// TenantWeights pre-registers tenant accounts with fair-share weights;
	// unknown tenants are created on first use with weight 1.
	TenantWeights map[string]int
	// DisableFair replaces the weighted-fair admission policy with the
	// original single FIFO (tenants, priorities and deadlines ignored for
	// ordering; accounting still runs).
	DisableFair bool
	// LockOSThread pins workers to OS threads (benchmark fidelity; off by
	// default for a serving daemon).
	LockOSThread bool
	// Trace enables lifecycle tracing: /run responses carry job ids,
	// GET /events streams lifecycle transitions and GET /trace/{job} serves
	// finished span trees. Off, the hooks cost one nil check per transition
	// and both endpoints return 404.
	Trace bool
	// TraceBuffer is the default per-subscriber event buffer on /events
	// (overridable per request with &buffer=); <= 0 selects 4096. A
	// subscriber that falls behind loses events, which are counted, not
	// blocked on.
	TraceBuffer int
	// TraceCapacity is the number of finished job traces retained for
	// GET /trace/{job}; <= 0 selects the default (1024).
	TraceCapacity int
	// SLOTarget is the per-tenant deadline-hit objective burn rates are
	// measured against; outside (0, 1) selects the default (0.99).
	SLOTarget float64
	// MaxWait bounds how long a submission may block for an admission queue
	// slot before the request is rejected with 503 and a Retry-After hint;
	// <= 0 keeps the default unbounded block.
	MaxWait time.Duration
	// ShedInfeasible rejects (503 + Retry-After) deadline jobs whose
	// deadline could not be met even if the queue drained at the measured
	// service rate, instead of admitting them only to miss.
	ShedInfeasible bool
	// BreakerBurnRate arms per-tenant circuit breakers: a tenant burning its
	// SLO at or above this rate while crowding the queue is shed at intake
	// (429 + Retry-After) until a cooldown and a successful probe; <= 0
	// disables the breakers.
	BreakerBurnRate float64
	// BreakerCooldown is how long an open breaker sheds before probing;
	// <= 0 selects the default (250ms).
	BreakerCooldown time.Duration
	// Debug registers the net/http/pprof handlers under /debug/pprof/.
	Debug bool
	// CheckpointDir enables durable checkpoint/resume: job progress snapshots
	// are written to a file-backed WAL under this directory, POST
	// /jobs/{job}/suspend and /jobs/{job}/resume park and revive jobs at
	// chunk-wave boundaries, and on startup the daemon replays the store and
	// re-admits every unfinished job from its cursor watermark under its
	// original job id. Setting it force-enables tracing (job ids come from
	// the tracer). Empty disables durability; the suspend/resume endpoints
	// still work when Trace is set, without crash recovery.
	CheckpointDir string
	// EventsKeepalive is the idle heartbeat period of the /events SSE stream:
	// a comment line is written whenever no event has been sent for this
	// long, so idle connections survive proxies and LB idle timeouts. <= 0
	// selects 15s; set it shorter for aggressive intermediaries.
	EventsKeepalive time.Duration
}

// Server is the HTTP front-end over one sharded multi-tenant jobs runtime.
// Every /run request is a tenant: its jobs are admitted to the least-loaded
// shard (or a pinned one), and idle shards steal queued jobs and lend
// workers across shards, so concurrent requests share the machine without
// any scheduler-wide serialization point.
type Server struct {
	rt          *jobs.Sharded
	tracer      *trace.Tracer // nil unless Config.Trace or CheckpointDir
	traceBuffer int
	sloTarget   float64 // normalized configured SLO target, for /metrics
	keepalive   time.Duration
	started     time.Time
	statsSeq    atomic.Uint64 // monotonic /stats snapshot sequence
	mux         *http.ServeMux

	// ckpts is the durable snapshot store (nil without CheckpointDir);
	// recovered counts the jobs re-admitted from it at startup.
	ckpts     *jobs.FileStore
	recovered atomic.Int64

	// live indexes in-flight jobs by trace id for the suspend/resume
	// endpoints; entries retire when the awaiting goroutine sees completion.
	liveMu sync.Mutex
	live   map[uint64]*jobs.Job
}

// New builds a Server over a freshly constructed sharded runtime. With
// Config.CheckpointDir set it also opens the checkpoint store, replays it,
// and re-admits every unfinished job before returning — the error is non-nil
// only when the store cannot be opened or replayed.
func New(cfg Config) (*Server, error) {
	var store *jobs.FileStore
	if cfg.CheckpointDir != "" {
		st, err := jobs.OpenFileStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		store = st
		// Durable jobs are keyed by tracer-assigned ids; a store without a
		// tracer could never name its snapshots.
		cfg.Trace = true
	}
	var tracer *trace.Tracer
	if cfg.Trace {
		tracer = trace.NewTracer(cfg.TraceCapacity)
	}
	traceBuffer := cfg.TraceBuffer
	if traceBuffer <= 0 {
		traceBuffer = 4096
	}
	// Normalize the SLO target once, mirroring the runtime's defaulting, so
	// /metrics can expose the objective before any completion samples exist.
	sloTarget := cfg.SLOTarget
	if !(sloTarget > 0 && sloTarget < 1) {
		sloTarget = 0.99
	}
	keepalive := cfg.EventsKeepalive
	if keepalive <= 0 {
		keepalive = 15 * time.Second
	}
	jc := jobs.Config{
		Workers:          cfg.Workers,
		MaxWorkersPerJob: cfg.MaxWorkersPerJob,
		QueueDepth:       cfg.QueueDepth,
		DefaultGrain:     cfg.DefaultGrain,
		DisableElastic:   cfg.DisableElastic,
		TenantWeights:    cfg.TenantWeights,
		DisableFair:      cfg.DisableFair,
		LockOSThread:     cfg.LockOSThread,
		Tracer:           tracer,
		SLOTarget:        cfg.SLOTarget,
		MaxWait:          cfg.MaxWait,
		ShedInfeasible:   cfg.ShedInfeasible,
		BreakerBurnRate:  cfg.BreakerBurnRate,
		BreakerCooldown:  cfg.BreakerCooldown,
		Name:             "loopd",
	}
	if store != nil {
		jc.Checkpoints = store
	}
	s := &Server{
		rt: jobs.NewSharded(jobs.ShardedConfig{
			Config:          jc,
			Shards:          cfg.Shards,
			StealInterval:   cfg.StealInterval,
			DisableStealing: cfg.DisableStealing,
		}),
		tracer:      tracer,
		traceBuffer: traceBuffer,
		sloTarget:   sloTarget,
		keepalive:   keepalive,
		started:     time.Now(),
		mux:         http.NewServeMux(),
		ckpts:       store,
		live:        make(map[uint64]*jobs.Job),
	}
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /trace/{job}", s.handleTrace)
	s.mux.HandleFunc("POST /jobs/{job}/suspend", s.handleSuspend)
	s.mux.HandleFunc("POST /jobs/{job}/resume", s.handleResume)
	if cfg.Debug {
		// The pprof handlers are registered explicitly on the daemon's own
		// mux (the package's init wires http.DefaultServeMux, which loopd
		// never serves).
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if store != nil {
		if err := s.recoverFromStore(); err != nil {
			s.rt.Close()
			store.Close()
			return nil, err
		}
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains and releases every shard, then flushes the checkpoint store.
// Jobs suspended at close stay in the store (suspend-to-disk): the next
// process recovers them.
func (s *Server) Close() {
	s.rt.Close()
	if s.ckpts != nil {
		s.ckpts.Close()
	}
}

// Runtime exposes the underlying sharded pool (startup logging, tests).
func (s *Server) Runtime() *jobs.Sharded { return s.rt }

// Limits keeping one request from monopolising the daemon.
const (
	maxJobsPerRequest   = 1024
	maxIterationsPerJob = 1 << 28
	maxPipelineStages   = 64
)

// runJobResult is the outcome of one job of a /run request. Job is the
// tracing id usable with GET /trace/{job}; 0 when tracing is disabled.
type runJobResult struct {
	Job     uint64  `json:"job,omitempty"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Result  float64 `json:"result"`
	Error   string  `json:"error,omitempty"`
}

// traceID returns a job's tracing id (0 when tracing is disabled).
func traceID(j *jobs.Job) uint64 {
	if jt := j.Trace(); jt != nil {
		return jt.ID
	}
	return 0
}

// runResponse is the JSON body of a /run response. For pipeline requests,
// Pipeline carries the per-stage outcomes and Results is empty.
type runResponse struct {
	Workload    string          `json:"workload,omitempty"`
	Jobs        int             `json:"jobs"`
	Iterations  int             `json:"iterations_per_job,omitempty"`
	WallSeconds float64         `json:"wall_seconds"`
	Results     []runJobResult  `json:"results,omitempty"`
	Pipeline    []pipelineStage `json:"pipeline,omitempty"`
}

// pipelineStage is one stage of a pipeline /run response: a named workload
// fanned out over Width dependent jobs, each waiting for every job of the
// previous stage (fan-out/fan-in edges).
type pipelineStage struct {
	Workload string         `json:"workload"`
	N        int            `json:"n"`
	Width    int            `json:"width"`
	Results  []runJobResult `json:"results"`
}

// handleRun submits one or more jobs of a named workload (see
// bench.JobWorkloads) and waits for them. Query parameters: workload, n
// (iterations per job), jobs (concurrent jobs in this request), iterns
// (target ns/iteration for calibrated workloads), maxworkers, grain, shard
// (0-based shard pin; absent or -1 routes to the least-loaded shard).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	workload := r.FormValue("workload")
	if workload == "" {
		workload = "spin"
	}
	n, err := intParam(r, "n", 4096, 1, maxIterationsPerJob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	nJobs, err := intParam(r, "jobs", 1, 1, maxJobsPerRequest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	iterNs, err := intParam(r, "iterns", 0, 0, 1<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxWorkers, err := intParam(r, "maxworkers", 0, 0, 1<<16)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grain, err := intParam(r, "grain", 0, 0, maxIterationsPerJob)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shard, err := intParam(r, "shard", -1, -1, s.rt.Shards()-1)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := intParam(r, "batch", 0, 0, 1)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pol, err := parsePolicy(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if spec := r.FormValue("pipeline"); spec != "" {
		if batch != 0 {
			http.Error(w, "batch conflicts with pipeline: batched admission is for independent jobs", http.StatusBadRequest)
			return
		}
		// The pipeline spec subsumes workload and jobs; reject the
		// combination instead of silently ignoring parameters.
		if r.FormValue("workload") != "" || r.FormValue("jobs") != "" {
			http.Error(w, "pipeline conflicts with workload/jobs: name workloads and widths in the pipeline stages", http.StatusBadRequest)
			return
		}
		stages, err := parsePipeline(spec, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.runPipeline(w, stages, float64(iterNs), maxWorkers, grain, shard, pol)
		return
	}
	s.runJobs(w, workload, n, nJobs, float64(iterNs), maxWorkers, grain, shard, pol, batch != 0)
}

// jobPolicy carries the per-request scheduling policy parameters: the
// tenant account, the priority class and the absolute deadline derived from
// &deadline_ms (zero time when absent).
type jobPolicy struct {
	tenant   string
	prio     int
	deadline time.Time
	noWait   bool
}

// apply stamps the policy onto a built workload request.
func (p jobPolicy) apply(req *jobs.Request) {
	req.Tenant = p.tenant
	req.Priority = p.prio
	req.Deadline = p.deadline
	req.NoWait = p.noWait
}

// parsePolicy parses the &tenant=, &prio=, &deadline_ms= and &nowait=
// parameters.
func parsePolicy(r *http.Request) (jobPolicy, error) {
	var pol jobPolicy
	pol.tenant = r.FormValue("tenant")
	if err := validTenant(pol.tenant); err != nil {
		return pol, err
	}
	prio, err := intParam(r, "prio", 0, -100, 100)
	if err != nil {
		return pol, err
	}
	pol.prio = prio
	deadlineMs, err := intParam(r, "deadline_ms", 0, 0, 1<<30)
	if err != nil {
		return pol, err
	}
	if deadlineMs > 0 {
		pol.deadline = time.Now().Add(time.Duration(deadlineMs) * time.Millisecond)
	}
	noWait, err := intParam(r, "nowait", 0, 0, 1)
	if err != nil {
		return pol, err
	}
	pol.noWait = noWait != 0
	return pol, nil
}

// overloadStatus maps an admission-shedding error to its HTTP status:
// 429 Too Many Requests for a tenant's open circuit breaker (the caller is
// being told to back off), 503 Service Unavailable for backlog and
// infeasible-deadline rejections (the service as a whole is saturated).
// ok is false for errors that are not overload rejections.
func overloadStatus(err error) (code int, ok bool) {
	switch {
	case errors.Is(err, jobs.ErrBreakerOpen):
		return http.StatusTooManyRequests, true
	case errors.Is(err, jobs.ErrBacklogged), errors.Is(err, jobs.ErrInfeasible):
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}

// writeWorkloadError answers a failed workload build with 400. An unknown
// workload name gets a structured body carrying the registered names —
// clients (and humans with curl) see what the daemon actually serves
// instead of guessing from an opaque message.
func writeWorkloadError(w http.ResponseWriter, err error) {
	if !errors.Is(err, bench.ErrUnknownWorkload) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error     string   `json:"error"`
		Workloads []string `json:"workloads"`
	}{err.Error(), bench.JobWorkloads()})
}

// writeOverload rejects the request with the overload status and a
// Retry-After header derived from the runtime's suggested retry delay
// (rounded up to whole seconds, at least 1, per RFC 9110).
func writeOverload(w http.ResponseWriter, err error, code int) {
	if d, ok := jobs.SuggestedRetry(err); ok {
		secs := int64(math.Ceil(d.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	http.Error(w, err.Error(), code)
}

// validTenant bounds tenant names so they can label Prometheus series
// verbatim: at most 64 characters from [A-Za-z0-9_.-]; empty selects the
// default account.
func validTenant(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("parameter \"tenant\": name longer than 64 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return fmt.Errorf("parameter \"tenant\": character %q not in [A-Za-z0-9_.-]", c)
		}
	}
	return nil
}

// parsePipeline parses the pipeline query parameter: comma-separated stages
// of the form workload[:n[:width]], executed as a dependency graph — every
// job of stage i starts only after every job of stage i-1 completed. n
// defaults to the request's n parameter, width to 1.
func parsePipeline(spec string, defaultN int) ([]pipelineStage, error) {
	parts := strings.Split(spec, ",")
	if len(parts) > maxPipelineStages {
		return nil, fmt.Errorf("pipeline has %d stages, limit %d", len(parts), maxPipelineStages)
	}
	stages := make([]pipelineStage, 0, len(parts))
	for i, part := range parts {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) > 3 || fields[0] == "" {
			return nil, fmt.Errorf("pipeline stage %d %q: want workload[:n[:width]]", i, part)
		}
		st := pipelineStage{Workload: fields[0], N: defaultN, Width: 1}
		if len(fields) >= 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > maxIterationsPerJob {
				return nil, fmt.Errorf("pipeline stage %d %q: bad n", i, part)
			}
			st.N = n
		}
		if len(fields) == 3 {
			width, err := strconv.Atoi(fields[2])
			if err != nil || width < 1 || width > maxJobsPerRequest {
				return nil, fmt.Errorf("pipeline stage %d %q: bad width", i, part)
			}
			st.Width = width
		}
		stages = append(stages, st)
	}
	total := 0
	for _, st := range stages {
		total += st.Width
	}
	if total > maxJobsPerRequest {
		return nil, fmt.Errorf("pipeline submits %d jobs, limit %d", total, maxJobsPerRequest)
	}
	return stages, nil
}

// runPipeline submits the whole stage graph up front — fan-out/fan-in edges
// expressed through the runtime's job dependencies, no client-side waiting
// between stages — then waits for every job and reports per-stage results.
func (s *Server) runPipeline(w http.ResponseWriter, stages []pipelineStage, iterNs float64, maxWorkers, grain, shard int, pol jobPolicy) {
	type submitted struct {
		stage, idx int
		job        *jobs.Job
	}
	// Resolve every stage's workload before submitting anything: a bad
	// stage must 400 without having already launched (and then abandoned,
	// unawaited) the earlier stages' jobs.
	reqs := make([]jobs.Request, len(stages))
	for si, st := range stages {
		params := bench.JobParams{N: st.N, IterNs: iterNs, MaxWorkers: maxWorkers, Grain: grain}
		req, err := bench.NewJobRequest(st.Workload, params)
		if err != nil {
			writeWorkloadError(w, err)
			return
		}
		pol.apply(&req)
		req.Checkpoint = s.checkpointFor(st.Workload, params)
		reqs[si] = req
	}
	var all []submitted
	var prev []*jobs.Job
	start := time.Now()
	for si := range stages {
		st := &stages[si]
		req := reqs[si]
		req.After = prev
		st.Results = make([]runJobResult, st.Width)
		var cur []*jobs.Job
		for i := 0; i < st.Width; i++ {
			var j *jobs.Job
			var err error
			if shard >= 0 {
				j, err = s.rt.SubmitTo(shard, req)
			} else {
				j, err = s.rt.Submit(req)
			}
			if err != nil {
				// An overload rejection before anything was admitted fails
				// the whole request with the backpressure status; once jobs
				// are in flight the per-job error field reports it instead.
				if code, ok := overloadStatus(err); ok && len(all) == 0 {
					writeOverload(w, err, code)
					return
				}
				st.Results[i].Error = err.Error()
				continue
			}
			cur = append(cur, j)
			all = append(all, submitted{si, i, j})
			s.trackJob(j)
		}
		prev = cur
	}
	var wg sync.WaitGroup
	for _, sub := range all {
		wg.Add(1)
		go func(sub submitted) {
			defer wg.Done()
			v, err := sub.job.Wait()
			s.untrackJob(sub.job)
			res := &stages[sub.stage].Results[sub.idx]
			// Like the plain /run path: seconds from request start to this
			// job's completion — for a dependent job that includes the time
			// spent blocked behind its upstreams.
			res.Seconds = time.Since(start).Seconds()
			res.Job = traceID(sub.job)
			res.Workers = sub.job.Workers()
			res.Result = v
			if err != nil {
				res.Error = err.Error()
			}
		}(sub)
	}
	wg.Wait()
	resp := runResponse{Pipeline: stages, Jobs: len(all), WallSeconds: time.Since(start).Seconds()}
	writeJSON(w, resp)
}

// runJobs performs the fan-out/fan-in of one /run request. The workload is
// built (and, for calibrated workloads, calibrated) exactly once and the
// request value reused for every job: request bodies are stateless, and the
// calibration cache in bench keeps repeat requests off the measurement path.
// With batch set the whole fan-out is admitted through SubmitBatch — one
// queue-lock acquisition for all nJobs — instead of nJobs Submit calls; the
// response body is identical either way.
func (s *Server) runJobs(w http.ResponseWriter, workload string, n, nJobs int, iterNs float64, maxWorkers, grain, shard int, pol jobPolicy, batch bool) {
	params := bench.JobParams{N: n, IterNs: iterNs, MaxWorkers: maxWorkers, Grain: grain}
	req, err := bench.NewJobRequest(workload, params)
	if err != nil {
		writeWorkloadError(w, err)
		return
	}
	pol.apply(&req)
	if !batch {
		// Durable snapshot template (nil without a checkpoint store; every
		// job copies it and fills its own id). Batched admission stays
		// non-durable: SubmitBatch rejects checkpointed requests.
		req.Checkpoint = s.checkpointFor(workload, params)
	}
	resp := runResponse{Workload: workload, Jobs: nJobs, Iterations: n, Results: make([]runJobResult, nJobs)}
	start := time.Now()
	var wg sync.WaitGroup
	await := func(i int, j *jobs.Job) {
		s.trackJob(j)
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobStart := time.Now()
			v, err := j.Wait()
			s.untrackJob(j)
			resp.Results[i].Seconds = time.Since(jobStart).Seconds()
			resp.Results[i].Job = traceID(j)
			resp.Results[i].Workers = j.Workers()
			resp.Results[i].Result = v
			if err != nil {
				resp.Results[i].Error = err.Error()
			}
		}()
	}
	if batch {
		reqs := make([]jobs.Request, nJobs)
		for i := range reqs {
			reqs[i] = req
		}
		out := make([]*jobs.Job, nJobs)
		if shard >= 0 {
			// A pinned batch goes to the pinned shard's scheduler directly,
			// mirroring SubmitTo.
			err = s.rt.Shard(shard).SubmitBatch(reqs, out)
		} else {
			err = s.rt.SubmitBatch(reqs, out)
		}
		if err != nil {
			admitted := false
			for _, j := range out {
				if j != nil {
					admitted = true
					break
				}
			}
			if code, ok := overloadStatus(err); ok && !admitted {
				writeOverload(w, err, code)
				return
			}
		}
		for i, j := range out {
			if j == nil {
				if err != nil {
					resp.Results[i].Error = err.Error()
				}
				continue
			}
			await(i, j)
		}
	} else {
		for i := 0; i < nJobs; i++ {
			var j *jobs.Job
			if shard >= 0 {
				j, err = s.rt.SubmitTo(shard, req)
			} else {
				j, err = s.rt.Submit(req)
			}
			if err != nil {
				// Same contract as the pipeline path: shed before anything
				// was admitted → reject the whole request with 429/503 and
				// Retry-After; partial fan-outs report per-job errors.
				if code, ok := overloadStatus(err); ok && i == 0 {
					writeOverload(w, err, code)
					return
				}
				resp.Results[i].Error = err.Error()
				continue
			}
			await(i, j)
		}
	}
	wg.Wait()
	resp.WallSeconds = time.Since(start).Seconds()
	writeJSON(w, resp)
}

// statsResponse is the JSON body of /stats. Queue carries the merged totals
// (stable field names from the pre-sharding daemon); Shards the per-shard
// snapshots in shard order. SnapshotSeq increments on every scrape, so a
// poller can detect reordered or duplicated reads.
type statsResponse struct {
	SnapshotSeq   uint64       `json:"snapshot_seq"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workloads     []string     `json:"workloads"`
	Shards        int          `json:"shards"`
	Queue         jobs.Stats   `json:"queue"`
	ShardStats    []jobs.Stats `json:"shard_stats"`
	Runtime       runtimeStats `json:"runtime"`
	// RecoveredJobs counts the jobs re-admitted from the checkpoint store at
	// startup (always 0 without -checkpoint-dir).
	RecoveredJobs int64              `json:"recovered_jobs"`
	Trace         *trace.TracerStats `json:"trace,omitempty"`
}

// runtimeStats is the Go-runtime health block of /stats.
type runtimeStats struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64  `json:"heap_sys_bytes"`
	NumGC               uint32  `json:"num_gc"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
}

func readRuntimeStats() runtimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return runtimeStats{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      m.HeapAlloc,
		HeapSysBytes:        m.HeapSys,
		NumGC:               m.NumGC,
		GCPauseTotalSeconds: time.Duration(m.PauseTotalNs).Seconds(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.rt.Stats()
	resp := statsResponse{
		SnapshotSeq:   s.statsSeq.Add(1),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workloads:     bench.JobWorkloads(),
		Shards:        s.rt.Shards(),
		Queue:         st.Total,
		ShardStats:    st.Shards,
		Runtime:       readRuntimeStats(),
		RecoveredJobs: s.recovered.Load(),
	}
	if s.tracer != nil {
		ts := s.tracer.Stats()
		resp.Trace = &ts
	}
	writeJSON(w, resp)
}

// handleEvents streams lifecycle events as server-sent events: one SSE
// message per transition, `event:` naming the type, `id:` the tracer
// sequence number and `data:` the JSON event. ?tenant= and ?job= filter at
// the tracer (unmatched events are never buffered); ?buffer= overrides the
// per-subscriber buffer. A subscriber that falls behind loses events rather
// than slowing the runtime: drops are counted and reported inline as an SSE
// comment when delivery resumes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled (run loopd with -trace)", http.StatusNotFound)
		return
	}
	tenant := r.FormValue("tenant")
	if err := validTenant(tenant); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var jobID uint64
	if raw := r.FormValue("job"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("parameter %q: %v", "job", err), http.StatusBadRequest)
			return
		}
		jobID = v
	}
	buffer, err := intParam(r, "buffer", s.traceBuffer, 1, 1<<16)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.tracer.Subscribe(buffer, tenant, jobID)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// Heartbeat for idle streams: proxies and load balancers tear down
	// connections that stay silent, and an SSE comment is invisible to event
	// consumers. The ticker is not reset on real events — an occasional
	// redundant heartbeat on a busy stream is two bytes, while resetting per
	// event would put a timer op on every delivery.
	ka := time.NewTicker(s.keepalive)
	defer ka.Stop()
	var reported int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ka.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case ev := <-sub.Events():
			if d := sub.Dropped(); d > reported {
				fmt.Fprintf(w, ": dropped %d events (slow subscriber)\n\n", d-reported)
				reported = d
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
			fl.Flush()
		}
	}
}

// handleTrace serves a finished job's span tree as OTLP-compatible JSON
// (resourceSpans/scopeSpans/spans with hex ids, suitable for an OTLP/HTTP
// collector's traces endpoint or offline span tooling).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled (run loopd with -trace)", http.StatusNotFound)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("job"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad job id: %v", err), http.StatusBadRequest)
		return
	}
	jt := s.tracer.Trace(id)
	if jt == nil {
		http.Error(w, fmt.Sprintf("no finished trace for job %d (still running, never traced, or evicted)", id), http.StatusNotFound)
		return
	}
	writeJSON(w, jt.OTLP("loopd"))
}

// handleMetrics renders the runtime's state in the Prometheus text
// exposition format (hand-rolled: the daemon has no dependencies outside
// the standard library). The loopd_* series are pool-wide totals with the
// pre-sharding names; the loopd_shard_* series carry a shard label so a
// scrape can attribute load, stealing and latency to topology domains.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.rt.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// summary emits a conforming Prometheus summary: the quantile series
	// plus the <name>_sum and <name>_count series the exposition format
	// requires of the summary type. The quantiles are over the recent
	// window; sum and count are cumulative. labels is either empty or a
	// `key="value"` list to splice into every series.
	summary := func(name, labels, help string, p50, p95, p99 time.Duration, sum float64, count int64, withHeader bool) {
		if withHeader {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", p50}, {"0.95", p95}, {"0.99", p99}} {
			fmt.Fprintf(w, "%s{%s%squantile=%q} %g\n", name, labels, sep, q.q, q.v.Seconds())
		}
		if labels != "" {
			labels = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", name, labels, sum, name, labels, count)
	}
	tot := st.Total
	gauge("loopd_shards", "number of topology shards in the pool", float64(s.rt.Shards()))
	gauge("loopd_workers", "size of the shared worker team", float64(tot.Workers))
	gauge("loopd_busy_workers", "workers currently executing a job share", float64(tot.BusyWorkers))
	gauge("loopd_queue_depth", "jobs waiting for admission", float64(tot.QueueDepth))
	gauge("loopd_blocked_depth", "jobs parked waiting for pipeline dependencies (not in any admission queue)", float64(tot.BlockedDepth))
	gauge("loopd_jobs_running", "jobs currently admitted and running", float64(tot.Running))
	counter("loopd_jobs_submitted_total", "jobs ever submitted", float64(tot.Submitted))
	counter("loopd_jobs_completed_total", "jobs ever completed", float64(tot.Completed))
	counter("loopd_jobs_canceled_total", "jobs canceled before start", float64(tot.Canceled))
	counter("loopd_jobs_released_total", "blocked jobs released into an admission queue by their last upstream's join wave", float64(tot.Released))
	counter("loopd_jobs_depcanceled_total", "blocked jobs canceled by upstream cancellation propagating down the dependency graph", float64(tot.DepCanceled))
	counter("loopd_iterations_total", "loop iterations ever executed", float64(tot.IterationsDone))
	counter("loopd_workers_grown_total", "workers that joined an already-running job (elastic growth)", float64(tot.Grown))
	counter("loopd_workers_peeled_total", "workers that left a running job to serve waiting tenants (elastic shrink)", float64(tot.Peeled))
	counter("loopd_jobs_stolen_total", "whole queued jobs migrated to an idle sibling shard", float64(tot.Stolen))
	counter("loopd_workers_lent_total", "workers lent to a sibling shard's running elastic job", float64(tot.Lent))
	counter("loopd_jobs_preempted_total", "preemption targets posted against running jobs to serve waiting tenants", float64(tot.Preempted))
	counter("loopd_jobs_deadline_missed_total", "jobs completed after their requested deadline", float64(tot.DeadlineMissed))
	counter("loopd_jobs_shed_total", "submissions rejected by admission control (infeasible deadline, full backlog or open breaker)", float64(tot.ShedTotal))
	counter("loopd_jobs_infeasible_total", "submissions rejected because the deadline could not be met at the measured service rate", float64(tot.InfeasibleTotal))
	counter("loopd_jobs_backlogged_total", "submissions rejected because the admission queue stayed full past the wait bound", float64(tot.BackloggedTotal))
	gauge("loopd_jobs_suspended_depth", "jobs currently parked in the suspended state (outside every admission queue)", float64(tot.SuspendedDepth))
	counter("loopd_jobs_suspended_total", "jobs ever parked by a suspend", float64(tot.SuspendedTotal))
	counter("loopd_jobs_resumed_total", "suspended jobs ever re-admitted by a resume", float64(tot.ResumedTotal))
	counter("loopd_checkpoint_writes_total", "progress snapshots written to the checkpoint store", float64(tot.CheckpointWrites))
	counter("loopd_checkpoint_failures_total", "checkpoint store operations that failed (job kept running, recoverability degraded)", float64(tot.CheckpointFailures))
	counter("loopd_jobs_recovered_total", "jobs re-admitted from the checkpoint store at startup", float64(s.recovered.Load()))
	gauge("loopd_uptime_seconds", "seconds since the daemon started", time.Since(s.started).Seconds())

	// Build identity as the conventional constant-1 info gauge.
	goVersion, revision := buildIdentity()
	fmt.Fprintf(w, "# HELP loopd_build_info build metadata of the running daemon\n# TYPE loopd_build_info gauge\n")
	fmt.Fprintf(w, "loopd_build_info{go_version=%q,revision=%q} 1\n", goVersion, revision)

	if s.tracer != nil {
		trs := s.tracer.Stats()
		counter("loopd_trace_events_total", "lifecycle events ever emitted by the tracer", float64(trs.EventsTotal))
		counter("loopd_trace_events_dropped_total", "event deliveries lost to full subscriber buffers", float64(trs.DroppedTotal))
		gauge("loopd_trace_subscribers", "live /events subscriptions", float64(trs.Subscribers))
		gauge("loopd_trace_finished_traces", "finished job traces held for GET /trace/{job}", float64(trs.FinishedTraces))
	}
	summary("loopd_job_latency_seconds", "", "job latency from submission to completion",
		tot.LatencyP50, tot.LatencyP95, tot.LatencyP99, tot.LatencySumSeconds, tot.Completed, true)
	summary("loopd_job_run_seconds", "", "job run time from admission to completion",
		tot.RunP50, tot.RunP95, tot.RunP99, tot.RunSumSeconds, tot.Completed, true)

	// Per-tenant series, labelled by tenant account name. The counters
	// reconcile with the untagged totals: every job is charged to exactly
	// one account ("default" when the request named none), so the sums over
	// the tenant label equal loopd_jobs_submitted_total,
	// loopd_jobs_completed_total and loopd_iterations_total.
	tenantNames := make([]string, 0, len(tot.Tenants))
	for name := range tot.Tenants {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)
	tenantMetric := func(name, typ, help string, field func(jobs.TenantStats) float64) {
		if len(tenantNames) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, tn := range tenantNames {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, tn, field(tot.Tenants[tn]))
		}
	}
	tenantMetric("loopd_tenant_weight", "gauge", "configured fair-share weight of the tenant",
		func(t jobs.TenantStats) float64 { return float64(t.Weight) })
	tenantMetric("loopd_tenant_queue_depth", "gauge", "tenant jobs waiting for admission",
		func(t jobs.TenantStats) float64 { return float64(t.QueueDepth) })
	tenantMetric("loopd_tenant_jobs_submitted_total", "counter", "jobs ever submitted by the tenant",
		func(t jobs.TenantStats) float64 { return float64(t.Submitted) })
	tenantMetric("loopd_tenant_jobs_completed_total", "counter", "tenant jobs ever completed (served)",
		func(t jobs.TenantStats) float64 { return float64(t.Completed) })
	tenantMetric("loopd_tenant_iterations_total", "counter", "loop iterations served to the tenant",
		func(t jobs.TenantStats) float64 { return float64(t.IterationsDone) })
	tenantMetric("loopd_tenant_preempted_total", "counter", "preemption targets posted against the tenant's running jobs",
		func(t jobs.TenantStats) float64 { return float64(t.Preempted) })
	tenantMetric("loopd_tenant_deadline_missed_total", "counter", "tenant jobs completed after their deadline",
		func(t jobs.TenantStats) float64 { return float64(t.DeadlineMissed) })
	tenantMetric("loopd_tenant_wait_seconds_sum", "counter", "cumulative submission-to-admission wait of the tenant's completed jobs",
		func(t jobs.TenantStats) float64 { return t.WaitSumSeconds })
	tenantMetric("loopd_tenant_run_seconds_sum", "counter", "cumulative admission-to-completion run time of the tenant's completed jobs",
		func(t jobs.TenantStats) float64 { return t.RunSumSeconds })
	tenantMetric("loopd_tenant_deadline_jobs_total", "counter", "tenant jobs ever completed that carried a deadline (hits plus misses; loopd_tenant_deadline_missed_total counts the misses)",
		func(t jobs.TenantStats) float64 { return float64(t.DeadlineJobsTotal) })
	tenantMetric("loopd_tenant_shed_total", "counter", "tenant submissions rejected by admission control",
		func(t jobs.TenantStats) float64 { return float64(t.ShedTotal) })

	// Breaker state, numeric so it can be alerted on: 0 closed, 1 half-open
	// (probing for recovery), 2 open (shedding). Emitted only when the
	// breakers are armed — an absent series means "breakers disabled".
	breakerNames := make([]string, 0, len(tenantNames))
	for _, tn := range tenantNames {
		if tot.Tenants[tn].BreakerState != "" {
			breakerNames = append(breakerNames, tn)
		}
	}
	if len(breakerNames) > 0 {
		fmt.Fprintf(w, "# HELP loopd_tenant_breaker_state circuit breaker state of the tenant (0 closed, 1 half-open, 2 open)\n# TYPE loopd_tenant_breaker_state gauge\n")
		for _, tn := range breakerNames {
			v := 0.0
			switch tot.Tenants[tn].BreakerState {
			case "half-open":
				v = 1
			case "open":
				v = 2
			}
			fmt.Fprintf(w, "loopd_tenant_breaker_state{tenant=%q} %g\n", tn, v)
		}
	}

	// SLO series, derived from each tenant's rolling completion window (the
	// slo block of /stats). Tenants whose window is still empty are skipped:
	// an absent series is "no data yet", a 0 would be a false alarm.
	sloNames := make([]string, 0, len(tenantNames))
	for _, tn := range tenantNames {
		if tot.Tenants[tn].SLO != nil {
			sloNames = append(sloNames, tn)
		}
	}
	sloMetric := func(name, typ, help string, field func(*jobs.TenantSLO) float64) {
		if len(sloNames) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, tn := range sloNames {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, tn, field(tot.Tenants[tn].SLO))
		}
	}
	// The configured objective, not sampled from any tenant's window: it is
	// a property of the daemon, present from the first scrape (before any
	// completion) and independent of which tenants happen to have samples.
	gauge("loopd_slo_target", "deadline-hit objective burn rates are measured against", s.sloTarget)
	sloMetric("loopd_slo_window_jobs", "gauge", "completions in the tenant's rolling SLO window",
		func(s *jobs.TenantSLO) float64 { return float64(s.WindowJobs) })
	sloMetric("loopd_slo_deadline_hit_ratio", "gauge", "windowed deadline-hit ratio of the tenant (1 when the window has no deadline jobs)",
		func(s *jobs.TenantSLO) float64 { return s.HitRatio })
	sloMetric("loopd_slo_burn_rate", "gauge", "windowed error-budget burn rate of the tenant (1.0 = burning exactly at the sustainable rate)",
		func(s *jobs.TenantSLO) float64 { return s.BurnRate })
	sloMetric("loopd_slo_wait_p99_seconds", "gauge", "windowed p99 submission-to-admission wait of the tenant",
		func(s *jobs.TenantSLO) float64 { return s.WaitP99 })
	sloMetric("loopd_slo_run_p99_seconds", "gauge", "windowed p99 admission-to-completion run time of the tenant",
		func(s *jobs.TenantSLO) float64 { return s.RunP99 })

	// Per-shard series, labelled by shard id (= topology group index).
	shardMetric := func(name, typ, help string, field func(jobs.Stats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i, sh := range st.Shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %g\n", name, i, field(sh))
		}
	}
	shardGauge := func(name, help string, field func(jobs.Stats) float64) {
		shardMetric(name, "gauge", help, field)
	}
	shardCounter := func(name, help string, field func(jobs.Stats) float64) {
		shardMetric(name, "counter", help, field)
	}
	shardGauge("loopd_shard_workers", "workers owned by the shard", func(s jobs.Stats) float64 { return float64(s.Workers) })
	shardGauge("loopd_shard_busy_workers", "shard workers currently executing a job share", func(s jobs.Stats) float64 { return float64(s.BusyWorkers) })
	shardGauge("loopd_shard_queue_depth", "jobs waiting for admission on the shard", func(s jobs.Stats) float64 { return float64(s.QueueDepth) })
	shardGauge("loopd_shard_blocked_depth", "jobs submitted to the shard parked waiting for dependencies", func(s jobs.Stats) float64 { return float64(s.BlockedDepth) })
	shardGauge("loopd_shard_jobs_running", "jobs currently running on the shard", func(s jobs.Stats) float64 { return float64(s.Running) })
	shardCounter("loopd_shard_jobs_submitted_total", "jobs ever submitted to the shard (a stolen job completes elsewhere)", func(s jobs.Stats) float64 { return float64(s.Submitted) })
	shardCounter("loopd_shard_jobs_completed_total", "jobs ever completed by the shard", func(s jobs.Stats) float64 { return float64(s.Completed) })
	shardCounter("loopd_shard_iterations_total", "loop iterations executed by the shard", func(s jobs.Stats) float64 { return float64(s.IterationsDone) })
	shardCounter("loopd_shard_jobs_stolen_total", "whole queued jobs the shard stole from siblings", func(s jobs.Stats) float64 { return float64(s.Stolen) })
	shardCounter("loopd_shard_workers_lent_total", "workers the shard lent to siblings' jobs", func(s jobs.Stats) float64 { return float64(s.Lent) })
	shardCounter("loopd_shard_jobs_released_total", "blocked jobs of the shard released by their upstreams", func(s jobs.Stats) float64 { return float64(s.Released) })
	shardCounter("loopd_shard_jobs_depcanceled_total", "blocked jobs of the shard canceled by upstream propagation", func(s jobs.Stats) float64 { return float64(s.DepCanceled) })
	shardCounter("loopd_shard_workers_grown_total", "workers that joined running jobs on the shard", func(s jobs.Stats) float64 { return float64(s.Grown) })
	shardCounter("loopd_shard_workers_peeled_total", "workers that peeled off running jobs on the shard", func(s jobs.Stats) float64 { return float64(s.Peeled) })
	for i, sh := range st.Shards {
		summary("loopd_shard_job_latency_seconds", fmt.Sprintf("shard=%q", strconv.Itoa(i)),
			"per-shard job latency from submission to completion",
			sh.LatencyP50, sh.LatencyP95, sh.LatencyP99, sh.LatencySumSeconds, sh.Completed, i == 0)
	}
	for i, sh := range st.Shards {
		summary("loopd_shard_job_run_seconds", fmt.Sprintf("shard=%q", strconv.Itoa(i)),
			"per-shard job run time from admission to completion",
			sh.RunP50, sh.RunP95, sh.RunP99, sh.RunSumSeconds, sh.Completed, i == 0)
	}
}

// ParseTenantWeights parses loopd's -tenants flag: a comma-separated list
// of tenant weights, either named ("gold=3,bronze=1") or bare ("3,1", which
// registers tenants t1, t2, ... in order). Weights must be positive
// integers. An empty spec yields no registrations.
func ParseTenantWeights(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, wstr, named := strings.Cut(part, "=")
		if !named {
			name, wstr = fmt.Sprintf("t%d", i+1), part
		} else if name == "" {
			return nil, fmt.Errorf("tenants: entry %q has an empty name", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(wstr))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenants: entry %q: weight must be a positive integer", part)
		}
		out[name] = w
	}
	return out, nil
}

// intParam parses an integer query parameter with a default and inclusive
// bounds.
func intParam(r *http.Request, name string, def, min, max int) (int, error) {
	raw := r.FormValue(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("parameter %q = %d out of range [%d, %d]", name, v, min, max)
	}
	return v, nil
}

// buildIdentity extracts the go toolchain version and VCS revision from the
// binary's embedded build info ("unknown" when built without VCS stamping,
// as in `go test`).
func buildIdentity() (goVersion, revision string) {
	goVersion, revision = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	return goVersion, revision
}

// jsonBufPool recycles response-encoding buffers across requests: the /run
// hot path re-encodes structurally identical bodies per request, so encoding
// into a pooled buffer and writing once keeps the handler allocation-light
// and the response a single Write. Buffers that grew beyond
// maxPooledBufBytes are dropped rather than pinned.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBufBytes = 1 << 20

func writeJSON(w http.ResponseWriter, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}
