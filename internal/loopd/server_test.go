package loopd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"loopsched/internal/jobs"
	"loopsched/internal/spin"
)

func TestMain(m *testing.M) {
	// See internal/jobs: shrink the spin thresholds so sub-team join waves on
	// small test machines yield quickly.
	spin.ActiveSpins = 1 << 6
	spin.YieldThreshold = 1 << 8
	os.Exit(m.Run())
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestConcurrentRunRequests is the acceptance shape: at least 8 concurrent
// /run tenants against one shared pool, each verifying its reduction result,
// with the whole test run under -race.
func TestConcurrentRunRequests(t *testing.T) {
	_, ts := newTestServer(t)
	const tenants = 12
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 1000 + g
			resp, err := http.Post(
				fmt.Sprintf("%s/run?workload=sum&n=%d&jobs=2", ts.URL, n), "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("tenant %d: status %d: %s", g, resp.StatusCode, body)
				return
			}
			var rr runResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Error(err)
				return
			}
			if rr.Jobs != 2 || len(rr.Results) != 2 {
				t.Errorf("tenant %d: %+v", g, rr)
				return
			}
			want := float64(n) * float64(n-1) / 2
			for i, res := range rr.Results {
				if res.Error != "" {
					t.Errorf("tenant %d job %d: %s", g, i, res.Error)
				}
				if res.Result != want {
					t.Errorf("tenant %d job %d: result %v, want %v", g, i, res.Result, want)
				}
				if res.Workers < 1 {
					t.Errorf("tenant %d job %d: ran on %d workers", g, i, res.Workers)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if _, err := http.Post(ts.URL+"/run?workload=sum&n=500", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queue.Workers != 4 {
		t.Errorf("workers = %d, want 4", st.Queue.Workers)
	}
	if st.Queue.Completed < 1 {
		t.Errorf("completed = %d", st.Queue.Completed)
	}
	if len(st.Workloads) < 3 {
		t.Errorf("workloads = %v", st.Workloads)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", st.UptimeSeconds)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if _, err := http.Post(ts.URL+"/run?workload=sum&n=500&jobs=3", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE loopd_workers gauge",
		"loopd_workers 4",
		"# TYPE loopd_jobs_completed_total counter",
		"loopd_job_latency_seconds{quantile=\"0.99\"}",
		"loopd_iterations_total 1500",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// parseExposition parses Prometheus text exposition into type declarations
// and sample values, failing the test on malformed lines.
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		samples[fields[0]] = v
	}
	return types, samples
}

func TestMetricsSummaryConformance(t *testing.T) {
	// A Prometheus summary must expose <name>{quantile=...}, <name>_sum and
	// <name>_count series; the daemon previously emitted only the latency
	// quantiles. Parse the real exposition output and check both summaries.
	_, ts := newTestServer(t)
	const jobs = 4
	if _, err := http.Post(ts.URL+fmt.Sprintf("/run?workload=sum&n=800&jobs=%d", jobs), "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(body))
	for _, name := range []string{"loopd_job_latency_seconds", "loopd_job_run_seconds"} {
		if got := types[name]; got != "summary" {
			t.Errorf("%s TYPE = %q, want summary", name, got)
		}
		for _, q := range []string{"0.5", "0.95", "0.99"} {
			series := fmt.Sprintf("%s{quantile=%q}", name, q)
			if _, ok := samples[series]; !ok {
				t.Errorf("summary %s missing series %s", name, series)
			}
		}
		sum, ok := samples[name+"_sum"]
		if !ok || sum <= 0 {
			t.Errorf("summary %s missing positive _sum (got %v, present %v)", name, sum, ok)
		}
		count, ok := samples[name+"_count"]
		if !ok {
			t.Errorf("summary %s missing _count", name)
		}
		if completed := samples["loopd_jobs_completed_total"]; ok && count != completed {
			t.Errorf("%s_count = %v, want completed total %v", name, count, completed)
		}
	}
	for _, name := range []string{"loopd_workers_grown_total", "loopd_workers_peeled_total"} {
		if got := types[name]; got != "counter" {
			t.Errorf("%s TYPE = %q, want counter", name, got)
		}
		if v, ok := samples[name]; !ok || v < 0 {
			t.Errorf("%s sample missing or negative: %v (present %v)", name, v, ok)
		}
	}
}

func TestRunParameterValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		"/run?workload=no-such-workload",
		"/run?n=abc",
		"/run?n=-5",
		"/run?jobs=100000",
	} {
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	// Method matters: /run is POST-only, /stats GET-only.
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}

func TestShardedConcurrentRunsAndMetricsReconcile(t *testing.T) {
	// Concurrent /run tenants against an explicitly 2-sharded pool: every
	// reduction must be exact, the shard-labelled /metrics series must parse,
	// and the per-shard _sum/_count totals must reconcile with /stats.
	srv, err := New(Config{Workers: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	const tenants = 10
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 900 + g
			url := fmt.Sprintf("%s/run?workload=sum&n=%d&jobs=2", ts.URL, n)
			if g%3 == 0 {
				url += fmt.Sprintf("&shard=%d", g%2) // a few pinned tenants
			}
			resp, err := http.Post(url, "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("tenant %d: status %d: %s", g, resp.StatusCode, body)
				return
			}
			var rr runResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Error(err)
				return
			}
			want := float64(n) * float64(n-1) / 2
			for i, res := range rr.Results {
				if res.Error != "" {
					t.Errorf("tenant %d job %d: %s", g, i, res.Error)
				}
				if res.Result != want {
					t.Errorf("tenant %d job %d: result %v, want %v", g, i, res.Result, want)
				}
			}
		}(g)
	}
	wg.Wait()

	// Fetch both views of the same runtime.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(body))

	if st.Shards != 2 || len(st.ShardStats) != 2 {
		t.Fatalf("/stats shards = %d (%d snapshots), want 2", st.Shards, len(st.ShardStats))
	}
	if got := samples["loopd_shards"]; got != 2 {
		t.Errorf("loopd_shards = %v, want 2", got)
	}
	if types["loopd_shard_job_latency_seconds"] != "summary" {
		t.Errorf("loopd_shard_job_latency_seconds TYPE = %q, want summary", types["loopd_shard_job_latency_seconds"])
	}
	if types["loopd_shard_jobs_stolen_total"] != "counter" {
		t.Errorf("loopd_shard_jobs_stolen_total TYPE = %q, want counter", types["loopd_shard_jobs_stolen_total"])
	}

	// Per-shard series must exist for every shard and reconcile with both
	// the /stats snapshots and the pool-wide totals.
	var sumCompleted, sumLatency, sumIters float64
	for i := 0; i < st.Shards; i++ {
		label := fmt.Sprintf("{shard=\"%d\"}", i)
		count, ok := samples["loopd_shard_job_latency_seconds_count"+label]
		if !ok {
			t.Fatalf("missing loopd_shard_job_latency_seconds_count%s", label)
		}
		lsum, ok := samples["loopd_shard_job_latency_seconds_sum"+label]
		if !ok {
			t.Fatalf("missing loopd_shard_job_latency_seconds_sum%s", label)
		}
		for _, q := range []string{"0.5", "0.95", "0.99"} {
			series := fmt.Sprintf("loopd_shard_job_latency_seconds{shard=%q,quantile=%q}", strconv.Itoa(i), q)
			if _, ok := samples[series]; !ok {
				t.Errorf("missing per-shard quantile series %s", series)
			}
		}
		if want := float64(st.ShardStats[i].Completed); count != want {
			t.Errorf("shard %d metrics count %v != /stats completed %v", i, count, want)
		}
		sumCompleted += count
		sumLatency += lsum
		sumIters += samples["loopd_shard_iterations_total"+label]
	}
	if total := samples["loopd_jobs_completed_total"]; sumCompleted != total {
		t.Errorf("per-shard counts sum to %v, total series says %v", sumCompleted, total)
	}
	if want := float64(st.Queue.Completed); sumCompleted != want {
		t.Errorf("per-shard counts sum to %v, /stats total says %v", sumCompleted, want)
	}
	if total := samples["loopd_job_latency_seconds_sum"]; math.Abs(sumLatency-total) > 1e-9*(1+total) {
		t.Errorf("per-shard latency sums %v != total %v", sumLatency, total)
	}
	if total := samples["loopd_iterations_total"]; sumIters != total {
		t.Errorf("per-shard iteration counts sum to %v, total says %v", sumIters, total)
	}
	// Router sanity: with 10 concurrent tenants, both shards served jobs.
	for i := 0; i < st.Shards; i++ {
		if st.ShardStats[i].Completed == 0 && st.ShardStats[i].Submitted == 0 {
			t.Errorf("shard %d saw no traffic: router or stealing broken", i)
		}
	}
}

func TestRunShardPinParameterValidation(t *testing.T) {
	srv, err := New(Config{Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	resp, err := http.Post(ts.URL+"/run?workload=sum&n=100&shard=7", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range shard pin: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run?workload=sum&n=100&shard=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid shard pin: status %d, want 200", resp.StatusCode)
	}
	if got := srv.rt.Shard(1).Stats().Submitted; got < 1 {
		t.Errorf("shard 1 submitted = %d, want the pinned job", got)
	}
}

func TestPipelineRun(t *testing.T) {
	// A 3-stage pipeline with a fanned-out middle stage: every sum result
	// must be exact, and the runtime must report the dependent stages as
	// blocked-then-released rather than queued.
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?pipeline=sum:1000,sum:2000:3,sum:500", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Pipeline) != 3 || rr.Jobs != 5 {
		t.Fatalf("pipeline = %d stages, %d jobs; want 3 stages, 5 jobs", len(rr.Pipeline), rr.Jobs)
	}
	wantN := []int{1000, 2000, 500}
	wantWidth := []int{1, 3, 1}
	for i, st := range rr.Pipeline {
		if st.N != wantN[i] || st.Width != wantWidth[i] || len(st.Results) != wantWidth[i] {
			t.Errorf("stage %d = %+v, want n=%d width=%d", i, st, wantN[i], wantWidth[i])
		}
		want := float64(st.N) * float64(st.N-1) / 2
		for j, res := range st.Results {
			if res.Error != "" {
				t.Errorf("stage %d job %d: %s", i, j, res.Error)
			}
			if res.Result != want {
				t.Errorf("stage %d job %d: result %v, want %v", i, j, res.Result, want)
			}
		}
	}
	// Stages 2 and 3 contributed 4 dependent jobs, all released by joins.
	st := srv.rt.Stats()
	if st.Total.Released != 4 {
		t.Errorf("released = %d, want 4", st.Total.Released)
	}
	if st.Total.BlockedDepth != 0 {
		t.Errorf("blocked depth = %d after completion, want 0", st.Total.BlockedDepth)
	}
}

func TestPipelineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		"/run?pipeline=sum:abc",
		"/run?pipeline=sum:100:9999999",
		"/run?pipeline=no-such-workload:100",
		"/run?pipeline=sum:100:1:1",
		"/run?pipeline=,",
	} {
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestPipelineMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t)
	if _, err := http.Post(ts.URL+"/run?pipeline=sum:500,sum:500", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(body))
	if types["loopd_blocked_depth"] != "gauge" {
		t.Errorf("loopd_blocked_depth TYPE = %q, want gauge", types["loopd_blocked_depth"])
	}
	for _, name := range []string{"loopd_jobs_released_total", "loopd_jobs_depcanceled_total"} {
		if types[name] != "counter" {
			t.Errorf("%s TYPE = %q, want counter", name, types[name])
		}
	}
	if v := samples["loopd_jobs_released_total"]; v != 1 {
		t.Errorf("loopd_jobs_released_total = %v, want 1", v)
	}
	// The shard-labelled released counters must reconcile with the total.
	var shardSum float64
	for name, v := range samples {
		if strings.HasPrefix(name, "loopd_shard_jobs_released_total{") {
			shardSum += v
		}
	}
	if shardSum != samples["loopd_jobs_released_total"] {
		t.Errorf("per-shard released sum %v != total %v", shardSum, samples["loopd_jobs_released_total"])
	}
}

func TestTenantParamsRoundTripAndMetricsReconcile(t *testing.T) {
	// &tenant= / &prio= / &deadline_ms= round-trip through /run into the
	// runtime's tenant accounts, and the tenant-labelled /metrics series
	// reconcile with the untagged totals: every job is charged to exactly
	// one account, so the sums over the tenant label must equal the
	// pool-wide counters.
	srv, err := New(Config{Workers: 4, TenantWeights: map[string]int{"gold": 3, "bronze": 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	post := func(url string) {
		t.Helper()
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
		}
		var rr runResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		for i, res := range rr.Results {
			if res.Error != "" {
				t.Fatalf("%s job %d: %s", url, i, res.Error)
			}
		}
	}
	post("/run?workload=sum&n=600&jobs=3&tenant=gold&prio=5&deadline_ms=60000")
	post("/run?workload=sum&n=500&jobs=2&tenant=bronze")
	post("/run?workload=sum&n=400") // untagged: charged to "default"

	// /stats: the tenant accounts carry the weights and the served work.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	gold, ok := st.Queue.Tenants["gold"]
	if !ok {
		t.Fatalf("/stats has no gold tenant account: %+v", st.Queue.Tenants)
	}
	if gold.Weight != 3 || gold.Submitted != 3 || gold.Completed != 3 || gold.IterationsDone != 3*600 {
		t.Errorf("gold account = %+v, want weight 3, 3 submitted/completed, %d iterations", gold, 3*600)
	}
	if bronze := st.Queue.Tenants["bronze"]; bronze.Weight != 1 || bronze.Completed != 2 {
		t.Errorf("bronze account = %+v, want weight 1 and 2 completions", bronze)
	}
	if def := st.Queue.Tenants["default"]; def.Completed != 1 {
		t.Errorf("default account = %+v, want the untagged job", def)
	}

	// /metrics: parse the real exposition output and reconcile the
	// tenant-labelled series with the untagged totals.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(body))
	for _, name := range []string{"loopd_tenant_jobs_submitted_total", "loopd_tenant_jobs_completed_total", "loopd_tenant_iterations_total"} {
		if got := types[name]; got != "counter" {
			t.Errorf("%s TYPE = %q, want counter", name, got)
		}
	}
	if got := samples[`loopd_tenant_weight{tenant="gold"}`]; got != 3 {
		t.Errorf(`loopd_tenant_weight{tenant="gold"} = %v, want 3`, got)
	}
	if got := samples[`loopd_tenant_jobs_completed_total{tenant="gold"}`]; got != 3 {
		t.Errorf(`gold completed series = %v, want 3`, got)
	}
	for metric, total := range map[string]string{
		"loopd_tenant_jobs_submitted_total": "loopd_jobs_submitted_total",
		"loopd_tenant_jobs_completed_total": "loopd_jobs_completed_total",
		"loopd_tenant_iterations_total":     "loopd_iterations_total",
	} {
		var sum float64
		for name, v := range samples {
			if strings.HasPrefix(name, metric+"{") {
				sum += v
			}
		}
		if sum != samples[total] {
			t.Errorf("per-tenant %s sums to %v, untagged %s says %v", metric, sum, total, samples[total])
		}
	}
}

func TestTenantParamValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		"/run?workload=sum&n=100&prio=abc",
		"/run?workload=sum&n=100&prio=1000",
		"/run?workload=sum&n=100&deadline_ms=-5",
		"/run?workload=sum&n=100&tenant=bad%20name", // space not in [A-Za-z0-9_.-]
		"/run?workload=sum&n=100&tenant=" + strings.Repeat("x", 65),
	} {
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestParseTenantWeights(t *testing.T) {
	got, err := ParseTenantWeights("gold=3, bronze=1")
	if err != nil || got["gold"] != 3 || got["bronze"] != 1 || len(got) != 2 {
		t.Errorf("named spec -> %v, %v", got, err)
	}
	got, err = ParseTenantWeights("3,1,2")
	if err != nil || got["t1"] != 3 || got["t2"] != 1 || got["t3"] != 2 {
		t.Errorf("bare spec -> %v, %v", got, err)
	}
	if got, err := ParseTenantWeights(""); err != nil || got != nil {
		t.Errorf("empty spec -> %v, %v", got, err)
	}
	for _, bad := range []string{"gold=0", "gold=-1", "gold=x", "=3", "gold"} {
		if _, err := ParseTenantWeights(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestPipelineBadLaterStageSubmitsNothing(t *testing.T) {
	// A request whose later stage names an unknown workload must 400
	// without having already launched (and abandoned) the earlier stages.
	srv, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?pipeline=sum:100000,no-such-workload:100", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if st := srv.rt.Stats(); st.Total.Submitted != 0 {
		t.Errorf("submitted = %d, want 0 (orphaned stage jobs launched before validation)", st.Total.Submitted)
	}
}

func TestPipelineRejectsConflictingParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		"/run?pipeline=sum:100&workload=spin",
		"/run?pipeline=sum:100&jobs=4",
	} {
		resp, err := http.Post(ts.URL+url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

// TestRunBatch exercises the batched admission form of /run: &batch=1
// submits the whole fan-out through SubmitBatch, and the response must carry
// the same fields and correct per-job results as the unbatched form.
func TestRunBatch(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"/run?workload=sum&n=2048&jobs=6&batch=1",
		"/run?workload=sum&n=2048&jobs=6&batch=1&shard=0",
		"/run?workload=sum&n=2048&jobs=6&batch=1&tenant=gold&prio=2",
	} {
		resp, err := http.Post(ts.URL+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, body)
		}
		var rr runResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Jobs != 6 || len(rr.Results) != 6 {
			t.Fatalf("%s: %+v", q, rr)
		}
		want := float64(2048) * 2047 / 2
		for i, res := range rr.Results {
			if res.Error != "" {
				t.Fatalf("%s: job %d: %s", q, i, res.Error)
			}
			if math.Abs(res.Result-want) > 1e-6 {
				t.Fatalf("%s: job %d: result %v, want %v", q, i, res.Result, want)
			}
		}
	}
	// batch conflicts with pipeline.
	resp, err := http.Post(ts.URL+"/run?pipeline=sum:100&batch=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pipeline+batch: status %d, want 400", resp.StatusCode)
	}
}

// TestWriteJSONPooledIdentical pins the response-buffer pooling contract:
// writeJSON through the recycled buffers produces byte-identical output to a
// fresh indent encoder, across repeated (pool-reusing) calls.
func TestWriteJSONPooledIdentical(t *testing.T) {
	fixture := runResponse{
		Workload:   "sum",
		Jobs:       2,
		Iterations: 128,
		Results: []runJobResult{
			{Seconds: 0.25, Workers: 2, Result: 8128},
			{Seconds: 0.5, Workers: 1, Result: 8128, Error: "boom"},
		},
		WallSeconds: 0.75,
	}
	var want strings.Builder
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fixture); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec := httptest.NewRecorder()
		writeJSON(rec, fixture)
		if got := rec.Body.String(); got != want.String() {
			t.Fatalf("call %d: pooled writeJSON diverged:\ngot  %q\nwant %q", i, got, want.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("call %d: Content-Type = %q", i, ct)
		}
	}
}

// TestSLOTargetGaugeAlwaysPresent pins the satellite fix: loopd_slo_target is
// the daemon's configured objective, so it must be scrapeable before any job
// has completed (previously it only appeared once some tenant had a non-empty
// SLO window, and then echoed that tenant's target).
func TestSLOTargetGaugeAlwaysPresent(t *testing.T) {
	for _, tc := range []struct {
		target float64
		want   string
	}{
		{0, "loopd_slo_target 0.99"},    // default
		{0.95, "loopd_slo_target 0.95"}, // configured
	} {
		srv, err := New(Config{Workers: 2, SLOTarget: tc.target})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		ts.Close()
		srv.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), tc.want+"\n") {
			t.Errorf("SLOTarget=%v: fresh /metrics missing %q", tc.target, tc.want)
		}
	}
}

// TestNoWaitBackpressure rejects a &nowait=1 submission with 503 and a
// Retry-After hint when the admission queue is full, instead of blocking the
// handler. The queue is filled deterministically: a blocker job occupies
// every worker and a second job holds the single queue slot.
func TestNoWaitBackpressure(t *testing.T) {
	srv, err := New(Config{Workers: 2, Shards: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	release := make(chan struct{})
	block := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			<-release
		}
	}
	blocker, err := srv.rt.Submit(jobs.Request{N: 2, Grain: 1, Body: block})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to hold the workers so the next job queues.
	deadline := time.Now().Add(5 * time.Second)
	for srv.rt.Stats().Total.Running < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := srv.rt.Submit(jobs.Request{N: 1, Body: block, NoWait: true})
	if err != nil {
		t.Fatalf("queued job rejected with the slot free: %v", err)
	}
	for srv.rt.Stats().Total.QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/run?workload=sum&n=64&nowait=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nowait submit with a full queue: status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 response missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integral number of seconds", ra)
	}
	st := srv.rt.Stats().Total
	if st.ShedTotal < 1 || st.BackloggedTotal < 1 {
		t.Errorf("shed/backlogged totals = %d/%d, want >= 1", st.ShedTotal, st.BackloggedTotal)
	}
	// Drain: three receives release the blocker's two iterations and the
	// queued job's one.
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadStatusMapping pins the HTTP error taxonomy: breaker sheds are
// the caller's fault (429), backlog and infeasible sheds are the service's
// (503), and other submission errors are not overload rejections.
func TestOverloadStatusMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		code int
		ok   bool
	}{
		{jobs.ErrBreakerOpen, http.StatusTooManyRequests, true},
		{jobs.ErrBacklogged, http.StatusServiceUnavailable, true},
		{jobs.ErrInfeasible, http.StatusServiceUnavailable, true},
		{&jobs.OverloadError{Err: jobs.ErrBreakerOpen, RetryAfter: time.Second}, http.StatusTooManyRequests, true},
		{jobs.ErrClosed, 0, false},
	} {
		code, ok := overloadStatus(tc.err)
		if code != tc.code || ok != tc.ok {
			t.Errorf("overloadStatus(%v) = (%d, %v), want (%d, %v)", tc.err, code, ok, tc.code, tc.ok)
		}
	}
}

// TestUnknownWorkloadListsRegistered pins the unknown-workload contract: a
// bad name 400s with a structured JSON body carrying every registered
// workload — including the numeric kernels the load generator replays.
func TestUnknownWorkloadListsRegistered(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/run?workload=no-such-workload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q, want application/json", ct)
	}
	var body struct {
		Error     string   `json:"error"`
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode 400 body: %v", err)
	}
	if body.Error == "" {
		t.Error("400 body has no error message")
	}
	for _, want := range []string{"mpdata", "linreg", "grid", "mapreduce", "spin"} {
		found := false
		for _, w := range body.Workloads {
			if w == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("workload %q missing from 400 body list %v", want, body.Workloads)
		}
	}
}

// TestKernelWorkloadsServed runs each numeric kernel through the full HTTP
// path: /run must answer 200 with a finite positive reduction.
func TestKernelWorkloadsServed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, name := range []string{"mpdata", "linreg", "grid", "mapreduce"} {
		resp, err := http.Post(ts.URL+"/run?workload="+name+"&n=2048", "", nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var body struct {
			Results []struct {
				Result float64 `json:"result"`
				Error  string  `json:"error"`
			} `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", name, resp.StatusCode)
		}
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(body.Results) != 1 || body.Results[0].Error != "" || !(body.Results[0].Result > 0) {
			t.Errorf("%s: results = %+v, want one finite positive result", name, body.Results)
		}
	}
}
