package loopd

// Observability endpoint tests: the /events SSE feed (causal order, tenant
// filtering, slow-subscriber drops, 404 when tracing is off), the
// /trace/{job} span trees, the snapshot-sequenced /stats runtime block, and
// the build-info / SLO metric families.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loopsched/internal/schedtest"
	"loopsched/internal/trace"
)

func newTracedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Trace = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// eventStream is an open /events SSE connection. Obtain one with openEvents
// BEFORE submitting the work whose events the test needs: the subscription is
// live once openEvents returns (the 200 header is written after the server
// registers it), so nothing emitted afterwards is missed.
type eventStream struct {
	t      *testing.T
	cancel context.CancelFunc
	body   io.ReadCloser
	sc     *bufio.Scanner
}

func openEvents(t *testing.T, url, query string) *eventStream {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/events"+query, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("/events status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("/events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	s := &eventStream{t: t, cancel: cancel, body: resp.Body, sc: sc}
	t.Cleanup(s.close)
	return s
}

func (s *eventStream) close() {
	s.cancel()
	s.body.Close()
}

// collect decodes SSE frames until done returns true; it fails the test if
// the stream ends (disconnect or the 30s connection deadline) first.
func (s *eventStream) collect(done func([]trace.StreamEvent) bool) []trace.StreamEvent {
	s.t.Helper()
	var events []trace.StreamEvent
	for !done(events) && s.sc.Scan() {
		line := s.sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev trace.StreamEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				s.t.Fatalf("bad event payload %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if !done(events) {
		s.t.Fatalf("stream ended after %d events without satisfying the predicate (deadline or disconnect)", len(events))
	}
	return events
}

// countType counts events of one type.
func countType(events []trace.StreamEvent, typ string) int {
	n := 0
	for _, ev := range events {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// TestEventsPipelineCausalOrder is the acceptance shape: a sharded traced
// daemon with hostile stealing runs a multi-stage pipeline (blocked jobs,
// releases, elastic churn, cross-shard steals) plus a concurrent
// high-priority deadline tenant (preemption pressure), and the /events feed
// must deliver every lifecycle transition of every job in causal order.
func TestEventsPipelineCausalOrder(t *testing.T) {
	_, ts := newTracedServer(t, Config{
		Workers:       4,
		Shards:        2,
		StealInterval: 20 * time.Microsecond,
	})

	// 1 + 4 + 2 pipeline jobs + 6 priority jobs.
	const totalJobs = 13
	finished := func(evs []trace.StreamEvent) bool {
		return countType(evs, "joined")+countType(evs, "canceled") >= totalJobs
	}

	// Subscribe before submitting anything: the feed must carry every
	// transition of every job from submission on.
	stream := openEvents(t, ts.URL, "?buffer=8192")

	runDone := make(chan error, 2)
	go func() {
		resp, err := http.Post(ts.URL+"/run?pipeline=spin:20000,sum:4096:4,sum:2048:2&tenant=pipe", "", nil)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("pipeline run status %d", resp.StatusCode)
			}
		}
		runDone <- err
	}()
	go func() {
		resp, err := http.Post(ts.URL+"/run?workload=spin&n=20000&jobs=6&tenant=urgent&prio=3&deadline_ms=1", "", nil)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("priority run status %d", resp.StatusCode)
			}
		}
		runDone <- err
	}()

	events := stream.collect(finished)
	for i := 0; i < 2; i++ {
		if err := <-runDone; err != nil {
			t.Fatal(err)
		}
	}

	schedtest.AssertEventOrder(t, events)
	for _, typ := range []string{"submitted", "blocked", "released", "admitted", "dispatched", "joined"} {
		if countType(events, typ) == 0 {
			t.Errorf("no %q events in a pipeline run", typ)
		}
	}
	if got := countType(events, "submitted"); got != totalJobs {
		t.Errorf("%d submitted events, want %d", got, totalJobs)
	}
	// Stages 2 and 3 (6 jobs) ride the dependency path.
	if got := countType(events, "released"); got != 6 {
		t.Errorf("%d released events, want 6", got)
	}
}

func TestEventsTenantFilter(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 4})
	finished := func(evs []trace.StreamEvent) bool { return countType(evs, "joined") >= 3 }
	stream := openEvents(t, ts.URL, "?tenant=gold")

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		for _, q := range []string{
			"/run?workload=sum&n=2048&jobs=3&tenant=gold",
			"/run?workload=sum&n=2048&jobs=3&tenant=bronze",
		} {
			resp, err := http.Post(ts.URL+q, "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	events := stream.collect(finished)
	<-runDone
	if len(events) == 0 {
		t.Fatal("filtered feed delivered nothing")
	}
	for _, ev := range events {
		if ev.Tenant != "gold" {
			t.Fatalf("tenant filter leaked event %+v", ev)
		}
	}
	schedtest.AssertEventOrder(t, events)
}

func TestEventsSlowSubscriberDropsAndCounts(t *testing.T) {
	srv, ts := newTracedServer(t, Config{Workers: 4})
	// An unread 1-slot subscription stands in for a stalled /events client:
	// the runtime must keep going and count what it couldn't deliver.
	sub := srv.tracer.Subscribe(1, "", 0)
	defer sub.Close()

	resp, err := http.Post(ts.URL+"/run?workload=sum&n=2048&jobs=16", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if sub.Dropped() == 0 {
		t.Error("stalled subscriber reports no drops")
	}
	st := srv.tracer.Stats()
	if st.DroppedTotal == 0 {
		t.Error("tracer-wide drop counter still zero")
	}
	if st.EventsTotal == 0 {
		t.Error("no events emitted")
	}
}

func TestEventsBadParameters(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 2})
	for _, q := range []string{"?tenant=bad~name", "?job=nope", "?buffer=0"} {
		resp, err := http.Get(ts.URL + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/events%s status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestEventsAndTraceDisabledWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/events", "/trace/1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "tracing disabled") {
			t.Errorf("%s body %q does not explain how to enable tracing", path, body)
		}
	}
}

func TestTraceEndpointServesOTLPSpanTree(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 4})
	resp, err := http.Post(ts.URL+"/run?workload=sum&n=4096&tenant=acme", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rr.Results) != 1 || rr.Results[0].Job == 0 {
		t.Fatalf("traced /run response carries no job id: %+v", rr.Results)
	}

	resp, err = http.Get(fmt.Sprintf("%s/trace/%d", ts.URL, rr.Results[0].Job))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/trace status %d: %s", resp.StatusCode, body)
	}
	var doc trace.OTLPDocument
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.ResourceSpans) != 1 {
		t.Fatalf("OTLP document has %d resourceSpans, want 1", len(doc.ResourceSpans))
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	var root *trace.OTLPSpan
	for i := range spans {
		if spans[i].Name == "job" {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no job root span")
	}
	if len(root.TraceID) != 32 || len(root.SpanID) != 16 {
		t.Fatalf("root ids trace=%q span=%q, want 32/16 hex chars", root.TraceID, root.SpanID)
	}
	for _, sp := range spans {
		if sp.Name != "job" && sp.TraceID != root.TraceID {
			t.Errorf("span %q not in the root's trace", sp.Name)
		}
	}

	// Unknown and malformed ids.
	if resp, err = http.Get(ts.URL + "/trace/999999"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/trace/999999 status %d, want 404", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/trace/abc"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/trace/abc status %d, want 400", resp.StatusCode)
	}
}

func TestStatsSnapshotSeqRuntimeAndTraceBlocks(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 2})
	get := func() statsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b := get(), get()
	if b.SnapshotSeq <= a.SnapshotSeq {
		t.Errorf("snapshot_seq not monotonic: %d then %d", a.SnapshotSeq, b.SnapshotSeq)
	}
	if b.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", b.UptimeSeconds)
	}
	if b.Runtime.Goroutines <= 0 || b.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime block not populated: %+v", b.Runtime)
	}
	if b.Trace == nil {
		t.Fatal("traced server's /stats has no trace block")
	}

	// An untraced server omits the trace block.
	_, plain := newTestServer(t)
	resp, err := http.Get(plain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Trace != nil {
		t.Error("untraced server's /stats has a trace block")
	}
}

func TestMetricsBuildInfoTraceAndSLOFamilies(t *testing.T) {
	_, ts := newTracedServer(t, Config{Workers: 4})
	// Deadline hits (generous budget) and misses (1ms against spin jobs) for
	// one tenant, plus deadline-less background for another.
	for _, q := range []string{
		"/run?workload=sum&n=2048&jobs=4&tenant=acme&deadline_ms=60000",
		"/run?workload=spin&n=200000&jobs=4&tenant=acme&deadline_ms=1",
		"/run?workload=sum&n=2048&jobs=2&tenant=calm",
	} {
		resp, err := http.Post(ts.URL+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	types, samples := parseExposition(t, string(body))

	// Build info: constant-1 gauge with go_version/revision labels.
	if types["loopd_build_info"] != "gauge" {
		t.Errorf("loopd_build_info type %q, want gauge", types["loopd_build_info"])
	}
	foundBuild := false
	for series, v := range samples {
		if strings.HasPrefix(series, "loopd_build_info{") {
			foundBuild = true
			if v != 1 {
				t.Errorf("%s = %g, want 1", series, v)
			}
			if !strings.Contains(series, "go_version=") || !strings.Contains(series, "revision=") {
				t.Errorf("build info series %q missing labels", series)
			}
		}
	}
	if !foundBuild {
		t.Error("no loopd_build_info sample")
	}

	// Tracer accounting.
	if samples["loopd_trace_events_total"] == 0 {
		t.Error("loopd_trace_events_total is zero after traced runs")
	}
	if _, ok := samples["loopd_trace_finished_traces"]; !ok {
		t.Error("no loopd_trace_finished_traces sample")
	}

	// SLO families: acme ran 8 deadline jobs, of which the 1ms batch missed.
	deadlineJobs := samples[`loopd_tenant_deadline_jobs_total{tenant="acme"}`]
	missed := samples[`loopd_tenant_deadline_missed_total{tenant="acme"}`]
	if deadlineJobs != 8 {
		t.Errorf("acme deadline jobs = %g, want 8", deadlineJobs)
	}
	if missed == 0 || missed > deadlineJobs {
		t.Errorf("acme deadline missed = %g (of %g)", missed, deadlineJobs)
	}
	hitRatio := samples[`loopd_slo_deadline_hit_ratio{tenant="acme"}`]
	// The window covers all of acme's completions, so the ratio reconciles
	// with the cumulative counters exactly.
	wantRatio := (deadlineJobs - missed) / deadlineJobs
	if diff := hitRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("acme hit ratio %g does not reconcile with counters (want %g)", hitRatio, wantRatio)
	}
	burn := samples[`loopd_slo_burn_rate{tenant="acme"}`]
	wantBurn := (1 - wantRatio) / (1 - samples["loopd_slo_target"])
	if diff := burn - wantBurn; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("acme burn rate %g, want %g", burn, wantBurn)
	}
	// A tenant with no deadline jobs shows an unexercised (healthy) SLO.
	if v := samples[`loopd_slo_deadline_hit_ratio{tenant="calm"}`]; v != 1 {
		t.Errorf("calm hit ratio = %g, want 1", v)
	}
	if v := samples[`loopd_slo_burn_rate{tenant="calm"}`]; v != 0 {
		t.Errorf("calm burn rate = %g, want 0", v)
	}
	if samples[`loopd_slo_window_jobs{tenant="acme"}`] != 8 {
		t.Errorf("acme window jobs = %g, want 8", samples[`loopd_slo_window_jobs{tenant="acme"}`])
	}
	if types["loopd_slo_burn_rate"] != "gauge" || types["loopd_tenant_deadline_jobs_total"] != "counter" {
		t.Errorf("SLO metric types wrong: %q/%q", types["loopd_slo_burn_rate"], types["loopd_tenant_deadline_jobs_total"])
	}
	if samples[`loopd_tenant_run_seconds_sum{tenant="acme"}`] <= 0 {
		t.Error("loopd_tenant_run_seconds_sum not populated")
	}
}

func TestDebugPprofGatedByFlag(t *testing.T) {
	srv, err := New(Config{Workers: 2, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d with -debug, want 200", resp.StatusCode)
	}

	_, plain := newTestServer(t)
	resp, err = http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ status %d without -debug, want 404", resp.StatusCode)
	}
}
