package workload

import (
	"sync"
	"testing"
	"time"
)

func TestCalibrateUnitIsSafeConcurrently(t *testing.T) {
	// The loopd daemon calibrates from HTTP handler goroutines; concurrent
	// first calls must race-cleanly agree on one value.
	var wg sync.WaitGroup
	vals := make([]float64, 8)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i] = CalibrateUnit()
		}(i)
	}
	wg.Wait()
	for i, v := range vals {
		if v != vals[0] || v <= 0 {
			t.Fatalf("goroutine %d saw unit cost %v, want %v", i, v, vals[0])
		}
	}
}

func TestCalibrateUnitIsPositiveAndCached(t *testing.T) {
	a := CalibrateUnit()
	b := CalibrateUnit()
	if a <= 0 {
		t.Fatalf("unit cost %v", a)
	}
	if a != b {
		t.Errorf("calibration not cached: %v vs %v", a, b)
	}
}

func TestCalibrateTargets(t *testing.T) {
	w := Calibrate(1000) // ~1 µs per iteration
	if w.UnitsPerIter < 1 {
		t.Fatalf("units = %d", w.UnitsPerIter)
	}
	if w.NsPerIter <= 0 {
		t.Fatalf("NsPerIter = %v", w.NsPerIter)
	}
	// A tiny target still yields at least one unit.
	tiny := Calibrate(0.0001)
	if tiny.UnitsPerIter != 1 {
		t.Errorf("tiny target should clamp to 1 unit, got %d", tiny.UnitsPerIter)
	}
}

func TestWorkRunAccumulates(t *testing.T) {
	w := Work{UnitsPerIter: 10, NsPerIter: 1}
	a := w.Run(0, 100)
	b := w.Run(0, 100)
	if a != b {
		t.Errorf("Run is not deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Errorf("Run returned 0; the kernel may have been optimised away")
	}
	if w.Iter(3) == 0 {
		t.Errorf("Iter returned 0")
	}
	if w.SequentialNs(1000) != 1000 {
		t.Errorf("SequentialNs = %v", w.SequentialNs(1000))
	}
}

func TestWorkDurationScalesWithUnits(t *testing.T) {
	small := Work{UnitsPerIter: 100}
	large := Work{UnitsPerIter: 10000}
	timeIt := func(w Work) time.Duration {
		start := time.Now()
		for r := 0; r < 50; r++ {
			Sink += w.Run(0, 10)
		}
		return time.Since(start)
	}
	ts := timeIt(small)
	tl := timeIt(large)
	if tl < 10*ts {
		t.Errorf("100x more units only took %.1fx longer (%v vs %v); kernel may be optimised away",
			float64(tl)/float64(ts+1), tl, ts)
	}
}

func TestNewSweepShape(t *testing.T) {
	s := NewSweep(100, 2*time.Microsecond, 2*time.Millisecond, 12)
	if len(s.Counts) < 5 {
		t.Fatalf("sweep has only %d points", len(s.Counts))
	}
	for i := 1; i < len(s.Counts); i++ {
		if s.Counts[i] <= s.Counts[i-1] {
			t.Errorf("sweep counts not strictly increasing: %v", s.Counts)
			break
		}
	}
	if s.Counts[0] < 1 {
		t.Errorf("first count %d", s.Counts[0])
	}
	// The largest loop should be roughly maxTotal/NsPerIter.
	last := float64(s.Counts[len(s.Counts)-1]) * s.Work.NsPerIter
	if last < float64((1 * time.Millisecond).Nanoseconds()) {
		t.Errorf("sweep tops out at %.0f ns of work, want >= 1 ms", last)
	}
	// Degenerate arguments still produce a sane sweep.
	d := NewSweep(100, time.Millisecond, time.Microsecond, 1)
	if len(d.Counts) < 2 {
		t.Errorf("degenerate sweep: %v", d.Counts)
	}
}
