// Package workload provides the synthetic workloads used by the scheduler
// burden micro-benchmark (Table 1 of the paper): a calibrated spin kernel
// whose per-iteration cost can be dialled from tens of nanoseconds to
// microseconds, so that the total sequential work T of a parallel loop can
// be swept across the range where it is comparable to the scheduling
// overhead d.
package workload

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// kernel performs `units` rounds of integer/floating point busy-work whose
// result is returned so the compiler cannot remove it. One unit is a handful
// of nanoseconds on current hardware.
func kernel(units int, seed uint64) uint64 {
	x := seed | 1
	f := 1.0001
	for i := 0; i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f = f*1.0000001 + float64(x&0xff)*1e-12
	}
	return x + uint64(math.Float64bits(f)&0xf)
}

// Sink accumulates kernel results; exported so benchmarks can defeat dead
// code elimination across package boundaries. It is for single-goroutine
// use (calibration, sequential baselines); parallel loop bodies must use
// Consume instead.
var Sink uint64

// sinkAtomic is the thread-safe counterpart of Sink.
var sinkAtomic atomic.Uint64

// Consume folds a kernel result into a global sink with an atomic update,
// defeating dead-code elimination from concurrently executing loop bodies.
func Consume(v uint64) { sinkAtomic.Add(v) }

// Consumed returns the total consumed so far (used only by tests).
func Consumed() uint64 { return sinkAtomic.Load() }

// Work is a calibrated unit-cost iteration body.
type Work struct {
	// UnitsPerIter is the number of kernel units executed per iteration.
	UnitsPerIter int
	// NsPerIter is the calibrated cost of one iteration in nanoseconds.
	NsPerIter float64
}

// Calibrate measures the cost of one kernel unit and returns a Work whose
// per-iteration cost is as close as possible to targetNs nanoseconds (at
// least one unit per iteration).
func Calibrate(targetNs float64) Work {
	unitNs := CalibrateUnit()
	units := int(targetNs / unitNs)
	if units < 1 {
		units = 1
	}
	return Work{UnitsPerIter: units, NsPerIter: unitNs * float64(units)}
}

// calibratedUnitNs caches the measured cost of a single kernel unit;
// calibrateOnce makes the measurement safe from concurrent callers (the
// loopd daemon calibrates from HTTP handler goroutines).
var (
	calibrateOnce    sync.Once
	calibratedUnitNs float64
)

// CalibrateUnit measures (once) and returns the cost in nanoseconds of a
// single kernel unit. Safe for concurrent use.
func CalibrateUnit() float64 {
	calibrateOnce.Do(func() {
		const probeUnits = 1 << 16
		best := math.MaxFloat64
		var acc uint64
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			acc += kernel(probeUnits, uint64(rep)+1)
			elapsed := float64(time.Since(start).Nanoseconds())
			per := elapsed / probeUnits
			if per < best {
				best = per
			}
		}
		Consume(acc) // defeat dead-code elimination without touching Sink
		if best <= 0 || math.IsInf(best, 0) {
			best = 1 // pathological timer resolution; assume 1 ns per unit
		}
		calibratedUnitNs = best
	})
	return calibratedUnitNs
}

// Iter runs the calibrated work for iteration i and returns a value that
// must be accumulated by the caller (to defeat dead-code elimination).
func (w Work) Iter(i int) uint64 {
	return kernel(w.UnitsPerIter, uint64(i)+1)
}

// Run executes iterations [begin, end) and returns their combined result.
func (w Work) Run(begin, end int) uint64 {
	var acc uint64
	for i := begin; i < end; i++ {
		acc += kernel(w.UnitsPerIter, uint64(i)+1)
	}
	return acc
}

// SequentialNs estimates the sequential execution time, in nanoseconds, of a
// loop of n iterations of this work.
func (w Work) SequentialNs(n int) float64 { return w.NsPerIter * float64(n) }

// CostSweep describes a granularity sweep at a fixed iteration count: the
// per-iteration cost grows geometrically so that the total sequential work
// of the loop spans [minTotal, maxTotal]. This is the shape of the paper's
// micro-benchmark ("varying the amount of work in the parallel loop"): the
// loop structure — and therefore the number of scheduling events, chunk
// claims and steals per loop — stays constant while only the work changes,
// so the fitted intercept isolates the scheduler burden.
type CostSweep struct {
	// Iterations is the fixed iteration count of every loop in the sweep.
	Iterations int
	// Works holds one calibrated Work per sweep point, ordered by
	// increasing total cost.
	Works []Work
}

// NewCostSweep builds a cost sweep of `points` loops over `iterations`
// iterations whose total sequential durations range geometrically from
// minTotal to maxTotal.
func NewCostSweep(iterations int, minTotal, maxTotal time.Duration, points int) CostSweep {
	if iterations < 1 {
		iterations = 1
	}
	if points < 2 {
		points = 2
	}
	unitNs := CalibrateUnit()
	lo := float64(minTotal.Nanoseconds())
	hi := float64(maxTotal.Nanoseconds())
	if lo <= 0 {
		lo = 1000
	}
	if hi <= lo {
		hi = lo * 10
	}
	ratio := math.Pow(hi/lo, 1/float64(points-1))
	s := CostSweep{Iterations: iterations}
	total := lo
	prevUnits := 0
	for i := 0; i < points; i++ {
		perIterNs := total / float64(iterations)
		units := int(perIterNs / unitNs)
		if units < 1 {
			units = 1
		}
		if units != prevUnits {
			s.Works = append(s.Works, Work{UnitsPerIter: units, NsPerIter: unitNs * float64(units)})
			prevUnits = units
		}
		total *= ratio
	}
	return s
}

// Sweep describes a granularity sweep for the burden micro-benchmark: a
// fixed per-iteration cost and a set of iteration counts chosen so the total
// sequential work spans [MinTotal, MaxTotal].
type Sweep struct {
	Work   Work
	Counts []int
}

// NewSweep builds a sweep whose total sequential work ranges geometrically
// from minTotal to maxTotal (durations) across `points` measurement points,
// with a per-iteration cost of about iterNs nanoseconds.
func NewSweep(iterNs float64, minTotal, maxTotal time.Duration, points int) Sweep {
	if points < 2 {
		points = 2
	}
	w := Calibrate(iterNs)
	lo := float64(minTotal.Nanoseconds())
	hi := float64(maxTotal.Nanoseconds())
	if hi <= lo {
		hi = lo * 10
	}
	ratio := math.Pow(hi/lo, 1/float64(points-1))
	counts := make([]int, 0, points)
	total := lo
	for i := 0; i < points; i++ {
		n := int(total / w.NsPerIter)
		if n < 1 {
			n = 1
		}
		if len(counts) == 0 || n != counts[len(counts)-1] {
			counts = append(counts, n)
		}
		total *= ratio
	}
	return Sweep{Work: w, Counts: counts}
}
