// Package pool manages the persistent worker team shared by all schedulers
// in this repository.
//
// The paper's runtimes keep a pool of worker pthreads pinned to cores for
// the lifetime of the program; parallel loops merely wake them. The closest
// analogue in pure Go is a fixed set of goroutines, each locked to an OS
// thread (runtime.LockOSThread), created once and parked in the scheduler's
// own wait loop between parallel regions. This package owns creation,
// numbering and teardown of those goroutines; the scheduler supplies the
// body each worker runs.
//
// Worker 0 is by convention the master: it is the caller's goroutine and is
// never spawned by the pool.
package pool

import (
	"fmt"
	"runtime"
	"sync"
)

// Config controls team creation.
type Config struct {
	// Workers is the team size P, including the master. Values <= 0 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// LockOSThread locks each spawned worker to an OS thread. This is the
	// default for benchmark fidelity; disable it for tests that spawn many
	// teams.
	LockOSThread bool
	// Name is used in diagnostics.
	Name string
}

// DefaultConfig returns the configuration used when none is supplied.
func DefaultConfig() Config {
	return Config{Workers: runtime.GOMAXPROCS(0), LockOSThread: true, Name: "team"}
}

// Team is a set of persistent workers. The master (worker 0) is the
// goroutine that calls Start and later the scheduler's loop entry points;
// workers 1..P-1 are spawned goroutines executing the body supplied to
// Start until the body returns.
type Team struct {
	cfg     Config
	p       int
	started bool
	wg      sync.WaitGroup
}

// New creates a team (not yet started).
func New(cfg Config) *Team {
	p := cfg.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	cfg.Workers = p
	return &Team{cfg: cfg, p: p}
}

// P returns the team size, including the master.
func (t *Team) P() int { return t.p }

// Config returns the configuration the team was built with.
func (t *Team) Config() Config { return t.cfg }

// Start spawns workers 1..P-1, each running body(w). The body is expected to
// loop — waiting for work using the scheduler's own mechanism — and return
// only when the scheduler shuts down. Start panics if called twice.
func (t *Team) Start(body func(w int)) {
	if t.started {
		panic(fmt.Sprintf("pool: team %q started twice", t.cfg.Name))
	}
	t.started = true
	for w := 1; w < t.p; w++ {
		t.wg.Add(1)
		go func(w int) {
			defer t.wg.Done()
			if t.cfg.LockOSThread {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			body(w)
		}(w)
	}
}

// StartAll spawns all P workers 0..P-1, each running body(w). It serves
// runtimes with no distinguished master goroutine — the multi-tenant jobs
// scheduler, whose submitters are transient request goroutines that must not
// be conscripted into loop execution. Like Start, the body is expected to
// loop until the scheduler shuts down. StartAll panics if the team was
// already started.
func (t *Team) StartAll(body func(w int)) {
	if t.started {
		panic(fmt.Sprintf("pool: team %q started twice", t.cfg.Name))
	}
	t.started = true
	for w := 0; w < t.p; w++ {
		t.wg.Add(1)
		go func(w int) {
			defer t.wg.Done()
			if t.cfg.LockOSThread {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			body(w)
		}(w)
	}
}

// Wait blocks until every spawned worker's body has returned. The scheduler
// must have already signalled its workers to exit (for example, by
// publishing a shutdown command through its fork mechanism), otherwise Wait
// blocks forever.
func (t *Team) Wait() {
	t.wg.Wait()
}

// Started reports whether Start has been called.
func (t *Team) Started() bool { return t.started }
