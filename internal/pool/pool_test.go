package pool

import (
	"sync/atomic"
	"testing"
)

func TestTeamSpawnsWorkers(t *testing.T) {
	team := New(Config{Workers: 5, LockOSThread: false, Name: "t"})
	if team.P() != 5 {
		t.Fatalf("P = %d", team.P())
	}
	var seen [5]atomic.Bool
	team.Start(func(w int) {
		if w < 1 || w >= 5 {
			t.Errorf("worker id %d out of range", w)
			return
		}
		seen[w].Store(true)
	})
	team.Wait()
	for w := 1; w < 5; w++ {
		if !seen[w].Load() {
			t.Errorf("worker %d never ran", w)
		}
	}
	if seen[0].Load() {
		t.Errorf("worker 0 (the master) must not be spawned")
	}
	if !team.Started() {
		t.Errorf("Started() = false after Start")
	}
}

func TestTeamDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers <= 0 || !cfg.LockOSThread {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	team := New(Config{Workers: 0, LockOSThread: false})
	if team.P() < 1 {
		t.Errorf("P = %d", team.P())
	}
	if team.Config().Workers != team.P() {
		t.Errorf("config not normalised")
	}
}

func TestSingleWorkerTeam(t *testing.T) {
	team := New(Config{Workers: 1, LockOSThread: false})
	ran := false
	team.Start(func(w int) { ran = true })
	team.Wait() // no workers to wait for
	if ran {
		t.Errorf("a 1-worker team must not spawn anything")
	}
}

func TestLockOSThreadWorkersRun(t *testing.T) {
	team := New(Config{Workers: 3, LockOSThread: true})
	var count atomic.Int32
	team.Start(func(w int) { count.Add(1) })
	team.Wait()
	if count.Load() != 2 {
		t.Errorf("ran %d workers, want 2", count.Load())
	}
}

func TestDoubleStartPanics(t *testing.T) {
	team := New(Config{Workers: 2, LockOSThread: false})
	team.Start(func(w int) {})
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on second Start")
		}
		team.Wait()
	}()
	team.Start(func(w int) {})
}
