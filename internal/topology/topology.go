// Package topology models the shape of the machine for the purpose of tuning
// tree barriers and worker placement.
//
// The paper tunes its Mellor-Crummey/Scott style tree barrier to the
// organisation of the evaluation machine (4 sockets × 12 cores). Pure Go
// cannot query socket boundaries portably, so this package models a
// two-level hierarchy — groups of workers that are assumed to share a cache
// domain — and derives per-level fan-outs for the barrier tree from it. The
// defaults are chosen from runtime.NumCPU; tests and the harness can build
// explicit topologies.
package topology

import (
	"fmt"
	"runtime"
)

// Topology describes a two-level machine: NumGroups groups ("sockets") of
// GroupSize workers each. Workers are numbered 0..P-1; worker w belongs to
// group w/GroupSize.
type Topology struct {
	// P is the total number of workers.
	P int
	// NumGroups is the number of cache/socket domains.
	NumGroups int
	// GroupSize is the number of workers per group. The last group may be
	// smaller if P is not a multiple of GroupSize.
	GroupSize int
}

// Detect builds a topology for p workers on the current machine. If p <= 0,
// runtime.NumCPU() workers are assumed. The group size is a guess: 12 workers
// per group (a typical cores-per-socket figure, and the figure of the paper's
// machine), clamped to p.
func Detect(p int) Topology {
	if p <= 0 {
		p = runtime.NumCPU()
	}
	gs := 12
	if gs > p {
		gs = p
	}
	ng := (p + gs - 1) / gs
	return Topology{P: p, NumGroups: ng, GroupSize: gs}
}

// New builds a topology with an explicit group size. It panics if p <= 0 or
// groupSize <= 0.
func New(p, groupSize int) Topology {
	if p <= 0 {
		panic(fmt.Sprintf("topology: non-positive worker count %d", p))
	}
	if groupSize <= 0 {
		panic(fmt.Sprintf("topology: non-positive group size %d", groupSize))
	}
	if groupSize > p {
		groupSize = p
	}
	return Topology{P: p, NumGroups: (p + groupSize - 1) / groupSize, GroupSize: groupSize}
}

// Group returns the group index of worker w.
func (t Topology) Group(w int) int {
	if t.GroupSize <= 0 {
		return 0
	}
	return w / t.GroupSize
}

// GroupMembers returns the worker indices in group g, in increasing order.
func (t Topology) GroupMembers(g int) []int {
	lo := g * t.GroupSize
	hi := lo + t.GroupSize
	if hi > t.P {
		hi = t.P
	}
	if lo >= hi {
		return nil
	}
	m := make([]int, 0, hi-lo)
	for w := lo; w < hi; w++ {
		m = append(m, w)
	}
	return m
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("topology{P=%d groups=%d×%d}", t.P, t.NumGroups, t.GroupSize)
}

// TreeShape describes the fan-out of a barrier tree: node i's children in
// the flattened array representation. Shapes built by this package have an
// additional *ordering* property that the combining join barrier relies on
// for non-commutative reductions: the subtree rooted at any worker covers a
// contiguous range of worker indices starting at that worker, and a node's
// children appear in increasing order of their (disjoint, adjacent) ranges.
// Folding "own view, then each child's folded subtree in child order"
// therefore reproduces the sequential (iteration-order) fold.
type TreeShape struct {
	// P is the number of leaves (= workers).
	P int
	// Parent[i] is the parent worker index of worker i, or -1 for the root
	// (worker 0).
	Parent []int
	// Children[i] lists the children of worker i in increasing order.
	Children [][]int
	// Fanout is the maximum fan-out the shape was built with (0 if mixed).
	Fanout int
}

// RadixTree builds an ordered tree over p workers where every node has at
// most fanout children and every subtree covers a contiguous index range.
// Worker 0 is the root. fanout < 2 is treated as 2.
func RadixTree(p, fanout int) TreeShape {
	if p <= 0 {
		panic("topology: RadixTree with non-positive p")
	}
	if fanout < 2 {
		fanout = 2
	}
	s := TreeShape{P: p, Parent: make([]int, p), Children: make([][]int, p), Fanout: fanout}
	for i := range s.Parent {
		s.Parent[i] = -1
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	buildOrderedSubtree(&s, members, fanout)
	return s
}

// buildOrderedSubtree links members[1:] under members[0] as up to `fanout`
// contiguous segments, recursing into each segment. members must be sorted.
func buildOrderedSubtree(s *TreeShape, members []int, fanout int) {
	if len(members) <= 1 {
		return
	}
	root := members[0]
	rest := members[1:]
	segments := splitSegments(rest, fanout)
	for _, seg := range segments {
		child := seg[0]
		s.Parent[child] = root
		s.Children[root] = append(s.Children[root], child)
		buildOrderedSubtree(s, seg, fanout)
	}
}

// splitSegments splits a sorted slice into at most k non-empty contiguous
// segments of near-equal length, preserving order.
func splitSegments(rest []int, k int) [][]int {
	n := len(rest)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	segs := make([][]int, 0, k)
	base := n / k
	rem := n % k
	idx := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		segs = append(segs, rest[idx:idx+size])
		idx += size
	}
	return segs
}

// GroupedTree builds a topology-aligned ordered tree: the first level of
// segmentation follows the groups (so cross-group traffic happens only
// between group roots and the global root), and within each group workers
// form an ordered radix subtree with fan-out innerFanout. outerFanout bounds
// the number of group roots attached directly to the global root; additional
// group roots chain under earlier group roots. Both fan-outs default to 4
// when < 2.
func (t Topology) GroupedTree(innerFanout, outerFanout int) TreeShape {
	if innerFanout < 2 {
		innerFanout = 4
	}
	if outerFanout < 2 {
		outerFanout = 4
	}
	s := TreeShape{P: t.P, Parent: make([]int, t.P), Children: make([][]int, t.P), Fanout: innerFanout}
	for i := range s.Parent {
		s.Parent[i] = -1
	}
	// Build each group's internal ordered subtree.
	groupRoots := make([]int, 0, t.NumGroups)
	for g := 0; g < t.NumGroups; g++ {
		members := t.GroupMembers(g)
		if len(members) == 0 {
			continue
		}
		groupRoots = append(groupRoots, members[0])
		buildOrderedSubtree(&s, members, innerFanout)
	}
	// Link group roots: group roots (beyond the first, which is the global
	// root) are segmented under the global root with fan-out outerFanout,
	// preserving order. Because groups hold contiguous worker ranges and
	// group roots are their first members, ordering is preserved.
	buildOrderedGroupRoots(&s, groupRoots, outerFanout)
	for i := range s.Children {
		sortInts(s.Children[i])
	}
	return s
}

// buildOrderedGroupRoots links roots[1:] under roots[0]. To keep subtree
// ranges contiguous, every group root is attached directly to the previous
// level in order: segments of group roots chain so that a parent group's
// index is always lower than its children's, and a group root's subtree
// (its own group plus any later groups below it) remains a contiguous range.
func buildOrderedGroupRoots(s *TreeShape, roots []int, fanout int) {
	if len(roots) <= 1 {
		return
	}
	// Attach group roots to the global root in segments, recursively: the
	// same contiguous-segment construction as within groups, except that the
	// "members" are group roots. A group root that becomes an interior node
	// keeps its own group subtree AND gains later group roots as children;
	// its combined range stays contiguous because groups are contiguous and
	// ordered.
	buildOrderedSubtree(s, roots, fanout)
}

// Validate checks structural invariants of the shape: worker 0 is the only
// root, every other worker has a parent with a smaller index is NOT required,
// but the parent relation must be acyclic and consistent with Children.
func (s TreeShape) Validate() error {
	if s.P <= 0 {
		return fmt.Errorf("topology: shape has %d leaves", s.P)
	}
	if len(s.Parent) != s.P || len(s.Children) != s.P {
		return fmt.Errorf("topology: shape arrays have wrong length")
	}
	roots := 0
	for i, p := range s.Parent {
		if p == -1 {
			roots++
			continue
		}
		if p < 0 || p >= s.P {
			return fmt.Errorf("topology: worker %d has out-of-range parent %d", i, p)
		}
		if p == i {
			return fmt.Errorf("topology: worker %d is its own parent", i)
		}
	}
	if roots != 1 {
		return fmt.Errorf("topology: %d roots, want 1", roots)
	}
	// Check parent/children consistency and reachability (acyclicity).
	seen := make([]bool, s.P)
	for i := 0; i < s.P; i++ {
		steps := 0
		for w := i; w != -1; w = s.Parent[w] {
			steps++
			if steps > s.P {
				return fmt.Errorf("topology: cycle reachable from worker %d", i)
			}
		}
		seen[i] = true
	}
	for i, kids := range s.Children {
		for _, c := range kids {
			if c < 0 || c >= s.P || s.Parent[c] != i {
				return fmt.Errorf("topology: children/parent mismatch at node %d child %d", i, c)
			}
		}
	}
	_ = seen
	return nil
}

// Depth returns the depth of the tree (root has depth 0; a single worker has
// depth 0).
func (s TreeShape) Depth() int {
	max := 0
	for i := 0; i < s.P; i++ {
		d := 0
		for w := i; s.Parent[w] != -1; w = s.Parent[w] {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Root returns the index of the root worker.
func (s TreeShape) Root() int {
	for i, p := range s.Parent {
		if p == -1 {
			return i
		}
	}
	return 0
}

func sortInts(a []int) {
	// Insertion sort: children lists are tiny (≤ fan-out).
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
