package topology

import (
	"testing"
	"testing/quick"
)

func TestDetectDefaults(t *testing.T) {
	topo := Detect(0)
	if topo.P <= 0 || topo.GroupSize <= 0 || topo.NumGroups <= 0 {
		t.Fatalf("Detect(0) returned a degenerate topology: %+v", topo)
	}
	topo = Detect(48)
	if topo.P != 48 || topo.GroupSize != 12 || topo.NumGroups != 4 {
		t.Errorf("Detect(48) = %+v, want the paper's 4x12 organisation", topo)
	}
	topo = Detect(5)
	if topo.P != 5 || topo.GroupSize != 5 || topo.NumGroups != 1 {
		t.Errorf("Detect(5) = %+v", topo)
	}
}

func TestNewValidationAndGroups(t *testing.T) {
	topo := New(10, 4)
	if topo.NumGroups != 3 {
		t.Errorf("10 workers in groups of 4: %d groups, want 3", topo.NumGroups)
	}
	if g := topo.Group(0); g != 0 {
		t.Errorf("Group(0) = %d", g)
	}
	if g := topo.Group(9); g != 2 {
		t.Errorf("Group(9) = %d", g)
	}
	if m := topo.GroupMembers(2); len(m) != 2 || m[0] != 8 || m[1] != 9 {
		t.Errorf("GroupMembers(2) = %v", m)
	}
	if m := topo.GroupMembers(5); m != nil {
		t.Errorf("out-of-range group should have no members, got %v", m)
	}
	if topo.String() == "" {
		t.Errorf("empty String()")
	}
	for _, f := range []func(){func() { New(0, 4) }, func() { New(4, 0) }, func() { RadixTree(0, 2) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRadixTreeStructure(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 48, 100} {
		for _, fan := range []int{2, 3, 4, 8} {
			s := RadixTree(p, fan)
			if err := s.Validate(); err != nil {
				t.Fatalf("RadixTree(%d,%d): %v", p, fan, err)
			}
			if s.Root() != 0 {
				t.Errorf("RadixTree(%d,%d) root = %d, want 0", p, fan, s.Root())
			}
			for i, kids := range s.Children {
				if len(kids) > fan {
					t.Errorf("RadixTree(%d,%d): node %d has %d children, fan-out %d", p, fan, i, len(kids), fan)
				}
			}
		}
	}
}

func TestGroupedTreeStructureAndDepth(t *testing.T) {
	topo := New(48, 12)
	s := topo.GroupedTree(4, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Root() != 0 {
		t.Errorf("root = %d", s.Root())
	}
	// 48 workers in 4 groups of 12 with fan-out 4: depth should be small
	// (log-ish), certainly below 6.
	if d := s.Depth(); d == 0 || d > 6 {
		t.Errorf("unexpected depth %d for 48 workers", d)
	}
	// Group roots 12, 24, 36 must not be children of nodes outside group 0's
	// root chain: their parent must be another group root or worker 0.
	for _, gr := range []int{12, 24, 36} {
		par := s.Parent[gr]
		if par != 0 && par != 12 && par != 24 {
			t.Errorf("group root %d has parent %d, want a group root or 0", gr, par)
		}
	}
}

func TestTreeShapeDepthSingle(t *testing.T) {
	s := RadixTree(1, 4)
	if s.Depth() != 0 {
		t.Errorf("single-node depth = %d", s.Depth())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBrokenShapes(t *testing.T) {
	// Cycle.
	s := TreeShape{P: 2, Parent: []int{1, 0}, Children: [][]int{{1}, {0}}}
	if err := s.Validate(); err == nil {
		t.Errorf("cycle not rejected")
	}
	// Two roots.
	s = TreeShape{P: 2, Parent: []int{-1, -1}, Children: [][]int{nil, nil}}
	if err := s.Validate(); err == nil {
		t.Errorf("forest not rejected")
	}
	// Self-parent.
	s = TreeShape{P: 2, Parent: []int{-1, 1}, Children: [][]int{nil, {1}}}
	if err := s.Validate(); err == nil {
		t.Errorf("self-parent not rejected")
	}
	// Children/parent mismatch.
	s = TreeShape{P: 3, Parent: []int{-1, 0, 0}, Children: [][]int{{1}, {2}, nil}}
	if err := s.Validate(); err == nil {
		t.Errorf("children/parent mismatch not rejected")
	}
}

func TestPropertyEveryWorkerReachesRoot(t *testing.T) {
	f := func(pRaw, fanRaw, groupRaw uint8) bool {
		p := int(pRaw%64) + 1
		fan := int(fanRaw%7) + 2
		group := int(groupRaw%16) + 1
		for _, s := range []TreeShape{RadixTree(p, fan), New(p, group).GroupedTree(fan, 3)} {
			if err := s.Validate(); err != nil {
				return false
			}
			root := s.Root()
			for w := 0; w < p; w++ {
				steps := 0
				v := w
				for v != root {
					v = s.Parent[v]
					steps++
					if steps > p {
						return false
					}
				}
			}
			// Edge count of a tree.
			edges := 0
			for _, kids := range s.Children {
				edges += len(kids)
			}
			if edges != p-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
