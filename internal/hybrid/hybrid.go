// Package hybrid implements the paper's extension of the work-stealing
// runtime: fine-grain loops are scheduled statically through the
// half-barrier pattern, while coarse-grain loops are scheduled dynamically
// by work stealing, with the workers alternating a cycle of random stealing
// with polling of the half-barrier.
//
// The static path is identical in structure to internal/core: one release
// wave publishes the loop, workers execute their block, one join wave (with
// the reduction folded in) completes it. The dynamic path replaces the
// per-worker block with a stealable range: every worker owns the remaining
// portion of its initial block, takes chunks from its front, and — once its
// own range is exhausted — alternates random steal attempts (taking half of
// a victim's remaining range) with polling for loop completion, then joins
// through the same half-barrier.
package hybrid

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"loopsched/internal/barrier"
	"loopsched/internal/iterspace"
	"loopsched/internal/pool"
	"loopsched/internal/sched"
	"loopsched/internal/topology"
	"loopsched/internal/trace"
)

// Config configures the hybrid runtime.
type Config struct {
	// Workers is the team size including the master; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// CoarseThreshold is the iteration count at or above which a loop is
	// scheduled dynamically (work stealing); smaller loops use the static
	// half-barrier path. <= 0 selects the default of 8192 iterations.
	CoarseThreshold int
	// Chunk is the number of iterations a worker claims from its own range
	// at a time during dynamic scheduling; <= 0 selects max(64, n/(64·P))
	// per loop.
	Chunk int
	// InnerFanout and OuterFanout tune the barrier tree (see core.Config).
	InnerFanout int
	OuterFanout int
	// LockOSThread locks workers to OS threads.
	LockOSThread bool
	// Name overrides the reported name.
	Name string
}

// DefaultConfig returns the default hybrid configuration.
func DefaultConfig() Config {
	return Config{Workers: runtime.GOMAXPROCS(0), CoarseThreshold: 8192, LockOSThread: true}
}

type cmdKind int

const (
	cmdNone cmdKind = iota
	cmdRun
	cmdShutdown
)

type reduceKind int

const (
	reduceNone reduceKind = iota
	reduceScalar
	reduceVec
)

type command struct {
	kind    cmdKind
	dynamic bool
	n       int
	chunk   int
	body    sched.Body
	rbody   sched.ReduceBody
	vbody   sched.VecBody
	reduce  reduceKind
	width   int
	ident   float64
	combine func(a, b float64) float64
}

type paddedF64 struct {
	v float64
	_ [120]byte
}

// stealRange is a worker-owned remaining iteration range that thieves can
// split. The owner claims chunks from the front; a thief steals the back
// half. A tiny spinlock keeps the invariant simple; the critical section is
// a few arithmetic operations.
type stealRange struct {
	mu    sync.Mutex
	begin int
	end   int
	_     [96]byte
}

// take claims up to chunk iterations from the front, returning an empty
// range when exhausted.
func (r *stealRange) take(chunk int) iterspace.Range {
	r.mu.Lock()
	if r.begin >= r.end {
		r.mu.Unlock()
		return iterspace.Range{}
	}
	e := r.begin + chunk
	if e > r.end {
		e = r.end
	}
	out := iterspace.Range{Begin: r.begin, End: e}
	r.begin = e
	r.mu.Unlock()
	return out
}

// stealHalf removes and returns the back half of the remaining range (empty
// if fewer than two iterations remain).
func (r *stealRange) stealHalf() iterspace.Range {
	r.mu.Lock()
	remaining := r.end - r.begin
	if remaining < 2 {
		r.mu.Unlock()
		return iterspace.Range{}
	}
	mid := r.begin + remaining/2
	out := iterspace.Range{Begin: mid, End: r.end}
	r.end = mid
	r.mu.Unlock()
	return out
}

// reset reinstalls a fresh range.
func (r *stealRange) reset(rng iterspace.Range) {
	r.mu.Lock()
	r.begin, r.end = rng.Begin, rng.End
	r.mu.Unlock()
}

// Runtime is the hybrid scheduler.
type Runtime struct {
	cfg  Config
	name string
	p    int

	team *pool.Team
	bar  *barrier.Tree

	cmd command

	ranges      []stealRange
	outstanding atomic.Int64 // iterations not yet executed in the active dynamic loop

	scalarViews []paddedF64
	vecViews    [][]float64

	rngs []*rand.Rand

	counters *trace.Counters
	closed   bool
}

// New creates and starts a hybrid runtime.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.CoarseThreshold <= 0 {
		cfg.CoarseThreshold = 8192
	}
	if cfg.InnerFanout < 2 {
		cfg.InnerFanout = 4
	}
	if cfg.OuterFanout < 2 {
		cfg.OuterFanout = 4
	}
	name := cfg.Name
	if name == "" {
		name = "hybrid"
	}
	p := cfg.Workers
	topo := topology.Detect(p)
	r := &Runtime{
		cfg:         cfg,
		name:        name,
		p:           p,
		bar:         barrier.NewTree(topo.GroupedTree(cfg.InnerFanout, cfg.OuterFanout)),
		ranges:      make([]stealRange, p),
		scalarViews: make([]paddedF64, p),
		vecViews:    make([][]float64, p),
		rngs:        make([]*rand.Rand, p),
		counters:    trace.New(),
	}
	for w := 0; w < p; w++ {
		r.rngs[w] = rand.New(rand.NewSource(int64(w)*1099511628211 + 17))
	}
	r.team = pool.New(pool.Config{Workers: p, LockOSThread: cfg.LockOSThread, Name: name})
	r.team.Start(r.workerLoop)
	return r
}

// Name implements sched.Scheduler.
func (r *Runtime) Name() string { return r.name }

// P implements sched.Scheduler.
func (r *Runtime) P() int { return r.p }

// Counters returns the runtime's event counters.
func (r *Runtime) Counters() *trace.Counters { return r.counters }

// workerLoop is run by workers 1..P-1.
func (r *Runtime) workerLoop(w int) {
	for {
		r.bar.Release(w)
		c := r.cmd
		if c.kind == cmdShutdown {
			return
		}
		r.runShare(w, &c)
		r.join(w, &c)
	}
}

// runShare executes worker w's portion of the loop: its static block, or —
// for dynamic loops — its stealable range followed by stealing cycles.
func (r *Runtime) runShare(w int, c *command) {
	if !c.dynamic {
		acc := r.localAcc(w, c)
		rng := iterspace.Block(c.n, r.p, w)
		if !rng.Empty() {
			r.execute(w, c, rng, acc)
		} else {
			r.storeAcc(w, c, acc)
		}
		return
	}
	acc := r.localAcc(w, c)
	// Own range first.
	for {
		rng := r.ranges[w].take(c.chunk)
		if rng.Empty() {
			break
		}
		r.counters.Inc(trace.ChunksClaimed)
		acc = r.executeChunk(w, c, rng, acc)
	}
	// Then alternate a cycle of random stealing with polling for loop
	// completion (the half-barrier poll is the outstanding counter the join
	// wave will consume).
	for r.outstanding.Load() > 0 {
		victim := r.rngs[w].Intn(r.p)
		if victim == w {
			continue
		}
		stolen := r.ranges[victim].stealHalf()
		if stolen.Empty() {
			r.counters.Inc(trace.FailedSteals)
			continue
		}
		r.counters.Inc(trace.Steals)
		r.ranges[w].reset(stolen)
		for {
			rng := r.ranges[w].take(c.chunk)
			if rng.Empty() {
				break
			}
			r.counters.Inc(trace.ChunksClaimed)
			acc = r.executeChunk(w, c, rng, acc)
		}
	}
	r.storeAcc(w, c, acc)
}

// localAcc initialises worker w's accumulator for the loop.
func (r *Runtime) localAcc(w int, c *command) float64 {
	switch c.reduce {
	case reduceScalar:
		return c.ident
	case reduceVec:
		buf := r.vecViews[w]
		for i := range buf {
			buf[i] = 0
		}
	}
	return 0
}

func (r *Runtime) storeAcc(w int, c *command, acc float64) {
	if c.reduce == reduceScalar {
		r.scalarViews[w].v = acc
	}
}

// execute runs a static block and stores the result.
func (r *Runtime) execute(w int, c *command, rng iterspace.Range, acc float64) {
	acc = r.executeChunk(w, c, rng, acc)
	r.storeAcc(w, c, acc)
}

// executeChunk runs one chunk and returns the updated scalar accumulator.
func (r *Runtime) executeChunk(w int, c *command, rng iterspace.Range, acc float64) float64 {
	switch c.reduce {
	case reduceScalar:
		acc = c.rbody(w, rng.Begin, rng.End, acc)
	case reduceVec:
		c.vbody(w, rng.Begin, rng.End, r.vecViews[w][:c.width])
	default:
		c.body(w, rng.Begin, rng.End)
	}
	if c.dynamic {
		r.outstanding.Add(-int64(rng.Len()))
	}
	return acc
}

func (r *Runtime) combineScalar(into, from int) {
	r.scalarViews[into].v = r.cmd.combine(r.scalarViews[into].v, r.scalarViews[from].v)
	r.counters.Inc(trace.Reductions)
}

func (r *Runtime) combineVec(into, from int) {
	sched.SumVec(r.vecViews[into][:r.cmd.width], r.vecViews[from][:r.cmd.width])
	r.counters.Inc(trace.Reductions)
}

// join performs the join-side half-barrier for worker w.
func (r *Runtime) join(w int, c *command) {
	switch c.reduce {
	case reduceScalar:
		r.bar.JoinCombine(w, r.combineScalar)
	case reduceVec:
		r.bar.JoinCombine(w, r.combineVec)
	default:
		r.bar.Join(w)
	}
}

// runLoop publishes and executes one loop from the master.
func (r *Runtime) runLoop(c command) {
	if r.closed {
		panic("hybrid: runtime used after Close")
	}
	r.counters.Inc(trace.LoopsScheduled)
	if c.dynamic {
		c.chunk = r.chunkFor(c.n)
		blocks := iterspace.BlockAll(c.n, r.p)
		for w := 0; w < r.p; w++ {
			r.ranges[w].reset(blocks[w])
		}
		r.outstanding.Store(int64(c.n))
	}
	if r.p == 1 {
		r.cmd = c
		r.runShare(0, &c)
		return
	}
	r.cmd = c
	r.counters.Inc(trace.ForkPhases)
	r.bar.Release(0)
	r.runShare(0, &c)
	r.counters.Inc(trace.JoinPhases)
	r.join(0, &c)
}

// chunkFor returns the dynamic chunk size for a loop of n iterations.
func (r *Runtime) chunkFor(n int) int {
	if r.cfg.Chunk > 0 {
		return r.cfg.Chunk
	}
	c := n / (64 * r.p)
	if c < 64 {
		c = 64
	}
	return c
}

// dynamicFor reports whether a loop of n iterations takes the dynamic path.
func (r *Runtime) dynamicFor(n int) bool { return n >= r.cfg.CoarseThreshold }

// For implements sched.Scheduler.
func (r *Runtime) For(n int, body sched.Body) {
	if n <= 0 {
		return
	}
	r.runLoop(command{kind: cmdRun, n: n, body: body, dynamic: r.dynamicFor(n)})
}

// ForReduce implements sched.Scheduler. Reductions always use the static
// path: dynamic chunk assignment would break the ordered-combination
// guarantee, and reducing loops in the target applications are fine-grain.
func (r *Runtime) ForReduce(n int, identity float64, combine func(a, b float64) float64, body sched.ReduceBody) float64 {
	if n <= 0 {
		return identity
	}
	c := command{kind: cmdRun, n: n, rbody: body, reduce: reduceScalar, ident: identity, combine: combine}
	r.runLoop(c)
	return r.scalarViews[0].v
}

// ForReduceVec implements sched.Scheduler. Vector reductions are element-wise
// sums (commutative), so coarse loops may take the dynamic path.
func (r *Runtime) ForReduceVec(n, width int, body sched.VecBody) []float64 {
	out := make([]float64, width)
	if n <= 0 || width <= 0 {
		return out
	}
	r.ensureVecViews(width)
	c := command{kind: cmdRun, n: n, vbody: body, reduce: reduceVec, width: width, dynamic: r.dynamicFor(n)}
	r.runLoop(c)
	copy(out, r.vecViews[0][:width])
	return out
}

func (r *Runtime) ensureVecViews(width int) {
	if len(r.vecViews[0]) >= width {
		return
	}
	for w := range r.vecViews {
		r.vecViews[w] = make([]float64, width)
	}
}

// Close shuts the team down. Idempotent.
func (r *Runtime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.p > 1 {
		r.cmd = command{kind: cmdShutdown}
		r.bar.Release(0)
	}
	r.team.Wait()
}

var _ sched.Scheduler = (*Runtime)(nil)
