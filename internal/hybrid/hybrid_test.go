package hybrid

import (
	"runtime"
	"sync/atomic"
	"testing"

	"loopsched/internal/iterspace"
	"loopsched/internal/sched"
	"loopsched/internal/schedtest"
	"loopsched/internal/trace"
)

func counts() []int { return schedtest.WorkerCounts(runtime.GOMAXPROCS(0)) }

func TestConformanceDefault(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, LockOSThread: false})
	})
}

func TestConformanceAllDynamic(t *testing.T) {
	// Force every loop (even tiny ones) down the dynamic work-stealing path.
	schedtest.RunCommutative(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, CoarseThreshold: 1, Chunk: 3, LockOSThread: false})
	})
}

func TestConformanceAllStatic(t *testing.T) {
	schedtest.Run(t, counts(), func(p int) sched.Scheduler {
		return New(Config{Workers: p, CoarseThreshold: 1 << 30, LockOSThread: false})
	})
}

func TestFineLoopsUseStaticPathAndCoarseLoopsSteal(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		t.Skip("needs 2 workers")
	}
	if p > 8 {
		p = 8
	}
	r := New(Config{Workers: p, CoarseThreshold: 1000, Chunk: 16, LockOSThread: false})
	defer r.Close()

	// Fine-grain loop: below the threshold → no chunks claimed dynamically.
	r.Counters().Reset()
	r.For(100, func(w, b, e int) {})
	if got := r.Counters().Get(trace.ChunksClaimed); got != 0 {
		t.Errorf("fine-grain loop claimed %d dynamic chunks, want 0 (static path)", got)
	}

	// Coarse loop with imbalanced work: chunks are claimed dynamically and,
	// across repetitions, steals occur.
	r.Counters().Reset()
	var sink atomic.Int64
	for rep := 0; rep < 20 && r.Counters().Get(trace.Steals) == 0; rep++ {
		r.For(200000, func(w, begin, end int) {
			local := int64(0)
			// Imbalanced: later iterations are much heavier.
			for i := begin; i < end; i++ {
				steps := 1 + (i*7)%97
				for j := 0; j < steps; j++ {
					local++
				}
			}
			sink.Add(local)
		})
	}
	if got := r.Counters().Get(trace.ChunksClaimed); got == 0 {
		t.Errorf("coarse loop claimed no dynamic chunks")
	}
	if got := r.Counters().Get(trace.Steals); got == 0 {
		t.Errorf("no steals observed on an imbalanced coarse loop")
	}
}

func TestDynamicLoadBalancingCoversEverything(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 6 {
		p = 6
	}
	r := New(Config{Workers: p, CoarseThreshold: 1, Chunk: 5, LockOSThread: false})
	defer r.Close()
	n := 50000
	marks := make([]int32, n)
	r.For(n, func(w, begin, end int) {
		for i := begin; i < end; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("iteration %d executed %d times", i, m)
		}
	}
}

func TestReduceUsesExactlyPMinus1Combines(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p < 2 {
		t.Skip("needs 2 workers")
	}
	if p > 8 {
		p = 8
	}
	r := New(Config{Workers: p, LockOSThread: false})
	defer r.Close()
	r.Counters().Reset()
	got := r.ForReduce(100000, 0, func(a, b float64) float64 { return a + b },
		func(w, b, e int, acc float64) float64 { return acc + float64(e-b) })
	if int(got) != 100000 {
		t.Fatalf("reduce = %v", got)
	}
	if c := r.Counters().Get(trace.Reductions); c != int64(p-1) {
		t.Errorf("%d combines, want exactly %d", c, p-1)
	}
}

func TestChunkSizing(t *testing.T) {
	r := New(Config{Workers: 4, LockOSThread: false})
	defer r.Close()
	if c := r.chunkFor(1000); c != 64 {
		t.Errorf("small-loop chunk = %d, want the 64 floor", c)
	}
	if c := r.chunkFor(64 * 64 * 4 * 10); c != 640 {
		t.Errorf("large-loop chunk = %d, want 640", c)
	}
	r2 := New(Config{Workers: 4, Chunk: 17, LockOSThread: false})
	defer r2.Close()
	if c := r2.chunkFor(1 << 20); c != 17 {
		t.Errorf("explicit chunk not honoured: %d", c)
	}
}

func TestStealRange(t *testing.T) {
	var sr stealRange
	sr.reset(iterspace.Range{Begin: 0, End: 100})
	if got := sr.take(10); got.Begin != 0 || got.End != 10 {
		t.Fatalf("take = %v", got)
	}
	if got := sr.stealHalf(); got.Begin != 55 || got.End != 100 {
		t.Fatalf("stealHalf = %v, want [55,100)", got)
	}
	if got := sr.take(1000); got.Begin != 10 || got.End != 55 {
		t.Fatalf("take after steal = %v, want [10,55)", got)
	}
	if !sr.take(1).Empty() {
		t.Errorf("expected exhausted range")
	}
	if !sr.stealHalf().Empty() {
		t.Errorf("stealing from an exhausted range should fail")
	}
	// A single remaining iteration cannot be stolen.
	sr.reset(iterspace.Range{Begin: 5, End: 6})
	if !sr.stealHalf().Empty() {
		t.Errorf("single-iteration range should not be stealable")
	}
	if got := sr.take(4); got.Len() != 1 {
		t.Errorf("owner should still claim the last iteration, got %v", got)
	}
}

func TestNameAndClose(t *testing.T) {
	r := New(Config{Workers: 2, LockOSThread: false})
	if r.Name() != "hybrid" || r.P() != 2 {
		t.Errorf("metadata wrong: %q %d", r.Name(), r.P())
	}
	r.Close()
	r.Close()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic after Close")
		}
	}()
	r.For(5, func(w, b, e int) {})
}
