package phoenix

import (
	"runtime"
	"testing"

	"loopsched/internal/core"
	"loopsched/internal/sched"
)

func pools(t *testing.T) []sched.Scheduler {
	t.Helper()
	p := runtime.GOMAXPROCS(0)
	if p > 6 {
		p = 6
	}
	return []sched.Scheduler{
		sched.NewSequential(),
		core.New(core.Config{Workers: p, LockOSThread: false}),
	}
}

func TestArrayJobHistogram(t *testing.T) {
	for _, s := range pools(t) {
		data := make([]int, 10000)
		for i := range data {
			data[i] = i % 8
		}
		job := ArrayJob{
			NumKeys: 8,
			Map: func(w, begin, end int, emit []float64) {
				for i := begin; i < end; i++ {
					emit[data[i]]++
				}
			},
		}
		hist, err := job.Run(s, len(data))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hist {
			if v != 1250 {
				t.Errorf("%s: key %d count %v, want 1250", s.Name(), k, v)
			}
		}
		s.Close()
	}
}

func TestArrayJobValidation(t *testing.T) {
	s := sched.NewSequential()
	if _, err := (ArrayJob{NumKeys: 0, Map: func(w, b, e int, emit []float64) {}}).Run(s, 10); err == nil {
		t.Errorf("accepted NumKeys=0")
	}
	if _, err := (ArrayJob{NumKeys: 3}).Run(s, 10); err == nil {
		t.Errorf("accepted nil Map")
	}
	out, err := (ArrayJob{NumKeys: 3, Map: func(w, b, e int, emit []float64) { emit[0]++ }}).Run(s, -5)
	if err != nil || out[0] != 0 {
		t.Errorf("negative n should be an empty job: %v %v", out, err)
	}
}

func TestHashJobWordCountStyle(t *testing.T) {
	words := []string{"a", "b", "a", "c", "a", "b"}
	for _, s := range pools(t) {
		job := HashJob[string, int]{
			Map: func(w, begin, end int, emit func(string, int)) {
				for i := begin; i < end; i++ {
					emit(words[i%len(words)], 1)
				}
			},
			Combine: func(a, b int) int { return a + b },
		}
		n := 6 * 100
		got, err := job.Run(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if got["a"] != 300 || got["b"] != 200 || got["c"] != 100 {
			t.Errorf("%s: counts = %v", s.Name(), got)
		}
		s.Close()
	}
}

func TestHashJobValidation(t *testing.T) {
	s := sched.NewSequential()
	if _, err := (HashJob[string, int]{}).Run(s, 5); err == nil {
		t.Errorf("accepted missing Map/Combine")
	}
	job := HashJob[int, int]{
		Map:     func(w, b, e int, emit func(int, int)) { emit(1, 1) },
		Combine: func(a, b int) int { return a + b },
	}
	out, err := job.Run(s, -1)
	if err != nil || len(out) != 0 {
		t.Errorf("negative n: %v %v", out, err)
	}
}

func TestHashJobMinCombiner(t *testing.T) {
	s := sched.NewSequential()
	job := HashJob[int, int]{
		Map: func(w, begin, end int, emit func(int, int)) {
			for i := begin; i < end; i++ {
				emit(i%3, i)
			}
		},
		Combine: func(a, b int) int {
			if a < b {
				return a
			}
			return b
		},
	}
	got, err := job.Run(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("min combiner = %v", got)
	}
}
