// Package phoenix is a Phoenix++-style map-reduce framework for shared
// memory, the substrate of the paper's Figure 3 workload.
//
// Phoenix++ structures a map-reduce job as: split the input into chunks, run
// map tasks that emit key/value pairs into per-worker *combining containers*
// (an array container when the key space is small and dense, a hash
// container otherwise), then merge the containers into the final result. The
// expensive part for fine-grain jobs is not the map function but how the
// per-worker containers are combined — which is exactly the reduction path
// the paper optimises.
//
// Two containers are provided:
//
//   - ArrayJob: a dense float64-valued container of NumKeys slots, executed
//     through the scheduler's vector reduction (so the fine-grain runtime
//     folds it into its join half-barrier, the OpenMP runtime pays its extra
//     reduction barrier, and the Cilk runtime allocates per-task views);
//   - HashJob: a generic hash container with per-worker maps merged by the
//     master, used by the coarser text-processing examples.
package phoenix

import (
	"errors"

	"loopsched/internal/sched"
)

// ArrayJob is a map-reduce job over a dense integer key space [0, NumKeys)
// with float64 values combined by addition — the shape of Phoenix++'s
// "array container" with a sum combiner (histograms, linear regression,
// k-means statistics).
type ArrayJob struct {
	// NumKeys is the size of the key space.
	NumKeys int
	// Map processes input items [begin, end) on worker w and adds its
	// contributions into emit (a dense slice of length NumKeys).
	Map func(w, begin, end int, emit []float64)
}

// Run executes the job over n input items using the scheduler's vector
// reduction and returns the combined container.
func (j ArrayJob) Run(s sched.Scheduler, n int) ([]float64, error) {
	if j.NumKeys <= 0 {
		return nil, errors.New("phoenix: ArrayJob.NumKeys must be positive")
	}
	if j.Map == nil {
		return nil, errors.New("phoenix: ArrayJob.Map is nil")
	}
	if n < 0 {
		n = 0
	}
	out := s.ForReduceVec(n, j.NumKeys, func(w, begin, end int, acc []float64) {
		j.Map(w, begin, end, acc)
	})
	return out, nil
}

// HashJob is a map-reduce job with an arbitrary comparable key type and a
// user-supplied combiner, backed by per-worker hash containers that the
// master merges after the map phase (Phoenix++'s hash container).
type HashJob[K comparable, V any] struct {
	// Map processes input items [begin, end) on worker w, emitting pairs via
	// emit. Emit may be called any number of times per item.
	Map func(w, begin, end int, emit func(K, V))
	// Combine merges two values for the same key; it must be associative.
	Combine func(a, b V) V
}

// Run executes the job over n input items on the scheduler and returns the
// merged container. The per-worker containers are merged in worker order.
func (j HashJob[K, V]) Run(s sched.Scheduler, n int) (map[K]V, error) {
	if j.Map == nil || j.Combine == nil {
		return nil, errors.New("phoenix: HashJob.Map and Combine must be set")
	}
	if n < 0 {
		n = 0
	}
	p := s.P()
	locals := make([]map[K]V, p)
	s.For(n, func(w, begin, end int) {
		m := locals[w]
		if m == nil {
			m = make(map[K]V)
			locals[w] = m
		}
		j.Map(w, begin, end, func(k K, v V) {
			if old, ok := m[k]; ok {
				m[k] = j.Combine(old, v)
			} else {
				m[k] = v
			}
		})
	})
	out := make(map[K]V)
	for w := 0; w < p; w++ {
		for k, v := range locals[w] {
			if old, ok := out[k]; ok {
				out[k] = j.Combine(old, v)
			} else {
				out[k] = v
			}
		}
	}
	return out, nil
}

// ChunkedHashJob is like HashJob but lets the map phase process input in
// explicit chunks of the given size, mimicking Phoenix++'s splitter; chunk
// granularity interacts with dynamic schedulers (smaller chunks → more
// scheduling events).
type ChunkedHashJob[K comparable, V any] struct {
	HashJob[K, V]
	// ChunkSize is a hint recorded for documentation; chunking is performed
	// by the scheduler itself (static blocks or dynamic chunks), so this
	// field does not change execution and exists to mirror the Phoenix++
	// API surface used by the examples.
	ChunkSize int
}
