package barrier

import (
	"fmt"

	"loopsched/internal/spin"
)

// Centralized is a sense-reversing centralized barrier plus the centralized
// variants of the two half-barrier primitives. All state lives in a handful
// of shared cache lines, so every episode serialises P atomic updates on one
// location — the contention the tree barrier avoids.
type Centralized struct {
	p int

	// Full-barrier state: arrival counter and release generation.
	count      paddedUint32
	generation paddedUint32

	// Release half-barrier state: a monotonically increasing epoch published
	// by the root; workers wait for it to reach their expected value.
	releaseEpoch paddedUint64
	releaseSeen  []paddedUint64 // per-worker: last epoch this worker consumed

	// Join half-barrier state: per-episode arrival count; the root waits for
	// it to reach P-1, then advances the epoch.
	joinArrivals paddedUint64 // total arrivals ever (monotonic)
	joinEpoch    []paddedUint64
}

// NewCentralized builds a centralized barrier for p participants.
func NewCentralized(p int) *Centralized {
	if p <= 0 {
		panic(fmt.Sprintf("barrier: non-positive participant count %d", p))
	}
	return &Centralized{
		p:           p,
		releaseSeen: make([]paddedUint64, p),
		joinEpoch:   make([]paddedUint64, p),
	}
}

// Participants returns P.
func (b *Centralized) Participants() int { return b.p }

// Wait implements the Full interface with the classic sense-reversing
// algorithm: the last arriver flips the generation, everyone else spins on
// it.
func (b *Centralized) Wait(w int) {
	gen := b.generation.v.Load()
	if int(b.count.v.Add(1)) == b.p {
		b.count.v.Store(0)
		b.generation.v.Add(1)
		return
	}
	spin.Wait(func() bool { return b.generation.v.Load() != gen })
}

// Release implements the Releaser interface. Worker 0 is the root: it
// advances the shared release epoch and returns. Every other worker spins
// until the epoch reaches the value it expects (one past what it last
// consumed).
func (b *Centralized) Release(w int) {
	if w == 0 {
		b.releaseEpoch.v.Add(1)
		return
	}
	want := b.releaseSeen[w].v.Load() + 1
	spin.WaitUint64AtLeast(&b.releaseEpoch.v, want)
	b.releaseSeen[w].v.Store(want)
}

// Join implements the Joiner interface. Non-root workers increment the
// shared arrival counter and return; the root waits until P-1 arrivals for
// the current episode have been recorded.
func (b *Centralized) Join(w int) {
	b.JoinCombine(w, nil)
}

// JoinCombine implements CombiningJoiner. For the centralized barrier all
// P-1 combines are executed by the root, in increasing worker order, after
// all arrivals — the centralized analogue of folding the reduction into the
// join phase.
func (b *Centralized) JoinCombine(w int, combine func(into, from int)) {
	if w != 0 {
		// Publish this worker's arrival. The epoch store is what the root's
		// per-worker check (and the happens-before edge for the reduction
		// data) relies on.
		b.joinEpoch[w].v.Add(1)
		b.joinArrivals.v.Add(1)
		return
	}
	epoch := b.joinEpoch[0].v.Load() + 1
	// Wait for every worker to have reached this episode, in index order so
	// that combines preserve iteration order.
	for c := 1; c < b.p; c++ {
		spin.WaitUint64AtLeast(&b.joinEpoch[c].v, epoch)
		if combine != nil {
			combine(0, c)
		}
	}
	b.joinEpoch[0].v.Store(epoch)
}

var (
	_ Full     = (*Centralized)(nil)
	_ HalfPair = (*Centralized)(nil)
)
