package barrier

import "sync/atomic"

// cacheLine is the assumed size of a cache line / false-sharing unit. 128
// bytes covers adjacent-line prefetching on current x86 parts.
const cacheLine = 128

// paddedUint64 is an atomic counter padded to its own cache line so that
// per-worker counters never share a line.
type paddedUint64 struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// paddedUint32 is an atomic uint32 padded to its own cache line.
type paddedUint32 struct {
	v atomic.Uint32
	_ [cacheLine - 4]byte
}

// PaddedInt64 is an atomic int64 on its own cache line, for hot counters
// embedded in structs whose neighbouring fields are written by other
// goroutines (the false-sharing discipline the in-package padded types apply
// to barrier state, exported for the scheduler's hot atomics).
type PaddedInt64 struct {
	atomic.Int64
	_ [cacheLine - 8]byte
}

// PaddedUint64 is an atomic uint64 on its own cache line.
type PaddedUint64 struct {
	atomic.Uint64
	_ [cacheLine - 8]byte
}
