package barrier

import (
	"fmt"

	"loopsched/internal/spin"
	"loopsched/internal/topology"
)

// Tree is a Mellor-Crummey & Scott style tree barrier over an arbitrary tree
// shape, exposing the full barrier as well as the two half-barrier
// primitives. Arrivals climb the tree (join phase) and the release signal
// descends it (release phase); every worker spins only on locations written
// by its own children or parent, so an episode costs O(fan-out) remote
// traffic per worker instead of the O(P) contention of a centralized
// barrier.
//
// The shape is supplied by the topology package and is typically aligned to
// the machine's cache/socket hierarchy, mirroring how the paper tunes its
// tree barrier to the organisation of the evaluation machine.
type Tree struct {
	shape topology.TreeShape
	root  int

	// joinEpoch[w] is the number of join episodes worker w has completed,
	// i.e. the number of times w's entire subtree has arrived.
	joinEpoch []paddedUint64
	// releaseEpoch[w] is the number of release episodes worker w has
	// propagated.
	releaseEpoch []paddedUint64
	// fullEpoch[w] counts completed full-barrier episodes; kept separate so
	// full barriers can be interleaved with half-barrier episodes (the
	// full-barrier ablation uses only this).
	fullJoin    []paddedUint64
	fullRelease []paddedUint64
}

// NewTree builds a tree barrier with the given shape. The shape must be
// valid (see topology.TreeShape.Validate).
func NewTree(shape topology.TreeShape) *Tree {
	if err := shape.Validate(); err != nil {
		panic(fmt.Sprintf("barrier: invalid tree shape: %v", err))
	}
	return &Tree{
		shape:        shape,
		root:         shape.Root(),
		joinEpoch:    make([]paddedUint64, shape.P),
		releaseEpoch: make([]paddedUint64, shape.P),
		fullJoin:     make([]paddedUint64, shape.P),
		fullRelease:  make([]paddedUint64, shape.P),
	}
}

// NewTreeForWorkers builds a tree barrier for p workers using a topology-
// derived grouped shape with default fan-outs.
func NewTreeForWorkers(p int) *Tree {
	topo := topology.Detect(p)
	return NewTree(topo.GroupedTree(4, 4))
}

// Participants returns P.
func (b *Tree) Participants() int { return b.shape.P }

// Shape returns the tree shape the barrier was built with.
func (b *Tree) Shape() topology.TreeShape { return b.shape }

// Root returns the worker index acting as the barrier root (the master).
func (b *Tree) Root() int { return b.root }

// Join implements Joiner: arrivals propagate towards the root. A leaf simply
// publishes its arrival; an interior node first waits for all of its
// children (in increasing worker order), then publishes; the root returns
// only once its whole subtree — i.e. everyone — has arrived.
func (b *Tree) Join(w int) { b.joinCombine(w, nil, b.joinEpoch) }

// JoinCombine implements CombiningJoiner: identical wave structure to Join,
// but after waiting for child c the function combine(w, c) is invoked, so
// the reduction is folded into the synchronisation and exactly P-1 combines
// happen per episode (one per tree edge).
func (b *Tree) JoinCombine(w int, combine func(into, from int)) {
	b.joinCombine(w, combine, b.joinEpoch)
}

func (b *Tree) joinCombine(w int, combine func(into, from int), epochs []paddedUint64) {
	epoch := epochs[w].v.Load() + 1
	for _, c := range b.shape.Children[w] {
		spin.WaitUint64AtLeast(&epochs[c].v, epoch)
		if combine != nil {
			combine(w, c)
		}
	}
	epochs[w].v.Store(epoch)
}

// Release implements Releaser: the root publishes the release signal and
// returns immediately (it does not wait for anyone — this is the fork
// half-barrier); every other worker waits for its parent's signal, forwards
// it to its own children by publishing, and returns.
func (b *Tree) Release(w int) { b.release(w, b.releaseEpoch) }

func (b *Tree) release(w int, epochs []paddedUint64) {
	want := epochs[w].v.Load() + 1
	if w != b.root {
		spin.WaitUint64AtLeast(&epochs[b.shape.Parent[w]].v, want)
	}
	epochs[w].v.Store(want)
}

// Wait implements Full: a conventional two-phase tree barrier composed of a
// join wave followed by a release wave, on counters independent from the
// half-barrier episodes.
func (b *Tree) Wait(w int) {
	b.joinCombine(w, nil, b.fullJoin)
	b.release(w, b.fullRelease)
}

// WaitCombine is Wait with a reduction folded into the join wave; used by
// the "fine-grain tree with full barrier" ablation so that the only variable
// relative to the half-barrier scheduler is the redundant synchronisation.
func (b *Tree) WaitCombine(w int, combine func(into, from int)) {
	b.joinCombine(w, combine, b.fullJoin)
	b.release(w, b.fullRelease)
}

var (
	_ Full     = (*Tree)(nil)
	_ HalfPair = (*Tree)(nil)
)
