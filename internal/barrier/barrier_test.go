package barrier

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"loopsched/internal/spin"
	"loopsched/internal/topology"
)

func TestMain(m *testing.M) {
	// These tests oversubscribe GOMAXPROCS on purpose (participants allows up
	// to 2x the machine size), so the production spin thresholds — tuned for
	// dedicated, pinned workers — turn every wait into ~1 ms of fruitless
	// polling before the first yield. Shrink them so oversubscribed waiters
	// yield almost immediately; the synchronisation logic under test is
	// unchanged.
	spin.ActiveSpins = 1 << 6
	spin.YieldThreshold = 1 << 8
	os.Exit(m.Run())
}

// episodes returns full in the default mode and short under -short: the
// heavy contention/iteration cases only add confidence, not coverage.
func episodes(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// participants returns worker counts to exercise, bounded by the machine.
func participants() []int {
	max := runtime.GOMAXPROCS(0)
	cand := []int{1, 2, 3, 4, 5, 8, 13, 16}
	var out []int
	for _, c := range cand {
		if c <= 2*max { // oversubscription is allowed; waits yield
			out = append(out, c)
		}
	}
	return out
}

// makeFulls builds every Full implementation for p workers.
func makeFulls(p int) map[string]Full {
	topo := topology.New(p, 4)
	return map[string]Full{
		"centralized":   NewCentralized(p),
		"tree-grouped":  NewTree(topo.GroupedTree(2, 2)),
		"tree-radix4":   NewTree(topology.RadixTree(p, 4)),
		"dissemination": NewDissemination(p),
	}
}

// makeHalfPairs builds every HalfPair implementation for p workers.
func makeHalfPairs(p int) map[string]HalfPair {
	topo := topology.New(p, 4)
	return map[string]HalfPair{
		"centralized":  NewCentralized(p),
		"tree-grouped": NewTree(topo.GroupedTree(2, 2)),
		"tree-radix8":  NewTree(topology.RadixTree(p, 8)),
	}
}

// TestFullBarrierSynchronises checks the fundamental barrier property: no
// worker leaves episode e before every worker has entered it.
func TestFullBarrierSynchronises(t *testing.T) {
	episodes := episodes(50, 8)
	for _, p := range participants() {
		for name, bar := range makeFulls(p) {
			var entered atomic.Int64
			var failures atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < p; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for e := 0; e < episodes; e++ {
						entered.Add(1)
						bar.Wait(w)
						// After the barrier, all p workers of this episode
						// must have entered.
						if got := entered.Load(); got < int64((e+1)*p) {
							failures.Add(1)
						}
						bar.Wait(w) // second barrier separates episodes
					}
				}(w)
			}
			wg.Wait()
			if failures.Load() > 0 {
				t.Errorf("%s p=%d: %d episodes released early", name, p, failures.Load())
			}
			if bar.Participants() != p {
				t.Errorf("%s: Participants() = %d, want %d", name, bar.Participants(), p)
			}
		}
	}
}

// TestHalfBarrierLoopProtocol runs the full fork/join half-barrier protocol
// of a parallel loop: the master publishes data, releases, the workers read
// it and contribute, join, and the master observes every contribution.
func TestHalfBarrierLoopProtocol(t *testing.T) {
	loops := episodes(200, 25)
	for _, p := range participants() {
		if p < 2 {
			continue
		}
		for name, bar := range makeHalfPairs(p) {
			var published int64 // written by master before Release
			contrib := make([]int64, p)
			var wg sync.WaitGroup
			stop := int64(-1)

			for w := 1; w < p; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						bar.Release(w)
						v := atomic.LoadInt64(&published)
						if v == stop {
							return
						}
						atomic.StoreInt64(&contrib[w], v)
						bar.Join(w)
					}
				}(w)
			}

			for l := 1; l <= loops; l++ {
				atomic.StoreInt64(&published, int64(l))
				bar.Release(0)
				atomic.StoreInt64(&contrib[0], int64(l))
				bar.Join(0)
				for w := 0; w < p; w++ {
					if got := atomic.LoadInt64(&contrib[w]); got != int64(l) {
						t.Fatalf("%s p=%d loop %d: worker %d contributed %d", name, p, l, w, got)
					}
				}
			}
			atomic.StoreInt64(&published, stop)
			bar.Release(0)
			wg.Wait()
		}
	}
}

// TestJoinCombinePerformsExactlyPMinus1Combines verifies the paper's claim
// that merging the reduction into the join wave costs exactly P-1 combine
// operations, and that the combines reconstruct iteration order.
func TestJoinCombinePerformsExactlyPMinus1Combines(t *testing.T) {
	for _, p := range participants() {
		if p < 2 {
			continue
		}
		for name, bar := range makeHalfPairs(p) {
			// Each worker's "view" is the list of worker indices folded into
			// it so far, starting with itself.
			views := make([][]int, p)
			for i := range views {
				views[i] = []int{i}
			}
			var combines atomic.Int64
			var mu sync.Mutex
			combine := func(into, from int) {
				mu.Lock()
				views[into] = append(views[into], views[from]...)
				views[from] = nil
				mu.Unlock()
				combines.Add(1)
			}

			var wg sync.WaitGroup
			for w := 1; w < p; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					bar.JoinCombine(w, combine)
				}(w)
			}
			bar.JoinCombine(0, combine)
			wg.Wait()

			if got := combines.Load(); got != int64(p-1) {
				t.Errorf("%s p=%d: %d combines, want %d", name, p, got, p-1)
			}
			if len(views[0]) != p {
				t.Fatalf("%s p=%d: root folded %d views, want %d (%v)", name, p, len(views[0]), p, views[0])
			}
			for i, v := range views[0] {
				if v != i {
					t.Errorf("%s p=%d: fold order %v violates iteration order at position %d", name, p, views[0], i)
					break
				}
			}
		}
	}
}

// TestReleaseDoesNotWaitForWorkers checks the defining property of the fork
// half-barrier: the master's Release returns even if no worker has arrived
// yet.
func TestReleaseDoesNotWaitForWorkers(t *testing.T) {
	for name, bar := range makeHalfPairs(4) {
		done := make(chan struct{})
		go func() {
			bar.Release(0) // no other worker participates yet
			close(done)
		}()
		select {
		case <-done:
		default:
			// Give it a moment: the call should complete without any other
			// participant.
			<-done
		}
		// Now let the workers consume the release so the barrier is reusable.
		var wg sync.WaitGroup
		for w := 1; w < 4; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); bar.Release(w) }(w)
		}
		wg.Wait()
		_ = name
	}
}

// TestJoinRootWaitsForAllWorkers checks the join half: the root must not
// return before every worker has joined.
func TestJoinRootWaitsForAllWorkers(t *testing.T) {
	for name, bar := range makeHalfPairs(4) {
		p := 4
		rootDone := make(chan struct{})
		go func() {
			bar.Join(0)
			close(rootDone)
		}()
		// No worker has joined yet: the root must still be blocked.
		select {
		case <-rootDone:
			t.Fatalf("%s: root returned before any worker joined", name)
		default:
		}
		var wg sync.WaitGroup
		for w := 1; w < p; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); bar.Join(w) }(w)
		}
		wg.Wait()
		<-rootDone
	}
}

// TestTreeShapeOrderingProperty: the contiguous-subtree property that makes
// JoinCombine order-preserving, checked over random shapes.
func TestTreeShapeOrderingProperty(t *testing.T) {
	f := func(pRaw uint8, fanRaw uint8, groupRaw uint8) bool {
		p := int(pRaw%32) + 1
		fan := int(fanRaw%6) + 2
		group := int(groupRaw%8) + 1
		shapes := []topology.TreeShape{
			topology.RadixTree(p, fan),
			topology.New(p, group).GroupedTree(fan, 3),
		}
		for _, shape := range shapes {
			if err := shape.Validate(); err != nil {
				return false
			}
			if !subtreesContiguous(shape) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: episodes(200, 50)}); err != nil {
		t.Error(err)
	}
}

// subtreesContiguous verifies that every subtree covers a contiguous index
// range starting at its root.
func subtreesContiguous(s topology.TreeShape) bool {
	var span func(w int) (lo, hi int, size int, ok bool)
	span = func(w int) (int, int, int, bool) {
		lo, hi, size := w, w, 1
		prevHi := w
		for _, c := range s.Children[w] {
			clo, chi, csz, ok := span(c)
			if !ok {
				return 0, 0, 0, false
			}
			if clo != prevHi+1 { // children ranges must be adjacent, in order
				return 0, 0, 0, false
			}
			prevHi = chi
			hi = chi
			size += csz
			_ = clo
		}
		if hi-lo+1 != size {
			return 0, 0, 0, false
		}
		return lo, hi, size, true
	}
	lo, hi, size, ok := span(s.Root())
	return ok && lo == 0 && hi == s.P-1 && size == s.P
}

// TestBarrierReuseManyEpisodes stresses episode bookkeeping with thousands
// of episodes on a small worker count.
func TestBarrierReuseManyEpisodes(t *testing.T) {
	episodes := episodes(2000, 200)
	p := 4
	for name, bar := range makeFulls(p) {
		var sum atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					sum.Add(1)
					bar.Wait(w)
				}
			}(w)
		}
		wg.Wait()
		if got := sum.Load(); got != int64(episodes*p) {
			t.Errorf("%s: %d increments, want %d", name, got, episodes*p)
		}
	}
}

// TestSingleParticipant ensures all primitives degenerate gracefully to
// no-ops for P=1.
func TestSingleParticipant(t *testing.T) {
	for name, bar := range makeFulls(1) {
		for i := 0; i < 10; i++ {
			bar.Wait(0)
		}
		_ = name
	}
	for name, bar := range makeHalfPairs(1) {
		for i := 0; i < 10; i++ {
			bar.Release(0)
			bar.Join(0)
			bar.JoinCombine(0, func(into, from int) {
				t.Errorf("%s: combine called with a single participant", name)
			})
		}
	}
}

func TestInvalidConstructionPanics(t *testing.T) {
	cases := []func(){
		func() { NewCentralized(0) },
		func() { NewCentralized(-3) },
		func() { NewDissemination(0) },
		func() { NewTree(topology.TreeShape{}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestTreeBarrierRootIsZero documents the assumption the schedulers rely on:
// worker 0 is the root of shapes built by the topology package.
func TestTreeBarrierRootIsZero(t *testing.T) {
	for _, p := range []int{1, 2, 5, 12, 48} {
		tr := NewTree(topology.Detect(p).GroupedTree(4, 4))
		if tr.Root() != 0 {
			t.Errorf("p=%d: root = %d, want 0", p, tr.Root())
		}
		if tr.Shape().P != p {
			t.Errorf("p=%d: shape.P = %d", p, tr.Shape().P)
		}
	}
}
