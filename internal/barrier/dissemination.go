package barrier

import (
	"fmt"
	"math/bits"

	"loopsched/internal/spin"
)

// Dissemination is a dissemination barrier: ceil(log2 P) rounds in which
// worker i signals worker (i + 2^k) mod P and waits for a signal from
// (i - 2^k) mod P. It completes in logarithmic depth without a distinguished
// root, but it cannot be split into useful half-barriers (there is no single
// master), so it participates only in the full-barrier comparisons and the
// barrier micro-benchmarks.
type Dissemination struct {
	p      int
	rounds int
	// flags[r][w] counts episodes in which worker w has signalled in round r.
	flags [][]paddedUint64
	// done[w] counts completed episodes for worker w (local, unpadded use is
	// fine but keep it padded for uniformity).
	done []paddedUint64
}

// NewDissemination builds a dissemination barrier for p participants.
func NewDissemination(p int) *Dissemination {
	if p <= 0 {
		panic(fmt.Sprintf("barrier: non-positive participant count %d", p))
	}
	rounds := 0
	if p > 1 {
		rounds = bits.Len(uint(p - 1))
	}
	flags := make([][]paddedUint64, rounds)
	for r := range flags {
		flags[r] = make([]paddedUint64, p)
	}
	return &Dissemination{p: p, rounds: rounds, flags: flags, done: make([]paddedUint64, p)}
}

// Participants returns P.
func (b *Dissemination) Participants() int { return b.p }

// Wait implements Full.
func (b *Dissemination) Wait(w int) {
	epoch := b.done[w].v.Load() + 1
	for r := 0; r < b.rounds; r++ {
		dist := 1 << r
		to := (w + dist) % b.p
		from := (w - dist + b.p) % b.p
		// Signal the partner for this round, then wait for our own signal.
		b.flags[r][to].v.Add(1)
		spin.WaitUint64AtLeast(&b.flags[r][w].v, epoch)
		_ = from
	}
	b.done[w].v.Store(epoch)
}

var _ Full = (*Dissemination)(nil)
