// Package barrier implements the synchronisation primitives underlying the
// loop schedulers: a centralized sense-reversing barrier, a Mellor-Crummey &
// Scott style tree barrier, a dissemination barrier, and — central to the
// paper — the two *half-barrier* primitives obtained by splitting a barrier
// into its join phase and its release phase.
//
// A conventional barrier episode has two phases:
//
//   - the join phase records the arrival of every participant (arrivals
//     propagate towards a root, either a shared counter or the root of a
//     tree), and
//   - the release phase signals every participant to proceed (the signal
//     propagates from the root back to the leaves).
//
// A statically scheduled parallel loop conventionally uses two such barriers:
// a fork barrier after the master publishes the work descriptors and a join
// barrier when the loop body completes. The paper observes that, because
// workers are dedicated to a single master and idle between loops, the join
// phase of the fork barrier and the release phase of the join barrier are
// redundant. The Releaser and Joiner interfaces below expose exactly the two
// phases that remain, so the fine-grain scheduler composes
//
//	Release (fork half-barrier)  +  Join (join half-barrier)
//
// per loop, while the full-barrier ablation composes Join+Release twice.
//
// All primitives identify participants by a dense worker index 0..P-1 and
// require that every participant calls the primitive exactly once per
// episode. Worker 0 is the master/root unless the tree shape says otherwise.
package barrier

// Full is a conventional two-phase barrier: Wait returns only after all P
// participants have called Wait for the same episode.
type Full interface {
	// Wait blocks worker w until all participants have arrived, then
	// releases them.
	Wait(w int)
	// Participants returns the number of workers P the barrier was built for.
	Participants() int
}

// Releaser is the release (fork) half of a barrier: the root publishes a
// release signal and returns without waiting for anyone; every other worker
// blocks until the signal reaches it.
type Releaser interface {
	// Release performs one release episode for worker w. The root returns
	// immediately after publishing; other workers return once released.
	Release(w int)
	Participants() int
}

// Joiner is the join half of a barrier: non-root workers announce arrival
// and return immediately (they do not wait to be released); the root blocks
// until every worker has arrived.
type Joiner interface {
	// Join performs one join episode for worker w. Non-root workers return
	// as soon as their arrival has been recorded (and propagated, for tree
	// variants); the root returns once all arrivals are visible.
	Join(w int)
	Participants() int
}

// CombiningJoiner is a Joiner that can fold a reduction into the join phase:
// as arrivals propagate towards the root, the provided combine function is
// invoked as combine(into, from), where `into` and `from` are worker indices
// and the caller guarantees that worker `from` has completed its loop body.
// Combination is performed in increasing worker-index order along every
// path, so non-commutative (ordered) reductions are safe when the iteration
// space is block-partitioned in worker order.
type CombiningJoiner interface {
	Joiner
	// JoinCombine is like Join but additionally folds children into parents
	// using combine. Exactly P-1 combine invocations occur per episode
	// across all workers.
	JoinCombine(w int, combine func(into, from int))
}

// HalfPair bundles the two half-barrier primitives a fine-grain parallel
// loop needs. Implementations guarantee that Release and Join episodes on
// the same HalfPair do not interfere even though they alternate.
type HalfPair interface {
	Releaser
	CombiningJoiner
}
