// Package mpdata implements a finite-volume MPDATA advection solver
// (Multidimensional Positive Definite Advection Transport Algorithm,
// Smolarkiewicz) on the unstructured grids of package grid. It is the
// workload of Figure 2 of the paper.
//
// Each time step performs the classic MPDATA structure:
//
//  1. an upwind (donor-cell) pass: an edge loop computing fluxes followed by
//     a point loop applying the flux divergence, and
//  2. one or more corrective passes that re-advect the field with
//     "antidiffusive" edge velocities derived from the intermediate field,
//     each again an edge loop plus a point loop.
//
// On the paper's grid (5568 points, 16399 edges) each of these loops runs
// for only a few microseconds per pass — exactly the fine-grain regime where
// scheduler burden dominates — and a time step issues 2·(1+Corrective)
// parallel loops, so the solver's scalability is a direct function of the
// loop scheduler's overhead. All loops are dispatched through a pluggable
// sched.Scheduler so the same solver runs under the fine-grain, OpenMP-style
// and Cilk-style runtimes.
package mpdata

import (
	"errors"
	"math"

	"loopsched/internal/grid"
	"loopsched/internal/sched"
)

// Config configures the solver.
type Config struct {
	// Dt is the time step. It must keep the Courant number below 1; Auto
	// (Dt <= 0) selects 0.2/maxSpeed.
	Dt float64
	// Corrective is the number of antidiffusive corrective passes per step
	// (the paper's MPDATA uses 1-3; default 1).
	Corrective int
	// Epsilon guards divisions in the antidiffusive velocity; default 1e-15.
	Epsilon float64
}

// Solver advances a scalar field under advection on an unstructured grid.
type Solver struct {
	g   *grid.Grid
	cfg Config

	// Psi is the advected scalar field (one value per point).
	Psi []float64
	// next receives the updated field during a pass.
	next []float64

	// vn is the prescribed normal velocity at each edge (positive from
	// EdgeFrom towards EdgeTo); vnCorr holds the antidiffusive velocities of
	// the current corrective pass.
	vn     []float64
	vnCorr []float64

	// flux is the per-edge flux of the current pass.
	flux []float64

	steps int
}

// New creates a solver on g with a solid-body-rotation velocity field and a
// cone-shaped initial condition, the standard MPDATA test problem.
func New(g *grid.Grid, cfg Config) (*Solver, error) {
	if g == nil {
		return nil, errors.New("mpdata: nil grid")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.Corrective < 0 {
		return nil, errors.New("mpdata: negative corrective pass count")
	}
	if cfg.Corrective == 0 {
		cfg.Corrective = 1
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1e-15
	}
	s := &Solver{
		g:      g,
		cfg:    cfg,
		Psi:    make([]float64, g.NumPoints),
		next:   make([]float64, g.NumPoints),
		vn:     make([]float64, g.NumEdges()),
		vnCorr: make([]float64, g.NumEdges()),
		flux:   make([]float64, g.NumEdges()),
	}
	s.initFields()
	if cfg.Dt <= 0 {
		maxV := 0.0
		for _, v := range s.vn {
			if a := math.Abs(v); a > maxV {
				maxV = a
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		cfg.Dt = 0.2 / maxV
	}
	s.cfg.Dt = cfg.Dt
	return s, nil
}

// initFields sets the rotational velocity field and the initial cone.
func (s *Solver) initFields() {
	g := s.g
	// Domain centre and extent.
	var cx, cy, maxX, maxY float64
	for p := 0; p < g.NumPoints; p++ {
		cx += g.X[p]
		cy += g.Y[p]
		if g.X[p] > maxX {
			maxX = g.X[p]
		}
		if g.Y[p] > maxY {
			maxY = g.Y[p]
		}
	}
	cx /= float64(g.NumPoints)
	cy /= float64(g.NumPoints)

	// Solid-body rotation about the centre: u = -(y-cy), v = (x-cx),
	// normalised so the maximum speed is 1.
	maxR := math.Hypot(maxX-cx, maxY-cy)
	if maxR == 0 {
		maxR = 1
	}
	for e := 0; e < g.NumEdges(); e++ {
		a, b := g.EdgeFrom[e], g.EdgeTo[e]
		mx := 0.5 * (g.X[a] + g.X[b])
		my := 0.5 * (g.Y[a] + g.Y[b])
		u := -(my - cy) / maxR
		v := (mx - cx) / maxR
		s.vn[e] = u*g.EdgeNX[e] + v*g.EdgeNY[e]
	}

	// Initial condition: a cone of height 1 and radius maxR/4 centred at
	// (cx + maxR/3, cy), on a background of 0.05 (strictly positive so the
	// positive-definiteness property is meaningful).
	r0 := maxR / 4
	ox := cx + maxR/3
	for p := 0; p < g.NumPoints; p++ {
		d := math.Hypot(g.X[p]-ox, g.Y[p]-cy)
		s.Psi[p] = 0.05
		if d < r0 {
			s.Psi[p] = 0.05 + (1 - d/r0)
		}
	}
}

// Grid returns the solver's grid.
func (s *Solver) Grid() *grid.Grid { return s.g }

// Dt returns the time step in use.
func (s *Solver) Dt() float64 { return s.cfg.Dt }

// Steps returns the number of completed time steps.
func (s *Solver) Steps() int { return s.steps }

// LoopsPerStep returns the number of parallel loops issued per time step:
// an edge loop and a point loop per pass, with 1 upwind pass plus the
// configured corrective passes.
func (s *Solver) LoopsPerStep() int { return 2 * (1 + s.cfg.Corrective) }

// Step advances the field by one time step, dispatching every loop through
// the supplied scheduler.
func (s *Solver) Step(run sched.Scheduler) {
	// Upwind pass with the physical velocities.
	s.pass(run, s.vn, s.Psi, s.next)
	s.Psi, s.next = s.next, s.Psi

	// Corrective passes with antidiffusive velocities.
	for c := 0; c < s.cfg.Corrective; c++ {
		s.antidiffusiveVelocities(run, s.Psi)
		s.pass(run, s.vnCorr, s.Psi, s.next)
		s.Psi, s.next = s.next, s.Psi
	}
	s.steps++
}

// pass performs one donor-cell pass: an edge loop computing upwind fluxes of
// field `from` under edge velocities v, then a point loop applying the
// divergence into `to`.
func (s *Solver) pass(run sched.Scheduler, v, from, to []float64) {
	g := s.g
	dt := s.cfg.Dt
	flux := s.flux

	run.For(g.NumEdges(), func(w, begin, end int) {
		for e := begin; e < end; e++ {
			vn := v[e]
			a, b := g.EdgeFrom[e], g.EdgeTo[e]
			// Donor-cell upwind flux from a to b.
			if vn >= 0 {
				flux[e] = vn * from[a]
			} else {
				flux[e] = vn * from[b]
			}
		}
	})

	run.For(g.NumPoints, func(w, begin, end int) {
		for p := begin; p < end; p++ {
			div := 0.0
			for _, ei := range g.IncidentEdges[g.IncidentStart[p]:g.IncidentStart[p+1]] {
				f := flux[ei]
				if int(g.EdgeFrom[ei]) == p {
					div += f
				} else {
					div -= f
				}
			}
			to[p] = from[p] - dt*div/g.Area[p]
		}
	})
}

// antidiffusiveVelocities computes the MPDATA corrective velocities from the
// intermediate field psi into vnCorr (an edge loop).
func (s *Solver) antidiffusiveVelocities(run sched.Scheduler, psi []float64) {
	g := s.g
	dt := s.cfg.Dt
	eps := s.cfg.Epsilon
	vn := s.vn
	out := s.vnCorr

	run.For(g.NumEdges(), func(w, begin, end int) {
		for e := begin; e < end; e++ {
			a, b := g.EdgeFrom[e], g.EdgeTo[e]
			v := vn[e]
			num := psi[b] - psi[a]
			den := psi[b] + psi[a] + eps
			// Classic MPDATA antidiffusive velocity: |C|(1-|C|) gradient
			// correction, with the Courant number C = v·dt (unit dual face
			// and unit area).
			c := v * dt
			out[e] = (math.Abs(c) - c*c) * (num / den) / dt
		}
	})
}

// Mass returns the total mass Σ ψ·Area, computed as a parallel reduction
// through the scheduler. MPDATA conserves it exactly (up to round-off).
func (s *Solver) Mass(run sched.Scheduler) float64 {
	g := s.g
	psi := s.Psi
	return run.ForReduce(g.NumPoints, 0, func(a, b float64) float64 { return a + b },
		func(w, begin, end int, acc float64) float64 {
			for p := begin; p < end; p++ {
				acc += psi[p] * g.Area[p]
			}
			return acc
		})
}

// MinMax returns the extrema of the field via a vector reduction.
func (s *Solver) MinMax(run sched.Scheduler) (min, max float64) {
	psi := s.Psi
	// Encode min as -max(-x) so the element-wise-sum vector reduction is not
	// applicable; use two scalar reductions instead (each is itself a
	// fine-grain loop, adding to the scheduling pressure the figure
	// measures).
	min = run.ForReduce(len(psi), math.Inf(1), math.Min,
		func(w, begin, end int, acc float64) float64 {
			for p := begin; p < end; p++ {
				if psi[p] < acc {
					acc = psi[p]
				}
			}
			return acc
		})
	max = run.ForReduce(len(psi), math.Inf(-1), math.Max,
		func(w, begin, end int, acc float64) float64 {
			for p := begin; p < end; p++ {
				if psi[p] > acc {
					acc = psi[p]
				}
			}
			return acc
		})
	return min, max
}

// Run advances the solver by n steps under the given scheduler.
func (s *Solver) Run(run sched.Scheduler, n int) {
	for i := 0; i < n; i++ {
		s.Step(run)
	}
}

// Clone returns a deep copy of the solver (same grid, copied fields), used
// to run the same initial state under different schedulers.
func (s *Solver) Clone() *Solver {
	c := &Solver{
		g:      s.g,
		cfg:    s.cfg,
		Psi:    append([]float64(nil), s.Psi...),
		next:   make([]float64, len(s.next)),
		vn:     append([]float64(nil), s.vn...),
		vnCorr: make([]float64, len(s.vnCorr)),
		flux:   make([]float64, len(s.flux)),
		steps:  s.steps,
	}
	return c
}
