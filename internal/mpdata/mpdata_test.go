package mpdata

import (
	"math"
	"runtime"
	"testing"

	"loopsched/internal/core"
	"loopsched/internal/grid"
	"loopsched/internal/omp"
	"loopsched/internal/sched"
)

func smallGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.NewTriangulated(12, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Errorf("accepted a nil grid")
	}
	g := smallGrid(t)
	if _, err := New(g, Config{Corrective: -1}); err == nil {
		t.Errorf("accepted a negative corrective count")
	}
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dt() <= 0 {
		t.Errorf("auto time step %v", s.Dt())
	}
	if s.LoopsPerStep() != 4 { // 1 upwind + 1 corrective, 2 loops each
		t.Errorf("LoopsPerStep = %d, want 4", s.LoopsPerStep())
	}
	if s.Grid() != g {
		t.Errorf("Grid() does not return the construction grid")
	}
}

func TestInitialConditionIsPositiveWithCone(t *testing.T) {
	g := smallGrid(t)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range s.Psi {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 0.049 || min > 0.051 {
		t.Errorf("background value %v, want 0.05", min)
	}
	if max <= 0.5 || max > 1.06 {
		t.Errorf("cone peak %v, want ~1.05", max)
	}
}

func TestMassConservationSequential(t *testing.T) {
	g := smallGrid(t)
	s, err := New(g, Config{Corrective: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq := sched.NewSequential()
	m0 := s.Mass(seq)
	s.Run(seq, 40)
	m1 := s.Mass(seq)
	if rel := math.Abs(m1-m0) / math.Abs(m0); rel > 1e-12 {
		t.Errorf("mass drifted by %v (from %v to %v)", rel, m0, m1)
	}
	if s.Steps() != 40 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestFieldStaysBoundedAndFinite(t *testing.T) {
	g := smallGrid(t)
	s, err := New(g, Config{Corrective: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := sched.NewSequential()
	s.Run(seq, 100)
	min, max := s.MinMax(seq)
	if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		t.Fatalf("field blew up: min=%v max=%v", min, max)
	}
	// Upwind advection is diffusive; with the antidiffusive correction small
	// over/undershoots can appear, but the field must stay within a loose
	// envelope of the initial range [0.05, 1.05].
	if min < -0.1 || max > 1.5 {
		t.Errorf("field out of physical envelope: [%v, %v]", min, max)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	g := smallGrid(t)
	base, err := New(g, Config{Corrective: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqSolver := base.Clone()
	seq := sched.NewSequential()
	seqSolver.Run(seq, 25)

	runtimes := []sched.Scheduler{
		core.New(core.Config{Workers: p, LockOSThread: false}),
		core.New(core.Config{Workers: p, Barrier: core.BarrierCentralized, LockOSThread: false}),
		omp.New(omp.Config{Workers: p, Schedule: omp.Static, LockOSThread: false}),
		omp.New(omp.Config{Workers: p, Schedule: omp.Dynamic, Chunk: 16, LockOSThread: false}),
	}
	for _, rt := range runtimes {
		solver := base.Clone()
		solver.Run(rt, 25)
		maxDiff := 0.0
		for i := range solver.Psi {
			d := math.Abs(solver.Psi[i] - seqSolver.Psi[i])
			if d > maxDiff {
				maxDiff = d
			}
		}
		// The loops are deterministic given the partitioning; only the mass
		// reduction order could differ. Field updates are per-point
		// assignments, so results should agree to round-off exactly.
		if maxDiff > 1e-12 {
			t.Errorf("%s: field differs from sequential by %v", rt.Name(), maxDiff)
		}
		mass := solver.Mass(rt)
		seqMass := seqSolver.Mass(seq)
		if math.Abs(mass-seqMass) > 1e-9*math.Abs(seqMass) {
			t.Errorf("%s: mass %v vs sequential %v", rt.Name(), mass, seqMass)
		}
		rt.Close()
	}
}

func TestAdvectionMovesTheCone(t *testing.T) {
	// The rotational velocity field must transport the cone: the location of
	// the maximum changes after enough steps.
	g := smallGrid(t)
	s, err := New(g, Config{Corrective: 1})
	if err != nil {
		t.Fatal(err)
	}
	argmax := func(xs []float64) int {
		best, bi := math.Inf(-1), 0
		for i, v := range xs {
			if v > best {
				best, bi = v, i
			}
		}
		return bi
	}
	before := argmax(s.Psi)
	seq := sched.NewSequential()
	s.Run(seq, 200)
	after := argmax(s.Psi)
	if before == after {
		t.Errorf("cone did not move (argmax stayed at %d)", before)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := smallGrid(t)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	seq := sched.NewSequential()
	s.Run(seq, 5)
	if s.Steps() == c.Steps() {
		t.Errorf("clone advanced with the original")
	}
	diff := 0.0
	for i := range c.Psi {
		diff += math.Abs(c.Psi[i] - s.Psi[i])
	}
	if diff == 0 {
		t.Errorf("running the original did not change its field relative to the clone")
	}
}

func TestPaperGridStep(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size grid in -short mode")
	}
	g, err := grid.NewPaperGrid()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Config{Corrective: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := sched.NewSequential()
	m0 := s.Mass(seq)
	s.Run(seq, 5)
	m1 := s.Mass(seq)
	if math.Abs(m1-m0) > 1e-9*math.Abs(m0) {
		t.Errorf("mass drift on the paper grid: %v -> %v", m0, m1)
	}
}
