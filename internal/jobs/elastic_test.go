package jobs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches the state or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v, want %v", j.State(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitFor polls a condition with a 5s deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestElasticGrowthJoinsRunningJob(t *testing.T) {
	// A job admitted while most of the team is busy must grow onto workers
	// that free up afterwards, instead of finishing on its lone admission
	// sub-team.
	s := testScheduler(t, 4, Config{})
	release := make(chan struct{})
	var blockers []*Job
	for i := 0; i < 3; i++ {
		b, err := s.Submit(Request{N: 1, MaxWorkers: 1, Body: func(w, lo, hi int) { <-release }})
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, b)
		waitState(t, b, Running)
	}
	// One worker is idle: the elastic job is admitted on it alone.
	elastic, err := s.Submit(Request{N: 400, Grain: 1, Body: func(w, lo, hi int) {
		time.Sleep(time.Millisecond)
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, elastic, Running)
	close(release)
	for _, b := range blockers {
		if _, err := b.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "sub-team growth", func() bool { return s.Stats().Grown > 0 })
	if _, err := elastic.Wait(); err != nil {
		t.Fatal(err)
	}
	if k := elastic.Workers(); k < 2 {
		t.Errorf("elastic job peaked at %d workers, want >= 2 after growth", k)
	}
}

func TestElasticPeelServesWaitingTenant(t *testing.T) {
	// A worker of a running job must peel off when another tenant waits in
	// the admission queue, so the tenant is served long before the big job
	// completes — the convoy fix.
	s := testScheduler(t, 2, Config{})
	big, err := s.Submit(Request{N: 300, Grain: 1, Body: func(w, lo, hi int) {
		time.Sleep(time.Millisecond)
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, big, Running)
	small, err := s.Submit(Request{N: 8, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := big.State(); st != Running {
		t.Errorf("big job already %v when the burst tenant completed (convoy not fixed?)", st)
	}
	if st := s.Stats(); st.Peeled < 1 {
		t.Errorf("peeled = %d, want >= 1", st.Peeled)
	}
	if _, err := big.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCommutativeElasticReduceExact(t *testing.T) {
	// Commutative reductions take the elastic path (arrival-order folding);
	// integer-valued sums must still be bit-exact whatever the fold order.
	s := testScheduler(t, 4, Config{})
	const jobs = 16
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 2000 + 13*g
			j, err := s.Submit(Request{
				N:           n,
				Grain:       32,
				Commutative: true,
				Combine:     func(a, b float64) float64 { return a + b },
				RBody: func(w, lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			v, err := j.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			if want := float64(n) * float64(n-1) / 2; v != want {
				t.Errorf("job %d: sum = %v, want %v", g, v, want)
			}
		}(g)
	}
	wg.Wait()
}

func TestGrainControlsChunkSize(t *testing.T) {
	s := testScheduler(t, 4, Config{})
	const n, grain = 1000, 64
	var mu sync.Mutex
	type chunk struct{ lo, hi int }
	var chunks []chunk
	j, err := s.Submit(Request{N: n, Grain: grain, Body: func(w, lo, hi int) {
		mu.Lock()
		chunks = append(chunks, chunk{lo, hi})
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, c := range chunks {
		if c.lo%grain != 0 {
			t.Errorf("chunk [%d,%d) not aligned to grain %d", c.lo, c.hi, grain)
		}
		if c.hi-c.lo > grain {
			t.Errorf("chunk [%d,%d) exceeds grain %d", c.lo, c.hi, grain)
		}
	}
}

func TestCancelAdjustsQueueDepth(t *testing.T) {
	// Canceled-while-queued jobs must leave the depth other tenants' fair
	// share is computed from immediately — not only when the dispatcher
	// eventually pops them.
	s := testScheduler(t, 1, Config{})
	release := make(chan struct{})
	blocker, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	var victims []*Job
	for i := 0; i < 5; i++ {
		v, err := s.Submit(Request{N: 100, Body: func(w, lo, hi int) {
			t.Error("canceled job body ran")
		}})
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, v)
	}
	if st := s.Stats(); st.QueueDepth != 5 {
		t.Fatalf("queue depth = %d before cancels, want 5", st.QueueDepth)
	}
	for _, v := range victims {
		if !v.Cancel() {
			t.Fatal("Cancel returned false for a queued job")
		}
	}
	// The depth drops synchronously with Cancel, while the canceled jobs
	// are still physically in the queue.
	if st := s.Stats(); st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after cancels, want 0", st.QueueDepth)
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	// The dispatcher skips the canceled jobs without double-decrementing:
	// after another job flows through, the depth is exactly zero again.
	j, err := s.Submit(Request{N: 10, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "queue drain", func() bool {
		st := s.Stats()
		return st.QueueDepth == 0 && st.Running == 0
	})
	if st := s.Stats(); st.Canceled != 5 {
		t.Errorf("canceled = %d, want 5", st.Canceled)
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	// The dispatcher must not drain the bounded queue into an unbounded
	// buffer: with QueueDepth=2 and the lone worker blocked, at most 3 jobs
	// (2 in the channel + 1 popped) can be accepted before Submit blocks.
	s := testScheduler(t, 1, Config{QueueDepth: 2})
	release := make(chan struct{})
	blocker, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	var accepted atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}}); err != nil {
				t.Error(err)
				return
			}
			accepted.Add(1)
		}
	}()
	// Give the submitter ample time to run into the backpressure wall.
	time.Sleep(50 * time.Millisecond)
	if got := accepted.Load(); got > 3 {
		t.Errorf("%d submits accepted while the team was blocked, want <= 3 (QueueDepth=2 + 1 popped)", got)
	}
	close(release)
	<-done
	waitFor(t, "queue drain", func() bool {
		st := s.Stats()
		return st.QueueDepth == 0 && st.Running == 0
	})
}

func TestRaceSubmitCancelStatsDuringSkewedJob(t *testing.T) {
	// Run under -race: concurrent Submit/Cancel/Stats while a long skewed
	// elastic job churns the team. Every job must either complete with the
	// right answer or report ErrCanceled; the counters must balance.
	s := testScheduler(t, 4, Config{})
	skew, err := s.Submit(Request{N: 256, Grain: 1, Body: func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			// Skewed body: later iterations cost more.
			time.Sleep(time.Duration(1+i/64) * 50 * time.Microsecond)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, skew, Running)

	const submitters = 6
	var completed, canceled atomic.Int64
	var wg, pollers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Stats()
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
	}
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				n := 500 + g
				j, err := s.Submit(Request{
					N:           n,
					Commutative: true,
					Combine:     func(a, b float64) float64 { return a + b },
					RBody: func(w, lo, hi int, acc float64) float64 {
						return acc + float64(hi-lo)
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == g%3 {
					j.Cancel() // races admission on purpose
				}
				v, err := j.Wait()
				switch {
				case err == nil:
					if v != float64(n) {
						t.Errorf("job result %v, want %v", v, float64(n))
					}
					completed.Add(1)
				case errors.Is(err, ErrCanceled):
					canceled.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	if _, err := skew.Wait(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "queue drain", func() bool {
		st := s.Stats()
		return st.QueueDepth == 0 && st.Running == 0
	})
	st := s.Stats()
	if got, want := completed.Load()+canceled.Load(), int64(submitters*40); got != want {
		t.Errorf("accounted %d jobs, want %d", got, want)
	}
	if st.Canceled != canceled.Load() {
		t.Errorf("stats canceled = %d, observed %d", st.Canceled, canceled.Load())
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after drain", st.QueueDepth)
	}
}
