package jobs

import (
	"testing"
)

// warmSubmitPath primes every recyclable capacity on the submit path: the job
// freelist, each job's partials/slot-stack/cached barrier, the fair queue's
// tenant account and heap, and the dispatcher's admission scratch.
func warmSubmitPath(t *testing.T, s *Scheduler, req Request) {
	t.Helper()
	for i := 0; i < 128; i++ {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		j.Release()
	}
}

// TestSubmitAllocs pins the tentpole acceptance criterion at the scheduler
// layer: a steady-state Submit/Wait/Release cycle — through job pooling, the
// direct-handoff fast path or the fair queue, the release wave, the worker's
// run and the cond-based join — performs zero heap allocations.
func TestSubmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	req := Request{N: 64, Body: func(w, lo, hi int) {}}
	warmSubmitPath(t, s, req)
	avg := testing.AllocsPerRun(500, func() {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		j.Release()
	})
	if avg != 0 {
		t.Errorf("Submit/Wait/Release cycle: %v allocs/op, want 0", avg)
	}
}

// TestSubmitAllocsReducing covers the reduction shape (partial slots and the
// identity fold) at zero allocations as well.
func TestSubmitAllocsReducing(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	req := Request{
		N:           64,
		RBody:       func(w, lo, hi int, acc float64) float64 { return acc + float64(hi-lo) },
		Combine:     func(a, b float64) float64 { return a + b },
		Commutative: true,
	}
	warmSubmitPath(t, s, req)
	avg := testing.AllocsPerRun(500, func() {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		v, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if v != 64 {
			t.Fatalf("sum = %v, want 64", v)
		}
		j.Release()
	})
	if avg != 0 {
		t.Errorf("reducing Submit/Wait/Release cycle: %v allocs/op, want 0", avg)
	}
}

// TestSubmitBatchAllocs pins the batched intake: admitting N jobs through
// SubmitBatch into caller-provided storage, then joining and recycling them,
// allocates nothing in steady state.
func TestSubmitBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	s := New(Config{Workers: 2, QueueDepth: 64})
	defer s.Close()
	const batch = 16
	reqs := make([]Request, batch)
	out := make([]*Job, batch)
	body := func(w, lo, hi int) {}
	for i := range reqs {
		reqs[i] = Request{N: 64, Body: body}
	}
	cycle := func() {
		if err := s.SubmitBatch(reqs, out); err != nil {
			t.Fatal(err)
		}
		for i, j := range out {
			if _, err := j.Wait(); err != nil {
				t.Fatal(err)
			}
			j.Release()
			out[i] = nil
		}
	}
	for i := 0; i < 16; i++ {
		cycle() // prime the freelist with a batch's worth of jobs
	}
	avg := testing.AllocsPerRun(100, cycle)
	if got := avg / batch; got != 0 {
		t.Errorf("SubmitBatch cycle: %v allocs per submitted job, want 0", got)
	}
}
