package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMemStoreRoundTrip(t *testing.T) {
	st := NewMemStore()
	for _, id := range []uint64{3, 1, 2} {
		if err := st.Put(Checkpoint{JobID: id, Workload: "w", N: int(id) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put(Checkpoint{JobID: 2, Workload: "w", N: 20, Cursor: 7}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(3); err != nil {
		t.Fatal(err)
	}
	cps, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 || cps[0].JobID != 1 || cps[1].JobID != 2 {
		t.Fatalf("load = %+v, want ids [1 2] ascending", cps)
	}
	if cps[1].Cursor != 7 {
		t.Fatalf("put did not replace: cursor = %d, want 7", cps[1].Cursor)
	}
}

func TestFileStoreReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	dl := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	put := []Checkpoint{
		{JobID: 1, Workload: "a", N: 100, Cursor: 40, Acc: 780, Commutative: true},
		{JobID: 2, Workload: "b", N: 50, Tenant: "t", Priority: 3, Deadline: dl, After: []uint64{1}},
		{JobID: 3, Workload: "c", N: 10},
	}
	for _, cp := range put {
		if err := st.Put(cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(3); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cps, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 {
		t.Fatalf("replay found %d checkpoints, want 2", len(cps))
	}
	if cps[0].JobID != 1 || cps[0].Cursor != 40 || cps[0].Acc != 780 || !cps[0].Commutative {
		t.Fatalf("checkpoint 1 mangled: %+v", cps[0])
	}
	if cps[1].Tenant != "t" || cps[1].Priority != 3 || !cps[1].Deadline.Equal(dl) || len(cps[1].After) != 1 {
		t.Fatalf("checkpoint 2 mangled: %+v", cps[1])
	}
}

func TestFileStoreToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Checkpoint{JobID: 9, Workload: "w", N: 5}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, walName)
	// Simulate a crash mid-append: a torn, unparseable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","cp":{"job":10,"wor`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	defer st2.Close()
	cps, _ := st2.Load()
	if len(cps) != 1 || cps[0].JobID != 9 {
		t.Fatalf("load after torn tail = %+v, want just job 9", cps)
	}
}

func TestFileStoreRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	body := `{"op":"put","cp":{"job":1,"workload":"w","n":5}}` + "\n" +
		`garbage not json` + "\n" +
		`{"op":"put","cp":{"job":2,"workload":"w","n":5}}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption must fail the open, got err = %v", err)
	}
}

func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Churn far past the slack: every put/delete pair leaves dead records.
	for i := 0; i < walCompactSlack+200; i++ {
		id := uint64(i + 1)
		if err := st.Put(Checkpoint{JobID: id, Workload: "w", N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put(Checkpoint{JobID: 999999, Workload: "live", N: 1}); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	records, live := st.records, len(st.live)
	st.mu.Unlock()
	if records > live+walCompactSlack+1 {
		t.Fatalf("WAL holds %d records for %d live snapshots; compaction never ran", records, live)
	}
	cps, _ := st.Load()
	if len(cps) != 1 || cps[0].Workload != "live" {
		t.Fatalf("post-compaction load = %+v", cps)
	}
}
