package jobs

import (
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/iterspace"
	"loopsched/internal/spin"
)

func TestMain(m *testing.M) {
	// Sub-team join waves spin; on small or oversubscribed test machines the
	// production thresholds (tuned for dedicated pinned workers) waste
	// milliseconds per wait. Shrink them; the logic under test is unchanged.
	spin.ActiveSpins = 1 << 6
	spin.YieldThreshold = 1 << 8
	os.Exit(m.Run())
}

// testScheduler builds a scheduler with the given worker count, bounded for
// the machine, and closes it at cleanup.
func testScheduler(t *testing.T, workers int, cfg Config) *Scheduler {
	t.Helper()
	cfg.Workers = workers
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestSingleJobMatchesSynchronousForEach(t *testing.T) {
	// A single submitted job must produce bit-for-bit the result of the
	// synchronous ForEach: each index is written exactly once with a value
	// that depends only on the index, whatever sub-team size the job was
	// molded onto.
	for _, workers := range []int{1, 2, 4} {
		s := testScheduler(t, workers, Config{})
		n := 10007
		f := func(i int) float64 { return math.Sin(float64(i)) * 1e3 }

		want := make([]float64, n)
		for i := 0; i < n; i++ { // the synchronous oracle
			want[i] = f(i)
		}

		got := make([]float64, n)
		j, err := s.Submit(Request{N: n, Body: func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = f(i)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: index %d = %x, want %x", workers, i, got[i], want[i])
			}
		}
		if j.State() != Done {
			t.Errorf("state = %v, want done", j.State())
		}
		if k := j.Workers(); k < 1 || k > workers {
			t.Errorf("job ran on %d workers, want 1..%d", k, workers)
		}
	}
}

func TestConcurrentSubmitFromManyGoroutines(t *testing.T) {
	s := testScheduler(t, 4, Config{})
	const (
		submitters = 16
		jobsEach   = 25
		n          = 500
	)
	var total atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				j, err := s.Submit(Request{N: n, Body: func(w, lo, hi int) {
					total.Add(int64(hi - lo))
				}})
				if err != nil {
					errs <- err
					return
				}
				if _, err := j.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := total.Load(), int64(submitters*jobsEach*n); got != want {
		t.Fatalf("covered %d iterations, want %d", got, want)
	}
	st := s.Stats()
	if st.Completed != submitters*jobsEach {
		t.Errorf("completed = %d, want %d", st.Completed, submitters*jobsEach)
	}
	if st.IterationsDone != int64(submitters*jobsEach*n) {
		t.Errorf("iterations = %d", st.IterationsDone)
	}
}

func TestConcurrentReduceJobs(t *testing.T) {
	s := testScheduler(t, 4, Config{})
	const jobs = 24
	var wg sync.WaitGroup
	results := make([]float64, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 1000 + g
			j, err := s.Submit(Request{
				N:       n,
				Combine: func(a, b float64) float64 { return a + b },
				RBody: func(w, lo, hi int, acc float64) float64 {
					for i := lo; i < hi; i++ {
						acc += float64(i)
					}
					return acc
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			v, err := j.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	for g := 0; g < jobs; g++ {
		n := 1000 + g
		if want := float64(n) * float64(n-1) / 2; results[g] != want {
			t.Errorf("job %d: sum = %v, want %v", g, results[g], want)
		}
	}
}

func TestReduceOrderAcrossSubTeam(t *testing.T) {
	// The join wave folds partials in sub-worker order, so the "last"
	// non-commutative fold must see the final block's value — same contract
	// as the single-tenant scheduler.
	s := testScheduler(t, 4, Config{})
	n := 97
	j, err := s.Submit(Request{
		N:        n,
		Identity: -1,
		Combine:  func(a, b float64) float64 { return b },
		RBody:    func(w, lo, hi int, acc float64) float64 { return float64(hi) },
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(n) {
		t.Fatalf("'last' fold = %v, want %v (join-wave order violated)", got, float64(n))
	}
}

func TestCancelBeforeStart(t *testing.T) {
	s := testScheduler(t, 1, Config{})
	release := make(chan struct{})
	blocker, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) { <-release }})
	if err != nil {
		t.Fatal(err)
	}
	// The single worker is held by the blocker; a second job is popped by the
	// dispatcher and parked waiting for a worker, so a *third* job is
	// guaranteed to still be queued and cancellable.
	parked, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {
		t.Error("canceled job body ran")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !victim.Cancel() {
		t.Fatal("Cancel returned false for a queued job")
	}
	if victim.Cancel() {
		t.Error("second Cancel returned true")
	}
	if _, err := victim.Wait(); err != ErrCanceled {
		t.Errorf("Wait after cancel = %v, want ErrCanceled", err)
	}
	if victim.State() != Canceled {
		t.Errorf("state = %v, want canceled", victim.State())
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := parked.Wait(); err != nil {
		t.Fatal(err)
	}
	// A completed job cannot be canceled.
	if blocker.Cancel() {
		t.Error("Cancel succeeded on a completed job")
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("stats canceled = %d, want 1", st.Canceled)
	}
}

func TestWorkerPartitionCorrectness(t *testing.T) {
	// Under -race: concurrent elastic jobs record every (sub, lo, hi) chunk
	// they execute; each job's chunks must tile [0, n) exactly — disjoint,
	// complete, with dense sub-worker ids.
	s := testScheduler(t, 4, Config{})
	const jobs = 12
	type share struct{ sub, lo, hi int }
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 256 + 37*g
			var mu sync.Mutex
			var shares []share
			j, err := s.Submit(Request{N: n, Body: func(w, lo, hi int) {
				mu.Lock()
				shares = append(shares, share{w, lo, hi})
				mu.Unlock()
			}})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := j.Wait(); err != nil {
				t.Error(err)
				return
			}
			k := j.Workers()
			if k < 1 || k > s.P() {
				t.Errorf("job %d: peak sub-team %d workers", g, k)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			sort.Slice(shares, func(a, b int) bool { return shares[a].lo < shares[b].lo })
			next := 0
			for _, sh := range shares {
				if sh.sub < 0 || sh.sub >= s.P() {
					t.Errorf("job %d: sub-worker %d out of range [0,%d)", g, sh.sub, s.P())
				}
				if sh.lo != next || sh.hi <= sh.lo {
					t.Errorf("job %d: chunk [%d,%d) does not continue tiling at %d", g, sh.lo, sh.hi, next)
					return
				}
				next = sh.hi
			}
			if next != n {
				t.Errorf("job %d: covered [0,%d) of [0,%d)", g, next, n)
			}
		}(g)
	}
	wg.Wait()
}

func TestRigidPartitionMatchesStaticBlocks(t *testing.T) {
	// With elasticity disabled the pre-elastic contract still holds: each
	// job's shares are exactly the static block partition for its molded
	// team size.
	s := testScheduler(t, 4, Config{DisableElastic: true})
	const jobs = 8
	type share struct{ sub, lo, hi int }
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 256 + 37*g
			var mu sync.Mutex
			var shares []share
			j, err := s.Submit(Request{N: n, Body: func(w, lo, hi int) {
				mu.Lock()
				shares = append(shares, share{w, lo, hi})
				mu.Unlock()
			}})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := j.Wait(); err != nil {
				t.Error(err)
				return
			}
			k := j.Workers()
			if k < 1 || k > s.P() {
				t.Errorf("job %d: molded onto %d workers", g, k)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			covered := 0
			for _, sh := range shares {
				if sh.sub < 0 || sh.sub >= k {
					t.Errorf("job %d: sub-worker %d out of range [0,%d)", g, sh.sub, k)
				}
				want := iterspace.Block(n, k, sh.sub)
				if sh.lo != want.Begin || sh.hi != want.End {
					t.Errorf("job %d: sub %d ran [%d,%d), want %v", g, sh.sub, sh.lo, sh.hi, want)
				}
				covered += sh.hi - sh.lo
			}
			if covered != n {
				t.Errorf("job %d: covered %d of %d iterations", g, covered, n)
			}
		}(g)
	}
	wg.Wait()
}

func TestMoldableTeamSize(t *testing.T) {
	s := testScheduler(t, 8, Config{Workers: 8})
	if s.P() != 8 {
		t.Skipf("machine rejected 8 workers")
	}
	j := func(req Request) *Job { return &Job{req: req} }
	cases := []struct {
		name    string
		req     Request
		waiting int
		want    int
	}{
		{"lone job gets the team", Request{N: 1 << 20}, 0, 8},
		{"fair share under pressure", Request{N: 1 << 20}, 3, 2},
		{"deep queue degrades to 1", Request{N: 1 << 20}, 16, 1},
		{"per-job cap", Request{N: 1 << 20, MaxWorkers: 3}, 0, 3},
		{"small job bounded by size", Request{N: 5}, 0, 5},
		{"grain floor", Request{N: 1024, Grain: 512}, 0, 2},
	}
	for _, c := range cases {
		if got := s.teamSize(j(c.req), c.waiting); got != c.want {
			t.Errorf("%s: teamSize = %d, want %d", c.name, got, c.want)
		}
	}
	capped := New(Config{Workers: 8, MaxWorkersPerJob: 2})
	defer capped.Close()
	if got := capped.teamSize(j(Request{N: 1 << 20}), 0); got != 2 {
		t.Errorf("scheduler-wide cap: teamSize = %d, want 2", got)
	}
}

func TestEmptyAndInvalidRequests(t *testing.T) {
	s := testScheduler(t, 2, Config{})
	j, err := s.Submit(Request{N: 0, Body: func(w, lo, hi int) { t.Error("body ran") }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Errorf("empty job: %v", err)
	}
	j, err = s.Submit(Request{N: -3, Identity: 7, Combine: func(a, b float64) float64 { return a + b },
		RBody: func(w, lo, hi int, acc float64) float64 { return acc + 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := j.Wait(); err != nil || v != 7 {
		t.Errorf("empty reduce = %v, %v; want identity 7", v, err)
	}
	for _, req := range []Request{
		{N: 10},
		{N: 10, Body: func(w, lo, hi int) {}, RBody: func(w, lo, hi int, acc float64) float64 { return acc }},
		{N: 10, RBody: func(w, lo, hi int, acc float64) float64 { return acc }},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("invalid request %+v accepted", req)
		}
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 2})
	const jobs = 50
	var done atomic.Int64
	handles := make([]*Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := s.Submit(Request{N: 100, Body: func(w, lo, hi int) { done.Add(1) }})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, j)
	}
	s.Close()
	for i, j := range handles {
		if _, err := j.Wait(); err != nil {
			t.Fatalf("job %d after Close: %v", i, err)
		}
	}
	if _, err := s.Submit(Request{N: 1, Body: func(w, lo, hi int) {}}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestStatsLatencyPercentiles(t *testing.T) {
	s := testScheduler(t, 2, Config{LatencyWindow: 64})
	for i := 0; i < 20; i++ {
		j, err := s.Submit(Request{N: 64, Body: func(w, lo, hi int) {
			time.Sleep(100 * time.Microsecond)
		}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LatencySamples != 20 {
		t.Errorf("samples = %d, want 20", st.LatencySamples)
	}
	if st.LatencyP50 <= 0 || st.LatencyP99 < st.LatencyP50 {
		t.Errorf("implausible percentiles: p50=%v p99=%v", st.LatencyP50, st.LatencyP99)
	}
	if st.RunP50 <= 0 || st.RunP50 > st.LatencyP50 {
		t.Errorf("run p50 %v should be positive and <= total p50 %v", st.RunP50, st.LatencyP50)
	}
	if st.Workers != 2 || st.Submitted != 20 || st.Completed != 20 {
		t.Errorf("counters: %+v", st)
	}
}

func TestManyTenantsSaturateWithoutRaces(t *testing.T) {
	// The acceptance shape: many tenants hammer one shared team; every job's
	// result must be correct and the queue must drain.
	p := runtime.GOMAXPROCS(0)
	if p > 4 {
		p = 4
	}
	s := testScheduler(t, p, Config{QueueDepth: 8}) // small queue: exercises backpressure
	const tenants = 8
	var wg sync.WaitGroup
	for tnt := 0; tnt < tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := 200 + 13*tnt + i
				j, err := s.Submit(Request{
					N:       n,
					Combine: func(a, b float64) float64 { return a + b },
					RBody: func(w, lo, hi int, acc float64) float64 {
						return acc + float64(hi-lo)
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v, err := j.Wait(); err != nil || v != float64(n) {
					t.Errorf("tenant %d job %d: got %v, %v", tnt, i, v, err)
					return
				}
			}
		}(tnt)
	}
	wg.Wait()
	if st := s.Stats(); st.QueueDepth != 0 || st.Running != 0 {
		t.Errorf("queue not drained: %+v", st)
	}
}
