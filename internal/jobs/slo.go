package jobs

// slo.go is the per-tenant SLO accounting: every job completion deposits one
// sample — the admission wait, the run time, and the deadline outcome — into
// the tenant's rolling window, and snapshots derive the windowed deadline-hit
// ratio, the burn rate against the configured objective, and wait/run
// quantiles. The window is deliberately sized in jobs, not time: under a
// steady load it is a recent-past view, and under a trickle it still answers
// "how did the last N jobs do" instead of decaying to nothing.
//
// Burn rate follows the usual SLO convention: the windowed miss fraction
// divided by the error budget (1 - target). A tenant burning at 1.0 consumes
// its budget exactly as fast as the objective allows; above 1.0 it is on
// track to violate the SLO, and a burn of N means the budget disappears N
// times faster than sustainable.

import (
	"sync"

	"loopsched/internal/stats"
)

// sloWindowSize is the number of recent completions kept per tenant.
const sloWindowSize = 256

// Deadline outcome of one completion sample.
const (
	sloNoDeadline uint8 = iota
	sloHit
	sloMiss
)

// sloRing is one tenant's rolling window of completion samples. The slices
// are allocated lazily on the first completion, so registering many tenants
// costs nothing until they run work.
type sloRing struct {
	mu   sync.Mutex
	wait []float64 // submission -> admission, seconds
	run  []float64 // admission -> completion, seconds
	dl   []uint8   // deadline outcome per sample
	idx  int
	n    int
}

func (r *sloRing) add(wait, run float64, dl uint8) {
	r.mu.Lock()
	if r.wait == nil {
		r.wait = make([]float64, sloWindowSize)
		r.run = make([]float64, sloWindowSize)
		r.dl = make([]uint8, sloWindowSize)
	}
	r.wait[r.idx], r.run[r.idx], r.dl[r.idx] = wait, run, dl
	r.idx = (r.idx + 1) % sloWindowSize
	if r.n < sloWindowSize {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot copies out the window and tallies the deadline outcomes in it.
func (r *sloRing) snapshot() (wait, run []float64, hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil, nil, 0, 0
	}
	wait = append([]float64(nil), r.wait[:r.n]...)
	run = append([]float64(nil), r.run[:r.n]...)
	for _, d := range r.dl[:r.n] {
		switch d {
		case sloHit:
			hits++
		case sloMiss:
			misses++
		}
	}
	return wait, run, hits, misses
}

// TenantSLO is one tenant's rolling-window SLO snapshot. The JSON field names
// are stable (cmd/loopd serves this struct on /stats and derives the
// loopd_slo_* metrics from it).
type TenantSLO struct {
	// Target is the deadline-hit objective the burn rate is measured against
	// (Config.SLOTarget).
	Target float64 `json:"target"`
	// WindowJobs is the number of completions in the rolling window;
	// DeadlineJobs of them carried a deadline and DeadlineHits of those met
	// it.
	WindowJobs   int `json:"window_jobs"`
	DeadlineJobs int `json:"deadline_jobs"`
	DeadlineHits int `json:"deadline_hits"`
	// HitRatio is DeadlineHits / DeadlineJobs over the window (1 when the
	// window has no deadline jobs: an unexercised SLO is not a violated one).
	HitRatio float64 `json:"hit_ratio"`
	// BurnRate is the windowed miss fraction divided by the error budget
	// (1 - Target): 0 when nothing missed, 1.0 when the tenant burns budget
	// exactly at the sustainable rate, above 1 when on track to violate.
	BurnRate float64 `json:"burn_rate"`
	// Wait (submission to admission) and run (admission to completion)
	// quantiles over the window, in seconds.
	WaitP50 float64 `json:"wait_p50_seconds"`
	WaitP95 float64 `json:"wait_p95_seconds"`
	WaitP99 float64 `json:"wait_p99_seconds"`
	RunP50  float64 `json:"run_p50_seconds"`
	RunP95  float64 `json:"run_p95_seconds"`
	RunP99  float64 `json:"run_p99_seconds"`
}

// buildTenantSLO derives the SLO snapshot from a window (nil when the window
// is empty). Quantiles sort an internal copy, so unsorted concatenations of
// shard windows are fine as input.
func buildTenantSLO(target float64, wait, run []float64, hits, misses int) *TenantSLO {
	if len(wait) == 0 {
		return nil
	}
	slo := &TenantSLO{
		Target:       target,
		WindowJobs:   len(wait),
		DeadlineJobs: hits + misses,
		DeadlineHits: hits,
		HitRatio:     1,
	}
	if slo.DeadlineJobs > 0 {
		slo.HitRatio = float64(hits) / float64(slo.DeadlineJobs)
		if budget := 1 - target; budget > 0 {
			slo.BurnRate = (1 - slo.HitRatio) / budget
		}
	}
	wq := stats.Quantiles(wait, 0.5, 0.95, 0.99)
	rq := stats.Quantiles(run, 0.5, 0.95, 0.99)
	slo.WaitP50, slo.WaitP95, slo.WaitP99 = wq[0], wq[1], wq[2]
	slo.RunP50, slo.RunP95, slo.RunP99 = rq[0], rq[1], rq[2]
	return slo
}
