package jobs

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsConsistentUnderStealing is the regression test for torn Stats
// snapshots: a cross-shard steal moves a queued job's depth from the victim
// to the thief in two separate atomic updates, and a snapshot walking the
// shards in between either dropped the job or — when the walk visits the
// thief after the victim — counted it twice, breaking QueueDepth <=
// Submitted - Completed - Canceled. The migration seqlock makes the walk
// retry instead. Run under -race: the monitor also doubles as a data-race
// probe against the migration path.
func TestStatsConsistentUnderStealing(t *testing.T) {
	p := testSharded(t, ShardedConfig{
		Config:        Config{Workers: 2},
		Shards:        2,
		StealInterval: 20 * time.Microsecond, // maximise migration traffic
	})
	if p.Shards() != 2 {
		t.Skipf("got %d shards, need 2", p.Shards())
	}

	stop := make(chan struct{})
	var torn atomic.Int64
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats()
			outstanding := st.Total.Submitted - st.Total.Completed - st.Total.Canceled
			if int64(st.Total.QueueDepth) > outstanding {
				torn.Add(1)
				t.Errorf("torn snapshot: queue depth %d exceeds outstanding jobs %d (a migrating job was counted on both shards)",
					st.Total.QueueDepth, outstanding)
			}
			if st.Total.QueueDepth < 0 {
				t.Errorf("torn snapshot: negative queue depth %d", st.Total.QueueDepth)
			}
		}
	}()

	// Pin every submission to shard 0 and keep it saturated, so idle shard 1
	// continuously steals queued jobs; no job is ever canceled, so the
	// monitored inequality is exact up to the steal window under test.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		var batch []*Job
		for i := 0; i < 16; i++ {
			j, err := p.SubmitTo(0, Request{N: 64, Body: func(w, lo, hi int) {}})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, j)
		}
		for _, j := range batch {
			if _, err := j.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	<-monitorDone

	if st := p.Stats(); st.Total.Stolen == 0 {
		t.Log("warning: no steals occurred; the migration window was not exercised on this machine")
	}
}
