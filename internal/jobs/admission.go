package jobs

// admission.go is the overload-protection layer in front of the fair queue:
// it decides, per submission, whether the scheduler should accept the job at
// all — before any queue slot, fair-queue push or worker is spent on it.
// Three mechanisms compose, each individually opt-in through Config:
//
//  1. Deadline feasibility (Config.ShedInfeasible): at submit the scheduler
//     estimates when the job could start (queue depth times the measured
//     per-job service time from the lastRunNanos EWMA, divided across the
//     team) and how long it would run; a job whose estimated completion
//     already overshoots its deadline is rejected with ErrInfeasible and a
//     suggested retry delay instead of being admitted-to-miss. A cold
//     scheduler (no completions yet) admits everything — shedding needs a
//     measured service rate, not a guess.
//
//  2. Bounded-wait admission (Config.MaxWait, Request.NoWait): the
//     QueueDepth gate, previously an unbounded condition-variable wait,
//     rejects with ErrBacklogged once the configured wait expires (or
//     immediately under NoWait). The uncontended reserve stays the same two
//     mutex operations; the timer exists only on the contended path.
//
//  3. Per-tenant circuit breakers (Config.BreakerBurnRate): each tenant's
//     deadline outcomes feed a miss-fraction EWMA; when the implied SLO burn
//     rate crosses the limit while the tenant holds a meaningful share of
//     the queue, the tenant's breaker opens and its submissions are shed at
//     intake with ErrBreakerOpen — in a Sharded pool before cross-shard
//     routing. After a cooldown the breaker half-opens and admits one probe
//     per probe interval; a probe that hits its deadline closes the breaker,
//     a miss re-opens it. The queue-share guard keeps a tenant that misses
//     deadlines through no fault of the queue (tiny deadlines on an idle
//     pool) from being locked out: breakers open only when the tenant is
//     actually crowding the pool.
//
// All rejections carry an *OverloadError wrapping the sentinel, so callers
// branch with errors.Is and read the suggested retry via SuggestedRetry.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the admission layer. Each arrives wrapped in an
// *OverloadError carrying a suggested retry delay.
var (
	// ErrInfeasible reports that the job's deadline could not be met even if
	// everything queued ahead of it drained at the measured service rate, so
	// admitting it would only manufacture a deadline miss.
	ErrInfeasible = errors.New("jobs: deadline infeasible at admission")
	// ErrBacklogged reports that the admission queue stayed full past the
	// configured MaxWait (or was full on a NoWait submission).
	ErrBacklogged = errors.New("jobs: admission queue backlogged")
	// ErrBreakerOpen reports that the tenant's circuit breaker is open: the
	// tenant's recent deadline outcomes burned its SLO budget faster than the
	// configured limit while it held a meaningful share of the queue.
	ErrBreakerOpen = errors.New("jobs: tenant circuit breaker open")
)

// OverloadError wraps an admission rejection with the delay after which a
// retry has a realistic chance: the estimated queue drain for ErrInfeasible
// and ErrBacklogged, the remaining cooldown for ErrBreakerOpen. errors.Is
// matches the wrapped sentinel.
type OverloadError struct {
	Err        error
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.RetryAfter)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *OverloadError) Unwrap() error { return e.Err }

// SuggestedRetry extracts the suggested retry delay from an admission
// rejection. It reports false for errors that did not come from the
// admission layer.
func SuggestedRetry(err error) (time.Duration, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// Breaker states, in escalation order. The zero value is closed, so a fresh
// tenant admits.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps a breaker state to its stable /stats string.
func breakerStateName(state int32) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerEWMAShift is the miss-fraction EWMA weight: new = old + (x-old)/16.
// Sixteen samples of history smooths single misses without making recovery
// detection sluggish.
const breakerEWMAShift = 16

// tenantAdmission is one tenant's admission-layer account: breaker state
// plus the shed counters. Everything is atomic — allow runs on the submit
// path and recordOutcome on completing workers, with no lock between them.
type tenantAdmission struct {
	// state is the breaker state (breakerClosed/Open/HalfOpen).
	state atomic.Int32
	// until is a unixnano timestamp doing double duty: while open it is the
	// cooldown expiry (when the breaker may half-open); while half-open it is
	// the earliest time the next probe may be admitted. The half-open probe
	// is claimed by CAS on this field, so exactly one submission per probe
	// interval gets through regardless of submitter concurrency.
	until atomic.Int64
	// missBits is the deadline-miss-fraction EWMA as float64 bits.
	missBits atomic.Uint64

	shed       atomic.Int64 // breaker rejections
	infeasible atomic.Int64 // feasibility rejections
	backlogged atomic.Int64 // bounded-wait rejections
}

func (t *tenantAdmission) missFraction() float64 {
	return math.Float64frombits(t.missBits.Load())
}

// observe folds one deadline outcome into the miss EWMA and returns the new
// value.
func (t *tenantAdmission) observe(missed bool) float64 {
	x := 0.0
	if missed {
		x = 1.0
	}
	for {
		old := t.missBits.Load()
		v := math.Float64frombits(old)
		nv := v + (x-v)/breakerEWMAShift
		if t.missBits.CompareAndSwap(old, math.Float64bits(nv)) {
			return nv
		}
	}
}

// admissionState is the admission-control state shared by every intake front
// of one pool: all shards of a Sharded pool hold the same instance (installed
// through the unexported Config.admission field, like the steal hooks), so a
// tenant's breaker opens and closes pool-wide, not per shard.
type admissionState struct {
	// burnLimit is Config.BreakerBurnRate; <= 0 disables the breakers (allow
	// admits unconditionally without touching the tenant map).
	burnLimit float64
	// minShare is the queue-share guard: a breaker opens only while the
	// tenant holds at least this fraction of the queued jobs.
	minShare float64
	// cooldown is the open duration before the breaker half-opens; probes are
	// paced at a quarter of it.
	cooldown time.Duration
	// target is the normalized SLOTarget the burn rate is measured against.
	target float64
	// share reports the named tenant's current fraction of the pool's queued
	// jobs (0 on an empty queue). Set once at construction by whoever owns
	// the pool view (Sharded sums its shards; a standalone scheduler reads
	// its own queue).
	share func(tenant string) float64

	mu      sync.RWMutex
	tenants map[string]*tenantAdmission

	// breakerShed counts breaker rejections pool-wide. In a Sharded pool the
	// check runs before routing, so these sheds belong to no shard and are
	// added to the merged totals directly.
	breakerShed atomic.Int64
}

// newAdmissionState builds the admission state for one pool from its
// normalized config. The share closure is wired by the caller afterwards.
func newAdmissionState(cfg Config) *admissionState {
	return &admissionState{
		burnLimit: cfg.BreakerBurnRate,
		minShare:  cfg.BreakerMinShare,
		cooldown:  cfg.BreakerCooldown,
		target:    cfg.SLOTarget,
		tenants:   make(map[string]*tenantAdmission),
	}
}

// breakersOn reports whether the breaker checks are armed at all; the submit
// path uses it to skip the time.Now call when they are not.
func (a *admissionState) breakersOn() bool { return a != nil && a.burnLimit > 0 }

// get returns the tenant's account or nil; name must be normalized.
func (a *admissionState) get(name string) *tenantAdmission {
	a.mu.RLock()
	t := a.tenants[name]
	a.mu.RUnlock()
	return t
}

// getOrCreate returns (creating if needed) the tenant's account; name must be
// normalized.
func (a *admissionState) getOrCreate(name string) *tenantAdmission {
	if t := a.get(name); t != nil {
		return t
	}
	a.mu.Lock()
	t, ok := a.tenants[name]
	if !ok {
		t = &tenantAdmission{}
		a.tenants[name] = t
	}
	a.mu.Unlock()
	return t
}

// probeInterval is the half-open probe pacing: a quarter of the cooldown,
// floored at a millisecond.
func (a *admissionState) probeInterval() time.Duration {
	iv := a.cooldown / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// allow runs the breaker check for one submission. It reports true to admit;
// false means the submission must be shed with ErrBreakerOpen after the
// returned retry delay. A half-open breaker admits exactly one probe per
// probe interval (claimed by CAS on the pacing timestamp, so concurrent
// submitters cannot leak extra probes) and sheds the rest.
func (a *admissionState) allow(tenant string, now time.Time) (time.Duration, bool) {
	if !a.breakersOn() {
		return 0, true
	}
	t := a.get(tenant)
	if t == nil {
		return 0, true // no deadline history: nothing to break on
	}
	nowN := now.UnixNano()
	for {
		switch t.state.Load() {
		case breakerClosed:
			return 0, true
		case breakerOpen:
			until := t.until.Load()
			if nowN < until {
				t.shed.Add(1)
				a.breakerShed.Add(1)
				return time.Duration(until - nowN), false
			}
			// Cooldown expired: half-open and fall through to the probe
			// pacing below (the loser of the CAS re-reads the new state).
			t.state.CompareAndSwap(breakerOpen, breakerHalfOpen)
		case breakerHalfOpen:
			next := t.until.Load()
			if nowN < next {
				t.shed.Add(1)
				a.breakerShed.Add(1)
				return time.Duration(next - nowN), false
			}
			if t.until.CompareAndSwap(next, nowN+int64(a.probeInterval())) {
				return 0, true // this submission is the probe
			}
		}
	}
}

// recordOutcome feeds one completed deadline job's outcome into the tenant's
// breaker. Called from the completion path (recordCompletion), so it must be
// cheap: one EWMA CAS plus a state check; the queue-share closure runs only
// at the moment a closed breaker's burn rate crosses the limit.
func (a *admissionState) recordOutcome(tenant string, missed bool, now time.Time) {
	if !a.breakersOn() {
		return
	}
	t := a.getOrCreate(tenant)
	ewma := t.observe(missed)
	switch t.state.Load() {
	case breakerClosed:
		budget := 1 - a.target
		if budget <= 0 {
			return
		}
		if ewma/budget < a.burnLimit {
			return
		}
		if a.share != nil && a.share(tenant) < a.minShare {
			// The tenant misses deadlines but is not crowding the queue:
			// shedding it would not help anyone else. Leave the breaker
			// closed (the feasibility check handles hopeless deadlines).
			return
		}
		// until is published before the state flip so an allow that observes
		// the open state never reads a stale cooldown.
		t.until.Store(now.Add(a.cooldown).UnixNano())
		t.state.CompareAndSwap(breakerClosed, breakerOpen)
	case breakerHalfOpen:
		// Outcome during the probe window: a hit closes the breaker (and
		// resets the EWMA so the old miss history cannot re-open it on the
		// next sample); a miss re-opens for another cooldown.
		if missed {
			t.until.Store(now.Add(a.cooldown).UnixNano())
			t.state.Store(breakerOpen)
		} else {
			t.missBits.Store(0)
			t.state.Store(breakerClosed)
		}
	}
}

// noteInfeasible charges one feasibility rejection to the tenant.
func (a *admissionState) noteInfeasible(tenant string) {
	if a == nil {
		return
	}
	a.getOrCreate(tenant).infeasible.Add(1)
}

// noteBacklogged charges one bounded-wait rejection to the tenant.
func (a *admissionState) noteBacklogged(tenant string) {
	if a == nil {
		return
	}
	a.getOrCreate(tenant).backlogged.Add(1)
}

// breakerStateOf returns the tenant's breaker state string, or "" when the
// breakers are disabled or the tenant has no admission history.
func (a *admissionState) breakerStateOf(tenant string) string {
	if !a.breakersOn() {
		return ""
	}
	t := a.get(tenant)
	if t == nil {
		return ""
	}
	return breakerStateName(t.state.Load())
}

// fillTenantStats merges the admission-layer per-tenant counters and breaker
// states into a Stats snapshot's tenant map, creating entries for tenants the
// fair queue has never accounted (every submission shed at intake). Called
// only on top-level snapshots — a Sharded pool's merged totals, or a
// standalone scheduler's Stats — never per shard, so pool-wide counters are
// not multiplied by the shard count.
func (a *admissionState) fillTenantStats(tenants map[string]TenantStats) map[string]TenantStats {
	if a == nil {
		return tenants
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	for name, t := range a.tenants {
		shed := t.shed.Load() + t.infeasible.Load() + t.backlogged.Load()
		state := ""
		if a.burnLimit > 0 {
			state = breakerStateName(t.state.Load())
		}
		if shed == 0 && state == "" {
			continue
		}
		if tenants == nil {
			tenants = make(map[string]TenantStats)
		}
		ts := tenants[name]
		ts.ShedTotal = shed
		ts.InfeasibleTotal = t.infeasible.Load()
		ts.BackloggedTotal = t.backlogged.Load()
		ts.BreakerState = state
		tenants[name] = ts
	}
	return tenants
}

// infeasibleDelay is the feasibility estimator: with the queue's current
// depth draining at the measured per-job service time (the lastRunNanos
// EWMA) across the team, could a job submitted now still meet its deadline?
// It returns the suggested retry delay and true when it could not. A cold
// scheduler (estRun == 0) admits unconditionally: shedding needs a measured
// rate.
func (s *Scheduler) infeasibleDelay(deadline, now time.Time) (time.Duration, bool) {
	estRun := s.lastRunNanos.Load()
	if estRun <= 0 {
		return 0, false
	}
	estStart := time.Duration(estRun * s.depth.Load() / int64(s.p))
	if !now.Add(estStart + time.Duration(estRun)).After(deadline) {
		return 0, false
	}
	retry := estStart
	if retry < time.Millisecond {
		retry = time.Millisecond
	}
	return retry, true
}

// retryHint estimates how long until one queue slot frees: the measured
// per-job service time divided across the team, floored at a millisecond.
// Used as the suggested retry of ErrBacklogged.
func (s *Scheduler) retryHint() time.Duration {
	hint := time.Duration(s.lastRunNanos.Load() / int64(s.p))
	if hint < time.Millisecond {
		hint = time.Millisecond
	}
	return hint
}

// backloggedError builds the bounded-wait rejection.
func (s *Scheduler) backloggedError() error {
	return &OverloadError{Err: ErrBacklogged, RetryAfter: s.retryHint()}
}
