package jobs

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/pool"
	"loopsched/internal/stats"
	"loopsched/internal/trace"
)

// Config configures a jobs scheduler.
type Config struct {
	// Workers is the shared team size P; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; Submit blocks once this many
	// jobs are waiting (backpressure instead of unbounded memory growth).
	// <= 0 selects 1024.
	QueueDepth int
	// MaxWorkersPerJob caps every job's sub-team size; <= 0 means no cap
	// (a lone job may use the whole team).
	MaxWorkersPerJob int
	// DefaultGrain is the self-scheduling chunk size used by elastic jobs
	// that do not set Request.Grain; <= 0 selects a per-job heuristic
	// (roughly 8 chunks per team member).
	DefaultGrain int
	// DisableElastic freezes every sub-team at admission and partitions each
	// job statically — the paper's rigid teams. It exists for comparison
	// (the convoy and straggler benchmarks measure elastic against it) and
	// for callers that require the static-block body contract.
	DisableElastic bool
	// TenantWeights pre-registers tenant accounts with fair-share weights
	// (values < 1 are clamped to 1). Tenants not listed here are created on
	// first use with weight 1; weights can be changed at runtime with
	// SetTenantWeight.
	TenantWeights map[string]int
	// DisableFair replaces the weighted-fair admission policy with the
	// original single FIFO: tenants, weights, priorities and deadlines are
	// ignored for ordering (the tenant accounts still meter served work) and
	// the dispatcher never posts preemption targets. It exists for
	// comparison — the fairshare benchmark measures the policy against it.
	DisableFair bool
	// LatencyWindow is the number of recent completions kept for the latency
	// percentiles in Stats; <= 0 selects 1024.
	LatencyWindow int
	// LockOSThread locks the workers to OS threads (benchmark fidelity);
	// serving daemons and tests usually leave it false so idle workers are
	// cheap goroutines.
	LockOSThread bool
	// Tracer, when non-nil, records every job's lifecycle transitions
	// (submitted, admitted, dispatched, grown, peeled, preempted, stolen,
	// joined, ...) and per-chunk-wave participant stints as spans, and fans
	// the event stream out to subscribers. Nil runs untraced: every hook
	// compiles down to one nil check, keeping the fair-scheduler hot path
	// unchanged. Shards of a Sharded pool share the pool's tracer.
	Tracer *trace.Tracer
	// SLOTarget is the per-tenant deadline-hit objective used by the SLO
	// accounting (see slo.go): the burn rate reported per tenant is the
	// windowed miss fraction divided by the budget (1 - SLOTarget). Outside
	// (0, 1) selects 0.99.
	SLOTarget float64
	// Name is used in diagnostics.
	Name string

	// shard is this scheduler's index within its owning Sharded pool (0 for
	// standalone schedulers); carried on every trace event.
	shard int

	// hooks connects this scheduler to sibling shards of a Sharded pool.
	// With hooks set, a dispatcher that runs out of local work steals whole
	// queued jobs from siblings and lends idle workers to their running
	// elastic jobs. Nil for standalone schedulers.
	hooks *stealHooks

	// pool points back to the owning Sharded pool, so blocked jobs released
	// by an upstream's join wave can be admitted to the least-loaded shard
	// at release time instead of the shard that happened to take the
	// submission. Nil for standalone schedulers.
	pool *Sharded
}

// stealHooks is the cross-shard cooperation contract a Sharded pool installs
// on each of its shards. Both callbacks run on the shard's dispatcher
// goroutine; they must be non-blocking and may return nil.
type stealHooks struct {
	// totalP is the worker count of the whole sharded pool: the participant
	// cap of an elastic job, which lent workers from sibling shards may grow
	// past the home shard's own size.
	totalP int
	// interval throttles how often an idle dispatcher re-scans its siblings
	// when it has nothing else to wake for.
	interval time.Duration
	// steal returns a whole queued job pulled from a sibling shard, already
	// re-homed onto the calling scheduler, or nil.
	steal func(thief *Scheduler) *Job
	// lend returns a running under-provisioned elastic job on a sibling
	// shard that can absorb the caller's idle workers, or nil.
	lend func(thief *Scheduler) *Job
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	if c.Name == "" {
		c.Name = "jobs"
	}
}

// Scheduler multiplexes parallel-loop jobs from many concurrent submitters
// onto one persistent worker team. All methods are safe for concurrent use.
type Scheduler struct {
	cfg  Config
	p    int
	team *pool.Team

	// queue is the admission *intake*: submitters hand jobs to the
	// dispatcher through it, and the dispatcher drains it into fq, the
	// weighted-fair multi-queue that decides admission order. The bounded
	// submitted-but-unadmitted population is enforced by the queuedHeld gate
	// below, not by the channel capacity.
	queue chan *Job
	// fq is the admission policy: per-tenant accounts, weights, priorities,
	// deadlines (see fair.go). Thread-safe — sibling shards steal from it
	// directly.
	fq *fairQueue
	// free carries the ids of workers returning to the dispatcher after
	// finishing an assignment; the dispatcher is its only consumer while
	// running (Close drains it at teardown).
	free chan int
	// assign carries at most one in-flight assignment per worker: the
	// dispatcher's release wave is k buffered sends and never blocks.
	assign []chan *assignment

	submitMu sync.RWMutex
	closed   bool
	// releaseClosed closes the release window: set (under submitMu) only
	// after the blocked gauge drained to zero during Close, strictly before
	// the queue channel is closed. acceptReleased completes its enqueue
	// under the read lock, so no release can ever race the channel close.
	releaseClosed  bool
	dispatcherDone chan struct{}
	closeDone      chan struct{}

	// overflow absorbs released dependents when the admission queue channel
	// is momentarily full: the release path runs on completing workers and
	// must never block on the queue (all P workers blocked on a full queue
	// while the dispatcher waits for a free worker would deadlock). The
	// list is bounded even so, because the blocked population feeding it is
	// capped by QueueDepth at submission (the gate below). overflowC wakes
	// the dispatcher with the usual buffered-signal pattern.
	overflowMu sync.Mutex
	overflow   []*Job
	overflowC  chan struct{}

	// gateMu/gateCond/blockedHeld apply QueueDepth backpressure to
	// dependent submissions: a blocked job never enters the queue channel,
	// so without this gate a pipeline fan-out could park unbounded memory
	// behind one upstream. blockedHeld mirrors the blocked gauge under a
	// mutex so waiters can sleep on the condition. queuedHeld applies the
	// same bound to the queued population now that the dispatcher drains
	// the intake channel eagerly into the fair queue: every queued job
	// holds one slot, reserved at Submit (blocking at the cap) and released
	// when the job is admitted, canceled, or stolen away.
	gateMu      sync.Mutex
	gateCond    *sync.Cond
	blockedHeld int
	queuedHeld  int

	// growSet is the shared registry of running elastic jobs, maintained only
	// when steal hooks are installed: sibling shards read it to find jobs
	// worth lending workers to. The dispatcher's private growable map serves
	// local growth; this set serves cross-shard lending.
	growMu  sync.Mutex
	growSet map[*Job]struct{}

	depth          atomic.Int64
	running        atomic.Int64
	busy           atomic.Int64
	submitted      atomic.Int64
	completed      atomic.Int64
	canceled       atomic.Int64
	itersDone      atomic.Int64
	grown          atomic.Int64
	peeled         atomic.Int64
	stolen         atomic.Int64
	lent           atomic.Int64
	blocked        atomic.Int64
	released       atomic.Int64
	depCanceled    atomic.Int64
	preempted      atomic.Int64
	deadlineMissed atomic.Int64
	// lastRunNanos is an EWMA of recent job run times, feeding the
	// deadline-risk horizon of the preemption policy.
	lastRunNanos atomic.Int64

	lat latRing
}

// New creates and starts a jobs scheduler.
func New(cfg Config) *Scheduler {
	cfg.normalize()
	s := &Scheduler{
		cfg:            cfg,
		p:              cfg.Workers,
		queue:          make(chan *Job, cfg.QueueDepth),
		free:           make(chan int, cfg.Workers),
		assign:         make([]chan *assignment, cfg.Workers),
		dispatcherDone: make(chan struct{}),
		closeDone:      make(chan struct{}),
		overflowC:      make(chan struct{}, 1),
		fq:             newFairQueue(cfg.DisableFair, cfg.TenantWeights),
	}
	if cfg.hooks != nil {
		s.growSet = make(map[*Job]struct{})
	}
	s.gateCond = sync.NewCond(&s.gateMu)
	s.lat.init(cfg.LatencyWindow)
	for w := 0; w < s.p; w++ {
		s.assign[w] = make(chan *assignment, 1)
		s.free <- w
	}
	s.team = pool.New(pool.Config{Workers: s.p, LockOSThread: cfg.LockOSThread, Name: cfg.Name})
	s.team.StartAll(s.worker)
	go s.dispatch()
	return s
}

// P returns the team size.
func (s *Scheduler) P() int { return s.p }

// Name returns the scheduler's diagnostic name.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Submit enqueues a job and returns immediately. It blocks only when the
// admission queue is full. Submit is safe from any number of goroutines.
// A request with dependencies (Request.After) is parked in the Blocked state
// and enters the admission queue only when its last upstream completes.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	return s.submit(req, s.cfg.pool)
}

// submitPinned is Submit for shard-pinned jobs: a blocked job released by
// its upstreams re-enters this scheduler's own queue instead of routing to
// the least-loaded shard, preserving the pin.
func (s *Scheduler) submitPinned(req Request) (*Job, error) {
	return s.submit(req, nil)
}

func (s *Scheduler) submit(req Request, pool *Sharded) (*Job, error) {
	switch {
	case req.Body == nil && req.RBody == nil:
		return nil, errors.New("jobs: request needs a Body or an RBody")
	case req.Body != nil && req.RBody != nil:
		return nil, errors.New("jobs: request must set exactly one of Body and RBody")
	case req.RBody != nil && req.Combine == nil:
		return nil, errors.New("jobs: reducing request needs a Combine")
	}
	for _, u := range req.After {
		if u == nil {
			return nil, errors.New("jobs: nil upstream in After")
		}
	}
	if len(req.After) > 0 {
		if err := checkCycle(req.After); err != nil {
			return nil, err
		}
	}
	j := &Job{req: req, done: make(chan struct{}), s: s, home: s, submitted: time.Now(), acyclic: true,
		tenant: tenantName(req.Tenant), prio: req.Priority, deadline: req.Deadline}
	if s.cfg.Tracer != nil {
		j.tr = s.cfg.Tracer.Begin(j.tenant, req.Label, req.Priority)
		j.tr.Event(trace.EvSubmitted, s.cfg.shard, 0, "")
	}
	if len(req.After) > 0 {
		// Copy the edge list so later caller mutations of the request slice
		// cannot corrupt the verified graph, and drop the request's own
		// reference so depDone's ancestry-unpinning actually frees the
		// chain (nothing reads req.After after this point).
		j.after = append([]*Job(nil), req.After...)
		j.req.After = nil
		j.pool = pool
		// The same QueueDepth backpressure Submit applies through the queue
		// channel, applied to the blocked population: sleeps until a slot
		// frees (an earlier dependent released or canceled). Held locks
		// would block Close, so the wait happens before the read lock.
		s.reserveBlockedSlot()
		s.submitMu.RLock()
		if s.closed {
			s.submitMu.RUnlock()
			s.signalBlockedFreed()
			return nil, ErrClosed
		}
		s.submitted.Add(1)
		s.fq.account(j.tenant).submitted.Add(1)
		// The blocked gauge is raised under the read lock: Close's
		// write-lock barrier guarantees its blocked drain starts only after
		// observing this job.
		s.blocked.Add(1)
		s.submitMu.RUnlock()
		j.state.Store(int32(Blocked))
		j.tr.Event(trace.EvBlocked, s.cfg.shard, 0, "")
		j.registerDeps() // may release (or cancel) the job immediately
		return j, nil
	}
	if req.N <= 0 {
		s.submitMu.RLock()
		defer s.submitMu.RUnlock()
		if s.closed {
			return nil, ErrClosed
		}
		s.submitted.Add(1)
		s.fq.account(j.tenant).submitted.Add(1)
		// Degenerate loop: complete inline, never queued. A reducing job
		// still yields its identity. The trace still passes through the
		// canonical admitted -> dispatched -> joined order.
		j.state.Store(int32(Running))
		j.started = j.submitted
		if req.RBody != nil {
			j.partials = make([]paddedPartial, 1)
			j.partials[0].v = req.Identity
		}
		if j.tr != nil {
			j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
			j.tr.Event(trace.EvDispatched, s.cfg.shard, 0, "degenerate")
		}
		j.complete()
		return j, nil
	}
	// QueueDepth backpressure on the queued population: the dispatcher
	// drains the intake channel eagerly into the fair queue, so the channel
	// capacity no longer bounds the submitted-but-unadmitted jobs — this
	// slot gate does. A held lock would block Close, so the wait happens
	// before the read lock.
	s.reserveQueueSlot()
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed {
		s.releaseQueueSlot()
		return nil, ErrClosed
	}
	s.submitted.Add(1)
	s.fq.account(j.tenant).submitted.Add(1)
	s.depth.Add(1)
	// Admitted to the intake before the channel send, so the event is always
	// published before the dispatcher can emit the job's dispatched event.
	j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
	s.queue <- j
	return j, nil
}

// acceptReleased admits a blocked job whose dependencies all completed into
// this scheduler's admission queue. It reports false only when the release
// window has closed (teardown finished draining this scheduler's blocked
// jobs); the caller then falls back to the job's home scheduler, whose
// window is provably still open. Runs on the completing upstream's worker,
// so it must never block on the queue channel.
func (s *Scheduler) acceptReleased(j *Job) bool {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.releaseClosed {
		return false
	}
	home := j.home
	// The release is a migration for snapshot purposes: between raising
	// this scheduler's depth and dropping the home's blocked gauge, a
	// pool-wide Stats walk would count the job both queued and blocked, so
	// the window is bracketed by the same seqlock that guards steals.
	if p := s.cfg.pool; p != nil {
		p.migrateBegin.Add(1)
		defer p.migrateEnd.Add(1)
	}
	// Raise the depth before the state flip so a Cancel racing the fresh
	// Pending state can never drive this scheduler's depth negative, and
	// re-point the job before the flip so that Cancel reads the right
	// scheduler (the CAS publishes both stores). The queued slot is forced
	// (never waited for): this path runs on a completing worker and its
	// population is already bounded by the blocked gate at submission.
	s.depth.Add(1)
	s.forceQueueSlot()
	j.s = s
	if !j.state.CompareAndSwap(int32(Blocked), int32(Pending)) {
		// Canceled while blocked; Cancel already settled the accounting
		// against the home scheduler's blocked gauge.
		s.depth.Add(-1)
		s.releaseQueueSlot()
		return true
	}
	if j.tr != nil {
		j.tr.Event(trace.EvReleased, s.cfg.shard, 0, "")
		j.tr.Event(trace.EvAdmitted, s.cfg.shard, 0, "")
	}
	select {
	case s.queue <- j:
	default:
		// Queue channel full: park the job on the overflow list the
		// dispatcher drains alongside the queue (bounded by the blocked
		// gate at submission).
		s.overflowMu.Lock()
		s.overflow = append(s.overflow, j)
		s.overflowMu.Unlock()
		select {
		case s.overflowC <- struct{}{}:
		default:
		}
	}
	home.blocked.Add(-1)
	home.released.Add(1)
	home.signalBlockedFreed()
	return true
}

// reserveBlockedSlot blocks until the blocked population is below
// QueueDepth and reserves one slot. Slots drain as upstreams complete (or
// cancel), which never depends on the caller, so the wait always ends.
func (s *Scheduler) reserveBlockedSlot() {
	s.gateMu.Lock()
	for s.blockedHeld >= s.cfg.QueueDepth {
		s.gateCond.Wait()
	}
	s.blockedHeld++
	s.gateMu.Unlock()
}

// signalBlockedFreed returns a blocked slot (the job released, canceled, or
// failed submission) and wakes the gate waiters: submitters parked at the
// cap and a Close draining the blocked population. Broadcast, not Signal —
// a lone wakeup could land on a submitter and starve the closer.
func (s *Scheduler) signalBlockedFreed() {
	s.gateMu.Lock()
	s.blockedHeld--
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
}

// reserveQueueSlot blocks until the queued population is below QueueDepth
// and reserves one slot. Slots drain as the dispatcher admits jobs (or as
// they are canceled), which never depends on the caller, so the wait always
// ends.
func (s *Scheduler) reserveQueueSlot() {
	s.gateMu.Lock()
	for s.queuedHeld >= s.cfg.QueueDepth {
		s.gateCond.Wait()
	}
	s.queuedHeld++
	s.gateMu.Unlock()
}

// forceQueueSlot takes a queued slot without waiting, for paths that must
// not block (released dependents, jobs stolen in from a sibling shard). The
// population may transiently exceed QueueDepth; both sources are bounded
// elsewhere (the blocked gate, the victim's own slot count).
func (s *Scheduler) forceQueueSlot() {
	s.gateMu.Lock()
	s.queuedHeld++
	s.gateMu.Unlock()
}

// releaseQueueSlot returns a queued slot (the job was admitted, canceled,
// stolen away, or failed submission) and wakes gate waiters.
func (s *Scheduler) releaseQueueSlot() {
	s.gateMu.Lock()
	s.queuedHeld--
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
}

// takeOverflow drains the released-job overflow list.
func (s *Scheduler) takeOverflow() []*Job {
	s.overflowMu.Lock()
	jobs := s.overflow
	s.overflow = nil
	s.overflowMu.Unlock()
	return jobs
}

// teamSize picks the sub-team size a job is admitted on: bounded by the
// scheduler-wide and per-job caps, by the job's size (never fewer than Grain
// iterations per worker), and by the queue pressure — with waiting jobs
// behind this one, each admitted job takes only its fair share of the team
// so concurrent tenants run side by side instead of serialising. Elastic
// jobs later grow past this initial size (up to their caps) when workers
// idle, and shrink below it under queue pressure.
func (s *Scheduler) teamSize(j *Job, waiting int) int {
	grain := j.req.Grain
	if grain <= 0 {
		grain = 1
	}
	k := s.capTeam(j, grain)
	if fair := s.p / (waiting + 1); k > fair {
		k = fair
	}
	if k < 1 {
		k = 1
	}
	return k
}

// capTeam is the shared worker-cap policy: the base worker count clamped by
// the scheduler-wide and per-job caps and by the number of grain-sized
// pieces of the iteration space (a worker beyond one-per-piece could never
// claim work), floored at 1.
func (s *Scheduler) capTeam(j *Job, grain int) int {
	return s.capTeamBase(s.p, j, grain)
}

func (s *Scheduler) capTeamBase(k int, j *Job, grain int) int {
	if s.cfg.MaxWorkersPerJob > 0 && k > s.cfg.MaxWorkersPerJob {
		k = s.cfg.MaxWorkersPerJob
	}
	if j.req.MaxWorkers > 0 && k > j.req.MaxWorkers {
		k = j.req.MaxWorkers
	}
	if bySize := (j.req.N + grain - 1) / grain; k > bySize {
		k = bySize
	}
	if k < 1 {
		k = 1
	}
	return k
}

// chunkFor picks the self-scheduling chunk size of an elastic job: the
// request's Grain, the scheduler default, or a heuristic targeting ~8 chunks
// per team member (enough slack for balancing and peeling without measurable
// claim traffic).
func (s *Scheduler) chunkFor(j *Job) int {
	if j.req.Grain > 0 {
		return j.req.Grain
	}
	if s.cfg.DefaultGrain > 0 {
		return s.cfg.DefaultGrain
	}
	chunk := j.req.N / (8 * s.p)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// maxTeam is the hard participant cap of an elastic job: the shared cap
// policy evaluated at the job's actual chunk size. In a sharded pool the
// base is the whole pool's worker count, so sibling shards can lend workers
// past the home shard's own size.
func (s *Scheduler) maxTeam(j *Job, chunk int) int {
	base := s.p
	if s.cfg.hooks != nil && s.cfg.hooks.totalP > base {
		base = s.cfg.hooks.totalP
	}
	return s.capTeamBase(base, j, chunk)
}

// elasticFor reports whether a job takes the elastic path. Non-commutative
// reductions keep the rigid path: their fold order (sub-worker order over
// static blocks) is part of the result.
func (s *Scheduler) elasticFor(j *Job) bool {
	if s.cfg.DisableElastic {
		return false
	}
	return j.req.RBody == nil || j.req.Commutative
}

// dispatch is the admission loop: a single event loop over two channels (the
// intake queue and returning workers) that drains submissions into the fair
// queue, admits jobs in policy order (priority class, then weighted-fair
// stride arbitration between tenants, EDF within a class), performs each
// fork-side release wave (one buffered channel send per chosen worker; like
// the paper's release half-barrier, the dispatcher never waits for a
// sub-team), posts chunk-granular preemption targets on running jobs when
// tenants wait with no idle worker, and — when no tenant is waiting —
// re-molds idle workers onto running elastic jobs that still have unclaimed
// chunks. With steal hooks installed, a dispatcher whose shard has gone
// fully idle pulls whole queued jobs from sibling shards and lends leftover
// workers to their running elastic jobs, waking every hooks.interval to
// re-scan.
func (s *Scheduler) dispatch() {
	defer close(s.dispatcherDone)
	var idle []int                      // workers held by the dispatcher
	growable := make(map[*Job]struct{}) // running elastic jobs
	queue := s.queue
	var stealTimer *time.Timer
	var stealC <-chan time.Time
	// emptyScans backs the re-scan period off exponentially (up to 64x the
	// configured interval) while consecutive sibling scans find nothing, so
	// a pool idling at rest does not busy-wake every shard 5000 times a
	// second; any local traffic or successful steal resets it.
	emptyScans := 0
	if s.cfg.hooks != nil {
		// go.mod declares go >= 1.23, so the timer channel is synchronous:
		// Stop and Reset guarantee no stale expiry is ever received, and no
		// drain dance is needed around either.
		stealTimer = time.NewTimer(time.Hour)
		stealTimer.Stop()
		defer stealTimer.Stop()
	}
	for {
		// Opportunistically collect every worker that has already returned
		// and drain the intake channel and released-dependent overflow into
		// the fair queue, so admission sees the largest possible idle set
		// and the full policy picture. The queued population stays bounded
		// by the queuedHeld slot gate at submission.
		qc := queue
		for collecting := true; collecting; {
			select {
			case id := <-s.free:
				idle = append(idle, id)
			case j, ok := <-qc:
				if !ok {
					queue, qc = nil, nil
					continue
				}
				s.fq.push(j)
			case <-s.overflowC:
				for _, j := range s.takeOverflow() {
					s.fq.push(j)
				}
			default:
				collecting = false
			}
		}
		for j := range growable {
			if j.State() != Running || j.cursor.Remaining() == 0 {
				delete(growable, j)
			}
		}
		for len(idle) > 0 {
			j := s.fq.pop()
			if j == nil {
				break
			}
			idle = s.admit(j, idle, growable)
		}
		if s.fq.len() > 0 {
			// Tenants are waiting and every worker is busy (the admit loop
			// above drained one or the other): post chunk-granular
			// preemption targets on over-share or out-prioritized running
			// elastic jobs, so workers peel between chunks instead of the
			// waiting jobs sitting out whole completions.
			s.preemptForWaiting(growable)
		} else if s.depth.Load() == 0 {
			// No tenant waits anywhere: lift the preemption constraints so
			// running jobs can use the whole team again.
			for j := range growable {
				j.shrinkTo.Store(0)
			}
		}
		// The depth guard closes the race with a tenant that was submitted
		// (depth is incremented before the queue send) but not yet
		// received: a worker that just peeled for that tenant must not be
		// grown straight back onto the job it left.
		if s.fq.len() == 0 && len(idle) > 0 && s.depth.Load() == 0 {
			idle = s.grow(idle, growable)
		}
		// Cross-shard work conservation: with local admission, growth and the
		// queue all exhausted but workers still idle, pull work from sibling
		// shards — first a whole queued job (admitted exactly like a local
		// one), else lend the idle workers to a running under-provisioned
		// elastic job over there.
		if s.cfg.hooks != nil && queue != nil && s.fq.len() == 0 && len(idle) > 0 && s.depth.Load() == 0 {
			if j := s.cfg.hooks.steal(s); j != nil {
				s.stolen.Add(1)
				emptyScans = 0
				s.fq.push(j)
				continue // restart: collect, then admit the stolen job
			}
			if lj := s.cfg.hooks.lend(s); lj != nil {
				emptyScans = 0
				idle = s.lendTo(lj, idle)
			} else if emptyScans < 6 {
				emptyScans++
			}
		}
		// The exit condition must be re-checked here, not only where the
		// closure is observed: admit can empty the fair queue after the
		// queue was seen closed (a canceled job is popped without consuming
		// a worker), and blocking below with both channels dead would hang
		// Close. Released dependents parked on the overflow list count as
		// pending work; no new ones can appear once the queue has closed
		// (the release window shuts strictly first).
		if queue == nil && s.fq.len() == 0 {
			for _, j := range s.takeOverflow() {
				s.fq.push(j)
			}
			if s.fq.len() == 0 {
				break
			}
			continue
		}
		qc = queue
		// With idle workers and siblings to steal from, wake periodically to
		// re-scan instead of blocking until local traffic arrives, at the
		// current backed-off period.
		stealC = nil
		if stealTimer != nil && queue != nil && len(idle) > 0 {
			stealTimer.Reset(s.cfg.hooks.interval << emptyScans)
			stealC = stealTimer.C
		}
		fired := false
		select {
		case j, ok := <-qc:
			if !ok {
				queue = nil
			} else {
				s.fq.push(j)
				emptyScans = 0 // local traffic: scan siblings promptly again
			}
		case id := <-s.free:
			idle = append(idle, id)
		case <-s.overflowC:
			for _, j := range s.takeOverflow() {
				s.fq.push(j)
			}
			emptyScans = 0 // released dependents are local traffic too
		case <-stealC:
			fired = true
		}
		// Quiesce the armed timer; a stale expiry can never be received
		// after Stop under the go1.23+ timer semantics.
		if stealC != nil && !fired {
			stealTimer.Stop()
		}
	}
	// Hand the held workers back so Close can collect the full team.
	for _, id := range idle {
		s.free <- id
	}
}

// preemptForWaiting implements the preemption policy: with jobs waiting and
// the team fully busy, every tenant's weighted share of the team is
// computed over the tenants currently queued or running, and each running
// elastic job whose sub-team exceeds its tenant's per-job allowance gets a
// shrink target posted. The allowance is halved when the best waiting job
// out-prioritizes the victim or carries a deadline at risk, so urgent work
// admits within chunks rather than whole job completions. Participants
// observe the target between chunks (see Job.runElastic) and peel — never
// below one participant, so the victim always completes its join wave.
func (s *Scheduler) preemptForWaiting(growable map[*Job]struct{}) {
	if len(growable) == 0 || s.cfg.DisableFair {
		return
	}
	head := s.fq.peek()
	if head == nil {
		return
	}
	risk := s.deadlineRisk(head)
	runningJobs := make(map[string]int, len(growable))
	for j := range growable {
		runningJobs[j.tenant]++
	}
	shares := s.fq.shares(s.p, runningJobs)
	for j := range growable {
		allowed := shares[j.tenant] / runningJobs[j.tenant]
		if allowed < 1 {
			allowed = 1
		}
		if (head.prio > j.prio || risk) && allowed > 1 {
			allowed = (allowed + 1) / 2
		}
		target := int32(allowed)
		old := j.shrinkTo.Load()
		if old == target {
			continue
		}
		j.shrinkTo.Store(target)
		// Count a preemption decision only when the new target actually
		// constrains the job below its current sub-team and tightens the
		// previous target, so a steady policy is not re-counted every loop.
		if (old == 0 || old > target) && j.active.Load() > target {
			s.preempted.Add(1)
			s.fq.account(j.tenant).preempted.Add(1)
			j.tr.Event(trace.EvPreempted, s.cfg.shard, allowed, "")
		}
	}
}

// deadlineRisk reports whether a waiting job's deadline is close enough
// that waiting for a running job to finish on its own would likely miss it:
// within twice the recent average job run time (floored at 1ms so a cold
// scheduler still honors tight deadlines).
func (s *Scheduler) deadlineRisk(j *Job) bool {
	if j.deadline.IsZero() {
		return false
	}
	horizon := 2 * time.Duration(s.lastRunNanos.Load())
	if horizon < time.Millisecond {
		horizon = time.Millisecond
	}
	return !j.deadline.After(time.Now().Add(horizon))
}

// SetTenantWeight registers (or re-weights) a tenant's fair-share weight;
// weights < 1 are clamped to 1. Safe for concurrent use; takes effect on
// the next admission.
func (s *Scheduler) SetTenantWeight(name string, weight int) {
	s.fq.setWeight(name, weight)
}

// admit molds a sub-team for one popped job from the dispatcher's idle
// workers and performs the release wave. It returns the remaining idle set
// (unchanged when the job was canceled while queued).
func (s *Scheduler) admit(j *Job, idle []int, growable map[*Job]struct{}) []int {
	if !j.state.CompareAndSwap(int32(Pending), int32(Running)) {
		return idle // canceled while queued; Cancel already adjusted depth
	}
	s.depth.Add(-1)
	s.releaseQueueSlot()
	want := s.teamSize(j, int(s.depth.Load()))
	k := len(idle)
	if k > want {
		k = want
	}
	elastic := s.elasticFor(j)
	var bar barrier.HalfPair
	if elastic {
		chunk := s.chunkFor(j)
		maxK := s.maxTeam(j, chunk)
		if k > maxK {
			k = maxK
		}
		j.initElastic(k, chunk, maxK)
		growable[j] = struct{}{}
	} else {
		j.workers.Store(int32(k))
		if j.req.RBody != nil {
			j.partials = make([]paddedPartial, k)
		}
		if k > 1 {
			bar = barrier.NewCentralized(k)
		}
	}
	j.started = time.Now()
	s.running.Add(1)
	j.tr.Event(trace.EvDispatched, s.cfg.shard, k, "")
	for sub := 0; sub < k; sub++ {
		id := idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		a := &assignment{job: j, sub: sub, elastic: elastic}
		if elastic {
			a.sub = <-j.slots
		} else {
			a.k, a.bar = k, bar
		}
		s.assign[id] <- a
	}
	// Publish the job for cross-shard lending only after the release wave:
	// a sibling's lendTo drains j.slots concurrently, and advertising the
	// job earlier could starve the blocking slot receives above, stalling
	// this dispatcher mid-admission.
	if elastic && s.growSet != nil {
		s.growMu.Lock()
		s.growSet[j] = struct{}{}
		s.growMu.Unlock()
	}
	return idle
}

// grow distributes idle workers round-robin over the running elastic jobs
// that can still use them. Called only when no tenant waits for admission,
// so growth never starves a queued job.
func (s *Scheduler) grow(idle []int, growable map[*Job]struct{}) []int {
	for len(idle) > 0 && len(growable) > 0 {
		progressed := false
		for j := range growable {
			if len(idle) == 0 {
				break
			}
			sub, ok := j.tryGrow()
			if !ok {
				continue
			}
			id := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			s.grown.Add(1)
			j.tr.Event(trace.EvGrown, s.cfg.shard, int(j.active.Load()), "")
			s.assign[id] <- &assignment{job: j, sub: sub, elastic: true}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return idle
}

// lendTo distributes idle workers onto a sibling shard's running elastic job
// (the cross-shard analogue of grow). The workers execute foreign chunks but
// stay owned by this scheduler: they return to its free list when they leave
// the job, and they peel as soon as this shard has tenants of its own.
func (s *Scheduler) lendTo(j *Job, idle []int) []int {
	for len(idle) > 0 {
		sub, ok := j.tryGrow()
		if !ok {
			break
		}
		id := idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		s.lent.Add(1)
		j.tr.Event(trace.EvLent, s.cfg.shard, int(j.active.Load()), "")
		s.assign[id] <- &assignment{job: j, sub: sub, elastic: true}
	}
	return idle
}

// stealQueued removes one job from this scheduler's fair queue on behalf of
// a sibling shard, without admitting it. It returns nil when the queue is
// empty. The pop goes through the same weighted-fair policy as local
// admission, so steals respect tenant weights and priorities: the thief
// takes exactly the job the victim would have admitted next. The caller
// owns the returned job and must migrate it (see Sharded.stealFor); the job
// is still in the Pending state and still counted in this scheduler's
// depth. Jobs still in the intake channel are invisible to steals until the
// victim's dispatcher drains them, which it does ahead of any blocking
// wait.
func (s *Scheduler) stealQueued() *Job {
	return s.fq.pop()
}

// lendableJob returns a running elastic job that still has unclaimed work,
// for a sibling shard to lend workers to, or nil. Entries that completed or
// drained their cursor are dropped lazily.
func (s *Scheduler) lendableJob() *Job {
	if s.growSet == nil {
		return nil
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	for j := range s.growSet {
		if j.State() != Running || j.cursor.Remaining() == 0 {
			delete(s.growSet, j)
			continue
		}
		return j
	}
	return nil
}

// worker is the body of every team member: execute one assignment, return to
// the dispatcher, repeat until the scheduler closes.
func (s *Scheduler) worker(id int) {
	for a := range s.assign[id] {
		s.busy.Add(1)
		a.run(s)
		s.busy.Add(-1)
		s.free <- id
	}
}

// recordCompletion updates the aggregate statistics; called by the
// completing worker exactly once per job.
func (s *Scheduler) recordCompletion(j *Job) {
	now := time.Now()
	if s.growSet != nil && j.elastic {
		s.growMu.Lock()
		delete(s.growSet, j)
		s.growMu.Unlock()
	}
	s.completed.Add(1)
	acct := s.fq.account(j.tenant)
	acct.completed.Add(1)
	if j.req.N > 0 {
		s.itersDone.Add(int64(j.req.N))
		acct.iters.Add(int64(j.req.N))
	}
	wait := j.started.Sub(j.submitted)
	acct.waitNanos.Add(int64(wait))
	hadDeadline := !j.deadline.IsZero()
	missed := hadDeadline && now.After(j.deadline)
	if missed {
		s.deadlineMissed.Add(1)
		acct.deadlineMissed.Add(1)
	}
	if hadDeadline {
		acct.deadlineJobs.Add(1)
	}
	if j.workers.Load() > 0 {
		s.running.Add(-1)
	}
	run := now.Sub(j.started)
	acct.runNanos.Add(int64(run))
	// EWMA of recent run times (new = 3/4 old + 1/4 current) for the
	// deadline-risk horizon; last-writer-wins staleness is acceptable.
	s.lastRunNanos.Store(s.lastRunNanos.Load() - s.lastRunNanos.Load()/4 + int64(run)/4)
	s.lat.add(now.Sub(j.submitted).Seconds(), run.Seconds())
	// SLO window sample: deadline outcome plus the wait/run pair feeding the
	// per-tenant rolling quantiles (see slo.go).
	dl := sloNoDeadline
	if hadDeadline {
		if missed {
			dl = sloMiss
		} else {
			dl = sloHit
		}
	}
	acct.slo.add(wait.Seconds(), run.Seconds(), dl)
	if j.tr != nil {
		detail := ""
		if missed {
			detail = "deadline_missed"
		}
		j.tr.Event(trace.EvJoined, s.cfg.shard, int(j.workers.Load()), detail)
	}
}

// Close drains the admission queue, waits for every in-flight job and
// releases the workers. Jobs submitted before Close complete normally —
// including blocked dependents, which are drained before the queue closes
// (provided their upstreams belong to this pool or complete independently);
// Submit fails with ErrClosed afterwards. Close is idempotent and safe to
// call from several goroutines at once: every call returns only after the
// teardown has fully completed, whichever call performed it.
func (s *Scheduler) Close() {
	s.submitMu.Lock()
	if s.closed {
		s.submitMu.Unlock()
		<-s.closeDone
		return
	}
	s.closed = true
	s.submitMu.Unlock()
	// Blocked jobs drain first: their upstreams are already queued or
	// running (here or on a sibling shard), so every one of them releases
	// or cancels in bounded time; every retirement broadcasts the gate
	// condition, so the wait is event-driven. blockedHeld reaching zero
	// implies the blocked gauge is zero too (slots retire strictly after
	// the gauge decrement). Only then may the release window and the queue
	// channel close — acceptReleased finishes its enqueue under the read
	// lock, so after the write-lock barrier below no release can race the
	// channel close.
	s.gateMu.Lock()
	for s.blockedHeld > 0 {
		s.gateCond.Wait()
	}
	s.gateMu.Unlock()
	s.submitMu.Lock()
	s.releaseClosed = true
	s.submitMu.Unlock()
	close(s.queue)
	<-s.dispatcherDone
	// Collect every worker from the idle pool: once all P are held, no
	// assignment is in flight and the team can be released.
	for i := 0; i < s.p; i++ {
		<-s.free
	}
	for _, ch := range s.assign {
		close(ch)
	}
	s.team.Wait()
	close(s.closeDone)
}

// Stats is a snapshot of the scheduler's aggregate state. The JSON field
// names are stable (cmd/loopd serves this struct); durations marshal as
// nanoseconds, Go's time.Duration encoding.
type Stats struct {
	Workers     int   `json:"workers"`
	BusyWorkers int   `json:"busy_workers"`
	QueueDepth  int   `json:"queue_depth"`
	Running     int   `json:"running"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Canceled    int64 `json:"canceled"`
	// IterationsDone is the total number of loop iterations completed.
	IterationsDone int64 `json:"iterations_done"`
	// Grown counts workers that joined an already-running job (elastic
	// sub-team growth); Peeled counts workers that left a running job early
	// to serve waiting tenants (elastic shrink).
	Grown  int64 `json:"grown_total"`
	Peeled int64 `json:"peeled_total"`
	// Stolen counts whole queued jobs this scheduler pulled from sibling
	// shards; Lent counts workers this scheduler lent to sibling shards'
	// running elastic jobs. Both are zero outside a Sharded pool.
	Stolen int64 `json:"stolen_total"`
	Lent   int64 `json:"lent_total"`
	// BlockedDepth is the number of jobs currently parked in the Blocked
	// state waiting for dependencies — deliberately not part of QueueDepth,
	// which only counts jobs eligible for admission. Released counts blocked
	// jobs whose last upstream's join wave moved them into an admission
	// queue; DepCanceled counts blocked jobs canceled by upstream
	// cancellation propagating down the dependency graph (these also count
	// in Canceled).
	BlockedDepth int64 `json:"blocked_depth"`
	Released     int64 `json:"released_total"`
	DepCanceled  int64 `json:"dep_canceled_total"`
	// Preempted counts preemption decisions: shrink targets the dispatcher
	// posted against running elastic jobs to serve waiting tenants.
	// DeadlineMissed counts jobs that completed after their requested
	// deadline.
	Preempted      int64 `json:"preempted_total"`
	DeadlineMissed int64 `json:"deadline_missed_total"`
	// Tenants is the per-tenant accounting: weights, queued depth, served
	// jobs/iterations, preemptions, deadline misses and cumulative
	// admission-wait time, keyed by tenant name (jobs submitted without a
	// tenant are charged to "default"). Nil until the first submission or
	// weight registration.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Latency quantiles (submission to completion) over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Run quantiles (admission to completion) over the recent window.
	RunP50 time.Duration `json:"run_p50_ns"`
	RunP95 time.Duration `json:"run_p95_ns"`
	RunP99 time.Duration `json:"run_p99_ns"`
	// LatencySamples is the number of completions in the window.
	LatencySamples int `json:"latency_samples"`
	// LatencySumSeconds and RunSumSeconds are cumulative (not windowed)
	// totals over all completions, matching Completed as the count — the
	// _sum/_count pair of a Prometheus summary.
	LatencySumSeconds float64 `json:"latency_sum_seconds"`
	RunSumSeconds     float64 `json:"run_sum_seconds"`
}

// Stats returns a snapshot of queue depth, occupancy and latency
// percentiles.
func (s *Scheduler) Stats() Stats {
	st, _, _ := s.statsWindows()
	return st
}

// statsWindows builds the snapshot and also returns the latency windows it
// was computed from, so Sharded.Stats can merge pool-wide quantiles from the
// very same instant instead of re-snapshotting the rings.
func (s *Scheduler) statsWindows() (Stats, []float64, []float64) {
	st := Stats{
		Workers:        s.p,
		BusyWorkers:    int(s.busy.Load()),
		QueueDepth:     int(s.depth.Load()),
		Running:        int(s.running.Load()),
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Canceled:       s.canceled.Load(),
		IterationsDone: s.itersDone.Load(),
		Grown:          s.grown.Load(),
		Peeled:         s.peeled.Load(),
		Stolen:         s.stolen.Load(),
		Lent:           s.lent.Load(),
		BlockedDepth:   s.blocked.Load(),
		Released:       s.released.Load(),
		DepCanceled:    s.depCanceled.Load(),
		Preempted:      s.preempted.Load(),
		DeadlineMissed: s.deadlineMissed.Load(),
		Tenants:        s.fq.tenantsSnapshot(s.cfg.SLOTarget),
	}
	tot, run, totSum, runSum := s.lat.snapshot()
	st.LatencySamples = len(tot)
	st.LatencySumSeconds, st.RunSumSeconds = totSum, runSum
	if len(tot) > 0 {
		q := stats.Quantiles(tot, 0.5, 0.95, 0.99)
		st.LatencyP50, st.LatencyP95, st.LatencyP99 = secs(q[0]), secs(q[1]), secs(q[2])
		q = stats.Quantiles(run, 0.5, 0.95, 0.99)
		st.RunP50, st.RunP95, st.RunP99 = secs(q[0]), secs(q[1]), secs(q[2])
	}
	return st, tot, run
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// latRing is a fixed-size window of recent job latencies plus cumulative
// sums over every completion (the _sum series of a Prometheus summary).
type latRing struct {
	mu     sync.Mutex
	tot    []float64 // submission -> completion, seconds
	run    []float64 // admission -> completion, seconds
	totSum float64
	runSum float64
	idx    int
	n      int
}

func (r *latRing) init(capacity int) {
	r.tot = make([]float64, capacity)
	r.run = make([]float64, capacity)
}

func (r *latRing) add(tot, run float64) {
	r.mu.Lock()
	r.tot[r.idx] = tot
	r.run[r.idx] = run
	r.totSum += tot
	r.runSum += run
	r.idx = (r.idx + 1) % len(r.tot)
	if r.n < len(r.tot) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *latRing) snapshot() (tot, run []float64, totSum, runSum float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tot = append([]float64(nil), r.tot[:r.n]...)
	run = append([]float64(nil), r.run[:r.n]...)
	return tot, run, r.totSum, r.runSum
}
