package jobs

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/barrier"
	"loopsched/internal/pool"
	"loopsched/internal/stats"
)

// Config configures a jobs scheduler.
type Config struct {
	// Workers is the shared team size P; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; Submit blocks once this many
	// jobs are waiting (backpressure instead of unbounded memory growth).
	// <= 0 selects 1024.
	QueueDepth int
	// MaxWorkersPerJob caps every job's sub-team size; <= 0 means no cap
	// (a lone job may use the whole team).
	MaxWorkersPerJob int
	// LatencyWindow is the number of recent completions kept for the latency
	// percentiles in Stats; <= 0 selects 1024.
	LatencyWindow int
	// LockOSThread locks the workers to OS threads (benchmark fidelity);
	// serving daemons and tests usually leave it false so idle workers are
	// cheap goroutines.
	LockOSThread bool
	// Name is used in diagnostics.
	Name string
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.Name == "" {
		c.Name = "jobs"
	}
}

// Scheduler multiplexes parallel-loop jobs from many concurrent submitters
// onto one persistent worker team. All methods are safe for concurrent use.
type Scheduler struct {
	cfg  Config
	p    int
	team *pool.Team

	// queue is the admission queue; the single dispatcher goroutine is its
	// only consumer.
	queue chan *Job
	// free holds the ids of idle workers; workers return themselves after
	// finishing a share, the dispatcher takes ids when molding a sub-team.
	free chan int
	// assign carries at most one in-flight assignment per worker: the
	// dispatcher's release wave is k buffered sends and never blocks.
	assign []chan *assignment

	submitMu       sync.RWMutex
	closed         bool
	dispatcherDone chan struct{}

	depth     atomic.Int64
	running   atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
	itersDone atomic.Int64

	lat latRing
}

// New creates and starts a jobs scheduler.
func New(cfg Config) *Scheduler {
	cfg.normalize()
	s := &Scheduler{
		cfg:            cfg,
		p:              cfg.Workers,
		queue:          make(chan *Job, cfg.QueueDepth),
		free:           make(chan int, cfg.Workers),
		assign:         make([]chan *assignment, cfg.Workers),
		dispatcherDone: make(chan struct{}),
	}
	s.lat.init(cfg.LatencyWindow)
	for w := 0; w < s.p; w++ {
		s.assign[w] = make(chan *assignment, 1)
		s.free <- w
	}
	s.team = pool.New(pool.Config{Workers: s.p, LockOSThread: cfg.LockOSThread, Name: cfg.Name})
	s.team.StartAll(s.worker)
	go s.dispatch()
	return s
}

// P returns the team size.
func (s *Scheduler) P() int { return s.p }

// Name returns the scheduler's diagnostic name.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Submit enqueues a job and returns immediately. It blocks only when the
// admission queue is full. Submit is safe from any number of goroutines.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	switch {
	case req.Body == nil && req.RBody == nil:
		return nil, errors.New("jobs: request needs a Body or an RBody")
	case req.Body != nil && req.RBody != nil:
		return nil, errors.New("jobs: request must set exactly one of Body and RBody")
	case req.RBody != nil && req.Combine == nil:
		return nil, errors.New("jobs: reducing request needs a Combine")
	}
	j := &Job{req: req, done: make(chan struct{}), s: s, submitted: time.Now()}
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.submitted.Add(1)
	if req.N <= 0 {
		// Degenerate loop: complete inline, never queued. A reducing job
		// still yields its identity.
		j.state.Store(int32(Running))
		j.started = j.submitted
		if req.RBody != nil {
			j.partials = make([]paddedPartial, 1)
			j.partials[0].v = req.Identity
		}
		j.complete()
		return j, nil
	}
	s.depth.Add(1)
	s.queue <- j
	return j, nil
}

// teamSize picks the moldable sub-team size for a job: bounded by the
// scheduler-wide and per-job caps, by the job's size (never fewer than Grain
// iterations per worker), and by the queue pressure — with waiting jobs
// behind this one, each admitted job takes only its fair share of the team
// so concurrent tenants run side by side instead of serialising.
func (s *Scheduler) teamSize(j *Job, waiting int) int {
	k := s.p
	if s.cfg.MaxWorkersPerJob > 0 && k > s.cfg.MaxWorkersPerJob {
		k = s.cfg.MaxWorkersPerJob
	}
	if j.req.MaxWorkers > 0 && k > j.req.MaxWorkers {
		k = j.req.MaxWorkers
	}
	grain := j.req.Grain
	if grain <= 0 {
		grain = 1
	}
	if bySize := (j.req.N + grain - 1) / grain; k > bySize {
		k = bySize
	}
	if fair := s.p / (waiting + 1); k > fair {
		k = fair
	}
	if k < 1 {
		k = 1
	}
	return k
}

// dispatch is the admission loop: it pops jobs in submission order, molds a
// sub-team for each and performs the fork-side release wave (one buffered
// channel send per chosen worker; like the paper's release half-barrier, the
// dispatcher does not wait for the sub-team, it moves straight to the next
// job).
func (s *Scheduler) dispatch() {
	defer close(s.dispatcherDone)
	for j := range s.queue {
		s.depth.Add(-1)
		if !j.state.CompareAndSwap(int32(Pending), int32(Running)) {
			continue // canceled while queued
		}
		want := s.teamSize(j, int(s.depth.Load()))
		ids := s.acquire(want)
		k := len(ids)
		j.workers.Store(int32(k))
		j.started = time.Now()
		if j.req.RBody != nil {
			j.partials = make([]paddedPartial, k)
		}
		var bar barrier.HalfPair
		if k > 1 {
			bar = barrier.NewCentralized(k)
		}
		s.running.Add(1)
		for sub, id := range ids {
			s.assign[id] <- &assignment{job: j, sub: sub, k: k, bar: bar}
		}
	}
}

// acquire takes up to want idle workers, blocking only for the first: a job
// always makes progress with whatever fraction of the team is free, which is
// what makes the teams moldable rather than rigid.
func (s *Scheduler) acquire(want int) []int {
	ids := make([]int, 1, want)
	ids[0] = <-s.free
	for len(ids) < want {
		select {
		case id := <-s.free:
			ids = append(ids, id)
		default:
			return ids
		}
	}
	return ids
}

// worker is the body of every team member: execute one assignment, return to
// the idle pool, repeat until the scheduler closes.
func (s *Scheduler) worker(id int) {
	for a := range s.assign[id] {
		a.run()
		s.free <- id
	}
}

// recordCompletion updates the aggregate statistics; called by the sub-root
// exactly once per job.
func (s *Scheduler) recordCompletion(j *Job) {
	now := time.Now()
	s.completed.Add(1)
	if j.req.N > 0 {
		s.itersDone.Add(int64(j.req.N))
	}
	if j.workers.Load() > 0 {
		s.running.Add(-1)
	}
	s.lat.add(now.Sub(j.submitted).Seconds(), now.Sub(j.started).Seconds())
}

// Close drains the admission queue, waits for every in-flight job and
// releases the workers. Jobs submitted before Close complete normally;
// Submit fails with ErrClosed afterwards. Close is idempotent.
func (s *Scheduler) Close() {
	s.submitMu.Lock()
	if s.closed {
		s.submitMu.Unlock()
		return
	}
	s.closed = true
	s.submitMu.Unlock()
	close(s.queue)
	<-s.dispatcherDone
	// Collect every worker from the idle pool: once all P are held, no
	// assignment is in flight and the team can be released.
	for i := 0; i < s.p; i++ {
		<-s.free
	}
	for _, ch := range s.assign {
		close(ch)
	}
	s.team.Wait()
}

// Stats is a snapshot of the scheduler's aggregate state. The JSON field
// names are stable (cmd/loopd serves this struct); durations marshal as
// nanoseconds, Go's time.Duration encoding.
type Stats struct {
	Workers     int   `json:"workers"`
	BusyWorkers int   `json:"busy_workers"`
	QueueDepth  int   `json:"queue_depth"`
	Running     int   `json:"running"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Canceled    int64 `json:"canceled"`
	// IterationsDone is the total number of loop iterations completed.
	IterationsDone int64 `json:"iterations_done"`
	// Latency quantiles (submission to completion) over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Run quantiles (admission to completion) over the recent window.
	RunP50 time.Duration `json:"run_p50_ns"`
	RunP95 time.Duration `json:"run_p95_ns"`
	RunP99 time.Duration `json:"run_p99_ns"`
	// LatencySamples is the number of completions in the window.
	LatencySamples int `json:"latency_samples"`
}

// Stats returns a snapshot of queue depth, occupancy and latency
// percentiles.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Workers:        s.p,
		BusyWorkers:    s.p - len(s.free),
		QueueDepth:     int(s.depth.Load()),
		Running:        int(s.running.Load()),
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Canceled:       s.canceled.Load(),
		IterationsDone: s.itersDone.Load(),
	}
	tot, run := s.lat.snapshot()
	st.LatencySamples = len(tot)
	if len(tot) > 0 {
		q := stats.Quantiles(tot, 0.5, 0.95, 0.99)
		st.LatencyP50, st.LatencyP95, st.LatencyP99 = secs(q[0]), secs(q[1]), secs(q[2])
		q = stats.Quantiles(run, 0.5, 0.95, 0.99)
		st.RunP50, st.RunP95, st.RunP99 = secs(q[0]), secs(q[1]), secs(q[2])
	}
	return st
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// latRing is a fixed-size window of recent job latencies.
type latRing struct {
	mu  sync.Mutex
	tot []float64 // submission -> completion, seconds
	run []float64 // admission -> completion, seconds
	idx int
	n   int
}

func (r *latRing) init(capacity int) {
	r.tot = make([]float64, capacity)
	r.run = make([]float64, capacity)
}

func (r *latRing) add(tot, run float64) {
	r.mu.Lock()
	r.tot[r.idx] = tot
	r.run[r.idx] = run
	r.idx = (r.idx + 1) % len(r.tot)
	if r.n < len(r.tot) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *latRing) snapshot() (tot, run []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tot = append([]float64(nil), r.tot[:r.n]...)
	run = append([]float64(nil), r.run[:r.n]...)
	return tot, run
}
